"""Figure 5: the §3.4 relay speed-test experiment replay.

Paper: a 51-hour flood of every reachable relay pushed observed
bandwidths toward capacity; the network's estimated capacity rose by
~200 Gbit/s (~50%), the network weight error rose 5-10% (to a max of
23%) while weights lagged the better capacity estimates, and both decayed
after the 5-day observed-bandwidth memory expired.
"""

from benchmarks.conftest import run_once
from repro.metrics.datagen import ArchiveGenParams
from repro.metrics.speedtest import SpeedTestParams, run_speed_test_experiment


def test_fig05_speed_test_experiment(benchmark, report):
    result = run_once(
        benchmark,
        run_speed_test_experiment,
        SpeedTestParams(
            base=ArchiveGenParams(n_relays=250, n_days=40, seed=2),
            flood_start_hour=20 * 24,
        ),
    )
    report.header("Figure 5: relay speed test (51 h flood)")
    report.row(
        "capacity discovered",
        "~50% (+200 Gbit/s)",
        f"+{result.capacity_increase_fraction * 100:.0f}%",
    )
    report.row(
        "weight error before -> peak",
        "~15% -> max 23%",
        f"{result.weight_error_before * 100:.1f}% -> "
        f"{result.weight_error_peak * 100:.1f}%",
    )
    report.row(
        "weight error increase", "+5-10%",
        f"+{result.weight_error_increase * 100:.1f}%",
    )
    report.row(
        "estimates decay after 5-day memory", "yes",
        "yes" if result.recovered else "no",
    )
    assert 0.25 < result.capacity_increase_fraction < 1.0
    assert result.weight_error_increase > 0
    assert result.recovered
