"""Figure 14 (Appendix E.1): choosing the socket count s.

Paper: each measurement host measures US-SW with a varying number of
sockets (default kernels). Throughput rises with socket count and then
declines slowly (socket-management overhead); IN -- the highest-RTT,
shared-virtual host -- is the slowest to peak, doing so at 160 sockets,
which fixes s = 160 for the deployment.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.allocation import allocate_capacity
from repro.core.measurement import run_measurement
from repro.core.measurer import Measurer
from repro.core.params import FlashFlowParams
from repro.netsim.latency import NetworkModel
from repro.tornet.cpu import CpuModel
from repro.tornet.relay import Relay
from repro.units import gbit, mbit, to_mbit

SOCKET_COUNTS = (10, 20, 40, 80, 160, 240, 300)
HOSTS = ("US-NW", "US-E", "IN", "NL")


def _sweep():
    model = NetworkModel.paper_internet(seed=14)
    curves = {}
    for host_name in HOSTS:
        for n_sockets in SOCKET_COUNTS:
            estimates = []
            for rep in range(3):
                relay = Relay(
                    fingerprint=f"ussw-{host_name}-{n_sockets}-{rep}",
                    host=model.host("US-SW"),
                    cpu=CpuModel(max_forward_bits=mbit(890)),
                    seed=rep,
                )
                params = FlashFlowParams(n_sockets=n_sockets, slot_seconds=20)
                team = [Measurer(name=host_name, host=model.host(host_name))]
                assignments = allocate_capacity(
                    team, model.host(host_name).link_capacity
                )
                outcome = run_measurement(
                    relay, assignments, params,
                    network=model, target_location="US-SW",
                    seed=rep * 97 + n_sockets,
                )
                estimates.append(outcome.estimate)
            curves[(host_name, n_sockets)] = float(np.median(estimates))
    return curves


def test_fig14_socket_sweep(benchmark, report):
    curves = run_once(benchmark, _sweep)
    report.header("Figure 14: throughput at US-SW vs measurer socket count")
    peaks = {}
    for host in HOSTS:
        series = [curves[(host, n)] for n in SOCKET_COUNTS]
        peak_idx = int(np.argmax(series))
        peaks[host] = SOCKET_COUNTS[peak_idx]
        report.row(
            f"{host}: throughput 10 -> 160 -> 300 sockets",
            "rise, peak, decline",
            f"{to_mbit(curves[(host, 10)]):.0f} -> "
            f"{to_mbit(curves[(host, 160)]):.0f} -> "
            f"{to_mbit(curves[(host, 300)]):.0f} Mbit/s",
        )
        report.row(f"{host}: peak socket count", "IN peaks last (160)",
                   str(peaks[host]))

    # Rising part: more sockets help every host early on.
    for host in HOSTS:
        assert curves[(host, 80)] > curves[(host, 10)]
    # IN (high RTT) is the slowest to peak: it needs at least as many
    # sockets as any other host.
    assert peaks["IN"] >= max(peaks[h] for h in HOSTS if h != "IN")
    assert peaks["IN"] >= 80
    # The slowest host justifies the paper's s = 160 (its peak is within
    # a few percent of its 160-socket value).
    assert curves[("IN", 160)] >= 0.93 * max(
        curves[("IN", n)] for n in SOCKET_COUNTS
    )
