"""Ablations: what each FlashFlow design choice buys.

Not a paper table -- these benches knock out one mechanism at a time and
measure the damage, grounding the §4/§5 design rationale:

1. secret randomized schedule vs a predictable one (selective-capacity
   relays win against predictability);
2. median vs mean per-second aggregation (the mean is poisoned by the
   token-bucket burst second and by outliers);
3. the background ratio r (inflation bound vs client-traffic impact);
4. echo verification on vs off (forgers win without it).
"""

import statistics

from benchmarks.conftest import run_once
from repro import quick_team
from repro.attacks.relays import (
    ForgingRelayBehavior,
    SelectiveCapacityRelayBehavior,
)
from repro.core.aggregation import aggregate_bwauth_votes
from repro.core.allocation import allocate_capacity
from repro.core.measurement import run_measurement
from repro.core.params import FlashFlowParams
from repro.tornet.relay import Relay
from repro.units import mbit, to_mbit


def test_ablation_secret_schedule(benchmark, report):
    """Against a *predictable* schedule, a selective relay times its
    capacity perfectly; against the secret schedule it must gamble."""
    capacity = mbit(200)

    def run():
        outcomes = {}
        for schedule_known in (True, False):
            # A predictable schedule lets the relay be at full capacity
            # in every measured slot (active_fraction=1.0); the secret
            # schedule forces a blind q=0.25 gamble, rolled
            # automatically when each measurement is admitted.
            behavior = SelectiveCapacityRelayBehavior(
                active_fraction=1.0 if schedule_known else 0.25,
                idle_fraction=0.1,
                seed=4,
            )
            relay = Relay.with_capacity(
                f"sel-{schedule_known}", capacity, behavior=behavior, seed=5
            )
            votes = {}
            for i in range(9):
                auth = quick_team(seed=400 + i)
                votes[f"b{i}"] = {
                    "r": auth.measure_relay(
                        relay, initial_estimate=capacity, seed_offset=i
                    ).capacity
                }
            outcomes[schedule_known] = aggregate_bwauth_votes(votes)["r"]
        return outcomes

    outcomes = run_once(benchmark, run)
    report.header("Ablation: secret vs predictable measurement schedule")
    report.row(
        "median estimate, schedule KNOWN to relay", "-",
        f"{to_mbit(outcomes[True]):.0f} Mbit/s "
        f"({outcomes[True] / capacity * 100:.0f}% of capacity)",
    )
    report.row(
        "median estimate, schedule secret (§4.3)", "-",
        f"{to_mbit(outcomes[False]):.0f} Mbit/s "
        f"({outcomes[False] / capacity * 100:.0f}%)",
    )
    assert outcomes[True] > capacity * 0.8   # predictability = full credit
    assert outcomes[False] < capacity * 0.5  # secrecy defeats the gamble


def test_ablation_median_vs_mean(benchmark, report):
    """The median per-second aggregation resists the 1-second token
    burst and transient spikes that poison a mean."""
    params = FlashFlowParams()
    capacity = mbit(250)

    def run():
        auth = quick_team(seed=6)
        relay = Relay.with_capacity("r", mbit(900), seed=7)
        relay.set_rate_limit(capacity)
        assignments = allocate_capacity(
            auth.team, params.allocation_factor * capacity
        )
        outcome = run_measurement(relay, assignments, params, seed=8)
        median_est = outcome.estimate
        mean_est = statistics.fmean(outcome.per_second_total)
        return median_est, mean_est

    median_est, mean_est = run_once(benchmark, run)
    report.header("Ablation: median vs mean per-second aggregation")
    report.row("median estimate (FlashFlow)", "~capacity",
               f"{to_mbit(median_est):.1f} Mbit/s")
    report.row("mean estimate (ablated)", "inflated by burst",
               f"{to_mbit(mean_est):.1f} Mbit/s")
    assert mean_est > median_est  # the burst second pulls the mean up
    assert abs(median_est - capacity) / capacity < 0.12


def test_ablation_ratio_r(benchmark, report):
    """Sweeping r: small r starves clients during measurement; large r
    hands lying relays a bigger inflation bound. r = 0.25 is the paper's
    compromise (1.33x)."""

    def run():
        rows = []
        for r in (0.05, 0.10, 0.25, 0.50):
            params = FlashFlowParams(ratio=r)
            auth = quick_team(seed=9, params=params)
            relay = Relay.with_capacity("r", mbit(250), seed=10)
            outcome = auth.measure_relay(
                relay, initial_estimate=mbit(250),
                background_demand=mbit(80),
            )
            bg = statistics.fmean(
                outcome.outcomes[0].per_second_background_clamped[2:]
            )
            rows.append((r, params.inflation_bound, bg))
        return rows

    rows = run_once(benchmark, run)
    report.header("Ablation: background ratio r")
    for r, bound, bg in rows:
        report.row(
            f"r = {r}: inflation bound / client traffic kept",
            "1.33x at r=0.25",
            f"{bound:.2f}x / {to_mbit(bg):.0f} Mbit/s",
        )
    bounds = [bound for _, bound, _ in rows]
    kept = [bg for _, _, bg in rows]
    assert bounds == sorted(bounds)  # bound worsens with r
    assert kept == sorted(kept)      # client traffic improves with r


def test_ablation_verification(benchmark, report):
    """Without random echo checks, a decryption-skipping forger gains
    ~35% capacity credit; with them it is caught every time."""
    params = FlashFlowParams()
    capacity = mbit(300)

    def run():
        auth = quick_team(seed=11)
        results = {}
        for verify in (True, False):
            forger = Relay.with_capacity(
                f"f-{verify}", capacity,
                behavior=ForgingRelayBehavior(seed=12), seed=12,
            )
            assignments = allocate_capacity(
                auth.team, params.allocation_factor * capacity
            )
            outcome = run_measurement(
                forger, assignments, params, verify=verify, seed=13
            )
            results[verify] = outcome
        return results

    results = run_once(benchmark, run)
    report.header("Ablation: echo-cell verification")
    report.row(
        "with verification (§4.1)", "forger detected, estimate 0",
        f"failed={results[True].failed}, "
        f"{to_mbit(results[True].estimate):.0f} Mbit/s",
    )
    report.row(
        "without verification", "forger gains ~35%",
        f"failed={results[False].failed}, "
        f"{to_mbit(results[False].estimate):.0f} Mbit/s",
    )
    assert results[True].failed
    assert not results[False].failed
    assert results[False].estimate > capacity * 1.1
