"""Figures 1-4: TorFlow capacity/weight error from archived metrics (§3).

The paper computes Equations 1-6 over 11 years of Tor metrics data. This
bench runs the same pipeline over the calibrated synthetic archive and
reports the headline statistics of each figure.

Paper values:
- Fig 1 (mean relay capacity error): median 7% (day) .. 28% (year);
  25th-percentile-worst >= 18% (day) / 49% (year); >85% of relays nonzero.
- Fig 2 (network capacity error): medians 5/14/22/36%, max 60% (year).
- Fig 3 (relay weight error): >85% of relays under-weighted.
- Fig 4 (network weight error): medians 21/22/24/30%.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.metrics.analysis import (
    PERIODS_HOURS,
    network_capacity_error,
    network_weight_error,
    relay_capacity_error_means,
    relay_weight_error_means,
)
from repro.metrics.datagen import ArchiveGenParams, generate_archive

_PAPER_FIG1 = {"day": "7%", "week": "-", "month": "-", "year": "28%"}
_PAPER_FIG2 = {"day": "5%", "week": "14%", "month": "22%", "year": "36%"}
_PAPER_FIG4 = {"day": "21%", "week": "22%", "month": "24%", "year": "30%"}


def _make_archive():
    return generate_archive(
        ArchiveGenParams(n_relays=250, n_days=400, seed=1)
    )


def test_fig01_relay_capacity_error(benchmark, report):
    archive = run_once(benchmark, _make_archive)
    report.header("Figure 1: mean relay capacity error per relay (CDF)")
    warm = archive.n_hours // 2
    for name in ("day", "week", "month", "year"):
        hours = PERIODS_HOURS[name]
        rce = relay_capacity_error_means(
            archive, hours, warmup_hours=min(hours, warm)
        )
        report.row(
            f"median mean-RCE, p={name}",
            _PAPER_FIG1[name],
            f"{np.nanmedian(rce) * 100:.1f}%",
        )
        report.row(
            f"75th-pct mean-RCE, p={name}",
            "18%" if name == "day" else ("49%" if name == "year" else "-"),
            f"{np.nanpercentile(rce, 75) * 100:.1f}%",
        )
    nonzero = np.nanmean(
        relay_capacity_error_means(archive, 168, warmup_hours=720) > 0.005
    )
    report.row("relays with nonzero error", ">85%", f"{nonzero * 100:.0f}%")
    # The defining shape: error grows with the period length p.
    medians = [
        np.nanmedian(
            relay_capacity_error_means(
                archive, PERIODS_HOURS[p], warmup_hours=min(PERIODS_HOURS[p], warm)
            )
        )
        for p in ("day", "week", "month")
    ]
    assert medians[0] < medians[1] <= medians[2] + 1e-9


def test_fig02_network_capacity_error(benchmark, report):
    archive = run_once(benchmark, _make_archive)
    report.header("Figure 2: network capacity error over time")
    warm = archive.n_hours // 2
    medians = {}
    for name in ("day", "week", "month", "year"):
        hours = PERIODS_HOURS[name]
        nce = network_capacity_error(archive, hours)[min(hours, warm):]
        medians[name] = float(np.nanmedian(nce))
        report.row(
            f"median NCE, p={name}",
            _PAPER_FIG2[name],
            f"{medians[name] * 100:.1f}%",
        )
    report.row(
        "max NCE (year)", "60%",
        f"{np.nanmax(network_capacity_error(archive, 8760)) * 100:.1f}%",
    )
    assert medians["day"] < medians["week"] < medians["month"]


def test_fig03_relay_weight_error(benchmark, report):
    archive = run_once(benchmark, _make_archive)
    report.header("Figure 3: mean relay weight error per relay (log10 CDF)")
    rwe = relay_weight_error_means(archive, 720, warmup_hours=720)
    under = float(np.nanmean(rwe < 1.0))
    report.row(
        "relays under-weighted (RWE < 1)", ">85%",
        f"{under * 100:.0f}% (generator reaches ~66-75%; gap documented "
        "in EXPERIMENTS.md)",
    )
    finite = rwe[np.isfinite(rwe) & (rwe > 0)]
    log_errors = np.log10(finite)
    report.row(
        "log10(RWE) range", "-4 .. +2",
        f"{log_errors.min():.1f} .. {log_errors.max():.1f}",
    )
    assert under > 0.6


def test_fig04_network_weight_error(benchmark, report):
    archive = run_once(benchmark, _make_archive)
    report.header("Figure 4: network weight error over time")
    warm = archive.n_hours // 2
    medians = {}
    for name in ("day", "week", "month", "year"):
        hours = PERIODS_HOURS[name]
        nwe = network_weight_error(archive, hours)[min(hours, warm):]
        medians[name] = float(np.nanmedian(nwe))
        report.row(
            f"median NWE, p={name}",
            _PAPER_FIG4[name],
            f"{medians[name] * 100:.1f}%",
        )
    report.row("2019-range takeaway", "15-25%", "see medians above")
    # Shape: NWE grows (weakly) with period length, in the paper's band.
    assert medians["day"] <= medians["year"] + 1e-9
    assert 0.10 < medians["month"] < 0.45
