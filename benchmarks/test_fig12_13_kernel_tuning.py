"""Figures 12-13 (Appendix D): TCP socket tuning.

Fig 12 paper findings (single measurement socket, lab pair, netem RTTs):
- tuned kernels beat default kernels at every RTT;
- throughput falls as RTT grows within a kernel config;
- peak median throughput 1,269 Mbit/s (tuned, low RTT) -- consistent with
  Tor's ~1.25 Gbit/s processing limit.

Fig 13: on the Internet, the tuned/default advantage disappears as socket
count grows (aggregate buffer space covers the BDP), so the ratio of
default-to-tuned throughput approaches 1.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.allocation import allocate_capacity
from repro.core.measurement import run_measurement
from repro.core.measurer import Measurer
from repro.core.params import FlashFlowParams
from repro.netsim.latency import NetworkModel
from repro.netsim.socketbuf import KernelConfig
from repro.netsim.tcp import tcp_rate_cap
from repro.tornet.cpu import CpuModel
from repro.tornet.relay import Relay
from repro.units import gbit, mbit, to_mbit

RTTS_MS = (28, 120, 340)


def _single_socket_measurement(rtt_ms: float, kernel: KernelConfig,
                               seed: int) -> float:
    """FlashFlow with one socket on the lab pair at a netem RTT."""
    model = NetworkModel.lab_pair(rtt_ms=rtt_ms, seed=seed)
    client = model.host("lab-client").with_kernel(kernel)
    model.hosts["lab-client"] = client
    model.hosts["lab-target"] = model.host("lab-target").with_kernel(kernel)
    relay = Relay(
        fingerprint=f"lab-{rtt_ms}-{kernel.name}",
        host=model.hosts["lab-target"],
        cpu=CpuModel(max_forward_bits=mbit(1269)),
        jitter=0.004,
        seed=seed,
    )
    params = FlashFlowParams(n_sockets=1, slot_seconds=60)
    team = [Measurer(name="lab-client", host=client)]
    assignments = allocate_capacity(team, gbit(10))
    outcome = run_measurement(
        relay, assignments, params,
        network=model, target_location="lab-target", seed=seed,
    )
    return outcome.estimate


def _fig12():
    results = {}
    for rtt in RTTS_MS:
        for kernel in (KernelConfig.default(), KernelConfig.tuned()):
            results[(rtt, kernel.name)] = _single_socket_measurement(
                rtt, kernel, seed=rtt
            )
    return results


def test_fig12_single_socket_kernel_tuning(benchmark, report):
    results = run_once(benchmark, _fig12)
    report.header("Figure 12: single-socket throughput, default vs tuned")
    for rtt in RTTS_MS:
        report.row(
            f"default kernel @ {rtt} ms", "falls with RTT",
            f"{to_mbit(results[(rtt, 'default')]):,.0f} Mbit/s",
        )
        report.row(
            f"tuned kernel   @ {rtt} ms", "falls with RTT",
            f"{to_mbit(results[(rtt, 'tuned')]):,.0f} Mbit/s",
        )
    peak = max(results.values())
    report.row("max median throughput", "1,269 Mbit/s",
               f"{to_mbit(peak):,.0f} Mbit/s")

    for rtt in RTTS_MS:
        assert results[(rtt, "tuned")] >= results[(rtt, "default")] * 0.99
    assert results[(28, "default")] > results[(120, "default")]
    assert results[(120, "default")] > results[(340, "default")]
    assert results[(120, "tuned")] > results[(340, "tuned")]
    assert peak > mbit(1000)
    # Tuning matters at high RTT (default BDP-starved), not at 28 ms.
    assert results[(120, "tuned")] > results[(120, "default")] * 2


def _fig13():
    """default/tuned median ratio per Internet host vs socket count."""
    model = NetworkModel.paper_internet(seed=9)
    ratios = {}
    for host_name in ("US-NW", "US-E", "IN", "NL"):
        path = model.path(host_name, "US-SW")
        for n_sockets in (1, 4, 16, 64, 160):
            per_kernel = {}
            for kernel in (KernelConfig.default(), KernelConfig.tuned()):
                per_socket = tcp_rate_cap(path, kernel, kernel)
                total = min(
                    per_socket * n_sockets,
                    model.host(host_name).link_capacity,
                    mbit(890),  # US-SW's Tor capacity
                )
                per_kernel[kernel.name] = total
            ratios[(host_name, n_sockets)] = (
                per_kernel["default"] / per_kernel["tuned"]
            )
    return ratios


def test_fig13_tuning_benefit_fades_with_sockets(benchmark, report):
    ratios = run_once(benchmark, _fig13)
    report.header("Figure 13: default/tuned throughput ratio vs sockets")
    for host in ("US-NW", "US-E", "IN", "NL"):
        series = [ratios[(host, n)] for n in (1, 4, 16, 64, 160)]
        report.row(
            f"{host} ratio at 1 -> 160 sockets", "rises toward 1",
            " -> ".join(f"{r:.2f}" for r in series),
        )
        assert series[-1] >= series[0]
        assert series[-1] > 0.95  # tuning irrelevant with many sockets
    assert ratios[("IN", 1)] < 1.0  # tuning helps most on the long path
