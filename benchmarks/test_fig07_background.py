"""Figure 7: measuring a relay with client background traffic (§6.2).

Paper: a 250 Mbit/s-limited relay carrying ~50 Mbit/s of client traffic
is measured with r = 0.1. During the measurement background traffic is
limited to 25 Mbit/s (= r x total), the FlashFlow-reported sum equals the
relay's own throughput report, a one-second burst spike appears at the
start, and background traffic returns to its prior level immediately
afterwards.
"""

from benchmarks.conftest import run_once
from repro.core.allocation import allocate_capacity
from repro.core.measurement import run_measurement
from repro.core.measurer import Measurer
from repro.core.params import FlashFlowParams
from repro.netsim.latency import NetworkModel
from repro.tornet.cpu import CpuModel
from repro.tornet.relay import Relay
from repro.units import mbit, to_mbit

BACKGROUND = mbit(50)
LIMIT = mbit(250)


def _run():
    params = FlashFlowParams(ratio=0.1)
    model = NetworkModel.paper_internet(seed=4)
    relay = Relay(
        fingerprint="guard-relay",
        host=model.host("US-SW"),
        cpu=CpuModel(max_forward_bits=mbit(890)),
        seed=5,
        jitter=0.01,
    )
    relay.set_rate_limit(LIMIT)

    # Before: 30 seconds of plain client traffic.
    before = [relay.idle_second(BACKGROUND) for _ in range(30)]

    # During: one NL measurer (as in the paper).
    team = [Measurer(name="NL", host=model.host("NL"))]
    assignments = allocate_capacity(
        team, params.allocation_factor * LIMIT
    )
    outcome = run_measurement(
        relay, assignments, params,
        network=model, target_location="US-SW",
        background_demand=BACKGROUND, seed=6,
    )

    # After: background resumes untouched.
    after = [relay.idle_second(BACKGROUND) for _ in range(30)]
    return before, outcome, after


def test_fig07_background_traffic(benchmark, report):
    before, outcome, after = run_once(benchmark, _run)
    params = FlashFlowParams(ratio=0.1)

    bg_during = [
        y for y in outcome.per_second_background_clamped[2:]
    ]  # skip the burst seconds
    mean_bg_during = sum(bg_during) / len(bg_during)
    mean_before = sum(before) / len(before)
    mean_after = sum(after) / len(after)

    report.header("Figure 7: throughput during measurement with background")
    report.row("background before", "~50 Mbit/s", f"{to_mbit(mean_before):.1f} Mbit/s")
    report.row(
        "background during (r = 0.1)", "<= 25 Mbit/s",
        f"{to_mbit(mean_bg_during):.1f} Mbit/s",
    )
    report.row(
        "capacity estimate (bg included)", "~250 Mbit/s",
        f"{to_mbit(outcome.estimate):.1f} Mbit/s",
    )
    # The burst lands in the first seconds (TCP slow start can defer it
    # by one second; the paper's Figure 7 shows the same leading spike).
    spike = max(outcome.per_second_total[:3])
    steady_total = outcome.per_second_total[5]
    report.row(
        "1-second burst spike at start", "~2x steady",
        f"{spike / steady_total:.2f}x",
    )
    report.row(
        "background after (no lingering effect)", "~50 Mbit/s",
        f"{to_mbit(mean_after):.1f} Mbit/s",
    )

    assert mean_bg_during <= LIMIT * params.ratio * 1.10
    assert outcome.estimate <= LIMIT * 1.10
    assert outcome.estimate >= LIMIT * 0.75
    assert spike > 1.5 * steady_total
    assert abs(mean_after - mean_before) < mbit(5)
