"""§5 security analysis: every quantitative claim, theory vs simulation.

- traffic lying bounded by 1/(1-r) = 1.33x (clamp + end-to-end);
- forging k responses evades with probability (1-p)^k; detection of a
  full-rate forger within one slot is essentially certain;
- a relay fast during a fraction q < 1/2 of slots fails to move the
  median with probability >= 0.5 (binomial in the number of BWAuths);
- Sybil floods cannot displace old relays from the schedule.
"""

import statistics

from benchmarks.conftest import run_once
from repro import quick_team
from repro.attacks.analysis import (
    forge_evasion_probability,
    inflation_bound,
    selective_capacity_failure_probability,
)
from repro.attacks.relays import (
    ForgingRelayBehavior,
    RatioCheatingRelayBehavior,
    SelectiveCapacityRelayBehavior,
)
from repro.core.params import FlashFlowParams
from repro.tornet.relay import Relay
from repro.units import CELL_LEN, mbit


def _inflation_trials(n_trials=10):
    auth = quick_team(seed=30)
    inflations = []
    for trial in range(n_trials):
        cheat = Relay.with_capacity(
            f"c{trial}", mbit(150),
            behavior=RatioCheatingRelayBehavior(), seed=trial,
        )
        estimate = auth.measure_relay(
            cheat, initial_estimate=mbit(150), seed_offset=trial * 7
        )
        inflations.append(estimate.capacity / mbit(150))
    return inflations


def test_security_inflation_bound(benchmark, report):
    params = FlashFlowParams()
    inflations = run_once(benchmark, _inflation_trials)
    report.header("§5: traffic-lying inflation (theory vs measured)")
    report.row("theoretical bound 1/(1-r)", "1.33x",
               f"{inflation_bound(params.ratio):.2f}x")
    report.row("measured max over trials", "<= 1.33x",
               f"{max(inflations):.2f}x")
    report.row("measured median", "-", f"{statistics.median(inflations):.2f}x")
    assert max(inflations) <= params.inflation_bound * 1.08


def _forger_detection(n_trials=10):
    auth = quick_team(seed=31)
    detected = 0
    for trial in range(n_trials):
        forger = Relay.with_capacity(
            f"f{trial}", mbit(400),
            behavior=ForgingRelayBehavior(seed=trial), seed=trial,
        )
        estimate = auth.measure_relay(
            forger, initial_estimate=mbit(400), seed_offset=trial * 11
        )
        detected += 1 if estimate.failed else 0
    return detected


def test_security_forge_detection(benchmark, report):
    params = FlashFlowParams()
    detected = run_once(benchmark, _forger_detection)
    # A 400 Mbit/s forger forging a 30 s slot forges ~2.9M cells.
    forged_cells = int(mbit(400) / 8 / CELL_LEN * params.slot_seconds)
    theory = 1 - forge_evasion_probability(params.p_check, forged_cells)
    report.header("§5: forged echo-cell detection")
    report.row("cells forged per slot", "-", f"{forged_cells:,}")
    report.row("theoretical detection probability", "~1",
               f"{theory:.6f}")
    report.row("slots detected (of 10)", "10", str(detected))
    assert theory > 0.999999
    assert detected == 10


def test_security_selective_capacity(benchmark, report):
    report.header("§5: selective-capacity strategies vs the median")

    def table():
        rows = []
        for n_bwauths in (1, 3, 5, 9):
            for q in (0.1, 0.25, 0.49):
                rows.append(
                    (
                        n_bwauths,
                        q,
                        selective_capacity_failure_probability(n_bwauths, q),
                    )
                )
        return rows

    rows = run_once(benchmark, table)
    for n, q, p_fail in rows:
        report.row(
            f"n = {n} BWAuths, active fraction q = {q}",
            ">= 0.5 for q < 1/2",
            f"P[fail] = {p_fail:.3f}",
        )
        assert p_fail >= 0.5
    # More BWAuths make gambling strictly worse at q = 0.25.
    p = {n: selective_capacity_failure_probability(n, 0.25)
         for n in (1, 3, 5, 9)}
    assert p[9] > p[3] > p[1] - 1e-9
    report.row("9 vs 1 BWAuths at q = 0.25", "failure rises",
               f"{p[1]:.2f} -> {p[9]:.2f}")


def test_security_selective_simulation(benchmark, report):
    """Empirical check: gambling relays lose their medians."""

    def run():
        behavior = SelectiveCapacityRelayBehavior(
            active_fraction=0.25, idle_fraction=0.1, seed=2
        )
        relay = Relay.with_capacity("sel", mbit(200), behavior=behavior, seed=3)
        votes = []
        for i in range(9):
            auth = quick_team(seed=300 + i)
            behavior.roll_slot()
            votes.append(
                auth.measure_relay(
                    relay, initial_estimate=mbit(200), seed_offset=i
                ).capacity
            )
        return statistics.median(votes)

    median = run_once(benchmark, run)
    report.header("§5: selective capacity, simulated (q = 0.25, 9 BWAuths)")
    report.row("median of BWAuth measurements", "~idle capacity (10%)",
               f"{median / mbit(200) * 100:.0f}% of true capacity")
    assert median < mbit(200) * 0.5
