"""Tables 1 and 3: Internet host characterisation via iPerf.

Table 1 "BW (measured)" row (many-to-one UDP saturation, Mbit/s):
US-SW 954, US-NW 946, US-E 941, IN 1076, NL 1611.

Table 3 adds pairwise bidirectional TCP and UDP medians from US-SW:
UDP beats TCP on every pair, and US hosts are ~1 Gbit/s-limited.
"""

from benchmarks.conftest import run_once
from repro.netsim.hosts import make_paper_hosts
from repro.netsim.iperf import iperf_many_to_one, iperf_pair
from repro.netsim.latency import NetworkModel

TABLE1_MEASURED = {
    "US-SW": 954, "US-NW": 946, "US-E": 941, "IN": 1076, "NL": 1611,
}


def _table1():
    model = NetworkModel.paper_internet(seed=16)
    return {
        name: iperf_many_to_one(model, name, duration=60, seed=17).mbit
        for name in TABLE1_MEASURED
    }


def test_table1_host_inventory(benchmark, report):
    measured = run_once(benchmark, _table1)
    hosts = make_paper_hosts()
    report.header("Table 1: Internet measurement hosts")
    for name, paper_mbit in TABLE1_MEASURED.items():
        host = hosts[name]
        report.row(
            f"{name} ({'virtual' if host.virtual else 'physical'}, "
            f"{host.cpu_cores} cores)",
            f"{paper_mbit} Mbit/s",
            f"{measured[name]:.0f} Mbit/s",
        )
        assert measured[name] == float(measured[name])
        assert abs(measured[name] - paper_mbit) / paper_mbit < 0.10, name
    # Orderings the paper highlights: NL clearly exceeds 1 Gbit/s; the
    # three US hosts cluster at ~1 Gbit/s.
    assert measured["NL"] > 1200
    for name in ("US-SW", "US-NW", "US-E"):
        assert 800 < measured[name] < 1050


def _table3():
    model = NetworkModel.paper_internet(seed=18)
    rows = {}
    for peer in ("US-NW", "US-E", "IN", "NL"):
        tcp = iperf_pair(model, "US-SW", peer, mode="tcp",
                         duration=60, seed=19)
        udp = iperf_pair(model, "US-SW", peer, mode="udp",
                         duration=60, seed=19)
        rows[peer] = (tcp.mbit, udp.mbit)
    return rows


def test_table3_pairwise_iperf(benchmark, report):
    rows = run_once(benchmark, _table3)
    paper = {
        "US-NW": ("176-787", "740-945"),
        "US-E": ("874-919", "943-944"),
        "IN": ("677-819", "925-955"),
        "NL": ("827-880", "952-956"),
    }
    report.header("Table 3: pairwise iPerf from US-SW (TCP / UDP)")
    for peer, (tcp, udp) in rows.items():
        report.row(
            f"US-SW <-> {peer}",
            f"TCP {paper[peer][0]}, UDP {paper[peer][1]}",
            f"TCP {tcp:.0f}, UDP {udp:.0f} Mbit/s",
        )
        # The paper's structural finding: UDP > TCP on every pair.
        assert udp > tcp, peer
        # And everything is bounded by ~1 Gbit/s access links.
        assert udp < 1050
    # High-RTT IN is the weakest TCP pair among the well-behaved hosts.
    assert rows["IN"][0] < rows["US-E"][0]
