"""§7 network measurement efficiency.

Paper: with 3 measurers of 1 Gbit/s each (team capacity just above
f x 998 Mbit/s), greedily packing July-2019 relays into 30-second slots
measures the whole network in ~5 hours (599 slots in the median day; min
4.9 h, max 5.1 h; 6,419 relays; 608 Gbit/s). New relays (median 3 per
consensus, seeded at the 51 Mbit/s 75th-percentile estimate) are measured
within 30 seconds in the median and 13 minutes at worst.
"""

import statistics

from benchmarks.conftest import run_once
from repro.core.params import FlashFlowParams
from repro.core.schedule import PeriodSchedule, greedy_pack_slots
from repro.tornet.authority import SharedRandomness
from repro.tornet.network import new_relay_arrivals, synthesize_network
from repro.units import HOUR, gbit, to_gbit, to_mbit


def _full_network_schedule():
    params = FlashFlowParams()
    team_capacity = gbit(3)
    days = []
    for day in range(5):  # five synthetic "days" of consensuses
        network = synthesize_network(seed=100 + day)
        slots = greedy_pack_slots(network.capacities(), params, team_capacity)
        days.append(
            {
                "relays": len(network),
                "capacity": network.total_capacity(),
                "slots": len(slots),
                "hours": len(slots) * params.slot_seconds / HOUR,
                "seed_75pct": network.percentile_capacity(75),
            }
        )
    return days


def test_efficiency_full_network(benchmark, report):
    days = run_once(benchmark, _full_network_schedule)
    hours = sorted(d["hours"] for d in days)
    relays = sorted(d["relays"] for d in days)
    capacity = sorted(d["capacity"] for d in days)
    median_hours = statistics.median(hours)

    report.header("§7: full-network measurement speed (3 x 1 Gbit/s team)")
    report.row("median day: time to measure network", "5.0 h (599 slots)",
               f"{median_hours:.1f} h "
               f"({int(median_hours * HOUR / 30)} slots)")
    report.row("range over days", "4.9 - 5.1 h",
               f"{hours[0]:.1f} - {hours[-1]:.1f} h")
    report.row("relays measured (median)", "6,419",
               f"{statistics.median(relays):,.0f}")
    report.row("total capacity (median)", "608 Gbit/s",
               f"{to_gbit(statistics.median(capacity)):.0f} Gbit/s")
    report.row(
        "fits in a 24 h period with spare capacity", "yes",
        "yes" if median_hours < 12 else "no",
    )

    assert 3.0 < median_hours < 8.0
    assert hours[-1] - hours[0] < 1.0  # stable across days
    assert median_hours < 12  # well within the 24 h period


def _new_relay_latency():
    params = FlashFlowParams()
    network = synthesize_network(seed=200)
    seed = SharedRandomness.run_round(["d1", "d2", "d3"], seed=7)
    schedule = PeriodSchedule.build(
        params, gbit(3), network.capacities(), seed=seed
    )
    arrivals = new_relay_arrivals(300, seed=8)
    waits = []
    new_index = 0
    for consensus_index, count in enumerate(arrivals):
        arrival_slot = (consensus_index * 3600) // params.slot_seconds
        if arrival_slot >= params.slots_per_period:
            break
        for _ in range(count):
            assignment = schedule.add_new_relay(
                f"new{new_index}", params.new_relay_seed,
                earliest_slot=arrival_slot,
            )
            waits.append(
                (assignment.slot - arrival_slot) * params.slot_seconds
            )
            new_index += 1
    return waits


def test_efficiency_new_relays(benchmark, report):
    waits = run_once(benchmark, _new_relay_latency)
    median_wait = statistics.median(waits)
    max_wait = max(waits)
    report.header("§7: time to measure newly appeared relays")
    report.row("new relays placed", "median 3/consensus",
               f"{len(waits)} over 300 consensuses")
    report.row("median wait", "30 s (one slot)", f"{median_wait:.0f} s")
    report.row("max wait", "13 min", f"{max_wait / 60:.1f} min")
    assert median_wait <= 60
    assert max_wait <= 30 * 60
