"""Figure 10 (Appendix A): variation of capacities and weights over time.

Paper: the relative standard deviation (Eq 7) of advertised bandwidths
has medians 32/55/62/65% over day/week/month/year windows; normalized
consensus weights vary with medians 14/31/43/50%. Most of this variation
cannot be genuine capacity change -- it is estimation noise.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.metrics.analysis import PERIODS_HOURS, relative_std_means
from repro.metrics.datagen import ArchiveGenParams, generate_archive

PAPER_ADV = {"day": "32%", "week": "55%", "month": "62%", "year": "65%"}
PAPER_WEIGHT = {"day": "14%", "week": "31%", "month": "43%", "year": "50%"}


def _archive():
    return generate_archive(ArchiveGenParams(n_relays=250, n_days=400, seed=3))


def test_fig10_capacity_and_weight_variation(benchmark, report):
    archive = run_once(benchmark, _archive)
    adv = archive.masked_advertised()
    weights = archive.masked_weights()

    report.header("Figure 10a: RSD of advertised bandwidths")
    adv_medians = {}
    for name in ("day", "week", "month", "year"):
        hours = min(PERIODS_HOURS[name], archive.n_hours // 2)
        rsd = relative_std_means(adv, hours)
        adv_medians[name] = float(np.nanmedian(rsd))
        report.row(
            f"median RSD, p={name}", PAPER_ADV[name],
            f"{adv_medians[name] * 100:.1f}%",
        )

    report.header("Figure 10b: RSD of normalized consensus weights")
    weight_medians = {}
    for name in ("day", "week", "month", "year"):
        hours = min(PERIODS_HOURS[name], archive.n_hours // 2)
        rsd = relative_std_means(weights, hours)
        weight_medians[name] = float(np.nanmedian(rsd))
        report.row(
            f"median RSD, p={name}", PAPER_WEIGHT[name],
            f"{weight_medians[name] * 100:.1f}%",
        )

    # Shapes: variation grows with window length, and is substantial.
    assert adv_medians["day"] < adv_medians["month"]
    assert weight_medians["day"] < weight_medians["month"]
    assert adv_medians["month"] > 0.10
    assert weight_medians["month"] > 0.10
