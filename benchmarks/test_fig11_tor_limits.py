"""Figure 11 (Appendix C): Tor's processing limits in the lab.

Paper: on a 10 Gbit/s, 0.13 ms lab pair, relay throughput under the
normal scheduler rises roughly linearly with socket count, peaks at
1,248 Mbit/s around 20 sockets (CPU-saturated from 13 sockets), then
declines slowly as socket management overhead grows. Adding circuits on
a *single* socket plateaus at the single-socket scheduler cap instead.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.tornet.circuit import circuit_rate_cap
from repro.tornet.cpu import CpuModel
from repro.tornet.kist import KIST_PER_SOCKET_CAP
from repro.tornet.relay import Relay
from repro.netsim.latency import NetworkModel
from repro.units import gbit, mbit, to_mbit

LAB_RTT = 0.00013


def _sockets_sweep():
    """Throughput vs number of busy client sockets (normal scheduler)."""
    model = NetworkModel.lab_pair()
    results = {}
    for n_sockets in (1, 2, 5, 10, 13, 20, 40, 60, 80, 100):
        relay = Relay(
            fingerprint=f"lab-{n_sockets}",
            host=model.host("lab-target"),
            cpu=CpuModel(max_forward_bits=mbit(1248)),
            jitter=0.004,
            seed=n_sockets,
        )
        per_second = [
            relay.idle_second(gbit(10), n_background_sockets=n_sockets)
            for _ in range(30)
        ]
        results[n_sockets] = float(np.median(per_second))
    return results


def _circuits_sweep():
    """Throughput vs circuits on one socket: single-socket cap binds."""
    results = {}
    for n_circuits in (1, 5, 10, 20, 50, 100):
        per_circuit = circuit_rate_cap(LAB_RTT, n_streams=3)
        demand = min(n_circuits * per_circuit, gbit(10))
        results[n_circuits] = min(demand, KIST_PER_SOCKET_CAP)
    return results


def test_fig11_sockets_and_circuits(benchmark, report):
    sockets = run_once(benchmark, _sockets_sweep)
    circuits = _circuits_sweep()

    peak_n = max(sockets, key=sockets.get)
    peak = sockets[peak_n]
    report.header("Figure 11: lab Tor throughput vs sockets / circuits")
    report.row("peak throughput", "1,248 Mbit/s", f"{to_mbit(peak):,.0f} Mbit/s")
    report.row("peak at socket count", "20", str(peak_n))
    report.row(
        "throughput at 1 socket", "~100 Mbit/s",
        f"{to_mbit(sockets[1]):.0f} Mbit/s",
    )
    report.row(
        "decline at 100 sockets vs peak", "visible",
        f"-{(1 - sockets[100] / peak) * 100:.0f}%",
    )
    report.row(
        "circuits plateau (single socket)", "flat, low",
        f"{to_mbit(circuits[100]):.0f} Mbit/s at 100 circuits",
    )

    # Rising part tracks the per-socket scheduler cap.
    assert sockets[5] > sockets[1] * 3
    # Peak near the paper's value and location.
    assert peak == pytest.approx(mbit(1248), rel=0.05)
    assert 13 <= peak_n <= 40
    # Decline after the peak.
    assert sockets[100] < peak
    # Circuits on one socket cannot exceed the single-socket cap.
    assert circuits[100] <= KIST_PER_SOCKET_CAP
    assert circuits[100] == circuits[50]
