"""Table 2: comparison of Tor load-balancing systems.

Paper row values:

=============  ==========  ===========  =========  ========
System         Server BW   Attack adv.  Capacity?  Speed
=============  ==========  ===========  =========  ========
TorFlow        1 Gbit/s    177x         inferable  2 days
EigenSpeed     0           21.5x        no         1 day
PeerFlow       0           10x          inferable  14 days+
FlashFlow      3 Gbit/s    1.33x        provided   5 hours
=============  ==========  ===========  =========  ========

This bench *measures* each attack advantage with the implemented attack
harnesses and the FlashFlow speed with the implemented scheduler, then
renders the table.
"""

import random
import statistics

from benchmarks.conftest import run_once
from repro import quick_team
from repro.attacks.relays import RatioCheatingRelayBehavior
from repro.core.params import FlashFlowParams
from repro.core.schedule import greedy_pack_slots
from repro.torflow.comparison import comparison_table, format_table
from repro.torflow.eigenspeed import eigenspeed_liar_attack
from repro.torflow.peerflow import peerflow_inflation_attack
from repro.torflow.scanner import TorFlowScanner, scanner_time_estimate, torflow_weights
from repro.tornet.network import synthesize_network
from repro.tornet.relay import Relay
from repro.units import DAY, HOUR, gbit, mbit


def _measure_all():
    rng = random.Random(20)
    caps = {f"r{i}": mbit(rng.uniform(5, 500)) for i in range(60)}

    # TorFlow: self-report a 200x advertised bandwidth.
    advertised = {fp: c * 0.5 for fp, c in caps.items()}
    scan = TorFlowScanner(seed=21).scan(caps, {fp: 0.3 for fp in caps})
    honest_w = torflow_weights(advertised, scan)
    lying = dict(advertised)
    lying["r0"] = caps["r0"] * 100
    attacked_w = torflow_weights(lying, scan)
    torflow_adv = attacked_w["r0"] / honest_w["r0"]

    # EigenSpeed: targeted liar attack by 3 colluders.
    eig = eigenspeed_liar_attack(
        caps, malicious=["r0", "r1", "r2"],
        trusted=[f"r{i}" for i in range(50, 60)], seed=22,
    )

    # PeerFlow: colluders inflate byte reports (tau = 0.2).
    pf = peerflow_inflation_attack(
        caps, malicious=["r0", "r1", "r2", "r3"], seed=23,
    )

    # FlashFlow: strongest lie = ratio cheating, measured end to end.
    auth = quick_team(seed=24)
    inflations = []
    for trial in range(6):
        cheat = Relay.with_capacity(
            f"cheat{trial}", mbit(200),
            behavior=RatioCheatingRelayBehavior(), seed=trial,
        )
        estimate = auth.measure_relay(
            cheat, initial_estimate=mbit(200), seed_offset=trial * 13
        )
        inflations.append(estimate.capacity / mbit(200))
    flashflow_adv = max(inflations)

    # FlashFlow speed: greedy-pack the July-2019 network on 3 x 1 Gbit/s.
    params = FlashFlowParams()
    network = synthesize_network(seed=25)
    slots = greedy_pack_slots(network.capacities(), params, gbit(3))
    flashflow_hours = len(slots) * params.slot_seconds / HOUR
    torflow_seconds = scanner_time_estimate(len(network), gbit(1))

    return {
        "torflow_adv": torflow_adv,
        "eigenspeed_adv": eig["inflation_factor"],
        # The naive byte-report lie is *defended* (quantile statistic);
        # Table 2 quotes the achievable bound 2/tau from PeerFlow's own
        # analysis (Theorem 1 of [25]), which the paper also cites.
        "peerflow_naive": pf["inflation_factor"],
        "peerflow_adv": pf["theory_bound"],
        "flashflow_adv": flashflow_adv,
        "flashflow_hours": flashflow_hours,
        "torflow_seconds": torflow_seconds,
    }


def test_table2_system_comparison(benchmark, report):
    measured = run_once(benchmark, _measure_all)
    rows = comparison_table(
        torflow_advantage=measured["torflow_adv"],
        eigenspeed_advantage=measured["eigenspeed_adv"],
        peerflow_advantage=measured["peerflow_adv"],
        flashflow_hours=measured["flashflow_hours"],
        torflow_seconds=measured["torflow_seconds"],
    )
    report.header("Table 2: load-balancing system comparison")
    report.row("TorFlow attack advantage", "177x (89x-177x)",
               f"{measured['torflow_adv']:.0f}x")
    report.row("EigenSpeed attack advantage", "21.5x (7.4-28.1x)",
               f"{measured['eigenspeed_adv']:.1f}x")
    report.row("PeerFlow attack advantage (2/tau bound)", "10x",
               f"{measured['peerflow_adv']:.1f}x")
    report.row("PeerFlow naive byte-lie (defended)", "-",
               f"{measured['peerflow_naive']:.2f}x")
    report.row("FlashFlow attack advantage", "1.33x",
               f"{measured['flashflow_adv']:.2f}x")
    report.row("FlashFlow full-network speed", "5 hours",
               f"{measured['flashflow_hours']:.1f} hours")
    report.row("TorFlow full-network speed", "2 days",
               f"{measured['torflow_seconds'] / DAY:.1f} days")
    report.line("")
    for line in format_table(rows).splitlines():
        report.line("  " + line)

    # Orderings must match the paper's table.
    assert measured["torflow_adv"] > 80
    assert 3 < measured["eigenspeed_adv"] < 40
    assert 1.5 < measured["peerflow_adv"] < 15
    assert measured["peerflow_naive"] < 2.0  # the quantile defense holds
    assert measured["flashflow_adv"] <= FlashFlowParams().inflation_bound * 1.05
    assert (
        measured["flashflow_adv"]
        < measured["peerflow_adv"]
        < measured["eigenspeed_adv"]
        < measured["torflow_adv"]
    )
    assert measured["flashflow_hours"] < 8
    assert measured["torflow_seconds"] > DAY


def test_table2_flashflow_bound_is_structural(benchmark, report):
    """The 1.33x is a protocol bound, not an empirical average: the clamp
    y <= x r/(1-r) holds for every finite per-second report, and a
    non-finite claim is rejected outright at the choke point."""
    import pytest

    from repro.core.measurement import clamp_background

    def worst_case():
        worst = 0.0
        for x in (1e6, 1e8, 1e9):
            for lie in (0.0, 1e9, 1e15, 1e300):
                x_total = x + clamp_background(x, lie, 0.25)
                worst = max(worst, x_total / x)
            with pytest.raises(ValueError):
                clamp_background(x, float("inf"), 0.25)
        return worst

    worst = run_once(benchmark, worst_case)
    report.header("Table 2 (supplement): structural inflation bound")
    report.row("max z/x over arbitrary lies", "1/(1-r) = 1.333",
               f"{worst:.3f}")
    assert worst <= 1.0 / 0.75 + 1e-9
    assert worst == statistics.fmean([worst])  # sanity: finite
