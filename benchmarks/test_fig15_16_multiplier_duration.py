"""Figures 15-16 (Appendix E.2/E.3): the multiplier m and slot duration t.

Fig 15 paper finding: sweeping m over 1.5/1.75/2.0/2.25/2.5 against
targets limited to 10/250/500/750/unlimited Mbit/s, m = 2.25 is the
smallest multiplier with no outliers below 0.8x ground truth.

Fig 16 paper finding: truncating the same 60-second measurements to
10/20/30-second medians, shorter durations widen the result range; the
30-second median keeps all results within [0.84, 1.01] and is chosen as
the default.
"""

import itertools

import numpy as np

from benchmarks.conftest import run_once
from repro.rng import seed_from
from repro.core.allocation import allocate_evenly
from repro.core.measurement import run_measurement
from repro.core.measurer import Measurer
from repro.core.params import FlashFlowParams
from repro.errors import AllocationError
from repro.netsim.latency import NetworkModel
from repro.tornet.cpu import CpuModel
from repro.tornet.relay import Relay
from repro.units import mbit

GROUND_TRUTH = {
    10: mbit(9.58),
    250: mbit(239),
    500: mbit(494),
    750: mbit(741),
    0: mbit(890),
}
MULTIPLIERS = (1.5, 1.75, 2.0, 2.25, 2.5)
MEASURERS = ("US-NW", "US-E", "IN", "NL")


def _run_sweep(duration=60, seed=15):
    """60-second runs for every (multiplier, capacity, team subset)."""
    model = NetworkModel.paper_internet(seed=seed)
    outcomes = []  # (multiplier, limit, fraction-series outcome, truth)
    for multiplier in MULTIPLIERS:
        params = FlashFlowParams(multiplier=multiplier, slot_seconds=duration)
        for limit, truth in GROUND_TRUTH.items():
            required = multiplier * truth
            for size in (1, 2, 3, 4):
                for subset in itertools.combinations(MEASURERS, size):
                    team = [
                        Measurer(name=n, host=model.host(n)) for n in subset
                    ]
                    if sum(m.capacity for m in team) < required:
                        continue
                    relay = Relay(
                        fingerprint=f"t-{multiplier}-{limit}-{size}",
                        host=model.host("US-SW"),
                        cpu=CpuModel(max_forward_bits=mbit(890)),
                        seed=limit + size,
                    )
                    if limit:
                        relay.set_rate_limit(truth)
                    try:
                        assignments = allocate_evenly(team, required)
                    except AllocationError:
                        continue  # a member cannot supply its even share
                    # Stable across processes (hash() is salted by
                    # PYTHONHASHSEED and made this sweep flaky).
                    outcome = run_measurement(
                        relay, assignments, params,
                        network=model, target_location="US-SW",
                        seed=seed + seed_from(
                            0, f"{multiplier}-{limit}-{'-'.join(subset)}"
                        ) % 10000,
                    )
                    outcomes.append((multiplier, limit, outcome, truth))
    return outcomes


def test_fig15_multiplier_sweep(benchmark, report):
    outcomes = run_once(benchmark, _run_sweep)
    report.header("Figure 15: capacity fraction vs multiplier m")
    min_fraction = {}
    for multiplier in MULTIPLIERS:
        fractions = [
            o.estimate / truth
            for m, limit, o, truth in outcomes
            if m == multiplier
        ]
        min_fraction[multiplier] = min(fractions)
        report.row(
            f"m = {multiplier}: min / median fraction",
            ">= 0.8 only for m >= 2.25",
            f"{min(fractions):.2f} / {np.median(fractions):.2f}",
        )
    # The paper's conclusion: 2.25 avoids sub-0.8 outliers.
    assert min_fraction[2.25] >= 0.80
    assert min_fraction[2.5] >= 0.80
    # Lower multipliers risk under-saturation (monotone minima).
    assert min_fraction[1.5] <= min_fraction[2.25] + 1e-9


def test_fig16_duration_strategies(benchmark, report):
    outcomes = run_once(benchmark, _run_sweep)
    report.header("Figure 16: duration strategies (m = 2.25 runs)")
    at_225 = [
        (o, truth) for m, limit, o, truth in outcomes if m == 2.25
    ]
    ranges = {}
    for seconds in (10, 20, 30, 60):
        fractions = [
            o.estimate_with_duration(seconds) / truth for o, truth in at_225
        ]
        ranges[seconds] = (min(fractions), max(fractions))
        report.row(
            f"{seconds}s median: fraction range",
            "[0.84, 1.01] at 30 s",
            f"[{min(fractions):.2f}, {max(fractions):.2f}]",
        )
    # 30-second medians stay within the paper's accepted window.
    lo30, hi30 = ranges[30]
    assert lo30 >= 0.80
    assert hi30 <= 1.06
    # Short durations are never tighter than the full 60 s run.
    spread = {s: hi - lo for s, (lo, hi) in ranges.items()}
    assert spread[10] >= spread[60] - 0.02
