"""Benchmark-harness plumbing.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured report directly to the terminal (bypassing
pytest's capture) while also persisting it under ``benchmarks/results/``
for EXPERIMENTS.md. Benchmarks run their workload exactly once via
``benchmark.pedantic`` -- the interesting output is the reproduction
report, not the nanoseconds.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Mark every test under benchmarks/ so ``-m "not bench"`` skips them.

    Tier-1 runs (no ``-m`` filter) are unaffected.
    """
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)


class Report:
    """Collects and emits one benchmark's paper-vs-measured report."""

    def __init__(self, name: str, capsys):
        self.name = name
        self._capsys = capsys
        self._lines: list[str] = []

    def line(self, text: str = "") -> None:
        self._lines.append(text)

    def row(self, label: str, paper: str, measured: str) -> None:
        self._lines.append(f"  {label:<44} {paper:>18} {measured:>18}")

    def header(self, title: str) -> None:
        self._lines.append("")
        self._lines.append(f"== {title} ==")
        self._lines.append(
            f"  {'metric':<44} {'paper':>18} {'measured':>18}"
        )

    def emit(self) -> None:
        text = "\n".join(self._lines) + "\n"
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text(text)
        with self._capsys.disabled():
            print(text)


@pytest.fixture
def report(request, capsys):
    rep = Report(request.node.name, capsys)
    yield rep
    rep.emit()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
