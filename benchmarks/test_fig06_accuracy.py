"""Figure 6: FlashFlow measurement accuracy on the Internet (§6.2).

Paper: across targets limited to 10/250/500/750/unlimited Mbit/s on
US-SW, measured by every sufficient team subset of {US-NW, US-E, IN, NL}
(7 repetitions each over 24 hours), 99.8% of measurements fall within
(-eps1, +eps2) = (-20%, +5%) of ground truth and 95% are within 11%.
"""

import itertools

import numpy as np

from benchmarks.conftest import run_once
from repro.rng import seed_from
from repro.core.allocation import allocate_evenly
from repro.core.measurement import run_measurement
from repro.core.measurer import Measurer
from repro.core.params import FlashFlowParams
from repro.netsim.latency import NetworkModel
from repro.tornet.cpu import CpuModel
from repro.tornet.relay import Relay
from repro.units import mbit

#: Ground-truth Tor capacity of US-SW per configured limit (§6.1, E.2).
GROUND_TRUTH = {
    10: mbit(9.58),
    250: mbit(239),
    500: mbit(494),
    750: mbit(741),
    0: mbit(890),  # unlimited
}


def _target_relay(limit_mbit: int, seed: int) -> Relay:
    """A relay on US-SW hardware with an optional rate limit.

    The limit is configured at the *payload* ground-truth level (the
    paper's measured ground truths run ~1-4% under the nominal limits
    because Tor's token accounting includes overheads our byte counts
    exclude).
    """
    relay = Relay(
        fingerprint=f"us-sw-{limit_mbit}-{seed}",
        host=NetworkModel.paper_internet().host("US-SW"),
        cpu=CpuModel(max_forward_bits=mbit(890)),
        seed=seed,
    )
    if limit_mbit:
        relay.set_rate_limit(GROUND_TRUTH[limit_mbit])
    return relay


def _run_experiment(repetitions: int = 7, seed: int = 3):
    params = FlashFlowParams()
    model = NetworkModel.paper_internet(seed=seed)
    measurer_names = ["US-NW", "US-E", "IN", "NL"]
    fractions = []

    for limit in GROUND_TRUTH:
        truth = GROUND_TRUTH[limit]
        required = params.allocation_factor * truth
        for size in range(1, len(measurer_names) + 1):
            for subset in itertools.combinations(measurer_names, size):
                team = [
                    Measurer(name=n, host=model.host(n))
                    for n in subset
                ]
                if sum(m.capacity for m in team) < required:
                    continue  # insufficient subset, as in the paper
                if any(required / len(team) > m.capacity for m in team):
                    continue  # a member cannot supply its even share
                for rep in range(repetitions):
                    relay = _target_relay(limit, seed=rep * 31 + size)
                    assignments = allocate_evenly(team, required)
                    # seed_from, not hash(): str hashes vary with
                    # PYTHONHASHSEED across runs, which made this bench
                    # nondeterministic (and occasionally flaky).
                    outcome = run_measurement(
                        relay, assignments, params,
                        network=model, target_location="US-SW",
                        seed=seed + rep * 1009
                        + seed_from(0, "-".join(subset)) % 997,
                    )
                    fractions.append(outcome.estimate / truth)
    return np.array(fractions)


def test_fig06_measurement_accuracy(benchmark, report):
    fractions = run_once(benchmark, _run_experiment)
    within_11 = float(np.mean(np.abs(fractions - 1.0) <= 0.11))
    within_eps = float(np.mean((fractions >= 0.80) & (fractions <= 1.05)))
    report.header("Figure 6: accuracy CDF over team x capacity x repeats")
    report.row("measurements", "~300", str(len(fractions)))
    report.row("within 11% of ground truth", "95%", f"{within_11 * 100:.1f}%")
    report.row(
        "within (-eps1, +eps2) = (-20%, +5%)", "99.8%",
        f"{within_eps * 100:.1f}%",
    )
    report.row(
        "median fraction of capacity", "~0.95-1.0",
        f"{np.median(fractions):.3f}",
    )
    report.row(
        "range", "0.84 .. 1.05",
        f"{fractions.min():.2f} .. {fractions.max():.2f}",
    )
    assert within_eps >= 0.97
    assert within_11 >= 0.85
    assert 0.88 < np.median(fractions) < 1.02
