"""Table 4 (Appendix F): concurrent Internet measurements.

Paper: US-E + NL (combined 2,552 Mbit/s, the smallest pair able to cover
800 Mbit/s of relay capacity at f) measure, concurrently for 30 seconds:
eight 100 Mbit/s relays (ground truth 94.2), four 200 Mbit/s relays
(191), and two 400 Mbit/s relays (393). All but one estimate fell within
(-eps1, +eps2); the one outlier missed by a relative 0.02.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.bwauth import FlashFlowAuthority
from repro.core.measurer import Measurer
from repro.core.netmeasure import measure_network
from repro.core.params import FlashFlowParams
from repro.netsim.latency import NetworkModel
from repro.tornet.network import TorNetwork
from repro.tornet.relay import Relay
from repro.units import mbit

#: (configured limit, paper ground truth Mbit/s, relay count).
CASES = [(100, 94.2, 8), (200, 191.0, 4), (400, 393.0, 2)]


def _concurrent_measurements():
    model = NetworkModel.paper_internet(seed=26)
    params = FlashFlowParams()
    results = {}
    for limit, truth_mbit, count in CASES:
        network = TorNetwork()
        for index in range(count):
            relay = Relay.with_capacity(
                f"r{limit}-{index}", mbit(truth_mbit), seed=index + limit
            )
            network.add(relay)
        team = [
            Measurer(name=name, host=model.host(name))
            for name in ("US-E", "NL")
        ]
        auth = FlashFlowAuthority(
            "bwauth-t4", team, params=params, network=model, seed=limit
        )
        campaign = measure_network(
            network, auth,
            prior_estimates={fp: mbit(truth_mbit) for fp in network.relays},
            full_simulation=True,
        )
        results[limit] = {
            "estimates": list(campaign.estimates.values()),
            "truth": mbit(truth_mbit),
            "slots": campaign.slots_elapsed,
        }
    return results


def test_table4_concurrent_measurement(benchmark, report):
    results = run_once(benchmark, _concurrent_measurements)
    report.header("Table 4: concurrent measurement accuracy (US-E + NL)")
    all_relative = []
    for limit, truth_mbit, count in CASES:
        data = results[limit]
        relative = [e / data["truth"] for e in data["estimates"]]
        all_relative.extend(relative)
        report.row(
            f"{count} x {limit} Mbit/s relays (truth {truth_mbit})",
            "93-105% / 85-97% / 78-100%",
            f"{min(relative) * 100:.0f}-{max(relative) * 100:.0f}%",
        )
        assert len(data["estimates"]) == count
    within = np.mean([(0.78 <= r <= 1.05) for r in all_relative])
    report.row("estimates within bounds", "13 of 14",
               f"{within * 100:.0f}%")
    # The paper tolerates one marginal miss; we require the same or better.
    assert within >= 13 / 14 - 1e-9
    # Concurrency actually happened: the 8-relay case cannot need 8 slots.
    assert results[100]["slots"] <= 4
