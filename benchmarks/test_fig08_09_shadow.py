"""Figures 8 and 9: whole-network Shadow experiments (§7).

Paper values (5%-scale network, 328 relays):

- Fig 8a: FlashFlow relay capacity error median 16% (IQR ~16%); network
  capacity error 14%.
- Fig 8b: network weight error 4% (FlashFlow) vs 29% (TorFlow); >80% of
  relays under-weighted by TorFlow.
- Fig 9a: median 50 KiB / 1 MiB / 5 MiB transfer times drop 15/29/37%;
  standard deviations drop 55/61/41%.
- Fig 9b: median transfer timeout rate drops 100% (TorFlow: 5/10/23% at
  100/115/130% load).
- Fig 9c: FlashFlow carries more traffic and scales better with load
  (+15/+29% vs +12/+18% median throughput).

The bench runs a reduced-scale configuration (160 relays, shorter runs)
so the whole suite stays in CI budgets; the experiment module accepts the
full 328-relay configuration unchanged.
"""

import statistics

import pytest

from benchmarks.conftest import run_once
from repro.shadow.config import ShadowConfig
from repro.shadow.experiment import compare_systems

SIZES = {"50KiB": 50 * 1024, "1MiB": 1024 * 1024, "5MiB": 5 * 1024 * 1024}
LOADS = (1.0, 1.15, 1.30)


@pytest.fixture(scope="module")
def experiment():
    config = ShadowConfig(
        n_relays=160,
        n_markov_clients=200,
        n_benchmark_clients=24,
        sim_seconds=480,
        warmup_seconds=120,
        seed=11,
    )
    return compare_systems(config, loads=LOADS, seed=11)


def test_fig08_measurement_error(benchmark, report, experiment):
    result = run_once(benchmark, lambda: experiment)
    errors = sorted(result.flashflow_capacity_errors().values())
    median_err = statistics.median(errors)
    nce = result.flashflow_network_capacity_error()
    nwe_ff = result.network_weight_error("flashflow")
    nwe_tf = result.network_weight_error("torflow")
    tf_under = statistics.fmean(
        1 if v < 1 else 0 for v in result.weight_errors("torflow").values()
    )

    report.header("Figure 8: measurement error in Shadow")
    report.row("FF relay capacity error (median)", "16%", f"{median_err * 100:.1f}%")
    report.row("FF network capacity error", "14%", f"{nce * 100:.1f}%")
    report.row("network weight error: FlashFlow", "4%", f"{nwe_ff * 100:.1f}%")
    report.row("network weight error: TorFlow", "29%", f"{nwe_tf * 100:.1f}%")
    report.row("TF relays under-weighted", ">80%", f"{tf_under * 100:.0f}%")

    assert 0.05 < median_err < 0.30
    assert 0.05 < nce < 0.30
    assert nwe_ff < 0.10
    assert nwe_tf > 0.15
    assert nwe_ff < nwe_tf / 2


def test_fig09a_transfer_times(benchmark, report, experiment):
    result = run_once(benchmark, lambda: experiment)
    report.header("Figure 9a: benchmark transfer times at 100% load")
    paper_median_drop = {"50KiB": "15%", "1MiB": "29%", "5MiB": "37%"}
    paper_std_drop = {"50KiB": "55%", "1MiB": "61%", "5MiB": "41%"}
    for label, size in SIZES.items():
        tf = result.run_for("torflow", 1.0).ttlb_stats(size)
        ff = result.run_for("flashflow", 1.0).ttlb_stats(size)
        median_drop = 1 - ff["median"] / tf["median"]
        std_drop = 1 - ff["std"] / tf["std"] if tf["std"] > 0 else 0.0
        report.row(
            f"{label} median TTLB drop (TF->FF)",
            paper_median_drop[label], f"{median_drop * 100:.0f}%",
        )
        report.row(
            f"{label} TTLB std-dev drop (TF->FF)",
            paper_std_drop[label], f"{std_drop * 100:.0f}%",
        )
        assert ff["median"] < tf["median"], label
        assert ff["std"] < tf["std"], label
    tf_ttfb = result.run_for("torflow", 1.0).ttfb_stats()["median"]
    ff_ttfb = result.run_for("flashflow", 1.0).ttfb_stats()["median"]
    report.row("TTFB median (TF vs FF)", "FF lower",
               f"{tf_ttfb:.2f}s vs {ff_ttfb:.2f}s")
    assert ff_ttfb <= tf_ttfb * 1.02


def test_fig09b_timeout_rates(benchmark, report, experiment):
    result = run_once(benchmark, lambda: experiment)
    report.header("Figure 9b: benchmark transfer error (timeout) rates")
    paper_tf = {1.0: "5%", 1.15: "10%", 1.30: "23%"}
    tf_total_failures = 0
    for load in LOADS:
        tf = result.run_for("torflow", load)
        ff = result.run_for("flashflow", load)
        tf_total_failures += tf.metrics.transfers_failed()
        report.row(
            f"TF median error rate @ {int(load * 100)}%",
            paper_tf[load], f"{tf.median_error_rate() * 100:.1f}%",
        )
        report.row(
            f"FF median error rate @ {int(load * 100)}%",
            "0%", f"{ff.median_error_rate() * 100:.1f}%",
        )
        assert ff.median_error_rate() == 0.0
    report.row("median timeout-rate drop", "100%", "100%")
    assert tf_total_failures > 0


def test_fig09c_throughput(benchmark, report, experiment):
    result = run_once(benchmark, lambda: experiment)
    report.header("Figure 9c: total relay throughput")
    thr = {
        (system, load): result.run_for(system, load).metrics.median_throughput()
        for system in ("torflow", "flashflow")
        for load in LOADS
    }
    for load in LOADS:
        report.row(
            f"median throughput @ {int(load * 100)}% (TF vs FF)",
            "FF higher",
            f"{thr[('torflow', load)] / 1e9:.2f} vs "
            f"{thr[('flashflow', load)] / 1e9:.2f} Gbit/s",
        )
        assert thr[("flashflow", load)] > thr[("torflow", load)]
    ff_scale = thr[("flashflow", 1.30)] / thr[("flashflow", 1.0)] - 1
    tf_scale = thr[("torflow", 1.30)] / thr[("torflow", 1.0)] - 1
    report.row(
        "throughput growth at +30% load", "+29% FF vs +18% TF",
        f"+{ff_scale * 100:.0f}% FF vs +{tf_scale * 100:.0f}% TF",
    )
    assert ff_scale > tf_scale * 0.9
