#!/usr/bin/env python
"""Measure an entire Tor network in one period (paper §4.3 / §7).

Synthesizes a July-2019-shaped network, derives a secret randomized
schedule from the DirAuths' shared-randomness protocol, runs a full
measurement campaign through the scenario API
(:class:`repro.api.Scenario` -> :class:`repro.api.Campaign`, streaming
per-round progress), and writes the resulting bandwidth file.

Run:  python examples/full_network_measurement.py
"""

import statistics
import sys
import tempfile

from repro.api import (
    Campaign,
    ExecutionConfig,
    NetworkSpec,
    ProgressObserver,
    Scenario,
)
from repro.core.bwfile import BandwidthFile
from repro.core.params import FlashFlowParams
from repro.core.schedule import PeriodSchedule, greedy_pack_slots
from repro.tornet.authority import SharedRandomness
from repro.units import gbit, to_gbit, to_mbit


def main() -> None:
    params = FlashFlowParams()
    # A smaller network keeps the example quick; override n_relays=6419
    # for the paper-scale run (the efficiency bench does).
    network = NetworkSpec(n_relays=400).build(default_seed=7)
    scenario = Scenario(name="full-network", network=network, seed=7)
    campaign = Campaign(scenario, ExecutionConfig())
    print(f"Synthetic network: {len(network)} relays, "
          f"{to_gbit(network.total_capacity()):.1f} Gbit/s total, "
          f"max relay {to_mbit(network.max_capacity()):.0f} Mbit/s")

    # --- The secret schedule (paper §4.3) --------------------------------
    seed = SharedRandomness.run_round(["dirauth1", "dirauth2", "dirauth3"])
    schedule = PeriodSchedule.build(
        params, gbit(3), network.capacities(), seed=seed
    )
    print(f"Randomized schedule: {len(schedule.assignments)} relays over "
          f"{params.slots_per_period} slots "
          f"({schedule.slots_in_use()} slots used)")

    # The greedy packing shows the *fastest* possible full sweep (§7).
    slots = greedy_pack_slots(network.capacities(), params, gbit(3))
    print(f"Greedy packing: network measurable in {len(slots)} slots = "
          f"{len(slots) * params.slot_seconds / 3600:.2f} hours")

    # --- Run the campaign -------------------------------------------------
    report = campaign.run(observers=[ProgressObserver(stream=sys.stdout)])
    print(f"Campaign: {report.measurements_run} measurements in "
          f"{report.slots_elapsed} slots "
          f"({report.hours_elapsed:.2f} h); "
          f"{len(report.failures)} failures; "
          f"{report.cells_checked} echo cells verified")

    errors = sorted(report.error_vs_truth().values())
    print(f"Relay capacity error: median "
          f"{statistics.median(errors) * 100:.1f}%, "
          f"p95 {errors[int(0.95 * len(errors))] * 100:.1f}%")

    # --- Publish the bandwidth file ---------------------------------------
    bwfile = BandwidthFile.from_estimates(report.estimates, timestamp=0)
    with tempfile.NamedTemporaryFile(
        "w", suffix=".bwfile", delete=False
    ) as handle:
        handle.write(bwfile.serialize())
        print(f"Bandwidth file with {len(bwfile)} entries written to "
              f"{handle.name}")

    reparsed = BandwidthFile.parse(bwfile.serialize())
    assert len(reparsed) == len(bwfile)
    print("Round-trip parse OK.")


if __name__ == "__main__":
    main()
