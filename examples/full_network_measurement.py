#!/usr/bin/env python
"""Measure an entire Tor network in one period (paper §4.3 / §7).

Synthesizes a July-2019-shaped network, derives a secret randomized
schedule from the DirAuths' shared-randomness protocol, runs a full
measurement campaign with a 3 x 1 Gbit/s team, and writes the resulting
bandwidth file.

Run:  python examples/full_network_measurement.py
"""

import statistics
import tempfile

from repro import quick_team
from repro.core.bwfile import BandwidthFile
from repro.core.netmeasure import measure_network
from repro.core.params import FlashFlowParams
from repro.core.schedule import PeriodSchedule, greedy_pack_slots
from repro.tornet.authority import SharedRandomness
from repro.tornet.network import synthesize_network
from repro.units import gbit, to_gbit, to_mbit


def main() -> None:
    params = FlashFlowParams()
    # A smaller network keeps the example quick; pass n_relays=6419 for
    # the paper-scale run (the efficiency bench does).
    network = synthesize_network(n_relays=400, seed=7)
    print(f"Synthetic network: {len(network)} relays, "
          f"{to_gbit(network.total_capacity()):.1f} Gbit/s total, "
          f"max relay {to_mbit(network.max_capacity()):.0f} Mbit/s")

    # --- The secret schedule (paper §4.3) --------------------------------
    seed = SharedRandomness.run_round(["dirauth1", "dirauth2", "dirauth3"])
    schedule = PeriodSchedule.build(
        params, gbit(3), network.capacities(), seed=seed
    )
    print(f"Randomized schedule: {len(schedule.assignments)} relays over "
          f"{params.slots_per_period} slots "
          f"({schedule.slots_in_use()} slots used)")

    # The greedy packing shows the *fastest* possible full sweep (§7).
    slots = greedy_pack_slots(network.capacities(), params, gbit(3))
    print(f"Greedy packing: network measurable in {len(slots)} slots = "
          f"{len(slots) * params.slot_seconds / 3600:.2f} hours")

    # --- Run the campaign -------------------------------------------------
    auth = quick_team(seed=7)
    campaign = measure_network(network, auth, full_simulation=True)
    print(f"Campaign: {campaign.measurements_run} measurements in "
          f"{campaign.slots_elapsed} slots "
          f"({campaign.hours_elapsed:.2f} h); "
          f"{len(campaign.failures)} failures")

    errors = [
        1 - campaign.estimates[fp] / network[fp].true_capacity
        for fp in campaign.estimates
    ]
    print(f"Relay capacity error: median "
          f"{statistics.median(errors) * 100:.1f}%, "
          f"p95 {sorted(errors)[int(0.95 * len(errors))] * 100:.1f}%")

    # --- Publish the bandwidth file ---------------------------------------
    bwfile = BandwidthFile.from_estimates(campaign.estimates, timestamp=0)
    with tempfile.NamedTemporaryFile(
        "w", suffix=".bwfile", delete=False
    ) as handle:
        handle.write(bwfile.serialize())
        print(f"Bandwidth file with {len(bwfile)} entries written to "
              f"{handle.name}")

    reparsed = BandwidthFile.parse(bwfile.serialize())
    assert len(reparsed) == len(bwfile)
    print("Round-trip parse OK.")


if __name__ == "__main__":
    main()
