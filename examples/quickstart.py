#!/usr/bin/env python
"""Quickstart: measure one Tor relay with FlashFlow.

Builds the paper's reference team (3 x 1 Gbit/s measurers, paper §7),
measures a 250 Mbit/s relay, and walks through the retry-with-doubling
logic on a relay whose prior estimate is stale.

Run:  python examples/quickstart.py
"""

from repro import FlashFlowParams, quick_team
from repro.tornet import Relay
from repro.units import mbit, to_mbit


def main() -> None:
    params = FlashFlowParams()
    print("FlashFlow parameters (paper §6.1):")
    print(f"  sockets s = {params.n_sockets}, multiplier m = {params.multiplier}")
    print(f"  slot t = {params.slot_seconds}s, eps = ({params.epsilon1}, "
          f"{params.epsilon2}), ratio r = {params.ratio}")
    print(f"  allocation factor f = {params.allocation_factor:.3f}")
    print(f"  malicious inflation bound 1/(1-r) = {params.inflation_bound:.2f}x")
    print()

    auth = quick_team(seed=42)
    print(f"Team: {len(auth.team)} measurers, "
          f"{auth.team_capacity() / 1e9:.1f} Gbit/s total")
    print()

    # --- An "old" relay with an accurate prior estimate -----------------
    relay = Relay.with_capacity("demo-relay", mbit(250), seed=1)
    estimate = auth.measure_relay(relay, initial_estimate=mbit(250))
    print(f"Old relay (true capacity 250 Mbit/s, good prior):")
    print(f"  estimate {to_mbit(estimate.capacity):.1f} Mbit/s in "
          f"{estimate.rounds} measurement round(s); "
          f"conclusive={estimate.conclusive}")
    lo, hi = params.accuracy_interval(mbit(250))
    inside = lo <= estimate.capacity <= hi
    print(f"  within ((1-eps1)x, (1+eps2)x) = "
          f"({to_mbit(lo):.0f}, {to_mbit(hi):.0f}) Mbit/s: {inside}")
    print()

    # --- A relay whose prior badly underestimates it ---------------------
    stale = Relay.with_capacity("stale-relay", mbit(600), seed=2)
    estimate = auth.measure_relay(stale, initial_estimate=mbit(40))
    print("Old relay (true capacity 600 Mbit/s, stale 40 Mbit/s prior):")
    print(f"  estimate {to_mbit(estimate.capacity):.1f} Mbit/s after "
          f"{estimate.rounds} rounds (z0 doubles until the allocation "
          f"covers the relay)")
    print()

    # --- A brand-new relay ----------------------------------------------
    new = Relay.with_capacity("new-relay", mbit(30), seed=3)
    estimate = auth.measure_relay(new)
    print("New relay (no prior; seeded at the 75th-percentile "
          f"{to_mbit(params.new_relay_seed):.0f} Mbit/s):")
    print(f"  estimate {to_mbit(estimate.capacity):.1f} Mbit/s in "
          f"{estimate.rounds} round(s)")


if __name__ == "__main__":
    main()
