#!/usr/bin/env python
"""Quickstart: describe and run a FlashFlow workload with ``repro.api``.

Every workload is a :class:`repro.api.Scenario` (what to measure) plus
an :class:`repro.api.ExecutionConfig` (how to run it), executed by a
:class:`repro.api.Campaign` that streams per-round progress to
observers. This example measures three relays with known capacities --
one with a good prior, one with a stale prior that forces the
retry-with-doubling loop, one brand new -- and prints the estimates
against ground truth.

Run:  python examples/quickstart.py
"""

import sys

from repro.api import Campaign, ExecutionConfig, ProgressObserver, Scenario
from repro.core.params import FlashFlowParams
from repro.tornet.network import TorNetwork
from repro.tornet.relay import Relay
from repro.units import mbit, to_mbit


def main() -> None:
    params = FlashFlowParams()
    print("FlashFlow parameters (paper §6.1):")
    print(f"  sockets s = {params.n_sockets}, multiplier m = {params.multiplier}")
    print(f"  slot t = {params.slot_seconds}s, eps = ({params.epsilon1}, "
          f"{params.epsilon2}), ratio r = {params.ratio}")
    print(f"  allocation factor f = {params.allocation_factor:.3f}")
    print(f"  malicious inflation bound 1/(1-r) = {params.inflation_bound:.2f}x")
    print()

    # --- Describe the workload -------------------------------------------
    # An explicit three-relay network: good prior, stale prior, no prior.
    network = TorNetwork()
    network.add(Relay.with_capacity("demo-relay", mbit(250), seed=1))
    network.add(Relay.with_capacity("stale-relay", mbit(600), seed=2))
    network.add(Relay.with_capacity("new-relay", mbit(30), seed=3))
    scenario = Scenario(
        name="quickstart",
        network=network,
        priors={
            "demo-relay": mbit(250),   # accurate prior -> one slot
            "stale-relay": mbit(40),   # stale prior -> z0 doubles until covered
            # new-relay absent -> seeded at the 75th-percentile new_relay_seed
        },
        seed=42,
    )
    execution = ExecutionConfig(backend="vector")  # bit-identical on any backend

    # --- Run it, streaming per-round progress ----------------------------
    report = Campaign(scenario, execution).run(
        observers=[ProgressObserver(stream=sys.stdout)]
    )
    print()

    truths = {"demo-relay": mbit(250), "stale-relay": mbit(600),
              "new-relay": mbit(30)}
    for fp, truth in truths.items():
        estimate = report.estimates[fp]
        attempts = [m for m in report.timeline() if m.fingerprint == fp]
        lo, hi = params.accuracy_interval(truth)
        print(f"{fp}: true {to_mbit(truth):.0f} Mbit/s -> estimate "
              f"{to_mbit(estimate):.1f} Mbit/s in {len(attempts)} slot(s); "
              f"within ((1-eps1)x, (1+eps2)x) = ({to_mbit(lo):.0f}, "
              f"{to_mbit(hi):.0f}): {lo <= estimate <= hi}")

    print()
    print(f"Campaign: {report.measurements_run} measurements, "
          f"{report.slots_elapsed} slots, "
          f"{report.cells_checked} echo cells verified, "
          f"median |error| vs truth "
          f"{report.median_error_vs_truth() * 100:.1f}%")
    print("Canned paper scenarios: "
          "python -m repro.api --list  (repro.api.run_scenario runs them)")


if __name__ == "__main__":
    main()
