#!/usr/bin/env python
"""The §3 Tor-metrics analysis on a synthetic archive.

Generates an archive with the under-utilisation mechanism the paper
identifies, runs Equations 1-7 over it, and replays the §3.4 speed-test
flood (Figure 5). This pipeline analyzes archived consensus data rather
than running measurements, so it sits beside the scenario API
(``repro.api``) the measurement examples use; the campaign workloads it
motivates (e.g. ``fig06-accuracy``, ``whole-network-efficiency``) are
registered there and runnable via ``python -m repro.api --list``.

Run:  python examples/metrics_analysis.py
"""

import numpy as np

from repro.metrics.analysis import (
    PERIODS_HOURS,
    network_capacity_error,
    network_weight_error,
    relay_capacity_error_means,
    relay_weight_error_means,
)
from repro.metrics.datagen import ArchiveGenParams, generate_archive
from repro.metrics.speedtest import SpeedTestParams, run_speed_test_experiment


def main() -> None:
    archive = generate_archive(
        ArchiveGenParams(n_relays=200, n_days=200, seed=9)
    )
    print(f"Synthetic archive: {archive.n_relays} relays x "
          f"{archive.n_hours} hours")

    print("\n-- Equations 1-6 across period lengths (paper Figs 1-4) --")
    warm = archive.n_hours // 2
    header = f"{'period':>8} {'RCE med':>9} {'NCE med':>9} {'NWE med':>9}"
    print(header)
    for name in ("day", "week", "month"):
        hours = PERIODS_HOURS[name]
        rce = relay_capacity_error_means(
            archive, hours, warmup_hours=min(hours, warm)
        )
        nce = network_capacity_error(archive, hours)[min(hours, warm):]
        nwe = network_weight_error(archive, hours)[min(hours, warm):]
        print(f"{name:>8} {np.nanmedian(rce) * 100:>8.1f}% "
              f"{np.nanmedian(nce) * 100:>8.1f}% "
              f"{np.nanmedian(nwe) * 100:>8.1f}%")
    print("(error grows with the period -- §3's core finding)")

    rwe = relay_weight_error_means(archive, 720, warmup_hours=720)
    print(f"\nRelays under-weighted vs their capacity share: "
          f"{np.nanmean(rwe < 1) * 100:.0f}%  (paper: >85%)")

    print("\n-- §3.4 speed-test replay (Figure 5) --")
    result = run_speed_test_experiment(
        SpeedTestParams(base=ArchiveGenParams(n_relays=200, n_days=40, seed=9))
    )
    print(f"  51-hour flood discovers +"
          f"{result.capacity_increase_fraction * 100:.0f}% capacity "
          f"(paper: ~+50%)")
    print(f"  weight error {result.weight_error_before * 100:.1f}% -> "
          f"{result.weight_error_peak * 100:.1f}% during the test "
          f"(paper: +5-10%)")
    print(f"  estimates decay after the 5-day memory: {result.recovered}")


if __name__ == "__main__":
    main()
