#!/usr/bin/env python
"""TorFlow vs FlashFlow load balancing in a scaled private network (§7).

Runs the whole Figure 8/9 pipeline at a small scale through the API
front door (:func:`repro.api.compare_load_balancing`; the FlashFlow
measurement phase inside it is a scenario-API campaign on the
vectorized kernel): generate a scaled network, produce weights with
both systems, compare error metrics, then race benchmark clients under
each weight set.

Run:  python examples/load_balancing_comparison.py
(takes ~30-60 seconds)
"""

import statistics

from repro.api import ExecutionConfig, compare_load_balancing
from repro.shadow.config import ShadowConfig

SIZES = {"50 KiB": 50 * 1024, "1 MiB": 1024 * 1024, "5 MiB": 5 * 1024 * 1024}


def main() -> None:
    config = ShadowConfig(
        n_relays=100,
        n_markov_clients=120,
        n_benchmark_clients=16,
        sim_seconds=300,
        warmup_seconds=80,
        seed=5,
    )
    print(f"Scaled network: {config.n_relays} relays, "
          f"{config.n_markov_clients} background clients, "
          f"{config.n_benchmark_clients} benchmark clients")
    result = compare_load_balancing(
        config, loads=(1.0, 1.3), seed=5,
        execution=ExecutionConfig(backend="vector", shadow_backend="vector"),
    )

    print("\n-- Figure 8 analogue: weight accuracy --")
    print(f"  network weight error: "
          f"FlashFlow {result.network_weight_error('flashflow') * 100:.1f}%  "
          f"vs TorFlow {result.network_weight_error('torflow') * 100:.1f}%"
          f"   (paper: 4% vs 29%)")
    ff_cap_err = statistics.median(
        result.flashflow_capacity_errors().values()
    )
    print(f"  FlashFlow relay capacity error (median): "
          f"{ff_cap_err * 100:.1f}%   (paper: 16%)")

    print("\n-- Figure 9 analogue: client performance at 100% load --")
    for label, size in SIZES.items():
        tf = result.run_for("torflow", 1.0).ttlb_stats(size)
        ff = result.run_for("flashflow", 1.0).ttlb_stats(size)
        print(f"  {label:>7}: median TTLB {tf['median']:.1f}s (TF) -> "
              f"{ff['median']:.1f}s (FF), "
              f"std {tf['std']:.1f} -> {ff['std']:.1f}")

    for load in (1.0, 1.3):
        tf = result.run_for("torflow", load)
        ff = result.run_for("flashflow", load)
        print(f"  load {int(load * 100)}%: timeouts/client median "
              f"{tf.median_error_rate() * 100:.1f}% (TF) vs "
              f"{ff.median_error_rate() * 100:.1f}% (FF); throughput "
              f"{tf.metrics.median_throughput() / 1e9:.2f} vs "
              f"{ff.metrics.median_throughput() / 1e9:.2f} Gbit/s")

    print("\nFlashFlow balances the same network better at every load -- "
          "the paper's central §7 result.")


if __name__ == "__main__":
    main()
