#!/usr/bin/env python
"""Adversarial relays vs FlashFlow (paper §5).

Runs each §5 attack against the real measurement pipeline -- via the
scenario API's adversary mixes (:class:`repro.api.AdversaryMix`, the
``inflation-attack`` registered scenario) and the single-relay
measurement path -- and shows the protocol's bound holding:

1. ratio cheating  -- bounded at 1/(1-r) = 1.33x;
2. echo forging    -- caught by random content checks;
3. selective capacity -- defeated by the secret schedule + median;
4. TorFlow comparison -- the same adversary gets 100x+ there.

Run:  python examples/adversarial_relay.py
"""

from repro import quick_team
from repro.api import run_scenario
from repro.attacks.analysis import (
    forge_evasion_probability,
    selective_capacity_failure_probability,
)
from repro.attacks.relays import (
    ForgingRelayBehavior,
    SelectiveCapacityRelayBehavior,
)
from repro.core.aggregation import aggregate_bwauth_votes
from repro.core.params import FlashFlowParams
from repro.tornet.relay import Relay
from repro.units import CELL_LEN, mbit, to_mbit


def main() -> None:
    params = FlashFlowParams()
    capacity = mbit(200)

    # --- Attack 1: lie about background traffic --------------------------
    print("Attack 1: report background traffic that was never forwarded")
    print("  (the registered 'inflation-attack' scenario: a quarter of the")
    print("  network runs the ratio-cheating behaviour)")
    report = run_scenario("inflation-attack", n_relays=16, seed=9,
                          adversary_fraction=0.25)
    for fp, inflation in sorted(report.adversary_inflation().items()):
        truth = report.ground_truth[fp]
        print(f"  {fp}: true {to_mbit(truth):7.1f} Mbit/s -> estimate "
              f"{to_mbit(report.estimates[fp]):7.1f} Mbit/s "
              f"({inflation:.2f}x)")
    worst = max(report.adversary_inflation().values())
    print(f"  worst inflation {worst:.2f}x; protocol bound "
          f"{params.inflation_bound:.2f}x -- the clamp y <= x*r/(1-r) "
          "holds per second, whatever the lie\n")

    # --- Attack 2: forge echo cells (skip decryption) ---------------------
    print("Attack 2: echo cells without decrypting (saves ~35% CPU)")
    auth = quick_team(seed=1)
    forger = Relay.with_capacity(
        "forger", mbit(400), behavior=ForgingRelayBehavior(seed=2), seed=2
    )
    estimate = auth.measure_relay(forger, initial_estimate=mbit(400))
    cells = int(mbit(400) / 8 / CELL_LEN * params.slot_seconds)
    evasion = forge_evasion_probability(params.p_check, cells)
    print(f"  measurement failed: {estimate.failed} "
          f"({estimate.failure_reason})")
    print(f"  theory: forging ~{cells:,} cells/slot evades with "
          f"probability {evasion:.2e}\n")

    # --- Attack 3: be fast only when (you guess) you are measured ---------
    print("Attack 3: provide full capacity during a gamble of q=25% of slots")
    behavior = SelectiveCapacityRelayBehavior(
        active_fraction=0.25, idle_fraction=0.1, seed=3
    )
    selective = Relay.with_capacity(
        "selective", capacity, behavior=behavior, seed=3
    )
    votes = {}
    for i in range(9):
        bwauth = quick_team(seed=100 + i)
        behavior.roll_slot()  # the schedule is secret: gamble blindly
        result = bwauth.measure_relay(
            selective, initial_estimate=capacity, seed_offset=i
        )
        votes[f"bwauth{i}"] = {"selective": result.capacity}
    median = aggregate_bwauth_votes(votes)["selective"]
    p_fail = selective_capacity_failure_probability(9, 0.25)
    print(f"  9 BWAuths measured at secret times; median estimate "
          f"{to_mbit(median):.0f} Mbit/s "
          f"({median / capacity * 100:.0f}% of capacity)")
    print(f"  theory: strategy fails with probability {p_fail:.3f}\n")

    # --- The same adversary against TorFlow -------------------------------
    print("For contrast, the TorFlow self-report attack:")
    from repro.attacks.analysis import torflow_self_report_attack

    advantage = torflow_self_report_attack(capacity, capacity * 177)
    print(f"  claiming 177x capacity in the descriptor yields a {advantage:.0f}x "
          "weight advantage -- nothing validates the claim")
    print("  (demonstrated live at 89x [36] and 177x [25]; Table 2)")


if __name__ == "__main__":
    main()
