"""Oracle suite for the shared-memory transport (repro.kernel.shm).

The shm codec must be invisible: pack -> execute -> unpack produces
:class:`KernelResult` objects bit-identical to running
:func:`execute_batch` on the original compiled measurements, and the
process backend produces bit-identical outcomes with the transport on
or off.
"""

import numpy as np
import pytest

from repro import quick_team
from repro.core.allocation import allocate_capacity
from repro.core.engine import MeasurementEngine, MeasurementSpec
from repro.kernel import compile_measurement
from repro.kernel.shm import (
    SHM_ENV,
    execute_batch_shm,
    pack_chunk,
    shm_enabled,
    unpack_chunk,
)
from repro.kernel.supply import execute_batch
from repro.tornet.network import synthesize_network
from repro.units import mbit


def _compiled_chunk(n=6, seed=201):
    """A compiled chunk exercising buckets and an admission refusal."""
    net = synthesize_network(n_relays=n, seed=seed)
    authority = quick_team(seed=seed + 1)
    engine = MeasurementEngine()
    fps = list(net.relays)
    net[fps[0]].set_rate_limit(mbit(40))
    # Pre-admit one relay so its spec compiles to an early refusal.
    net[fps[1]]._measured_in.add(("auth", 0))
    chunk = []
    for i, fp in enumerate(fps):
        spec = MeasurementSpec(
            target=net[fp],
            assignments=allocate_capacity(authority.team, mbit(400)),
            params=authority.params,
            seed=300 + i,
            bwauth_id="auth",
            period_index=0,
            enforce_admission=True,
        )
        cm = compile_measurement(engine, spec, index=i)
        assert cm is not None
        chunk.append(cm)
    assert any(cm.outcome is not None for cm in chunk)
    return chunk


def _assert_results_identical(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.index == b.index
        assert a.estimate == b.estimate
        assert a.cells_checked == b.cells_checked
        assert a.duration == b.duration
        assert a.total_allocated == b.total_allocated
        assert a.final_bucket_tokens == b.final_bucket_tokens
        for name in (
            "measurement",
            "background_reported",
            "background_clamped",
            "totals",
            "capacity_bits",
            "total_bytes",
        ):
            assert np.array_equal(getattr(a, name), getattr(b, name))
        oa, ob = a.to_outcome(), b.to_outcome()
        assert oa.estimate == ob.estimate
        assert oa.failed == ob.failed
        assert oa.failure_reason == ob.failure_reason


@pytest.mark.skipif(not shm_enabled(), reason="shared memory unavailable")
def test_pack_execute_unpack_bit_identical_to_execute_batch():
    chunk = _compiled_chunk()
    reference = execute_batch(_compiled_chunk())

    payload, handle = pack_chunk(chunk)
    assert payload is not None and handle is not None
    light = execute_batch_shm(payload)
    results = unpack_chunk(light, handle)
    _assert_results_identical(results, reference)


@pytest.mark.skipif(not shm_enabled(), reason="shared memory unavailable")
def test_unpacked_arrays_survive_block_disposal():
    chunk = _compiled_chunk(n=3, seed=210)
    payload, handle = pack_chunk(chunk)
    results = unpack_chunk(execute_batch_shm(payload), handle)
    # The block is unlinked inside unpack_chunk; results must own copies.
    for result in results:
        if result.total_bytes.size:
            assert result.total_bytes.sum() >= 0.0


def test_pack_empty_chunk_falls_back():
    assert pack_chunk([]) == (None, None)


def _campaign_estimates(monkeypatch, shm_value):
    from repro.api import Campaign, ExecutionConfig, Scenario
    from repro.api.scenario import NetworkSpec, TeamSpec

    if shm_value is None:
        monkeypatch.delenv(SHM_ENV, raising=False)
    else:
        monkeypatch.setenv(SHM_ENV, shm_value)
    report = Campaign(
        Scenario(network=NetworkSpec(n_relays=12, seed=220), team=TeamSpec(seed=221)),
        ExecutionConfig(backend="process", max_workers=2),
    ).run()
    return dict(report.result.estimates), dict(report.result.failures)


def test_process_backend_bit_identical_with_and_without_shm(monkeypatch):
    on = _campaign_estimates(monkeypatch, None)
    off = _campaign_estimates(monkeypatch, "0")
    assert on == off
