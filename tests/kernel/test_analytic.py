"""Exact-equality oracles for the analytic estimation kernel.

The contract: lowering a round of ``MeasurementEngine.analytic_estimate``
calls into the array walk (:mod:`repro.kernel.analytic`) changes *no
bits* -- estimates, acceptance thresholds, and accept decisions are
``==`` to the stateful scalar loop for every seed, prior shape, and
background form, and whole analytic campaigns are ``==`` across
backends.
"""

import pytest

from repro import quick_team
from repro.api import Campaign, ExecutionConfig, Scenario
from repro.core.allocation import allocate_capacity, total_allocated
from repro.core.engine import AnalyticInputs, MeasurementEngine
from repro.core.params import FlashFlowParams
from repro.kernel.analytic import (
    compile_analytic_round,
    execute_analytic_round,
    run_analytic_round,
)
from repro.kernel.backends import backend_names
from repro.rng import fork
from repro.tornet.network import synthesize_network
from repro.tornet.relay import Relay
from repro.units import mbit


class _Job:
    """The duck-typed shape run_analytic_round consumes."""

    __slots__ = ("relay", "assignments", "wobble", "capped")

    def __init__(self, relay, assignments, wobble, capped):
        self.relay = relay
        self.assignments = assignments
        self.wobble = wobble
        self.capped = capped


def _round_jobs(n=40, seed=3):
    """A mixed round: plain, rate-limited, and capped jobs."""
    params = FlashFlowParams()
    auth = quick_team(seed=seed)
    rng = fork(seed, "analytic-oracle")
    jobs = []
    for i in range(n):
        relay = Relay.with_capacity(
            f"r{i}", mbit(40 + 37 * (i % 13)), seed=seed * 1000 + i
        )
        if i % 5 == 0:
            relay.set_rate_limit(mbit(30 + i))
        jobs.append(
            _Job(
                relay=relay,
                assignments=allocate_capacity(auth.team, mbit(90 + 11 * i)),
                wobble=max(0.8, rng.gauss(1.0, 0.02)),
                capped=(i % 7 == 0),
            )
        )
    return params, jobs


# ---------------------------------------------------------------------------
# Round-level oracle: the array walk vs the scalar loop, bit for bit
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [1, 2, 9])
def test_round_walk_matches_scalar_loop_exactly(seed):
    params, jobs = _round_jobs(seed=seed)
    engine = MeasurementEngine()
    result = run_analytic_round(engine, jobs, params, backend="analytic")
    for i, job in enumerate(jobs):
        z = engine.analytic_estimate(job.relay, job.assignments, params, job.wobble)
        threshold = params.acceptance_threshold(total_allocated(job.assignments))
        assert result.estimates[i] == z
        assert result.thresholds[i] == threshold
        assert result.accepted[i] == (z < threshold or job.capped)


def test_serial_backend_keeps_the_stateful_loop():
    params, jobs = _round_jobs()
    engine = MeasurementEngine()
    serial = run_analytic_round(engine, jobs, params, backend="serial")
    # The debug path leaves fold decisions to the caller...
    assert serial.thresholds is None and serial.accepted is None
    # ...and its estimates are the vector walk's, bit for bit.
    vector = run_analytic_round(engine, jobs, params, backend="vector")
    assert serial.estimates == vector.estimates


def test_compiled_capacity_matches_the_relay_property():
    """The compile pass inlines Relay.true_capacity's min chain."""
    params, jobs = _round_jobs()
    compiled = compile_analytic_round(jobs, params)
    assert compiled.capacity.tolist() == [j.relay.true_capacity for j in jobs]
    assert compiled.allocated.tolist() == [
        total_allocated(j.assignments) for j in jobs
    ]


def test_engine_split_is_the_closed_form():
    """analytic_inputs/analytic_finish == analytic_estimate == the formula."""
    params = FlashFlowParams()
    auth = quick_team(seed=6)
    relay = Relay.with_capacity("r", mbit(100), seed=60)
    assignments = allocate_capacity(auth.team, mbit(900))
    engine = MeasurementEngine()
    inputs = engine.analytic_inputs(relay, assignments, params)
    assert inputs == AnalyticInputs(
        capacity=relay.true_capacity,
        allocated=total_allocated(assignments),
        multiplier=params.multiplier,
    )
    for wobble in (0.85, 1.0, 1.1):
        assert engine.analytic_finish(inputs, wobble) == engine.analytic_estimate(
            relay, assignments, params, wobble
        ) == min(
            relay.true_capacity * wobble,
            total_allocated(assignments) / params.multiplier,
        )


def test_empty_round():
    params = FlashFlowParams()
    result = execute_analytic_round(compile_analytic_round([], params))
    assert result.estimates == [] and result.accepted == []


# ---------------------------------------------------------------------------
# Campaign-level oracle: serial vs vectorized analytic campaigns
# ---------------------------------------------------------------------------

def _analytic_campaign(backend, *, seed_net, seed_auth, priors=None,
                       background=0.0, periods=1, n_relays=40):
    network = synthesize_network(n_relays=n_relays, seed=seed_net)
    authority = quick_team(seed=seed_auth)
    campaign = Campaign(
        Scenario(
            network=network,
            team=authority,
            priors=priors,
            background=background,
            periods=periods,
        ),
        ExecutionConfig(backend=backend, full_simulation=False),
    )
    return campaign.run()


def _assert_reports_identical(a, b):
    assert a.estimates == b.estimates
    assert a.result.failures == b.result.failures
    assert a.result.slots_elapsed == b.result.slots_elapsed
    assert a.result.measurements_run == b.result.measurements_run
    assert len(a.rounds) == len(b.rounds)
    for ra, rb in zip(a.rounds, b.rounds):
        assert ra.measurements == rb.measurements


@pytest.mark.parametrize("seed_net,seed_auth", [(31, 32), (73, 74), (5, 6)])
def test_analytic_campaigns_identical_across_backends(seed_net, seed_auth):
    reference = _analytic_campaign(
        "serial", seed_net=seed_net, seed_auth=seed_auth
    )
    assert len(reference.estimates) > 0
    for backend in (None, "vector", "analytic", "thread", "process"):
        report = _analytic_campaign(
            backend, seed_net=seed_net, seed_auth=seed_auth
        )
        _assert_reports_identical(reference, report)


@pytest.mark.parametrize(
    "priors",
    [None, "truth", {}],
    ids=["cold", "truth", "empty-dict"],
)
def test_analytic_campaigns_identical_across_prior_shapes(priors):
    reference = _analytic_campaign(
        "serial", seed_net=41, seed_auth=42, priors=priors
    )
    report = _analytic_campaign(
        "analytic", seed_net=41, seed_auth=42, priors=priors
    )
    _assert_reports_identical(reference, report)


def test_analytic_campaigns_identical_across_background_forms():
    demand = mbit(25.0)
    for background in (demand, lambda _t: demand, {"relay0": demand}):
        reference = _analytic_campaign(
            "serial", seed_net=51, seed_auth=52, background=background
        )
        report = _analytic_campaign(
            "analytic", seed_net=51, seed_auth=52, background=background
        )
        _assert_reports_identical(reference, report)


def test_multi_period_analytic_deployment_identical():
    reference = _analytic_campaign(
        "serial", seed_net=61, seed_auth=62, periods=3, n_relays=20
    )
    report = _analytic_campaign(
        "analytic", seed_net=61, seed_auth=62, periods=3, n_relays=20
    )
    _assert_reports_identical(reference, report)
    assert len(reference.period_results) == 3


# ---------------------------------------------------------------------------
# Registry integration
# ---------------------------------------------------------------------------

def test_analytic_backend_is_registered():
    assert "analytic" in backend_names()
    # ExecutionConfig validates against the live registry.
    ExecutionConfig(backend="analytic")
