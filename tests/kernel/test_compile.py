"""Compiled-measurement correctness: the kernel is a bit-exact lowering.

The contract: for honest relays, compiling a spec and executing it as a
vectorized array walk produces *bit-identical* outcomes and relay state
to the stateful ``MeasurementEngine.run`` path, and the compiled
capacity series matches a raw ``Relay.measured_second`` oracle walk
exactly. Behaviours without a kernel program (custom stateful
subclasses) and transcript sessions must refuse to compile; the
compiled-adversary oracle suite lives in ``test_adversary_compile.py``.
"""

import numpy as np
import pytest

from repro import quick_team
from repro.attacks.relays import TrafficLiarRelayBehavior
from repro.core.allocation import allocate_capacity
from repro.core.engine import MeasurementEngine, MeasurementNoise, MeasurementSpec
from repro.core.params import FlashFlowParams
from repro.kernel import compile_measurement, execute_batch, execute_compiled, is_compilable
from repro.netsim.latency import NetworkModel
from repro.rng import fork
from repro.tornet.relay import Relay, RelayBehavior
from repro.units import mbit


@pytest.fixture
def team():
    return quick_team(seed=1).team


def _relay(seed, cap_mbit, rate_limit_mbit=None, behavior=None):
    relay = Relay.with_capacity(
        "r", mbit(cap_mbit), seed=seed, behavior=behavior
    )
    if rate_limit_mbit is not None:
        relay.set_rate_limit(mbit(rate_limit_mbit))
    return relay


def _spec(relay, team, params, **kwargs):
    required = kwargs.pop("required", params.allocation_factor * mbit(200))
    return MeasurementSpec(
        target=relay,
        assignments=allocate_capacity(team, required),
        params=params,
        enforce_admission=False,
        **kwargs,
    )


CONFIGS = [
    # (seed, cap, rate limit, background, ratio, duration)
    (5, 100, None, 0.0, 0.25, None),
    (6, 250, None, mbit(30), 0.25, None),
    (7, 600, 550, mbit(80), 0.25, None),
    (8, 400, 350, 0.0, 0.0, 7),
    (9, 150, None, mbit(10), 0.5, 60),
]


def _config_specs(team, seed, cap, limit, bg, ratio, duration):
    params = FlashFlowParams(ratio=ratio)
    kwargs = dict(
        required=params.allocation_factor * mbit(cap),
        seed=seed * 13,
        background_demand=bg,
        duration=duration,
    )
    return (
        _spec(_relay(seed, cap, limit), team, params, **kwargs),
        _spec(_relay(seed, cap, limit), team, params, **kwargs),
    )


def test_compiled_outcome_matches_stateful_engine_bitwise(team):
    """Every outcome field equals the stateful path, bit for bit."""
    for config in CONFIGS:
        spec_ref, spec_kernel = _config_specs(team, *config)
        reference = MeasurementEngine().run(spec_ref)
        cm = compile_measurement(MeasurementEngine(), spec_kernel)
        assert cm is not None
        outcome = execute_compiled(cm).to_outcome()
        assert outcome.estimate == reference.estimate
        assert outcome.per_second_measurement == reference.per_second_measurement
        assert (
            outcome.per_second_background_reported
            == reference.per_second_background_reported
        )
        assert (
            outcome.per_second_background_clamped
            == reference.per_second_background_clamped
        )
        assert outcome.per_second_total == reference.per_second_total
        assert outcome.cells_checked == reference.cells_checked
        assert outcome.total_allocated == reference.total_allocated
        assert outcome.duration == reference.duration


def test_compiled_capacity_series_matches_measured_second_oracle(team):
    """The walk's capacity series equals a raw measured_second walk.

    The oracle reruns the relay's stateful per-second walk on a twin
    relay, feeding it the supply series the kernel computed, and
    compares SecondReport.capacity_bits (and all traffic splits)
    element for element.
    """
    for config in CONFIGS:
        seed = config[0]
        spec_ref, spec_kernel = _config_specs(team, *config)
        params = spec_kernel.params
        engine = MeasurementEngine()
        cm = compile_measurement(engine, spec_kernel)
        supply = cm.supply_series()
        result = execute_compiled(cm)

        plan_inputs = engine.prepare_inputs(spec_ref)
        oracle = spec_ref.target
        for second in range(cm.duration):
            report = oracle.measured_second(
                measurement_supply_bits=float(supply[second]),
                background_demand_bits=float(cm.background[second]),
                ratio_r=params.ratio,
                n_measurement_sockets=params.n_sockets,
                external_factor=plan_inputs.env,
            )
            assert report.capacity_bits == result.capacity_bits[second]
            assert report.measurement_bytes * 8.0 == result.measurement[second]
            assert (
                report.background_reported_bytes * 8.0
                == result.background_reported[second]
            )
            assert report.measurement_bytes + report.background_actual_bytes \
                == result.total_bytes[second]


def test_compiled_relay_state_matches_stateful_engine(team):
    """Bucket fill, observed bandwidth, and RNG position all settle."""
    for config in CONFIGS:
        spec_ref, spec_kernel = _config_specs(team, *config)
        MeasurementEngine().run(spec_ref)
        engine = MeasurementEngine()
        cm = compile_measurement(engine, spec_kernel)
        result = execute_compiled(cm)
        spec_kernel.target.settle_measured_walk(
            result.total_bytes.tolist(), result.final_bucket_tokens
        )
        ref_relay, kernel_relay = spec_ref.target, spec_kernel.target
        if ref_relay.bucket is not None:
            assert ref_relay.bucket.tokens == kernel_relay.bucket.tokens
        assert (
            ref_relay.observed_bw.observed()
            == kernel_relay.observed_bw.observed()
        )
        # Same stream position: the next draw must coincide.
        assert ref_relay._rng.random() == kernel_relay._rng.random()


def test_execute_batch_equals_execute_compiled(team):
    """Batching across measurements never changes any element."""
    params = FlashFlowParams()
    specs_a = [
        _spec(_relay(40 + i, 80 + 40 * i, 100 + 50 * i if i % 2 else None),
              team, params, seed=40 + i,
              required=params.allocation_factor * mbit(80 + 40 * i))
        for i in range(6)
    ]
    specs_b = [
        _spec(_relay(40 + i, 80 + 40 * i, 100 + 50 * i if i % 2 else None),
              team, params, seed=40 + i,
              required=params.allocation_factor * mbit(80 + 40 * i))
        for i in range(6)
    ]
    cms_a = [
        compile_measurement(MeasurementEngine(), s, i)
        for i, s in enumerate(specs_a)
    ]
    cms_b = [
        compile_measurement(MeasurementEngine(), s, i)
        for i, s in enumerate(specs_b)
    ]
    batched = execute_batch(cms_a)
    singles = [execute_compiled(cm) for cm in cms_b]
    for one, many in zip(singles, batched):
        assert one.estimate == many.estimate
        assert np.array_equal(one.totals, many.totals)
        assert np.array_equal(one.capacity_bits, many.capacity_bits)
        assert one.final_bucket_tokens == many.final_bucket_tokens


def test_compiled_with_network_model_matches_engine(team):
    """Network-resolved paths and qualities survive compilation."""
    params = FlashFlowParams()
    model_a = NetworkModel.paper_internet(seed=3)
    model_b = NetworkModel.paper_internet(seed=3)
    noise = MeasurementNoise(target_env_mean=0.9, target_env_std=0.05)

    def spec_for(model):
        return MeasurementSpec(
            target=Relay.with_capacity("r", mbit(300), seed=4),
            assignments=allocate_capacity(team, mbit(700)),
            params=params,
            network=model,
            target_location="US-SW",
            noise=noise,
            seed=99,
            enforce_admission=False,
        )

    reference = MeasurementEngine(network=model_a).run(spec_for(model_a))
    cm = compile_measurement(
        MeasurementEngine(network=model_b), spec_for(model_b)
    )
    outcome = execute_compiled(cm).to_outcome()
    assert outcome.estimate == reference.estimate
    assert outcome.per_second_total == reference.per_second_total


def test_admission_refusal_compiles_to_failed_outcome(team):
    params = FlashFlowParams()
    relay = _relay(11, 100)
    relay.accept_measurement("bwauth0", 0)
    spec = MeasurementSpec(
        target=relay,
        assignments=allocate_capacity(team, mbit(300)),
        params=params,
        seed=5,
    )
    cm = compile_measurement(MeasurementEngine(), spec)
    assert cm.outcome is not None and cm.outcome.failed
    result = execute_compiled(cm)
    assert result.to_outcome().failed
    assert result.total_bytes.size == 0


def test_only_stateful_custom_behaviors_refuse_to_compile(team):
    """The four common attacks compile; unknown subclasses never do."""
    params = FlashFlowParams()
    engine = MeasurementEngine()

    # Program-carrying behaviours (honest + the four §5 attacks) compile.
    from repro.attacks.relays import (
        ForgingRelayBehavior,
        RatioCheatingRelayBehavior,
        SelectiveCapacityRelayBehavior,
    )

    for i, behavior in enumerate(
        [
            None,
            TrafficLiarRelayBehavior(),
            RatioCheatingRelayBehavior(),
            ForgingRelayBehavior(seed=3),
            SelectiveCapacityRelayBehavior(seed=4),
        ]
    ):
        relay = _relay(12 + i, 200, behavior=behavior)
        assert is_compilable(engine, _spec(relay, team, params, seed=1))

    # A custom subclass inheriting the honest hooks must NOT silently
    # compile as honest: kernel_program answers for the exact base type
    # only.
    class CustomBehavior(RelayBehavior):
        name = "custom"

    custom = _relay(20, 200, behavior=CustomBehavior())
    assert custom.behavior.kernel_program() is None
    assert not is_compilable(engine, _spec(custom, team, params, seed=1))
    assert (
        compile_measurement(engine, _spec(custom, team, params, seed=1))
        is None
    )

    session_spec = _spec(_relay(14, 200), team, params, seed=3, session=object())
    assert not is_compilable(engine, session_spec)

    no_reuse = MeasurementEngine(reuse_circuit_keys=False)
    assert not is_compilable(no_reuse, _spec(_relay(15, 200), team, params, seed=4))


def test_run_many_mixed_honest_and_adversarial_matches_stateful(team):
    """Fallback specs interleave with compiled ones, in spec order."""
    params = FlashFlowParams()

    def build(tag):
        specs = []
        for i in range(6):
            behavior = TrafficLiarRelayBehavior() if i % 3 == 2 else None
            relay = Relay.with_capacity(
                f"relay{i}", mbit(100 + 30 * i), seed=50 + i, behavior=behavior
            )
            specs.append(
                _spec(relay, team, params, seed=50 + i,
                      required=params.allocation_factor * mbit(100 + 30 * i))
            )
        return specs

    stateful = [MeasurementEngine().run(s) for s in build("a")]
    kernel = MeasurementEngine().run_many(build("b"), backend="vector")
    assert [o.estimate for o in kernel] == [o.estimate for o in stateful]
    assert [o.per_second_total for o in kernel] \
        == [o.per_second_total for o in stateful]


def test_supply_noise_resumes_the_measurement_stream(team):
    """The shipped RNG state replays the engine's draw positions."""
    params = FlashFlowParams()
    spec = _spec(_relay(16, 200), team, params, seed=77)
    engine = MeasurementEngine()
    cm = compile_measurement(engine, spec)
    n_active = len(cm.assignments)
    # Reference: re-fork the stream and burn the prepare-phase draws.
    rng = fork(77, "measurement-bwauth0-r-0")
    rng.gauss(0, 1)  # env draw position
    for _ in range(n_active):
        rng.gauss(0, 1)  # quality draw positions
    # The state must produce duration * n draws with the engine's clamp.
    noise = cm.supply_noise()
    assert noise.shape == (n_active, cm.duration)
    assert float(noise[0, 0]) >= 0.3


def test_verify_payload_stream_matches_stateful_verifier(team):
    """The compiled ``payload_seed`` is the ``verify-payload-*`` fork.

    The stateful engine hands its EchoVerifier a dedicated
    ``fork(seed, "verify-payload-<fp>")`` stream for sampled-cell
    payloads; the kernel replay must reconstruct byte-for-byte the same
    stream from ``cm.payload_seed`` -- never ambient entropy, and never
    the ``verify-*`` sample-count stream (whose draw positions are
    load-bearing for cells_checked and forge-detection timing).
    """
    import random

    from repro.tornet.cell import PAYLOAD_LEN

    params = FlashFlowParams()
    spec = _spec(_relay(21, 200), team, params, seed=91)
    cm = compile_measurement(MeasurementEngine(), spec)
    fingerprint = spec.target.fingerprint

    stateful = fork(91, f"verify-payload-{fingerprint}")
    replay = random.Random(cm.payload_seed)
    assert [replay.randbytes(PAYLOAD_LEN) for _ in range(8)] \
        == [stateful.randbytes(PAYLOAD_LEN) for _ in range(8)]

    # Distinct stream: drawing payloads must not move verify-* positions.
    verify = fork(91, f"verify-{fingerprint}")
    assert random.Random(cm.verify_seed).random() == verify.random()
    assert cm.payload_seed != cm.verify_seed


def test_verification_outcome_invariant_to_payload_stream(team):
    """Honest echo verification is payload-content-independent.

    The relay's echo is *defined* as the local decryption of whatever
    payload arrives, so cells_checked and the estimate cannot depend on
    payload bytes -- the property that made replacing ``os.urandom``
    payloads with the seeded stream a bit-identical change. Pin it by
    running the stateful verifier against two different payload streams.
    """
    import random

    from repro.core.verification import EchoVerifier

    spec = _spec(_relay(22, 150), team, FlashFlowParams(), seed=92)
    relay = spec.target

    def run(payload_seed):
        verifier = EchoVerifier(
            p_check=0.1, rng=random.Random(123),
            payload_rng=random.Random(payload_seed),
        )
        per_second = [
            verifier.verify_second(relay, 400 * 514) for _ in range(5)
        ]
        return per_second, verifier.cells_checked

    checks_a, checked_a = run(1)
    checks_b, checked_b = run(2)
    assert checked_a == checked_b
    assert checks_a == checks_b
