"""Compiled-adversary oracle suite: exact equality vs the stateful path.

The four common §5 attack behaviours now carry kernel programs and
lower into the vectorized array walk. The contract is the same as for
honest relays: every outcome field, every per-second series, the
relay's settled state (bucket tokens, observed bandwidth, RNG stream
position), and the *behaviour's own* state (cheater ledger, forger
RNG/forge count, selective slot roll) must be exactly ``==`` to a
stateful ``MeasurementEngine.run`` twin -- on every backend, with the
fallback counter proving no spec quietly took the stateful path.
"""

import pytest

from repro import quick_team
from repro.attacks.relays import (
    ForgingRelayBehavior,
    RatioCheatingRelayBehavior,
    SelectiveCapacityRelayBehavior,
    TrafficLiarRelayBehavior,
)
from repro.core.allocation import allocate_capacity
from repro.core.engine import MeasurementEngine
from repro.core.engine import MeasurementSpec
from repro.core.params import FlashFlowParams
from repro.obs.metrics import get_registry
from repro.units import mbit
from repro.tornet.relay import Relay

BEHAVIORS = {
    "traffic-liar": lambda seed: TrafficLiarRelayBehavior(lie_factor=40.0),
    "ratio-cheater": lambda seed: RatioCheatingRelayBehavior(),
    # forge_fraction < 1 so the replay consumes a same-length random()
    # stream as the stateful echo path, mixing caught and clean cells.
    "forger": lambda seed: ForgingRelayBehavior(
        forge_fraction=0.4, seed=seed
    ),
    "selective-capacity": lambda seed: SelectiveCapacityRelayBehavior(
        seed=seed
    ),
}


@pytest.fixture
def team():
    return quick_team(seed=8).team


def _adversary_specs(team, make_behavior, seed0, n=4, background=mbit(25)):
    params = FlashFlowParams()
    specs = []
    for i in range(n):
        relay = Relay.with_capacity(
            f"adv{i}",
            mbit(90 + 45 * i),
            seed=seed0 + i,
            behavior=make_behavior(seed0 + 100 + i),
        )
        specs.append(
            MeasurementSpec(
                target=relay,
                assignments=allocate_capacity(
                    team, params.allocation_factor * mbit(90 + 45 * i)
                ),
                params=params,
                seed=seed0 + i,
                background_demand=background,
                enforce_admission=False,
            )
        )
    return specs


def _assert_outcomes_exactly_equal(kernel, stateful):
    assert len(kernel) == len(stateful)
    for a, b in zip(kernel, stateful):
        assert a.estimate == b.estimate
        assert a.per_second_measurement == b.per_second_measurement
        assert (
            a.per_second_background_reported
            == b.per_second_background_reported
        )
        assert (
            a.per_second_background_clamped == b.per_second_background_clamped
        )
        assert a.per_second_total == b.per_second_total
        assert a.total_allocated == b.total_allocated
        assert a.duration == b.duration
        assert a.failed == b.failed
        assert a.failure_reason == b.failure_reason
        assert a.cells_checked == b.cells_checked


def _assert_state_exactly_equal(spec_kernel, spec_stateful):
    rk, rs = spec_kernel.target, spec_stateful.target
    if rs.bucket is not None:
        assert rk.bucket.tokens == rs.bucket.tokens
    assert rk.observed_bw.observed() == rs.observed_bw.observed()
    # Same relay-RNG stream position: the next draws must coincide.
    assert rk._rng.random() == rs._rng.random()
    bk, bs = rk.behavior, rs.behavior
    if isinstance(bs, RatioCheatingRelayBehavior):
        assert bk._last_measurement_bytes == bs._last_measurement_bytes
    if isinstance(bs, (ForgingRelayBehavior, SelectiveCapacityRelayBehavior)):
        assert bk._rng.getstate() == bs._rng.getstate()
    if isinstance(bs, ForgingRelayBehavior):
        assert bk.cells_forged == bs.cells_forged
    if isinstance(bs, SelectiveCapacityRelayBehavior):
        assert bk._currently_active == bs._currently_active


@pytest.mark.parametrize("backend", ["serial", "vector"])
@pytest.mark.parametrize("seed0", [11, 23])
@pytest.mark.parametrize("name", sorted(BEHAVIORS))
def test_compiled_adversary_matches_stateful_exactly(team, name, seed0, backend):
    make = BEHAVIORS[name]
    specs_stateful = _adversary_specs(team, make, seed0)
    specs_kernel = _adversary_specs(team, make, seed0)

    stateful = [MeasurementEngine().run(s) for s in specs_stateful]
    fallbacks_before = get_registry().counter("kernel.specs.fallback").value
    kernel = MeasurementEngine().run_many(specs_kernel, backend=backend)
    # Every adversarial spec compiled -- no silent stateful fallback.
    assert (
        get_registry().counter("kernel.specs.fallback").value
        == fallbacks_before
    )

    _assert_outcomes_exactly_equal(kernel, stateful)
    for sk, ss in zip(specs_kernel, specs_stateful):
        _assert_state_exactly_equal(sk, ss)


def _mixed_specs(team, seed0):
    specs = []
    for i, name in enumerate(sorted(BEHAVIORS) + [None, None]):
        make = BEHAVIORS[name] if name else (lambda seed: None)
        relay = Relay.with_capacity(
            f"mix{i}",
            mbit(100 + 30 * i),
            seed=seed0 + i,
            behavior=make(seed0 + 50 + i),
        )
        params = FlashFlowParams()
        specs.append(
            MeasurementSpec(
                target=relay,
                assignments=allocate_capacity(
                    team, params.allocation_factor * mbit(100 + 30 * i)
                ),
                params=params,
                seed=seed0 + i,
                background_demand=mbit(15),
                enforce_admission=False,
            )
        )
    return specs


@pytest.mark.parametrize("backend", ["process", "thread"])
def test_mixed_adversary_batch_pool_backends(team, backend):
    """All four attacks plus honest relays through a worker pool: the
    shm/pickle transports round-trip failure truncation, forge counts,
    and behaviour RNG state exactly."""
    stateful = [MeasurementEngine().run(s) for s in _mixed_specs(team, 300)]
    specs_kernel = _mixed_specs(team, 300)
    fallbacks_before = get_registry().counter("kernel.specs.fallback").value
    kernel = MeasurementEngine().run_many(
        specs_kernel, backend=backend, max_workers=2
    )
    assert (
        get_registry().counter("kernel.specs.fallback").value
        == fallbacks_before
    )
    _assert_outcomes_exactly_equal(kernel, stateful)


def test_full_forger_fails_identically_everywhere(team):
    """forge_fraction=1.0: the first checked cell fails on both paths,
    with identical truncation, reason, estimate, and settled state."""
    make = BEHAVIORS["forger"]
    full = lambda seed: ForgingRelayBehavior(forge_fraction=1.0, seed=seed)
    del make
    specs_stateful = _adversary_specs(team, full, 61, n=2)
    specs_kernel = _adversary_specs(team, full, 61, n=2)
    stateful = [MeasurementEngine().run(s) for s in specs_stateful]
    kernel = MeasurementEngine().run_many(specs_kernel, backend="vector")
    assert all(o.failed for o in stateful)
    assert all(o.estimate == 0.0 for o in stateful)
    _assert_outcomes_exactly_equal(kernel, stateful)
    for sk, ss in zip(specs_kernel, specs_stateful):
        _assert_state_exactly_equal(sk, ss)
