"""Keystream caching regression: verification results are unchanged.

The per-(counter, length) keystream span cache in
:class:`repro.tornet.relaycrypto.CircuitKey` must be invisible: the same
bytes as an uncached computation, byte-identical repeated calls, correct
detection of forged echoes, and unchanged ``cells_checked`` accounting
in :class:`repro.core.verification.EchoVerifier`.
"""

import hashlib

from repro import quick_team
from repro.attacks.relays import ForgingRelayBehavior
from repro.core.allocation import allocate_capacity
from repro.core.measurement import run_measurement
from repro.core.params import FlashFlowParams
from repro.core.verification import EchoVerifier, sample_cell_count
from repro.errors import VerificationFailure
from repro.rng import fork
from repro.tornet.relaycrypto import (
    _KEYSTREAM_BLOCK,
    CircuitKey,
    establish_circuit_key,
)
from repro.tornet.relay import Relay
from repro.units import mbit


def _uncached_keystream(key_bytes: bytes, counter: int, length: int) -> bytes:
    """The original block-by-block derivation, inlined as the oracle."""
    blocks = []
    needed = length
    index = counter
    while needed > 0:
        blocks.append(
            hashlib.sha256(key_bytes + index.to_bytes(8, "big")).digest()
        )
        needed -= _KEYSTREAM_BLOCK
        index += 1
    return b"".join(blocks)[:length]


def test_keystream_matches_uncached_oracle():
    key = CircuitKey(bytes(range(32)))
    for counter, length in [(0, 1), (0, 32), (3, 509), (1000, 64), (7, 100)]:
        expected = _uncached_keystream(bytes(range(32)), counter, length)
        assert key.keystream(counter, length) == expected
        # Second call is served from cache; must be byte-identical.
        assert key.keystream(counter, length) == expected


def test_process_roundtrip_and_cache_reuse():
    key = CircuitKey(b"\x42" * 32)
    payload = bytes(509)
    for index in (0, 1, 5, 5, 1, 0):  # revisits hit the cache
        encrypted = key.process(payload, index)
        assert key.process(encrypted, index) == payload
        assert encrypted != payload


def test_repeated_check_cells_results_unchanged():
    """Same circuit key, repeated verification: identical outcomes."""
    client_key, relay_key = establish_circuit_key()
    relay = Relay.with_capacity("r", mbit(100), seed=1)
    verifier_a = EchoVerifier(1.0, fork(1, "verify-a"), key=client_key)
    checked_a = verifier_a.check_cells(relay, 40)
    verifier_b = EchoVerifier(1.0, fork(1, "verify-b"), key=relay_key)
    checked_b = verifier_b.check_cells(relay, 40)
    assert checked_a == checked_b == 40
    assert verifier_a.cells_checked == verifier_b.cells_checked == 40
    assert verifier_a.cells_failed == verifier_b.cells_failed == 0


def test_forged_echo_still_detected_with_warm_cache():
    """A warm keystream cache must not mask forged payloads."""
    params = FlashFlowParams()
    authority = quick_team(seed=7)
    forger = Relay.with_capacity(
        "forger", mbit(500), behavior=ForgingRelayBehavior(seed=1), seed=70
    )
    # Warm the shared key's cache with an honest measurement first.
    honest = Relay.with_capacity("honest", mbit(500), seed=71)
    ok = run_measurement(
        honest,
        allocate_capacity(authority.team, params.allocation_factor * mbit(500)),
        params,
        seed=71,
    )
    assert not ok.failed
    outcome = run_measurement(
        forger,
        allocate_capacity(authority.team, params.allocation_factor * mbit(500)),
        params,
        seed=72,
    )
    assert outcome.failed
    assert outcome.cells_checked >= 1


def test_sample_cell_count_matches_verifier_method():
    """The extracted module function is the method's draw-for-draw twin."""
    key, _ = establish_circuit_key()
    for p_check, cells in [(1e-5, 250_000), (0.5, 20), (1.0, 3), (1e-5, 0)]:
        verifier = EchoVerifier(p_check, fork(9, "verify-twin"), key=key)
        rng = fork(9, "verify-twin")
        for _ in range(50):
            assert verifier.sample_count(cells) \
                == sample_cell_count(rng, cells, p_check)


def test_direct_forgery_via_verifier_raises():
    client_key, _ = establish_circuit_key()
    forger = Relay.with_capacity(
        "forger", mbit(100), behavior=ForgingRelayBehavior(seed=3), seed=3
    )
    verifier = EchoVerifier(1.0, fork(3, "verify"), key=client_key)
    try:
        verifier.check_cells(forger, 10)
    except VerificationFailure as failure:
        assert failure.relay_fingerprint == "forger"
        assert verifier.cells_failed == 1
    else:  # pragma: no cover
        raise AssertionError("forged echoes must fail verification")
