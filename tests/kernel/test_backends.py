"""Backend parity: every backend is the same bits, differently scheduled.

The satellite contract: ``serial``, ``thread``, and ``process`` backends
produce identical :class:`CampaignResult`s for a seeded 30-relay
network (and the ``vector`` default matches too), backend selection
resolves params over environment over default, and unknown names fail
loudly.
"""

import os

import pytest

from repro import quick_team
from repro.api import Campaign, ExecutionConfig, Scenario
from repro.core.allocation import allocate_capacity
from repro.core.engine import MeasurementEngine, MeasurementSpec
from repro.core.params import FlashFlowParams
from repro.errors import ConfigurationError
from repro.kernel.backends import (
    BACKEND_ENV_VAR,
    backend_names,
    get_backend,
    resolve_backend_name,
)
from repro.tornet.network import synthesize_network
from repro.tornet.relay import Relay
from repro.units import mbit

ALL_BACKENDS = ("serial", "thread", "process", "vector")


def _campaign(backend):
    network = synthesize_network(n_relays=30, seed=71)
    authority = quick_team(seed=72)
    report = Campaign(
        Scenario(network=network, team=authority),
        ExecutionConfig(backend=backend, max_workers=2),
    ).run()
    return report.result


def test_all_backends_produce_identical_campaign_results():
    results = {backend: _campaign(backend) for backend in ALL_BACKENDS}
    reference = results["serial"]
    assert len(reference.estimates) == 30
    for backend, result in results.items():
        assert result.estimates == reference.estimates, backend
        assert result.failures == reference.failures, backend
        assert result.slots_elapsed == reference.slots_elapsed, backend
        assert result.measurements_run == reference.measurements_run, backend


def test_backends_match_stateful_engine_on_run_many():
    params = FlashFlowParams()
    team = quick_team(seed=4).team

    def specs():
        out = []
        for i in range(8):
            relay = Relay.with_capacity(
                f"relay{i}", mbit(80 + 40 * i), seed=90 + i
            )
            out.append(
                MeasurementSpec(
                    target=relay,
                    assignments=allocate_capacity(team, mbit(500)),
                    params=params,
                    seed=90 + i,
                    enforce_admission=False,
                )
            )
        return out

    reference = [MeasurementEngine().run(spec) for spec in specs()]
    for backend in ALL_BACKENDS:
        outcomes = MeasurementEngine().run_many(
            specs(), backend=backend, max_workers=2
        )
        assert [o.estimate for o in outcomes] \
            == [o.estimate for o in reference], backend
        assert [o.per_second_total for o in outcomes] \
            == [o.per_second_total for o in reference], backend
        assert [o.cells_checked for o in outcomes] \
            == [o.cells_checked for o in reference], backend


def test_registry_and_resolution():
    assert set(ALL_BACKENDS) <= set(backend_names())
    # auto -> vector; explicit beats params; params beat environment.
    assert resolve_backend_name(None, None) == "vector"
    assert resolve_backend_name("serial", "process") == "serial"
    assert resolve_backend_name(None, "process") == "process"
    old = os.environ.get(BACKEND_ENV_VAR)
    try:
        os.environ[BACKEND_ENV_VAR] = "thread"
        assert resolve_backend_name(None, None) == "thread"
        assert resolve_backend_name(None, "serial") == "serial"
    finally:
        if old is None:
            os.environ.pop(BACKEND_ENV_VAR, None)
        else:
            os.environ[BACKEND_ENV_VAR] = old
    with pytest.raises(ConfigurationError):
        get_backend("not-a-backend")


def test_invalid_env_backend_fails_fast_at_resolution(monkeypatch):
    """A typo'd FLASHFLOW_KERNEL_BACKEND raises at resolution time,
    naming the registered backends -- not a raw KeyError mid-campaign."""
    monkeypatch.setenv(BACKEND_ENV_VAR, "vectr")
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_backend_name(None, None)
    message = str(excinfo.value)
    assert BACKEND_ENV_VAR in message
    for name in backend_names():
        assert name in message
    # Explicit and params-sourced names validate identically.
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    with pytest.raises(ConfigurationError, match="backend argument"):
        resolve_backend_name("bogus", None)
    with pytest.raises(ConfigurationError, match="kernel_backend"):
        resolve_backend_name(None, "bogus")


def test_invalid_env_backend_fails_before_any_measurement(monkeypatch):
    """The campaign path surfaces the env typo as ConfigurationError."""
    monkeypatch.setenv(BACKEND_ENV_VAR, "not-a-backend")
    network = synthesize_network(n_relays=3, seed=11)
    authority = quick_team(seed=12)
    campaign = Campaign(Scenario(network=network, team=authority),
                        ExecutionConfig())
    with pytest.raises(ConfigurationError, match="known backends"):
        campaign.run()
    # The analytic path validates identically.
    campaign = Campaign(Scenario(network=network, team=authority),
                        ExecutionConfig(full_simulation=False))
    with pytest.raises(ConfigurationError, match="known backends"):
        campaign.run()


def test_params_kernel_backend_is_honoured():
    params = FlashFlowParams(kernel_backend="serial")
    team = quick_team(seed=5, params=params).team
    specs = [
        MeasurementSpec(
            target=Relay.with_capacity(f"r{i}", mbit(100 + i), seed=i),
            assignments=allocate_capacity(team, mbit(300)),
            params=params,
            seed=i,
            enforce_admission=False,
        )
        for i in range(3)
    ]
    outcomes = MeasurementEngine().run_many(specs)
    assert all(not o.failed for o in outcomes)
    with pytest.raises(ConfigurationError):
        FlashFlowParams(kernel_backend="")


def test_duplicate_targets_still_fall_back_to_stateful_serial():
    params = FlashFlowParams()
    team = quick_team(seed=6).team
    shared = Relay.with_capacity("shared", mbit(100), seed=50)
    specs = [
        MeasurementSpec(
            target=shared,
            assignments=allocate_capacity(team, mbit(300)),
            params=params,
            seed=s,
            enforce_admission=False,
        )
        for s in (1, 2)
    ]
    outcomes = MeasurementEngine().run_many(specs, backend="process")
    twin = Relay.with_capacity("shared", mbit(100), seed=50)
    engine = MeasurementEngine()
    expected = [
        engine.run(
            MeasurementSpec(
                target=twin,
                assignments=allocate_capacity(team, mbit(300)),
                params=params,
                seed=s,
                enforce_admission=False,
            )
        )
        for s in (1, 2)
    ]
    assert [o.estimate for o in outcomes] == [o.estimate for o in expected]
