"""Tests for the relay model: capacity, ratio enforcement, echo cells."""

import pytest

from repro.tornet.cell import Cell
from repro.tornet.cpu import CpuModel
from repro.tornet.relay import Relay, RelayBehavior
from repro.tornet.relaycrypto import establish_circuit_key
from repro.units import mbit


def test_with_capacity_sets_true_capacity():
    relay = Relay.with_capacity("r", mbit(250))
    assert relay.true_capacity == pytest.approx(mbit(250))


def test_rate_limit_binds_true_capacity():
    relay = Relay.with_capacity("r", mbit(500))
    relay.rate_limit = mbit(100)
    assert relay.true_capacity == pytest.approx(mbit(100))


def test_forwarding_capacity_socket_overhead():
    relay = Relay.with_capacity("r", mbit(800))
    few = relay.forwarding_capacity(n_measurement_sockets=10)
    many = relay.forwarding_capacity(n_measurement_sockets=300)
    assert few > many


def test_kist_cap_binds_with_few_normal_sockets():
    """Figure 11's rising part: few sockets limit normal throughput."""
    relay = Relay.with_capacity("r", mbit(1248))
    assert relay.forwarding_capacity(n_background_sockets=2) == pytest.approx(
        2 * mbit(96)
    )


def test_measurement_scheduler_fast_with_one_socket():
    """Figure 12: the measurement scheduler needs no socket count."""
    relay = Relay.with_capacity("r", mbit(800))
    capacity = relay.forwarding_capacity(n_measurement_sockets=1)
    assert capacity > mbit(700)


def test_admission_once_per_period():
    relay = Relay.with_capacity("r", mbit(100))
    assert relay.accept_measurement("bwauth0", period_index=1)
    assert not relay.accept_measurement("bwauth0", period_index=1)
    # A different BWAuth or period is fine.
    assert relay.accept_measurement("bwauth1", period_index=1)
    assert relay.accept_measurement("bwauth0", period_index=2)


def test_measured_second_ratio_enforced():
    relay = Relay.with_capacity("r", mbit(250), seed=1)
    relay.jitter = 0.0
    report = relay.measured_second(
        measurement_supply_bits=mbit(1000),
        background_demand_bits=mbit(1000),
        ratio_r=0.1,
        n_measurement_sockets=160,
    )
    total = report.measurement_bytes + report.background_actual_bytes
    assert report.background_actual_bytes / total <= 0.1 + 1e-9


def test_measured_second_background_limited_by_measurement():
    """With little measurement traffic, background is slaved to it."""
    relay = Relay.with_capacity("r", mbit(250), seed=2)
    relay.jitter = 0.0
    report = relay.measured_second(
        measurement_supply_bits=mbit(10),
        background_demand_bits=mbit(100),
        ratio_r=0.25,
        n_measurement_sockets=160,
    )
    assert report.background_actual_bytes <= (
        report.measurement_bytes * 0.25 / 0.75 + 1
    )


def test_measured_second_zero_background():
    relay = Relay.with_capacity("r", mbit(100), seed=3)
    report = relay.measured_second(
        measurement_supply_bits=mbit(500),
        background_demand_bits=0.0,
        ratio_r=0.25,
        n_measurement_sockets=160,
    )
    assert report.background_actual_bytes == 0.0
    assert report.measurement_bytes > 0


def test_measured_second_invalid_ratio():
    relay = Relay.with_capacity("r", mbit(100))
    with pytest.raises(ValueError):
        relay.measured_second(1.0, 1.0, ratio_r=1.0, n_measurement_sockets=1)


def test_rate_limit_burst_spike_then_steady():
    """Figure 7's one-second burst at measurement start."""
    relay = Relay.with_capacity("r", mbit(900), seed=4)
    relay.set_rate_limit(mbit(250))
    relay.jitter = 0.0
    first = relay.measured_second(
        mbit(2000), 0.0, ratio_r=0.25, n_measurement_sockets=160
    )
    second = relay.measured_second(
        mbit(2000), 0.0, ratio_r=0.25, n_measurement_sockets=160
    )
    assert first.measurement_bytes > 1.8 * second.measurement_bytes
    assert second.measurement_bytes * 8 == pytest.approx(mbit(250), rel=0.05)


def test_honest_echo_is_correct_decryption():
    relay = Relay.with_capacity("r", mbit(100))
    key, _ = establish_circuit_key()
    cell = Cell.measurement(1)
    echoed = relay.process_measurement_cell(cell, key, cell_index=0)
    assert echoed.payload == key.process(cell.payload, 0)


def test_idle_second_records_observed_bw():
    relay = Relay.with_capacity("r", mbit(100), seed=5)
    relay.jitter = 0.0
    for t in range(1, 15):
        relay.idle_second(mbit(40), t=t)
    assert relay.observed_bw.observed() == pytest.approx(
        mbit(40) / 8.0, rel=0.01
    )


def test_idle_second_capped_by_capacity():
    relay = Relay.with_capacity("r", mbit(100), seed=6)
    relay.jitter = 0.0
    forwarded = relay.idle_second(mbit(500), n_background_sockets=20)
    assert forwarded <= relay.forwarding_capacity(n_background_sockets=20) + 1


def test_behavior_capacity_factor_applied():
    class HalfBehavior(RelayBehavior):
        def capacity_factor(self, being_measured, relay):
            return 0.5 if being_measured else 1.0

    relay = Relay.with_capacity("r", mbit(200), behavior=HalfBehavior())
    full = relay.forwarding_capacity(n_measurement_sockets=10)
    measured = relay.forwarding_capacity(
        n_measurement_sockets=10, being_measured=True
    )
    assert measured == pytest.approx(full * 0.5)


def test_cpu_model_socket_classes():
    cpu = CpuModel(max_forward_bits=mbit(1000))
    normal_heavy = cpu.effective_capacity(n_normal_sockets=200)
    meas_heavy = cpu.effective_capacity(n_measurement_sockets=200)
    assert meas_heavy > normal_heavy  # measurement scheduler is cheaper


def test_cpu_utilization_bounds():
    cpu = CpuModel(max_forward_bits=mbit(100))
    assert cpu.utilization(mbit(50)) == pytest.approx(0.5)
    assert cpu.utilization(mbit(500)) == 1.0
