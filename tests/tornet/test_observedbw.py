"""Tests for the observed-bandwidth heuristic (tor-spec §2.1.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tornet.observedbw import HISTORY_DAYS, WINDOW_SECONDS, ObservedBandwidth
from repro.units import DAY


def test_empty_history_reports_zero():
    assert ObservedBandwidth().observed() == 0.0


def test_needs_full_window_to_register():
    ob = ObservedBandwidth()
    for _ in range(WINDOW_SECONDS - 1):
        ob.record_second(100.0)
    assert ob.observed() == 0.0
    ob.record_second(100.0)
    assert ob.observed() == pytest.approx(100.0)


def test_max_of_window_means():
    ob = ObservedBandwidth()
    # A single 1-second spike inside a window of 100s raises the mean by
    # spike/10, not to the spike value.
    for _ in range(WINDOW_SECONDS):
        ob.record_second(100.0)
    ob.record_second(1100.0)
    expected = (9 * 100 + 1100) / WINDOW_SECONDS
    assert ob.observed() == pytest.approx(expected)


def test_observation_expires_after_five_days():
    ob = ObservedBandwidth()
    ob.record_span(500.0, start=0, duration=60)
    assert ob.observed(t=60) == pytest.approx(500.0)
    # Still visible within 5 days.
    assert ob.observed(t=4 * DAY) == pytest.approx(500.0)
    # Gone after the 5-day horizon passes.
    assert ob.observed(t=(HISTORY_DAYS + 1) * DAY) == 0.0


def test_record_span_short_duration_uses_window_path():
    ob = ObservedBandwidth()
    ob.record_span(300.0, start=0, duration=5)
    # 5 seconds is less than the 10-second window: no observation yet.
    assert ob.observed() == 0.0


def test_record_span_long_duration():
    ob = ObservedBandwidth()
    ob.record_span(250.0, start=100, duration=30)
    assert ob.observed(t=130) == pytest.approx(250.0)


def test_idle_gap_clears_window():
    ob = ObservedBandwidth()
    for t in range(1, 6):
        ob.record_second(1000.0, t=t)
    # Jump forward: the partial window must not combine across the gap.
    for t in range(100, 100 + WINDOW_SECONDS):
        ob.record_second(10.0, t=t)
    assert ob.observed() == pytest.approx(10.0)


def test_time_cannot_go_backwards():
    ob = ObservedBandwidth()
    ob.record_second(1.0, t=100)
    with pytest.raises(ValueError):
        ob.record_second(1.0, t=50)


def test_keeps_maximum_across_days():
    ob = ObservedBandwidth()
    ob.record_span(100.0, start=0, duration=60)
    ob.record_span(700.0, start=DAY, duration=60)
    ob.record_span(50.0, start=2 * DAY, duration=60)
    assert ob.observed(t=2 * DAY + 60) == pytest.approx(700.0)


@given(
    rates=st.lists(
        st.floats(min_value=0, max_value=1e9), min_size=10, max_size=100
    )
)
@settings(max_examples=60, deadline=None)
def test_observed_never_exceeds_max_rate(rates):
    ob = ObservedBandwidth()
    for rate in rates:
        ob.record_second(rate)
    assert ob.observed() <= max(rates) + 1e-6


@given(
    rate=st.floats(min_value=1, max_value=1e9),
    duration=st.integers(min_value=WINDOW_SECONDS, max_value=5000),
)
@settings(max_examples=60, deadline=None)
def test_constant_rate_observed_exactly(rate, duration):
    ob = ObservedBandwidth()
    ob.record_span(rate, start=0, duration=duration)
    assert ob.observed(t=duration) == pytest.approx(rate)
