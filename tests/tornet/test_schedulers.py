"""Tests for the KIST-style and measurement schedulers and the CPU model."""

import pytest

from repro.tornet.cpu import CpuModel
from repro.tornet.kist import KIST_PER_SOCKET_CAP, kist_rate_cap
from repro.tornet.meassched import (
    MEASUREMENT_PER_SOCKET_CAP,
    measurement_rate_cap,
)
from repro.units import mbit


def test_kist_linear_in_sockets():
    assert kist_rate_cap(13) == pytest.approx(13 * KIST_PER_SOCKET_CAP)
    assert kist_rate_cap(0) == 0.0


def test_kist_thirteen_sockets_saturate_lab_cpu():
    """Appendix C: CPU hits 100% at 13 sockets on the lab machine."""
    assert kist_rate_cap(13) >= mbit(1248)


def test_kist_negative_rejected():
    with pytest.raises(ValueError):
        kist_rate_cap(-1)


def test_measurement_scheduler_single_socket_exceeds_tor_capacity():
    """The design requirement (§4.1): full relay capacity on few sockets."""
    assert measurement_rate_cap(1) > mbit(1269)


def test_measurement_scheduler_per_socket_far_above_kist():
    assert MEASUREMENT_PER_SOCKET_CAP > 10 * KIST_PER_SOCKET_CAP


def test_measurement_negative_rejected():
    with pytest.raises(ValueError):
        measurement_rate_cap(-1)


def test_cpu_no_sockets_full_capacity():
    cpu = CpuModel(max_forward_bits=mbit(1000))
    assert cpu.effective_capacity() == mbit(1000)


def test_cpu_overhead_free_region():
    cpu = CpuModel(max_forward_bits=mbit(1000))
    assert cpu.effective_capacity(n_normal_sockets=20) == mbit(1000)


def test_cpu_normal_socket_decline_matches_fig11():
    """Figure 11 calibration: ~12% decline between 20 and 100 sockets."""
    cpu = CpuModel(max_forward_bits=mbit(1248))
    at_20 = cpu.effective_capacity(n_normal_sockets=20)
    at_100 = cpu.effective_capacity(n_normal_sockets=100)
    decline = 1 - at_100 / at_20
    assert 0.08 < decline < 0.16


def test_cpu_measurement_sockets_cheap():
    """s = 160 measurement sockets must cost only a few percent, or
    FlashFlow could not measure within Figure 6's bounds."""
    cpu = CpuModel(max_forward_bits=mbit(890))
    at_160 = cpu.effective_capacity(n_measurement_sockets=160)
    assert at_160 > mbit(890) * 0.94


def test_cpu_mixed_socket_classes_additive():
    cpu = CpuModel(max_forward_bits=mbit(1000))
    mixed = cpu.effective_capacity(
        n_normal_sockets=50, n_measurement_sockets=160
    )
    assert mixed < cpu.effective_capacity(n_normal_sockets=50)
    assert mixed < cpu.effective_capacity(n_measurement_sockets=160)


def test_cpu_negative_sockets_rejected():
    with pytest.raises(ValueError):
        CpuModel().effective_capacity(n_normal_sockets=-1)
