"""Tests for cells and circuit crypto."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tornet.cell import PAYLOAD_LEN, Cell, CellType
from repro.tornet.relaycrypto import (
    CircuitKey,
    DhParty,
    derive_shared_key,
    establish_circuit_key,
)
from repro.units import CELL_LEN


def test_cell_encode_decode_round_trip():
    cell = Cell.measurement(circ_id=42)
    decoded = Cell.decode(cell.encode())
    assert decoded == cell


def test_cell_wire_length():
    assert len(Cell.measurement(1).encode()) == CELL_LEN


def test_payload_must_be_exact_length():
    with pytest.raises(ValueError):
        Cell(circ_id=1, command=CellType.MEASURE, payload=b"short")


def test_circ_id_range_checked():
    with pytest.raises(ValueError):
        Cell(circ_id=2 ** 32, command=CellType.MEASURE, payload=b"x" * PAYLOAD_LEN)


def test_decode_rejects_wrong_length():
    with pytest.raises(ValueError):
        Cell.decode(b"x" * (CELL_LEN - 1))


def test_measurement_cells_have_random_payloads():
    a, b = Cell.measurement(1), Cell.measurement(1)
    assert a.payload != b.payload  # 509 random bytes colliding: never


def test_measurement_default_payloads_are_seeded_not_ambient():
    """Same seeded RNG, same payload bytes: the default-payload path
    draws from a deterministic stream, never ``os.urandom``."""
    import random

    a = Cell.measurement(1, rng=random.Random(7))
    b = Cell.measurement(1, rng=random.Random(7))
    assert a.payload == b.payload
    c = Cell.measurement(1, rng=random.Random(8))
    assert c.payload != a.payload


def test_with_payload_replaces_payload():
    cell = Cell.measurement(3)
    new = cell.with_payload(bytes(PAYLOAD_LEN))
    assert new.payload == bytes(PAYLOAD_LEN)
    assert new.circ_id == 3


def test_dh_exchange_agrees():
    a, b = DhParty(), DhParty()
    assert derive_shared_key(a, b.public) == derive_shared_key(b, a.public)


def test_dh_rejects_degenerate_public():
    a = DhParty()
    with pytest.raises(ValueError):
        a.shared_secret(1)


def test_establish_circuit_key_both_sides_match():
    client, relay = establish_circuit_key()
    data = b"q" * PAYLOAD_LEN
    assert client.process(data, 0) == relay.process(data, 0)


def test_cipher_is_involution():
    key, _ = establish_circuit_key()
    data = b"hello" * 100 + b"x" * (PAYLOAD_LEN - 500)
    assert key.process(key.process(data, 5), 5) == data


def test_cipher_differs_per_cell_index():
    key, _ = establish_circuit_key()
    data = bytes(PAYLOAD_LEN)
    assert key.process(data, 0) != key.process(data, 1)


def test_key_must_be_32_bytes():
    with pytest.raises(ValueError):
        CircuitKey(b"short")


def test_keystream_deterministic():
    key = CircuitKey(bytes(32))
    assert key.keystream(0, 64) == key.keystream(0, 64)


@given(st.binary(min_size=PAYLOAD_LEN, max_size=PAYLOAD_LEN),
       st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_cipher_round_trip_property(payload, index):
    key = CircuitKey(bytes(range(32)))
    assert key.process(key.process(payload, index), index) == payload
