"""Tests for the BandwidthRate/Burst token bucket."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tornet.tokenbucket import TokenBucket


def test_starts_full_by_default():
    bucket = TokenBucket(rate=100)
    assert bucket.available() == 100


def test_start_empty():
    bucket = TokenBucket(rate=100, start_full=False)
    assert bucket.available() == 0


def test_burst_defaults_to_one_second_of_rate():
    assert TokenBucket(rate=250).burst == 250


def test_first_second_allows_double_rate():
    """The Figure 7 spike: full bucket + one refill = ~2x rate."""
    bucket = TokenBucket(rate=100)
    assert bucket.take_second(1000) == pytest.approx(200)
    # Steady state afterwards.
    assert bucket.take_second(1000) == pytest.approx(100)
    assert bucket.take_second(1000) == pytest.approx(100)


def test_unused_tokens_cap_at_burst():
    bucket = TokenBucket(rate=100, burst=150)
    bucket.refill(10)
    assert bucket.available() == 150


def test_consume_partial():
    bucket = TokenBucket(rate=100)
    assert bucket.consume(30) == 30
    assert bucket.available() == pytest.approx(70)


def test_consume_more_than_available():
    bucket = TokenBucket(rate=100)
    assert bucket.consume(500) == 100
    assert bucket.available() == 0


def test_negative_inputs_rejected():
    bucket = TokenBucket(rate=100)
    with pytest.raises(ValueError):
        bucket.consume(-1)
    with pytest.raises(ValueError):
        bucket.refill(-1)
    with pytest.raises(ValueError):
        TokenBucket(rate=-5)


@given(
    rate=st.floats(min_value=1, max_value=1e6),
    requests=st.lists(
        st.floats(min_value=0, max_value=1e7), min_size=1, max_size=50
    ),
)
@settings(max_examples=100, deadline=None)
def test_conservation_property(rate, requests):
    """Total granted never exceeds burst + rate * elapsed seconds."""
    bucket = TokenBucket(rate=rate)
    granted = sum(bucket.take_second(r) for r in requests)
    assert granted <= bucket.burst + rate * len(requests) + 1e-6


@given(
    rate=st.floats(min_value=1, max_value=1e6),
    n=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=50, deadline=None)
def test_sustained_rate_property(rate, n):
    """Under saturation, long-run throughput converges to the rate."""
    bucket = TokenBucket(rate=rate)
    granted = [bucket.take_second(rate * 10) for _ in range(n)]
    # All seconds after the first grant exactly the refill rate.
    for g in granted[1:]:
        assert g == pytest.approx(rate)
