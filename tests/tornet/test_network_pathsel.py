"""Tests for the synthetic network generator and path selection."""

import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.tornet.circuit import Circuit, circuit_rate_cap
from repro.tornet.consensus import Consensus, RouterStatus
from repro.tornet.network import (
    JULY_2019_MAX_CAPACITY,
    new_relay_arrivals,
    sample_scaled_network,
    synthesize_network,
)
from repro.tornet.pathsel import PathSelector, WeightedSampler
from repro.units import mbit, to_gbit


@pytest.fixture(scope="module")
def network():
    return synthesize_network(n_relays=2000, seed=11)


def test_network_size(network):
    assert len(network) == 2000


def test_max_capacity_clipped(network):
    assert network.max_capacity() <= JULY_2019_MAX_CAPACITY


def test_total_capacity_matches_july_2019_shape(network):
    """Scaled to 6419 relays the total should be near 608 Gbit/s."""
    scaled_total = network.total_capacity() * 6419 / len(network)
    assert 450 < to_gbit(scaled_total) < 750


def test_capacity_percentiles_monotone(network):
    p25 = network.percentile_capacity(25)
    p75 = network.percentile_capacity(75)
    assert p25 < network.percentile_capacity(50) < p75


def test_deterministic_generation():
    a = synthesize_network(n_relays=50, seed=3)
    b = synthesize_network(n_relays=50, seed=3)
    assert a.capacities() == b.capacities()


def test_flags_present(network):
    exits = sum(1 for r in network.relays.values() if "Exit" in r.flags)
    guards = sum(1 for r in network.relays.values() if "Guard" in r.flags)
    assert 0.05 < exits / len(network) < 0.4
    assert 0.05 < guards / len(network) < 0.6


def test_scaled_sample_preserves_distribution(network):
    scaled = sample_scaled_network(network, fraction=0.05, seed=1)
    assert len(scaled) == 100
    # Stratified sampling keeps medians in the same ballpark.
    full_median = network.percentile_capacity(50)
    scaled_median = scaled.percentile_capacity(50)
    assert scaled_median == pytest.approx(full_median, rel=0.5)


def test_new_relay_arrivals_shape():
    counts = new_relay_arrivals(2000, seed=5)
    counts_sorted = sorted(counts)
    median = counts_sorted[len(counts) // 2]
    assert 1 <= median <= 5  # paper: median 3
    assert max(counts) <= 98
    assert min(counts) >= 0


def test_weighted_sampler_distribution():
    sampler = WeightedSampler(["a", "b"], [1.0, 9.0])
    rng = random.Random(1)
    draws = Counter(sampler.sample(rng) for _ in range(5000))
    assert draws["b"] / 5000 == pytest.approx(0.9, abs=0.03)


def test_weighted_sampler_exclusion():
    sampler = WeightedSampler(["a", "b", "c"], [1.0, 1.0, 98.0])
    rng = random.Random(2)
    for _ in range(100):
        assert sampler.sample(rng, exclude={"c"}) in ("a", "b")


def test_weighted_sampler_all_excluded():
    sampler = WeightedSampler(["a"], [1.0])
    with pytest.raises(ConfigurationError):
        sampler.sample(random.Random(3), exclude={"a"})


def test_path_selector_positions():
    consensus = Consensus(valid_after=0)
    consensus.add(RouterStatus("g", 10.0, frozenset({"Guard", "Running"})))
    consensus.add(RouterStatus("m", 10.0, frozenset({"Running"})))
    consensus.add(RouterStatus("e", 10.0, frozenset({"Exit", "Running"})))
    selector = PathSelector(consensus, seed=4)
    for _ in range(50):
        guard, middle, exit_fp = selector.select_path()
        assert len({guard, middle, exit_fp}) == 3
        assert exit_fp == "e"
        assert guard == "g"


def test_path_selection_follows_weights():
    consensus = Consensus(valid_after=0)
    flags = frozenset({"Guard", "Exit", "Running"})
    weights = {"big": 85.0, "mid": 9.0, "small": 1.0}
    for name, weight in weights.items():
        consensus.add(RouterStatus(name, weight, flags))
    for i in range(5):  # filler relays so paths do not use everyone
        consensus.add(RouterStatus(f"filler{i}", 1.0, flags))
    selector = PathSelector(consensus, seed=5)
    seen = Counter()
    for _ in range(3000):
        for fp in selector.select_path():
            seen[fp] += 1
    assert seen["big"] > seen["mid"] > seen["small"]


def test_circuit_validation():
    with pytest.raises(ValueError):
        Circuit(path=())
    with pytest.raises(ValueError):
        Circuit(path=("a", "a", "b"))
    with pytest.raises(ValueError):
        Circuit(path=("a", "b"), is_measurement=True)


def test_measurement_circuit_one_hop():
    circuit = Circuit(path=("target",), is_measurement=True)
    assert circuit.entry == circuit.exit == "target"


def test_circuit_rate_cap_streams():
    """One stream is stream-window bound; two max the circuit window."""
    one = circuit_rate_cap(0.1, n_streams=1)
    two = circuit_rate_cap(0.1, n_streams=2)
    three = circuit_rate_cap(0.1, n_streams=3)
    assert two == pytest.approx(2 * one)
    assert three == pytest.approx(two)  # circuit window binds at 1000 cells


def test_circuit_rate_cap_scales_inverse_rtt():
    assert circuit_rate_cap(0.05) == pytest.approx(2 * circuit_rate_cap(0.1))


def test_circuit_rate_cap_zero_streams():
    assert circuit_rate_cap(0.1, n_streams=0) == 0.0
