"""Oracle suite for the columnar network layer.

The contract of :mod:`repro.tornet.columnar` is *bit-identity* with the
historical object path: same fingerprints, same capacities, same flags,
same RNG streams, same aggregates -- exact ``==``, no tolerances.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.tornet.columnar import (
    ColumnarTorNetwork,
    ColumnTokenBucket,
    noise_row,
    synthesize_columns,
)
from repro.tornet.network import (
    TorNetwork,
    sample_scaled_network,
    synthesize_network,
)
from repro.tornet.relay import Relay
from repro.units import mbit


def _object_network(n, seed, **kwargs):
    return synthesize_network(n_relays=n, seed=seed, columnar=False, **kwargs)


def _columnar_network(n, seed, **kwargs):
    net = synthesize_network(n_relays=n, seed=seed, columnar=True, **kwargs)
    assert isinstance(net, ColumnarTorNetwork)
    return net


@pytest.mark.parametrize("n", [1, 2, 6, 150])
@pytest.mark.parametrize("seed", [0, 7, 424242])
def test_columnar_synthesis_bit_identical_to_object_path(n, seed):
    obj = _object_network(n, seed)
    col = _columnar_network(n, seed)

    assert list(obj.relays) == list(col.relays)
    for fp in obj.relays:
        a, b = obj[fp], col[fp]
        assert a.fingerprint == b.fingerprint
        assert a.nickname == b.nickname
        assert a.cpu.max_forward_bits == b.cpu.max_forward_bits
        assert a.host.link_capacity == b.host.link_capacity
        assert a.flags == b.flags
        assert a.jitter == b.jitter
        assert a.seed == b.seed
        assert a.true_capacity == b.true_capacity


def test_same_seed_is_deterministic_across_paths_and_calls():
    """Satellite: same seed -> identical relays, every path, every call."""
    nets = [
        _object_network(40, 99),
        _object_network(40, 99),
        _columnar_network(40, 99),
        _columnar_network(40, 99),
    ]
    base = nets[0]
    for net in nets[1:]:
        assert list(net.relays) == list(base.relays)
        for fp in base.relays:
            assert net[fp].true_capacity == base[fp].true_capacity
            assert net[fp].flags == base[fp].flags
    assert _columnar_network(40, 100).capacities() != base.capacities()


def test_aggregates_bit_identical():
    for n, seed in [(1, 3), (5, 3), (151, 12)]:
        obj, col = _object_network(n, seed), _columnar_network(n, seed)
        assert col.capacities() == obj.capacities()
        assert col.total_capacity() == obj.total_capacity()
        assert col.max_capacity() == obj.max_capacity()
        for pct in (0, 1, 25, 50, 73.5, 99, 100):
            assert col.percentile_capacity(pct) == obj.percentile_capacity(pct)


def test_noise_stream_bit_identical():
    obj, col = _object_network(8, 21), _columnar_network(8, 21)
    for fp in obj.relays:
        assert obj[fp].draw_noise_series(10) == col[fp].draw_noise_series(10)


def test_view_identity_and_cache():
    col = _columnar_network(5, 1)
    fp = next(iter(col.relays))
    assert col[fp] is col[fp]
    assert isinstance(col[fp], Relay)
    assert fp in col.relays and "nope" not in col.relays
    assert len(col) == 5


def test_view_rate_limit_writes_through_to_columns():
    col = _columnar_network(4, 5)
    fp = list(col.relays)[2]
    relay = col[fp]
    index = col.columns.index_of(fp)

    relay.set_rate_limit(mbit(10))
    assert isinstance(relay.bucket, ColumnTokenBucket)
    assert relay.rate_limit == mbit(10)
    assert col.columns.has_bucket[index]
    # Bucket starts full and its tokens live in the column array.
    assert relay.bucket.tokens == col.columns.bucket_tokens[index]
    before = relay.bucket.tokens
    relay.bucket.consume(1000.0)
    assert col.columns.bucket_tokens[index] == before - 1000.0

    relay.set_rate_limit(None)
    assert relay.bucket is None
    assert not col.columns.has_bucket[index]

    # Bit-identity with an object relay doing the same dance.
    obj = _object_network(4, 5)[fp]
    obj.set_rate_limit(mbit(10))
    obj.bucket.consume(1000.0)
    relay.set_rate_limit(mbit(10))
    relay.bucket.consume(1000.0)
    assert relay.bucket.tokens == obj.bucket.tokens
    assert relay.true_capacity == obj.true_capacity


def test_mapping_add_replace_delete_semantics():
    col = _columnar_network(6, 8)
    obj = _object_network(6, 8)
    fps = list(col.relays)

    # Delete.
    del col.relays[fps[1]]
    del obj.relays[fps[1]]
    assert list(col.relays) == list(obj.relays)
    assert fps[1] not in col.relays
    with pytest.raises(KeyError):
        col[fps[1]]

    # Replace an existing view with a foreign relay.
    foreign = _object_network(1, 777, prefix="other")
    other = foreign[next(iter(foreign.relays))]
    col.relays[fps[2]] = other
    assert col[fps[2]] is other
    assert not col.relays.is_pure

    # Add a brand-new fingerprint.
    col.relays["brand-new"] = other
    assert "brand-new" in col.relays
    assert list(col.relays)[-1] == "brand-new"

    # Aggregates fall back to the object path and stay consistent with
    # a plain dict network holding the same relays.
    plain = TorNetwork(dict(col.relays.items()))
    assert col.capacities() == plain.capacities()
    assert col.total_capacity() == plain.total_capacity()
    assert col.max_capacity() == plain.max_capacity()
    assert col.percentile_capacity(50) == plain.percentile_capacity(50)

    # Re-adding a deleted fingerprint resurrects it at the end.
    col.relays[fps[1]] = other
    assert list(col.relays)[-1] == fps[1]


def test_sample_scaled_network_bit_identical():
    obj = _object_network(200, 31)
    col = _columnar_network(200, 31)
    for fraction, seed in [(0.05, 0), (0.25, 9)]:
        a = sample_scaled_network(obj, fraction=fraction, seed=seed)
        b = sample_scaled_network(col, fraction=fraction, seed=seed)
        assert list(a.relays) == list(b.relays)
        assert a.capacities() == b.capacities()


def test_empty_network_aggregates_raise():
    """Satellite: empty-network aggregates fail loudly, both paths."""
    for net in (TorNetwork(), ColumnarTorNetwork(synthesize_columns(0, 1))):
        with pytest.raises(ConfigurationError, match="empty network"):
            net.total_capacity()
        with pytest.raises(ConfigurationError, match="empty network"):
            net.max_capacity()
        with pytest.raises(ConfigurationError, match="empty network"):
            net.percentile_capacity(50)


def test_percentile_boundaries_pinned():
    """Satellite: pct=0 is the minimum, pct=100 the maximum."""
    for net in (_object_network(37, 2), _columnar_network(37, 2)):
        caps = sorted(net.capacities().values())
        assert net.percentile_capacity(0) == caps[0]
        assert net.percentile_capacity(100) == caps[-1]


def test_noise_row_matches_and_replays_skip():
    """The column-wise jitter predraw reproduces draw_noise_series and
    leaves the relay's stateful stream on the identical position."""
    ref = _object_network(3, 55)
    col = _columnar_network(3, 55)
    fp = list(ref.relays)[1]

    # Fresh relay: predrawn row == stateful draws, bit for bit.
    row = noise_row(col[fp], 7)
    assert row.tolist() == ref[fp].draw_noise_series(7)
    col[fp]._noise_skip += 7  # what compile_measurement records

    # After the skip replays, both streams continue identically --
    # including across an odd draw count (cached gauss_next).
    assert col[fp].draw_noise_series(5) == ref[fp].draw_noise_series(5)

    # Chained predraws keep matching without touching the CPython RNG.
    row2 = noise_row(col[fp], 4)
    assert row2.tolist() == ref[fp].draw_noise_series(4)
    col[fp]._noise_skip += 4
    assert col[fp].draw_noise_series(3) == ref[fp].draw_noise_series(3)


def test_materialization_scales():
    """10^5 relays materialize in well under the 5 s criterion."""
    import time

    start = time.perf_counter()
    net = _columnar_network(100_000, 1)
    elapsed = time.perf_counter() - start
    assert len(net) == 100_000
    assert elapsed < 5.0
    # Aggregates stay array-speed on the pure columnar network.
    assert net.total_capacity() > 0
    assert net.percentile_capacity(50) <= net.max_capacity()
    assert math.isfinite(net.max_capacity())
