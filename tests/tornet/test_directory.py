"""Tests for descriptors, consensuses, authorities, shared randomness."""

import pytest

from repro.errors import ProtocolError
from repro.tornet.authority import (
    SharedRandomness,
    build_consensus,
    median_vote,
)
from repro.tornet.consensus import Consensus, RouterStatus
from repro.tornet.descriptor import (
    PUBLISH_INTERVAL,
    ServerDescriptor,
    due_for_publish,
)


def test_advertised_is_min_of_observed_and_limits():
    desc = ServerDescriptor(
        fingerprint="r", published_at=0, observed_bw=1000.0,
        bandwidth_rate=500.0, bandwidth_burst=800.0,
    )
    assert desc.advertised_bw == 500.0


def test_advertised_without_limits_is_observed():
    desc = ServerDescriptor(fingerprint="r", published_at=0, observed_bw=123.0)
    assert desc.advertised_bw == 123.0


def test_publish_interval_is_18_hours():
    assert PUBLISH_INTERVAL == 18 * 3600


def test_due_for_publish():
    assert due_for_publish(None, 0)
    assert not due_for_publish(0, PUBLISH_INTERVAL - 1)
    assert due_for_publish(0, PUBLISH_INTERVAL)


def test_consensus_normalized_weights_sum_to_one():
    consensus = Consensus(valid_after=0)
    for i, weight in enumerate((10.0, 30.0, 60.0)):
        consensus.add(RouterStatus(fingerprint=f"r{i}", weight=weight))
    normalized = consensus.normalized_weights()
    assert sum(normalized.values()) == pytest.approx(1.0)
    assert normalized["r2"] == pytest.approx(0.6)


def test_consensus_flag_filter():
    consensus = Consensus(valid_after=0)
    consensus.add(RouterStatus("a", 1.0, frozenset({"Running", "Exit"})))
    consensus.add(RouterStatus("b", 1.0, frozenset({"Running"})))
    exits = consensus.with_flag("Exit")
    assert [r.fingerprint for r in exits] == ["a"]


def test_median_vote():
    assert median_vote([1.0, 5.0, 100.0]) == 5.0
    with pytest.raises(ProtocolError):
        median_vote([])


def test_build_consensus_takes_median_of_votes():
    votes = {
        "bwauth0": {"r1": 100.0, "r2": 10.0},
        "bwauth1": {"r1": 110.0, "r2": 12.0},
        "bwauth2": {"r1": 500.0},  # one outlier vote for r1
    }
    consensus = build_consensus(0, votes, min_votes=2)
    assert consensus.routers["r1"].weight == 110.0
    assert consensus.routers["r2"].weight == 11.0


def test_build_consensus_min_votes_excludes():
    votes = {"bwauth0": {"r1": 1.0}, "bwauth1": {}}
    consensus = build_consensus(0, votes, min_votes=2)
    assert "r1" not in consensus


def test_shared_randomness_full_round():
    seed_a = SharedRandomness.run_round(["a", "b", "c"], seed=1)
    seed_b = SharedRandomness.run_round(["a", "b", "c"], seed=1)
    assert seed_a == seed_b
    assert len(seed_a) == 32


def test_shared_randomness_different_seeds_differ():
    assert SharedRandomness.run_round(["a", "b"], seed=1) != \
        SharedRandomness.run_round(["a", "b"], seed=2)


def test_shared_randomness_reveal_must_match_commit():
    protocol = SharedRandomness(["a", "b"], seed=3)
    reveal_a = protocol.make_reveal()
    reveal_b = protocol.make_reveal()
    protocol.submit_commit("a", SharedRandomness.commitment(reveal_a))
    protocol.submit_commit("b", SharedRandomness.commitment(reveal_b))
    with pytest.raises(ProtocolError):
        protocol.submit_reveal("a", reveal_b)  # wrong reveal


def test_shared_randomness_phases_enforced():
    protocol = SharedRandomness(["a", "b"], seed=4)
    with pytest.raises(ProtocolError):
        protocol.submit_reveal("a", b"\x00" * 32)  # still in commit phase
    with pytest.raises(ProtocolError):
        protocol.seed()  # not done


def test_shared_randomness_unknown_authority():
    protocol = SharedRandomness(["a"], seed=5)
    with pytest.raises(ProtocolError):
        protocol.submit_commit("zz", b"\x00" * 32)
