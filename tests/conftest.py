"""Shared fixtures for the FlashFlow reproduction test suite."""

from __future__ import annotations

import pytest

from repro import quick_team
from repro.core.params import FlashFlowParams
from repro.netsim.latency import NetworkModel
from repro.tornet.relay import Relay
from repro.units import mbit


@pytest.fixture
def params() -> FlashFlowParams:
    return FlashFlowParams()


@pytest.fixture
def small_params() -> FlashFlowParams:
    """Short slots for fast protocol tests."""
    return FlashFlowParams(slot_seconds=10)


@pytest.fixture
def team_auth():
    """The paper's reference team: 3 x 1 Gbit/s measurers."""
    return quick_team(seed=1234)


@pytest.fixture
def relay_250():
    return Relay.with_capacity("relay-250", mbit(250), seed=7)


@pytest.fixture
def internet() -> NetworkModel:
    return NetworkModel.paper_internet(seed=99)
