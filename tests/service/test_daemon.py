"""The continuous daemon: period loop, churn end-to-end, publication."""

from __future__ import annotations

import pytest

from repro.api.execution import ExecutionConfig
from repro.core.bwfile import BandwidthFile
from repro.errors import ConfigurationError
from repro.service import BwauthDaemon, ServiceConfig, run_daemon
from repro.service.churn import ChurnConfig
from repro.service.daemon import status
from repro.service.journal import read_journal
from repro.units import DAY


def analytic_config(**overrides) -> ServiceConfig:
    defaults = dict(
        overrides={"n_relays": 12},
        periods=4,
        churn=ChurnConfig(seed=3, join_rate=2.0, leave_fraction=0.15),
        execution=ExecutionConfig(full_simulation=False),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def test_daemon_runs_every_period_and_publishes(tmp_path):
    out_dir = tmp_path / "v3bw"
    config = analytic_config(out_dir=str(out_dir))
    daemon = run_daemon(config, journal_path=tmp_path / "svc.jsonl")
    assert daemon.next_period == config.periods
    assert [k for k, _ in daemon.published] == list(range(config.periods))
    assert sorted(p.name for p in out_dir.iterdir()) == [
        f"v3bw-{k:05d}.txt" for k in range(config.periods)
    ]
    # Period k's bwfile timestamps the start of day k (Deployment's
    # period numbering survives the service layer).
    last = BandwidthFile.parse(daemon.published[-1][1])
    assert last.timestamp == (config.periods - 1) * DAY


def test_every_surviving_relay_is_measured_and_published():
    config = analytic_config()
    daemon = run_daemon(config)
    # The final membership (all churn applied) is exactly what the
    # final period measured and the final bandwidth file carries.
    final = BandwidthFile.parse(daemon.published[-1][1])
    assert set(final.capacities()) == set(daemon.table.fingerprints())
    assert daemon.period_stats[-1]["n_failed"] == 0


def test_churn_moves_at_least_ten_percent_of_the_network():
    config = analytic_config(
        churn=ChurnConfig(seed=3, join_rate=3.0, leave_fraction=0.2)
    )
    daemon = run_daemon(config)
    counters = daemon.registry.snapshot()["counters"]
    moved = counters["service.churn.joins"] + counters["service.churn.leaves"]
    assert moved >= 0.1 * 12
    # Joined relays that survived are measured like anyone else.
    joined = [
        fp for fp in daemon.table.fingerprints() if fp.startswith("joined")
    ]
    assert joined
    final = BandwidthFile.parse(daemon.published[-1][1])
    assert all(fp in final for fp in joined)


def test_journal_records_cover_the_run(tmp_path):
    journal_path = tmp_path / "svc.jsonl"
    config = analytic_config()
    daemon = run_daemon(config, journal_path=journal_path)
    records = read_journal(journal_path)
    kinds = [r["type"] for r in records]
    assert kinds[0] == "manifest"
    assert kinds[-1] == "end"
    assert records[-1]["complete"] is True
    assert kinds.count("period_started") == config.periods
    assert kinds.count("period_completed") == config.periods
    assert kinds.count("snapshot") == config.periods
    assert kinds.count("published") == config.periods
    assert kinds.count("churn") == config.periods - 1  # none before period 0
    assert kinds.count("round") == sum(
        s["rounds"] for s in daemon.period_stats
    )
    span_names = {r["name"] for r in records if r["type"] == "span"}
    assert span_names == {
        "service.period", "service.churn.applied", "service.publish",
    }
    # Snapshots embed the metrics registry; the last one has the totals.
    last_snapshot = [r for r in records if r["type"] == "snapshot"][-1]
    counters = last_snapshot["metrics"]["counters"]
    assert counters["service.periods"] == config.periods
    assert counters["service.churn.applied"] > 0


def test_published_sha_matches_journal(tmp_path):
    import hashlib

    journal_path = tmp_path / "svc.jsonl"
    daemon = run_daemon(analytic_config(), journal_path=journal_path)
    journaled = {
        r["period"]: r["sha256"]
        for r in read_journal(journal_path)
        if r["type"] == "published"
    }
    for k, text in daemon.published:
        assert journaled[k] == hashlib.sha256(text.encode()).hexdigest()


def test_priors_carry_forward_between_periods(tmp_path):
    journal_path = tmp_path / "svc.jsonl"
    run_daemon(analytic_config(), journal_path=journal_path)
    completed = [
        r for r in read_journal(journal_path) if r["type"] == "period_completed"
    ]
    # Period 0 has no priors; later periods inherit every surviving
    # relay's previous estimate.
    assert completed[0]["n_priors"] == 0
    for record in completed[1:]:
        assert record["n_priors"] > 0


def test_publish_cadence_respects_publish_every():
    config = analytic_config(periods=4, publish_every=2)
    daemon = run_daemon(config)
    assert [k for k, _ in daemon.published] == [1, 3]


def test_no_churn_keeps_membership_frozen():
    config = analytic_config(churn=None)
    daemon = run_daemon(config)
    assert len(daemon.table) == 12
    assert daemon.registry.snapshot()["counters"].get(
        "service.churn.applied", 0
    ) == 0


def test_simulated_clock_advances_by_period_seconds():
    config = analytic_config(periods=3, period_seconds=float(DAY))
    daemon = BwauthDaemon(config)
    daemon.run()
    assert daemon.clock.now() == 2 * DAY  # periods 1 and 2 each waited


def test_status_summarizes_a_journal(tmp_path):
    journal_path = tmp_path / "svc.jsonl"
    config = analytic_config()
    run_daemon(config, journal_path=journal_path)
    summary = status(journal_path)
    assert summary["scenario"] == "continuous-deployment"
    assert summary["periods_completed"] == config.periods
    assert summary["complete"] is True
    assert summary["resumes"] == 0


def test_service_config_round_trips_and_validates():
    config = analytic_config()
    assert ServiceConfig.from_dict(config.to_dict()) == config
    with pytest.raises(ConfigurationError):
        ServiceConfig(periods=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(clock="lunar")
    with pytest.raises(ConfigurationError):
        # Explicit-network scenarios cannot seed a durable table.
        ServiceConfig(scenario="nope").base_scenario()
