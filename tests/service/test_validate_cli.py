"""Journal validation and the ``python -m repro.service`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.api.execution import ExecutionConfig
from repro.service import BwauthDaemon, ServiceConfig, run_daemon
from repro.service.__main__ import main as service_main
from repro.service.churn import ChurnConfig
from repro.service.validate import (
    JournalValidationError,
    validate_journal,
    main as validate_main,
)


def _run(tmp_path, **overrides):
    defaults = dict(
        overrides={"n_relays": 10},
        periods=3,
        churn=ChurnConfig(seed=1, join_rate=2.0, leave_fraction=0.1),
        execution=ExecutionConfig(full_simulation=False),
    )
    defaults.update(overrides)
    journal_path = tmp_path / "svc.jsonl"
    daemon = run_daemon(ServiceConfig(**defaults), journal_path=journal_path)
    return daemon, journal_path


def test_valid_journal_passes_with_stats(tmp_path):
    daemon, journal_path = _run(tmp_path)
    stats = validate_journal(journal_path)
    assert stats["periods_completed"] == 3
    assert stats["snapshots"] == 3
    assert stats["published"] == 3
    assert stats["resumes"] == 0
    assert stats["complete"] is True
    assert stats["truncated_tail"] is False
    assert "service.churn.applied" in stats["span_names"]


def test_resumed_journal_passes(tmp_path):
    journal_path = tmp_path / "svc.jsonl"
    run_daemon(
        ServiceConfig(
            overrides={"n_relays": 10},
            periods=3,
            execution=ExecutionConfig(full_simulation=False),
        ),
        journal_path=journal_path,
        until_period=1,
    )
    resumed = BwauthDaemon.resume(journal_path)
    resumed.run()
    resumed.close()
    stats = validate_journal(journal_path)
    assert stats["resumes"] == 1
    assert stats["complete"] is True


def test_truncated_tail_is_tolerated_but_coherence_is_enforced(tmp_path):
    _, journal_path = _run(tmp_path)
    text = journal_path.read_text()
    journal_path.write_text(text + '{"type": "per')
    stats = validate_journal(journal_path)
    assert stats["truncated_tail"] is True

    # Corruption anywhere earlier is NOT tolerated.
    lines = text.splitlines()
    lines[3] = lines[3][: len(lines[3]) // 2]
    journal_path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalValidationError):
        validate_journal(journal_path)


def test_out_of_order_periods_fail(tmp_path):
    _, journal_path = _run(tmp_path)
    records = [
        json.loads(line) for line in journal_path.read_text().splitlines()
    ]
    for record in records:
        if record["type"] in ("period_started", "period_completed"):
            record["period"] = {0: 0, 1: 2, 2: 1}[record["period"]]
    journal_path.write_text(
        "\n".join(json.dumps(r) for r in records) + "\n"
    )
    with pytest.raises(JournalValidationError, match="out of order|match"):
        validate_journal(journal_path)


def test_missing_manifest_fails(tmp_path):
    journal_path = tmp_path / "svc.jsonl"
    journal_path.write_text('{"type": "end", "complete": true}\n')
    with pytest.raises(JournalValidationError, match="manifest"):
        validate_journal(journal_path)


def test_validate_cli_exit_codes(tmp_path, capsys):
    _, journal_path = _run(tmp_path)
    assert validate_main([str(journal_path), "--expect-complete"]) == 0
    assert "valid flashflow-service/1" in capsys.readouterr().out
    journal_path.write_text('{"type": "end"}\n')
    assert validate_main([str(journal_path)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_service_cli_run_resume_status(tmp_path, capsys):
    journal = tmp_path / "svc.jsonl"
    out_dir = tmp_path / "v3bw"
    base = [
        "--journal", str(journal), "--stop-after", "2",
    ]
    code = service_main(
        [
            "run", "--periods", "3", "--analytic", "-o", "n_relays=8",
            "--out-dir", str(out_dir), *base,
        ]
    )
    assert code == 0
    first = json.loads(capsys.readouterr().out)
    assert first["next_period"] == 2
    assert first["complete"] is False

    assert service_main(["resume", "--journal", str(journal)]) == 0
    resumed = json.loads(capsys.readouterr().out)
    assert resumed["complete"] is True
    assert resumed["periods_run"] == [2]

    assert service_main(["status", "--journal", str(journal)]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["complete"] is True
    assert summary["resumes"] == 1
    assert sorted(p.name for p in out_dir.iterdir()) == [
        "v3bw-00000.txt", "v3bw-00001.txt", "v3bw-00002.txt",
    ]


def test_service_cli_reports_errors(tmp_path, capsys):
    missing = tmp_path / "nope.jsonl"
    assert service_main(["status", "--journal", str(missing)]) == 1
    assert "error:" in capsys.readouterr().err
