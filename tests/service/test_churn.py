"""Churn feed determinism and application semantics."""

from __future__ import annotations

import pytest

from repro.core.params import FlashFlowParams
from repro.core.schedule import PeriodSchedule
from repro.errors import ConfigurationError
from repro.service.churn import (
    ChurnConfig,
    ChurnEvent,
    apply_to_schedule,
    churn_events_for_period,
)
from repro.service.state import NetworkTable, RelayRow
from repro.units import gbit, mbit


def _table(n: int = 10) -> NetworkTable:
    return NetworkTable(
        {
            f"relay{i:03d}": RelayRow(
                fingerprint=f"relay{i:03d}",
                capacity=mbit(50 + 10 * i),
                seed=1000 + i,
            )
            for i in range(n)
        }
    )


def test_events_are_deterministic_and_membership_order_free():
    config = ChurnConfig(seed=9, join_rate=3.0, leave_fraction=0.2,
                         capacity_change_fraction=0.3)
    members = [f"relay{i:03d}" for i in range(20)]
    a = churn_events_for_period(config, 4, members)
    b = churn_events_for_period(config, 4, list(reversed(members)))
    assert a == b
    assert a  # the rates above produce events at this size
    # A different period re-derives a different stream.
    assert a != churn_events_for_period(config, 5, members)


def test_event_order_is_leaves_then_joins_then_capacity():
    config = ChurnConfig(seed=2, join_rate=4.0, leave_fraction=0.3,
                         capacity_change_fraction=0.5)
    events = churn_events_for_period(config, 1, [f"r{i}" for i in range(30)])
    kinds = [e.kind for e in events]
    boundary = [k for k in ("leave", "join", "capacity") if k in kinds]
    collapsed = [k for i, k in enumerate(kinds) if i == 0 or kinds[i - 1] != k]
    assert collapsed == boundary


def test_events_round_trip_through_dicts():
    config = ChurnConfig(seed=5, join_rate=3.0, leave_fraction=0.2,
                         capacity_change_fraction=0.4)
    events = churn_events_for_period(config, 2, [f"r{i}" for i in range(15)])
    assert [ChurnEvent.from_dict(e.to_dict()) for e in events] == events
    assert ChurnConfig.from_dict(config.to_dict()) == config


def test_table_apply_churn_joins_leaves_and_drift():
    table = _table(10)
    before = dict(table.rows)
    events = [
        ChurnEvent(kind="leave", fingerprint="relay003"),
        ChurnEvent(kind="join", fingerprint="fresh", capacity=mbit(80),
                   seed=77),
        ChurnEvent(kind="capacity", fingerprint="relay005", capacity=2.0),
        ChurnEvent(kind="capacity", fingerprint="gone", capacity=2.0),
        ChurnEvent(kind="leave", fingerprint="also-gone"),
    ]
    counts = table.apply_churn(events)
    assert counts == {"joins": 1, "leaves": 1, "capacity_changes": 1}
    assert "relay003" not in table
    assert table.rows["fresh"].capacity == mbit(80)
    assert table.rows["fresh"].seed == 77
    assert table.rows["relay005"].capacity == 2.0 * before["relay005"].capacity


def test_join_collision_is_a_configuration_error():
    table = _table(3)
    with pytest.raises(ConfigurationError):
        table.apply_churn(
            [ChurnEvent(kind="join", fingerprint="relay000",
                        capacity=mbit(10), seed=1)]
        )


def test_apply_to_schedule_releases_and_reuses_capacity(params):
    estimates = {f"relay{i:03d}": mbit(100) for i in range(6)}
    schedule = PeriodSchedule.build(params, gbit(3.0), estimates, seed=b"s")
    events = [
        ChurnEvent(kind="leave", fingerprint="relay002"),
        ChurnEvent(kind="leave", fingerprint="not-scheduled"),
        ChurnEvent(kind="join", fingerprint="fresh", capacity=mbit(80),
                   seed=5),
        ChurnEvent(kind="capacity", fingerprint="relay001", capacity=1.5),
    ]
    counts = apply_to_schedule(schedule, events, params.new_relay_seed)
    assert counts == {"joins": 1, "leaves": 1, "capacity_changes": 1,
                      "unslotted": 0}
    assert "relay002" not in schedule.assignments
    assert schedule.assignments["fresh"].is_new


def test_apply_to_schedule_counts_unslottable_joins(params):
    # A single-slot schedule already holding a full-capacity relay
    # cannot take any join: it must be counted, not raised.
    tight = FlashFlowParams(
        slot_seconds=params.period_seconds, period_seconds=params.period_seconds
    )
    schedule = PeriodSchedule.build(
        tight, gbit(1.0), {"big": gbit(1.0)}, seed=b"t"
    )
    counts = apply_to_schedule(
        schedule,
        [ChurnEvent(kind="join", fingerprint="fresh", capacity=mbit(10),
                    seed=1)],
        tight.new_relay_seed,
    )
    assert counts["unslotted"] == 1
    assert "fresh" not in schedule.assignments


def test_churn_config_validation():
    with pytest.raises(ConfigurationError):
        ChurnConfig(join_rate=-1.0)
    with pytest.raises(ConfigurationError):
        ChurnConfig(leave_fraction=1.0)
    with pytest.raises(ConfigurationError):
        ChurnConfig(join_prefix="")
