"""Checkpoint/resume determinism: the acceptance-criteria pins.

A daemon killed at a period boundary -- or mid-period, leaving a
truncated journal -- and resumed from its last snapshot must produce
**bit-identical** bandwidth files and per-period error stats for every
remaining period, and journaling itself must not perturb results.
"""

from __future__ import annotations

import pytest

from repro.api.execution import ExecutionConfig
from repro.errors import ConfigurationError
from repro.service import BwauthDaemon, ServiceConfig, run_daemon
from repro.service.churn import ChurnConfig
from repro.service.journal import read_journal

PERIODS = 4


def config(**overrides) -> ServiceConfig:
    defaults = dict(
        overrides={"n_relays": 12},
        periods=PERIODS,
        churn=ChurnConfig(seed=3, join_rate=2.0, leave_fraction=0.15,
                          capacity_change_fraction=0.2),
        execution=ExecutionConfig(full_simulation=False),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture(scope="module")
def reference():
    """One uninterrupted deployment: the oracle every test compares to."""
    daemon = run_daemon(config())
    return {
        "published": dict(daemon.published),
        "stats": {s["period"]: s for s in daemon.period_stats},
        "members": sorted(daemon.table.fingerprints()),
        "history": daemon.deployment.history_snapshot(),
    }


def test_journaling_does_not_perturb_results(tmp_path, reference):
    daemon = run_daemon(config(), journal_path=tmp_path / "svc.jsonl")
    assert dict(daemon.published) == reference["published"]
    assert {s["period"]: s for s in daemon.period_stats} == reference["stats"]


@pytest.mark.parametrize("kill_at", [1, 2, 3])
def test_kill_at_boundary_resumes_bit_identical(tmp_path, reference, kill_at):
    journal_path = tmp_path / "svc.jsonl"
    first = run_daemon(config(), journal_path=journal_path,
                       until_period=kill_at)
    assert first.next_period == kill_at

    resumed = BwauthDaemon.resume(journal_path)
    assert resumed.next_period == kill_at
    resumed.run()
    resumed.close()

    published = dict(first.published)
    published.update(dict(resumed.published))
    assert published == reference["published"]

    stats = {s["period"]: s for s in first.period_stats}
    stats.update({s["period"]: s for s in resumed.period_stats})
    assert stats == reference["stats"]

    assert sorted(resumed.table.fingerprints()) == reference["members"]
    assert resumed.deployment.history_snapshot() == reference["history"]


def test_truncated_journal_resumes_from_last_boundary(tmp_path, reference):
    journal_path = tmp_path / "svc.jsonl"
    run_daemon(config(), journal_path=journal_path)

    # Simulate a kill mid-period 2: keep everything through period 1's
    # snapshot, a few period-2 records, then half a line.
    lines = journal_path.read_text().splitlines()
    snapshots = [i for i, line in enumerate(lines) if '"snapshot"' in line]
    cut = snapshots[1]  # the boundary after period 1
    kept = lines[: cut + 3]  # snapshot + the start of period 2
    truncated = tmp_path / "truncated.jsonl"
    truncated.write_text(
        "\n".join(kept) + "\n" + lines[cut + 3][: len(lines[cut + 3]) // 2]
    )

    resumed = BwauthDaemon.resume(truncated)
    assert resumed.next_period == 2  # periods 0-1 are durable
    resumed.run()
    resumed.close()

    for k in (2, 3):
        assert dict(resumed.published)[k] == reference["published"][k]
    assert {s["period"]: s for s in resumed.period_stats} == {
        k: reference["stats"][k] for k in (2, 3)
    }

    # The reopened journal is itself a valid, resumable record.
    records = read_journal(truncated)
    assert sum(1 for r in records if r["type"] == "resumed") == 1
    assert records[-1]["type"] == "end"
    assert records[-1]["complete"] is True


def test_resume_without_snapshot_is_an_error(tmp_path):
    journal_path = tmp_path / "svc.jsonl"
    daemon = BwauthDaemon(config(), journal_path=journal_path)
    daemon.close()  # died before the first period boundary
    with pytest.raises(ConfigurationError, match="no complete snapshot"):
        BwauthDaemon.resume(journal_path)


def test_double_resume_chains(tmp_path, reference):
    journal_path = tmp_path / "svc.jsonl"
    run_daemon(config(), journal_path=journal_path, until_period=1)
    second = BwauthDaemon.resume(journal_path)
    second.run(until_period=3)
    second.close()
    third = BwauthDaemon.resume(journal_path)
    third.run()
    third.close()
    assert dict(third.published) == {
        3: reference["published"][3]
    }
    records = read_journal(journal_path)
    assert sum(1 for r in records if r["type"] == "resumed") == 2
