"""Tests for deterministic randomness derivation."""

from repro.rng import fork, fork_numpy, seed_from


def test_seed_from_is_deterministic():
    assert seed_from(42, "label") == seed_from(42, "label")


def test_seed_from_differs_by_label():
    assert seed_from(42, "a") != seed_from(42, "b")


def test_seed_from_differs_by_parent():
    assert seed_from(1, "a") != seed_from(2, "a")


def test_fork_reproducible_streams():
    a, b = fork(7, "x"), fork(7, "x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_fork_independent_streams():
    a, b = fork(7, "x"), fork(7, "y")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_numpy_reproducible():
    a, b = fork_numpy(7, "x"), fork_numpy(7, "x")
    assert (a.random(5) == b.random(5)).all()


def test_fork_numpy_independent():
    a, b = fork_numpy(7, "x"), fork_numpy(7, "y")
    assert not (a.random(5) == b.random(5)).all()
