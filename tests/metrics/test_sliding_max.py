"""Property tests for the van Herk / Gil-Werman trailing maximum.

The §3 analysis applies year-long trailing-max windows to decade-long
archives; the O(n) block algorithm must agree exactly with the naive
definition, including expanding-window edges.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.analysis import _trailing_max_exact


def _naive(values: np.ndarray, window: int) -> np.ndarray:
    n = values.shape[-1]
    w = min(window, n)
    out = np.empty_like(values, dtype=float)
    for j in range(n):
        out[..., j] = values[..., max(0, j - w + 1): j + 1].max(axis=-1)
    return out


@given(
    n=st.integers(min_value=1, max_value=120),
    window=st.integers(min_value=1, max_value=150),
    seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=200, deadline=None)
def test_matches_naive_definition(n, window, seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(3, n))
    got = _trailing_max_exact(values, window)
    assert np.allclose(got, _naive(values, window))


@given(
    n=st.integers(min_value=2, max_value=100),
    seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=60, deadline=None)
def test_window_one_is_identity(n, seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(2, n))
    assert np.array_equal(_trailing_max_exact(values, 1), values)


@given(
    n=st.integers(min_value=1, max_value=80),
    seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=60, deadline=None)
def test_full_window_is_running_max(n, seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n,))
    got = _trailing_max_exact(values[None, :], n + 50)[0]
    assert np.allclose(got, np.maximum.accumulate(values))


def test_result_dominates_input_and_is_window_monotone():
    rng = np.random.default_rng(1)
    values = rng.normal(size=(4, 200))
    small = _trailing_max_exact(values, 5)
    large = _trailing_max_exact(values, 50)
    assert (small >= values - 1e-12).all()
    assert (large >= small - 1e-12).all()


def test_handles_negative_infinity_padding_values():
    values = np.array([[-np.inf, 1.0, -np.inf, 2.0]])
    got = _trailing_max_exact(values, 2)
    assert got[0].tolist() == [-np.inf, 1.0, 1.0, 2.0]
