"""Tests for Equations 1-7 on hand-constructed archives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.analysis import (
    capacity_proxy,
    network_capacity_error,
    network_weight_error,
    normalized_capacity,
    relative_std,
    relative_std_means,
    relay_capacity_error,
    relay_capacity_error_means,
    relay_weight_error,
)
from repro.metrics.archive import MetricsArchive


def _archive(advertised, weights=None, presence=None, capacity=None):
    advertised = np.asarray(advertised, dtype=float)
    n, hours = advertised.shape
    if weights is None:
        totals = advertised.sum(axis=0)
        totals[totals == 0] = 1.0
        weights = advertised / totals
    if presence is None:
        presence = np.ones_like(advertised, dtype=bool)
    return MetricsArchive(
        relays=[f"r{i}" for i in range(n)],
        advertised=advertised,
        weights=np.asarray(weights, dtype=float),
        presence=np.asarray(presence, dtype=bool),
        true_capacity=capacity,
    )


def test_capacity_proxy_is_trailing_max():
    archive = _archive([[10, 20, 15, 5, 30]])
    proxy = capacity_proxy(archive, period_hours=2)
    assert proxy[0].tolist() == [10, 20, 20, 15, 30]


def test_capacity_proxy_full_window():
    archive = _archive([[10, 20, 15, 5, 30]])
    proxy = capacity_proxy(archive, period_hours=100)
    assert proxy[0].tolist() == [10, 20, 20, 20, 30]


def test_rce_eq2_values():
    archive = _archive([[10, 20, 10]])
    error = relay_capacity_error(archive, period_hours=3)
    # Hour 2: A = 10, C = max(10, 20, 10) = 20 -> RCE = 0.5.
    assert error[0, 2] == pytest.approx(0.5)
    # Hour 1: A = 20 is the max -> RCE = 0.
    assert error[0, 1] == pytest.approx(0.0)


def test_rce_constant_relay_zero_error():
    archive = _archive([[50] * 24])
    means = relay_capacity_error_means(archive, period_hours=6, warmup_hours=6)
    assert means[0] == pytest.approx(0.0)


def test_rce_grows_with_period():
    """The paper's central shape: longer windows -> larger error."""
    rng = np.random.default_rng(1)
    series = 100 * (0.5 + 0.1 * rng.standard_normal(500)).clip(0.1)
    series[::97] = 100.0  # occasional spikes toward capacity
    archive = _archive([series])
    short = relay_capacity_error_means(archive, 24, warmup_hours=100)[0]
    long = relay_capacity_error_means(archive, 400, warmup_hours=400)[0]
    assert long > short


def test_nce_eq3_weighted_by_size():
    # Big relay error-free, small relay 50% wrong: NCE stays small.
    archive = _archive(
        [[1000, 1000], [10, 5]]
    )
    nce = network_capacity_error(archive, period_hours=2)
    assert nce[1] == pytest.approx(1 - 1005 / 1010)


def test_normalized_capacity_sums_to_one():
    archive = _archive([[10, 10], [30, 30], [60, 60]])
    cbar = normalized_capacity(archive, period_hours=2)
    assert cbar[:, 1].sum() == pytest.approx(1.0)


def test_rwe_eq5_perfect_weights():
    advertised = [[10, 10], [90, 90]]
    archive = _archive(advertised)
    rwe = relay_weight_error(archive, period_hours=2)
    # Weights here are proportional to the (constant) advertised = proxy.
    assert rwe[0, 1] == pytest.approx(1.0)
    assert rwe[1, 1] == pytest.approx(1.0)


def test_nwe_eq6_total_variation():
    archive = _archive(
        [[50, 50], [50, 50]],
        weights=[[0.9, 0.9], [0.1, 0.1]],
    )
    nwe = network_weight_error(archive, period_hours=2)
    # Capacity shares are (0.5, 0.5); weights (0.9, 0.1): TVD = 0.4.
    assert nwe[1] == pytest.approx(0.4)


def test_nwe_with_true_capacity():
    archive = _archive(
        [[1, 1], [1, 1]],
        weights=[[0.5, 0.5], [0.5, 0.5]],
        capacity=np.array([75.0, 25.0]),
    )
    nwe = network_weight_error(archive, true_capacity=archive.true_capacity)
    assert nwe[0] == pytest.approx(0.25)


def test_nwe_requires_period_or_capacity():
    archive = _archive([[1, 1]])
    with pytest.raises(ConfigurationError):
        network_weight_error(archive)


def test_offline_relays_excluded():
    presence = np.array([[True, True], [True, False]])
    archive = _archive([[10, 10], [90, 90]], presence=presence)
    nce = network_capacity_error(archive, period_hours=2)
    # Hour 1: only relay 0 online and error-free.
    assert nce[1] == pytest.approx(0.0)


def test_relative_std_eq7():
    assert relative_std(np.array([10.0, 10.0, 10.0])) == 0.0
    values = np.array([5.0, 15.0])
    assert relative_std(values) == pytest.approx(values.std() / 10.0)
    assert np.isnan(relative_std(np.array([1.0])))


def test_relative_std_means_constant_series():
    series = np.full((2, 200), 42.0)
    means = relative_std_means(series, period_hours=24)
    assert np.allclose(means, 0.0, atol=1e-6)


def test_relative_std_means_growing_with_variance():
    rng = np.random.default_rng(2)
    quiet = 100 + rng.normal(0, 1, 500)
    noisy = 100 + rng.normal(0, 40, 500)
    means = relative_std_means(np.stack([quiet, noisy]), period_hours=48)
    assert means[1] > means[0] * 5


def test_archive_shape_validation():
    with pytest.raises(ConfigurationError):
        MetricsArchive(
            relays=["a"],
            advertised=np.zeros((2, 3)),
            weights=np.zeros((2, 3)),
            presence=np.ones((2, 3), dtype=bool),
        )
