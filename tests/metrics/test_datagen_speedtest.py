"""Tests for the synthetic archive generator and the §3.4 replay.

Scaled-down archives (fewer relays/days than the calibrated defaults) are
used so the suite stays fast; assertions target the paper's qualitative
shapes rather than its exact percentages.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.analysis import (
    network_capacity_error,
    network_weight_error,
    relay_capacity_error_means,
    relay_weight_error_means,
)
from repro.metrics.datagen import ArchiveGenParams, generate_archive
from repro.metrics.speedtest import SpeedTestParams, run_speed_test_experiment


@pytest.fixture(scope="module")
def archive():
    return generate_archive(ArchiveGenParams(n_relays=80, n_days=120, seed=5))


def test_archive_dimensions(archive):
    assert archive.n_relays == 80
    assert archive.n_hours == 120 * 24


def test_deterministic_generation():
    params = ArchiveGenParams(n_relays=20, n_days=10, seed=9)
    a, b = generate_archive(params), generate_archive(params)
    assert np.array_equal(a.advertised, b.advertised)
    assert np.array_equal(a.weights, b.weights)


def test_advertised_never_exceeds_capacity(archive):
    caps = archive.true_capacity[:, None]
    assert np.all(archive.advertised <= caps + 1e-6)


def test_weights_normalized_each_hour(archive):
    totals = archive.weights.sum(axis=0)
    online_hours = archive.presence.any(axis=0)
    assert np.allclose(totals[online_hours], 1.0, atol=1e-9)


def test_descriptor_cadence_steps(archive):
    """Advertised bandwidth only changes at 18-hour publications."""
    row = archive.advertised[0]
    present = archive.presence[0]
    changes = np.flatnonzero(np.diff(row) != 0)
    changes = [t for t in changes if present[t] and present[t + 1]]
    if len(changes) >= 2:
        gaps = np.diff(changes)
        assert np.all(gaps % 18 == 0)


def test_error_grows_with_period(archive):
    """Figure 1/2's shape: day < week < month errors."""
    day = np.nanmedian(relay_capacity_error_means(archive, 24, warmup_hours=24 * 30))
    week = np.nanmedian(relay_capacity_error_means(archive, 168, warmup_hours=24 * 30))
    month = np.nanmedian(relay_capacity_error_means(archive, 720, warmup_hours=24 * 30))
    assert day < week <= month + 1e-9
    nce_day = np.nanmedian(network_capacity_error(archive, 24)[720:])
    nce_month = np.nanmedian(network_capacity_error(archive, 720)[720:])
    assert nce_day < nce_month


def test_most_relays_underweighted(archive):
    """Figure 3's shape: most relays below their capacity share.

    The paper reports >85% on the live archive; the synthetic generator
    lands around 70-80% (documented in EXPERIMENTS.md).
    """
    rwe = relay_weight_error_means(archive, 720, warmup_hours=720)
    frac_under = np.nanmean(rwe < 1.0)
    assert frac_under > 0.62


def test_some_relays_error_free(archive):
    """~15% of relays (rate-limited) show zero capacity error."""
    rce = relay_capacity_error_means(archive, 168, warmup_hours=24 * 30)
    frac_zero = np.nanmean(rce < 0.01)
    assert 0.03 < frac_zero < 0.5


def test_network_weight_error_in_paper_range(archive):
    nwe = np.nanmedian(network_weight_error(archive, 720)[720:])
    assert 0.10 < nwe < 0.45  # paper medians: 21-30%


def test_validation():
    with pytest.raises(ConfigurationError):
        ArchiveGenParams(n_relays=1)
    with pytest.raises(ConfigurationError):
        ArchiveGenParams(n_days=1)


# ---------------------------------------------------------------------------
# §3.4 speed-test replay (Figure 5)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def speedtest():
    return run_speed_test_experiment(
        SpeedTestParams(
            base=ArchiveGenParams(n_relays=120, n_days=40, seed=6),
        )
    )


def test_speedtest_discovers_hidden_capacity(speedtest):
    """Paper: ~50% more capacity appears during the flood."""
    assert 0.25 < speedtest.capacity_increase_fraction < 0.9


def test_speedtest_weight_error_rises(speedtest):
    """Paper: weight error rises during the test (+5-10%)."""
    assert speedtest.weight_error_peak > speedtest.weight_error_before


def test_speedtest_estimates_decay_after_memory(speedtest):
    """Paper: capacity estimates fall back after the 5-day memory."""
    assert speedtest.recovered


def test_speedtest_series_lengths(speedtest):
    assert len(speedtest.estimated_capacity) == speedtest.archive.n_hours
    assert len(speedtest.weight_error) == speedtest.archive.n_hours


def test_flood_only_affects_flood_window():
    quiet = generate_archive(ArchiveGenParams(n_relays=50, n_days=20, seed=7))
    flooded = generate_archive(
        ArchiveGenParams(
            n_relays=50, n_days=20, seed=7,
            flood_start_hour=10 * 24, flood_duration_hours=51,
        )
    )
    # Identical before the flood begins.
    before = 10 * 24
    assert np.array_equal(
        quiet.advertised[:, :before], flooded.advertised[:, :before]
    )
    # Higher advertised totals during/after the flood window.
    during = slice(10 * 24 + 19, 10 * 24 + 51 + 18)
    assert (
        flooded.network_advertised_total()[during].mean()
        > quiet.network_advertised_total()[during].mean()
    )
