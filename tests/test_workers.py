"""The shared worker-count heuristic and its environment override."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.workers import (
    MAX_DEFAULT_WORKERS,
    WORKERS_ENV,
    default_worker_count,
    resolve_worker_count,
    workers_from_env,
)


@pytest.fixture
def workers_env(monkeypatch):
    def set_env(value):
        if value is None:
            monkeypatch.delenv(WORKERS_ENV, raising=False)
        else:
            monkeypatch.setenv(WORKERS_ENV, value)

    return set_env


def test_default_matches_historical_heuristic(workers_env):
    workers_env(None)
    assert default_worker_count() == min(
        MAX_DEFAULT_WORKERS, (os.cpu_count() or 1) + 4
    )


def test_env_override(workers_env):
    workers_env("3")
    assert workers_from_env() == 3
    assert default_worker_count() == 3
    workers_env("  12  ")
    assert default_worker_count() == 12


def test_unset_or_empty_env_is_no_override(workers_env):
    workers_env(None)
    assert workers_from_env() is None
    workers_env("   ")
    assert workers_from_env() is None


@pytest.mark.parametrize("bad", ["zero", "2.5", "1e3", "-", ""])
def test_non_integer_env_raises(workers_env, bad):
    workers_env(bad or " ")
    if not bad.strip():
        assert workers_from_env() is None
        return
    with pytest.raises(ConfigurationError, match="must be an integer"):
        workers_from_env()


@pytest.mark.parametrize("bad", ["0", "-1", "-32"])
def test_non_positive_env_raises(workers_env, bad):
    workers_env(bad)
    with pytest.raises(ConfigurationError, match="must be positive"):
        workers_from_env()


def test_resolve_prefers_explicit_argument(workers_env):
    workers_env("5")
    assert resolve_worker_count(2) == 2
    assert resolve_worker_count(None) == 5


def test_engine_run_many_respects_env_override(workers_env):
    """The deduplicated heuristic is what run_many actually consults."""
    from repro import quick_team
    from repro.core.allocation import allocate_capacity
    from repro.core.engine import MeasurementEngine, MeasurementSpec
    from repro.tornet.network import synthesize_network
    from repro.units import mbit

    def outcomes(env_value):
        workers_env(env_value)
        net = synthesize_network(n_relays=4, seed=61)
        authority = quick_team(seed=62)
        specs = [
            MeasurementSpec(
                target=net[fp],
                assignments=allocate_capacity(authority.team, mbit(400)),
                params=authority.params,
                seed=90 + i,
                enforce_admission=False,
            )
            for i, fp in enumerate(net.relays)
        ]
        engine = MeasurementEngine()
        return [
            (o.estimate, o.failed) for o in engine.run_many(specs, backend="thread")
        ]

    assert outcomes("1") == outcomes("4") == outcomes(None)
