"""Tests for the closed-form security analysis (paper §5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.analysis import (
    dos_exposure_fraction,
    expected_selective_gain,
    forge_evasion_probability,
    inflation_bound,
    selective_capacity_failure_probability,
    torflow_self_report_attack,
)


def test_inflation_bound_paper_value():
    assert inflation_bound(0.25) == pytest.approx(1.33, abs=0.01)


def test_inflation_bound_monotone_in_r():
    assert inflation_bound(0.1) < inflation_bound(0.25) < inflation_bound(0.5)


def test_inflation_bound_validation():
    with pytest.raises(ValueError):
        inflation_bound(1.0)


def test_forge_evasion_decays():
    p = 1e-5
    assert forge_evasion_probability(p, 0) == 1.0
    assert forge_evasion_probability(p, 10 ** 6) < 1e-4


def test_forge_evasion_validation():
    with pytest.raises(ValueError):
        forge_evasion_probability(-0.1, 1)
    with pytest.raises(ValueError):
        forge_evasion_probability(0.5, -1)


def test_selective_failure_at_least_half_for_q_below_half():
    """§5: q < 1/2 fails with probability at least 0.5."""
    for n in (1, 3, 5, 9):
        for q in (0.1, 0.25, 0.4, 0.49):
            assert selective_capacity_failure_probability(n, q) >= 0.5, (n, q)


def test_selective_failure_single_bwauth():
    # With one BWAuth the failure probability is exactly 1 - q.
    assert selective_capacity_failure_probability(1, 0.3) == pytest.approx(0.7)


def test_selective_failure_binomial_example():
    """n = 5, q = 0.25: P[B(5, 0.75) >= 3] computed explicitly."""
    expected = sum(
        math.comb(5, k) * 0.75 ** k * 0.25 ** (5 - k) for k in range(3, 6)
    )
    assert selective_capacity_failure_probability(5, 0.25) == pytest.approx(
        expected
    )


def test_selective_failure_validation():
    with pytest.raises(ValueError):
        selective_capacity_failure_probability(0, 0.5)
    with pytest.raises(ValueError):
        selective_capacity_failure_probability(3, 1.5)


def test_expected_selective_gain_below_honest():
    """Gambling on q = 0.25 of slots leaves expected estimate well below
    full capacity -- the strategy does not pay."""
    gain = expected_selective_gain(5, active_fraction=0.25, idle_fraction=0.1)
    assert gain < 0.35


def test_torflow_attack_factor():
    assert torflow_self_report_attack(1e6, 177e6) == pytest.approx(177.0)
    assert torflow_self_report_attack(1e6, 89e6, measured_ratio=1.0) == 89.0


def test_torflow_attack_validation():
    with pytest.raises(ValueError):
        torflow_self_report_attack(0.0, 1e6)


def test_dos_exposure_half_period():
    assert dos_exposure_fraction(30, 86400, 5) == 0.5


@given(
    n=st.integers(min_value=1, max_value=15),
    q=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_selective_failure_is_probability(n, q):
    p = selective_capacity_failure_probability(n, q)
    assert 0.0 <= p <= 1.0 + 1e-12


@given(q=st.floats(min_value=0.01, max_value=0.49))
@settings(max_examples=50, deadline=None)
def test_more_bwauths_hurt_selective_relays(q):
    """For q < 1/2, more BWAuths make failure MORE likely."""
    assert selective_capacity_failure_probability(
        9, q
    ) >= selective_capacity_failure_probability(3, q) - 1e-9
