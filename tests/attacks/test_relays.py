"""Tests for malicious relay behaviours end to end (paper §5)."""

import math
import statistics

import pytest

from repro import quick_team
from repro.attacks.analysis import selective_capacity_failure_probability
from repro.core.engine import clamp_background
from repro.attacks.relays import (
    ForgingRelayBehavior,
    RatioCheatingRelayBehavior,
    SelectiveCapacityRelayBehavior,
    TrafficLiarRelayBehavior,
    make_sybil_flood,
)
from repro.core.aggregation import aggregate_bwauth_votes
from repro.core.params import FlashFlowParams
from repro.core.schedule import PeriodSchedule
from repro.errors import ScheduleError
from repro.tornet.relay import Relay
from repro.units import gbit, mbit


def test_traffic_liar_reports_inflated():
    behavior = TrafficLiarRelayBehavior(lie_factor=10.0)
    relay = Relay.with_capacity("r", mbit(100), behavior=behavior)
    assert behavior.report_background(50.0, relay) == 500.0


def test_traffic_liar_validation():
    with pytest.raises(ValueError):
        TrafficLiarRelayBehavior(lie_factor=0.5)
    with pytest.raises(ValueError):
        TrafficLiarRelayBehavior(lie_factor=float("inf"))
    with pytest.raises(ValueError):
        TrafficLiarRelayBehavior(lie_factor=float("nan"))


def test_ratio_cheater_ignores_ratio():
    behavior = RatioCheatingRelayBehavior()
    assert not behavior.enforces_ratio()


def test_ratio_cheater_reports_finite_claimed_allowance():
    """Regression: the claim is x * r/(1-r), never float('inf')."""
    behavior = RatioCheatingRelayBehavior(claimed_ratio=0.25)
    relay = Relay.with_capacity("c", mbit(100), behavior=behavior)
    behavior.note_measurement(1200.0, relay)
    claim = behavior.report_background(0.0, relay)
    assert math.isfinite(claim)
    assert claim == 1200.0 * (0.25 / (1.0 - 0.25))
    # Before any measurement traffic is observed the claim is zero.
    fresh = RatioCheatingRelayBehavior()
    assert fresh.report_background(50.0, relay) == 0.0


def test_clamp_rejects_non_finite_reports():
    """The BWAuth choke point refuses inf/NaN claimed traffic."""
    assert clamp_background(800.0, 100.0, 0.25) == 100.0
    with pytest.raises(ValueError, match="non-finite background report"):
        clamp_background(800.0, float("inf"), 0.25)
    with pytest.raises(ValueError, match="non-finite background report"):
        clamp_background(0.0, float("nan"), 0.25)


def test_forged_payloads_deterministic_under_seed():
    """Regression: forged cell content comes from the seeded behaviour
    RNG, so two same-seed runs produce identical transcripts."""

    def transcript(seed):
        behavior = ForgingRelayBehavior(forge_fraction=1.0, seed=seed)
        relay = Relay.with_capacity("f", mbit(100), behavior=behavior)
        return [behavior.echo_payload(b"\x00" * 509, relay) for _ in range(4)]

    assert transcript(21) == transcript(21)
    assert transcript(21) != transcript(22)


def test_forger_outcome_deterministic_under_seed(params):
    """Two same-seed forger measurements are `==` end to end."""

    def run():
        auth = quick_team(seed=77)
        forger = Relay.with_capacity(
            "f", mbit(400), behavior=ForgingRelayBehavior(seed=9), seed=11
        )
        estimate = auth.measure_relay(forger, initial_estimate=mbit(400))
        return (estimate.capacity, estimate.failed, estimate.failure_reason)

    assert run() == run()


def test_inflation_bound_holds_end_to_end(team_auth, params):
    """The strongest traffic lie achieves at most ~1.33x (paper §5/§6.2)."""
    inflations = []
    for seed in range(8):
        capacity = mbit(200)
        cheat = Relay.with_capacity(
            f"cheat{seed}", capacity,
            behavior=RatioCheatingRelayBehavior(), seed=seed,
        )
        estimate = team_auth.measure_relay(
            cheat, initial_estimate=capacity, seed_offset=seed * 31
        )
        inflations.append(estimate.capacity / capacity)
    assert max(inflations) <= params.inflation_bound * 1.08
    assert statistics.median(inflations) > 1.0  # the lie does inflate


def test_forger_detected_and_zeroed(team_auth):
    forger = Relay.with_capacity(
        "forger", mbit(600), behavior=ForgingRelayBehavior(seed=2), seed=3
    )
    estimate = team_auth.measure_relay(forger, initial_estimate=mbit(600))
    assert estimate.failed
    assert estimate.capacity == 0.0


def test_selective_capacity_median_defeats(team_auth):
    """§5: a relay fast in a fraction q < 1/2 of slots cannot move the
    median of independent BWAuth measurements."""
    capacity = mbit(300)
    # Seed chosen for a typical draw (~4 of 15 slots active); the
    # binomial failure probability itself is asserted separately.
    behavior = SelectiveCapacityRelayBehavior(
        active_fraction=0.25, idle_fraction=0.1, seed=1
    )
    relay = Relay.with_capacity("selective", capacity, behavior=behavior, seed=5)

    # 15 independent BWAuths: with q = 0.25 the chance of a majority of
    # active slots is P[B(15, 0.25) >= 8] < 2%, so the median is reliably
    # an idle-capacity measurement.
    n_bwauths = 15
    votes = {}
    for bwauth_index in range(n_bwauths):
        auth = quick_team(seed=100 + bwauth_index)
        # The relay gambles blindly each slot: begin_measurement rolls
        # automatically when the measurement is admitted.
        estimate = auth.measure_relay(
            relay, initial_estimate=capacity, seed_offset=bwauth_index
        )
        votes[f"b{bwauth_index}"] = {"selective": estimate.capacity}

    aggregated = aggregate_bwauth_votes(votes)
    assert selective_capacity_failure_probability(n_bwauths, 0.25) > 0.95
    assert aggregated["selective"] < capacity * 0.5


def test_selective_roll_distribution():
    behavior = SelectiveCapacityRelayBehavior(active_fraction=0.3, seed=6)
    rolls = [behavior.roll_slot() for _ in range(2000)]
    assert sum(rolls) / len(rolls) == pytest.approx(0.3, abs=0.05)


def test_sybil_flood_does_not_starve_old_relays():
    """§5: old relays are scheduled first; Sybils wait FCFS."""
    params = FlashFlowParams()
    old = {f"old{i}": mbit(100) for i in range(20)}
    schedule = PeriodSchedule.build(params, gbit(3), old, seed=b"w" * 32)
    sybils = make_sybil_flood(50, mbit(100))
    placed = 0
    for fp in sybils.relays:
        try:
            schedule.add_new_relay(fp, mbit(51))
            placed += 1
        except ScheduleError:
            break
    # All old relays keep their slots; plenty of Sybils also fit.
    assert set(old) <= set(schedule.assignments)
    assert placed == 50


def test_sybil_flood_shares_machine_capacity():
    sybils = make_sybil_flood(10, mbit(100))
    assert len(sybils) == 10
    for relay in sybils.relays.values():
        assert relay.true_capacity == pytest.approx(mbit(100))


def test_forging_saves_cpu_but_is_caught():
    """A forger gains capacity_factor 1.35 while measured -- exactly the
    cheat FlashFlow's content checks exist to kill."""
    behavior = ForgingRelayBehavior(seed=7)
    relay = Relay.with_capacity("f", mbit(100), behavior=behavior)
    assert behavior.capacity_factor(True, relay) == pytest.approx(1.35)
    assert behavior.capacity_factor(False, relay) == 1.0


def test_forge_fraction_validation():
    with pytest.raises(ValueError):
        ForgingRelayBehavior(forge_fraction=0.0)


def test_selective_fraction_validation():
    with pytest.raises(ValueError):
        SelectiveCapacityRelayBehavior(active_fraction=1.5)


def test_selective_idle_fraction_validation():
    """Regression: idle_fraction is validated like active_fraction."""
    with pytest.raises(ValueError):
        SelectiveCapacityRelayBehavior(idle_fraction=-0.01)
    with pytest.raises(ValueError):
        SelectiveCapacityRelayBehavior(idle_fraction=1.01)
    # Both boundaries are legal (always-dark and no-throttle relays).
    assert SelectiveCapacityRelayBehavior(idle_fraction=0.0).idle_fraction == 0.0
    assert SelectiveCapacityRelayBehavior(idle_fraction=1.0).idle_fraction == 1.0
