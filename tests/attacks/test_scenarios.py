"""Attack scenarios vs the §5 inflation bound, and the sweep helper.

Every registry attack scenario must keep ``estimate/truth`` for every
adversarial relay under ``1/(1-r)`` (plus a small noise slack) -- the
paper's central security claim -- while the identical lie against
TorFlow's self-report scaling inflates by the full claimed factor.
"""

import pytest

from repro.api.scenarios import get_scenario, run_scenario
from repro.attacks import (
    CollusionBehavior,
    CollusionFactory,
    inflation_bound,
    inflation_sweep,
    torflow_self_report_attack,
)
from repro.core.engine import MeasurementEngine
from repro.core.params import FlashFlowParams

#: Noise slack: env/socket jitter moves estimates a few percent.
SLACK = 1.08

ATTACK_RUNS = [
    ("inflation-attack", {}),
    ("inflation-attack", {"behavior": "traffic-liar"}),
    ("inflation-attack", {"behavior": "forger"}),
    ("inflation-attack", {"behavior": "selective-capacity"}),
    ("collusion-attack", {}),
    ("inflation-sweep", {}),
    ("inflation-sweep", {"behavior": "collusion", "adversary_fraction": 0.5}),
]


@pytest.mark.parametrize("name,overrides", ATTACK_RUNS)
def test_every_attack_scenario_respects_the_inflation_bound(name, overrides):
    report = run_scenario(name, n_relays=12, **overrides)
    inflations = report.adversary_inflation()
    assert inflations, "scenario assigned no adversaries"
    bound = inflation_bound(FlashFlowParams().ratio)
    for fp, inflation in inflations.items():
        assert inflation <= bound * SLACK, (name, fp, inflation)


def test_collusion_inflates_but_stays_bounded():
    """The pooled claims do inflate (the attack is real) yet the
    per-relay clamp keeps every colluder under 1/(1-r)."""
    report = run_scenario("collusion-attack", n_relays=12)
    inflations = report.adversary_inflation()
    bound = inflation_bound(FlashFlowParams().ratio)
    assert max(inflations.values()) > 1.05
    assert max(inflations.values()) <= bound * SLACK


def test_collusion_cliques_form_and_fold_singletons():
    """5 colluders at group_size 2 -> cliques of 2 and 3 (finalize
    folds the trailing singleton); every member shares its ledger."""
    scenario = get_scenario(
        "collusion-attack", n_relays=10, adversary_fraction=0.5
    )
    resolved = scenario.resolve()
    behaviors = [
        resolved.network[fp].behavior for fp in resolved.adversaries
    ]
    assert len(behaviors) == 5
    assert all(isinstance(b, CollusionBehavior) for b in behaviors)
    groups = {id(b._group): b._group for b in behaviors}
    assert sorted(len(g.members) for g in groups.values()) == [2, 3]
    for group in groups.values():
        for member in group.members:
            assert member._group is group


def test_resolving_twice_never_shares_ledgers():
    scenario = get_scenario("collusion-attack", n_relays=8)
    first = scenario.resolve()
    second = scenario.resolve()
    groups_first = {
        id(first.network[fp].behavior._group) for fp in first.adversaries
    }
    groups_second = {
        id(second.network[fp].behavior._group) for fp in second.adversaries
    }
    assert not groups_first & groups_second


def test_collusion_stays_on_the_stateful_path():
    """Cross-relay state cannot lower into the per-relay kernel."""
    behavior = CollusionBehavior()
    assert behavior.kernel_program() is None
    # And through the real compile gate:
    from repro import quick_team
    from repro.core.allocation import allocate_capacity
    from repro.core.engine import MeasurementSpec
    from repro.kernel import is_compilable
    from repro.tornet.relay import Relay
    from repro.units import mbit

    team = quick_team(seed=3).team
    relay = Relay.with_capacity("c", mbit(100), seed=1, behavior=behavior)
    spec = MeasurementSpec(
        target=relay,
        assignments=allocate_capacity(team, mbit(300)),
        params=FlashFlowParams(),
        seed=2,
        enforce_admission=False,
    )
    assert not is_compilable(MeasurementEngine(), spec)


def test_collusion_factory_validation():
    with pytest.raises(ValueError):
        CollusionFactory(group_size=1)


def test_collusion_report_pools_peer_measurement_bytes():
    factory = CollusionFactory(group_size=2)
    a, b = factory(0), factory(1)
    a.note_measurement(1000.0, relay=None)
    b.note_measurement(400.0, relay=None)
    # Each claims its real traffic plus the peer's measurement bytes.
    assert a.report_background(50.0, relay=None) == 50.0 + 400.0
    assert b.report_background(0.0, relay=None) == 1000.0


def test_inflation_sweep_helper():
    points = inflation_sweep(
        behaviors=("ratio-cheater", "collusion"),
        fractions=(0.25,),
        n_relays=8,
    )
    assert len(points) == 2
    for point in points:
        assert point.n_adversaries >= 1
        assert point.within_bound
        assert point.max_inflation <= point.bound * SLACK
        # The same lie against TorFlow's self-report scaling is
        # unbounded: a 100x claim yields 100x weight.
        assert point.torflow_inflation == torflow_self_report_attack(
            1.0, 100.0
        )
        assert point.torflow_inflation > point.bound * 10
