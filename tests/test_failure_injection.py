"""Failure-injection tests: the system degrades safely, never silently.

Covers: relays that refuse or die mid-campaign, measurer capacity loss
between periods, verification disabled (and why that is dangerous),
stale descriptors, and protocol-message tampering under replay.
"""

import pytest

from repro import quick_team
from repro.attacks.relays import ForgingRelayBehavior
from repro.core.aggregation import aggregate_bwauth_votes
from repro.core.measurement import run_measurement
from repro.core.allocation import allocate_capacity
from repro.core.netmeasure import measure_network
from repro.core.params import FlashFlowParams
from repro.errors import AllocationError
from repro.tornet.network import TorNetwork
from repro.tornet.relay import Relay, RelayBehavior
from repro.units import mbit


class DyingRelayBehavior(RelayBehavior):
    """A relay that loses all capacity partway through a measurement."""

    name = "dying"

    def __init__(self, dies_after_calls: int = 10):
        self.dies_after = dies_after_calls
        self._calls = 0

    def capacity_factor(self, being_measured: bool, relay: Relay) -> float:
        self._calls += 1
        return 0.0 if self._calls > self.dies_after else 1.0


def test_relay_dying_mid_slot_yields_low_median(team_auth, params):
    relay = Relay.with_capacity(
        "dying", mbit(200), behavior=DyingRelayBehavior(10), seed=1
    )
    assignments = allocate_capacity(team_auth.team, mbit(600))
    outcome = run_measurement(relay, assignments, params, seed=2)
    # The relay was alive for a third of the slot: the median reflects
    # the dead majority, not the early burst.
    assert outcome.estimate < mbit(20)


def test_campaign_with_refusing_relay():
    """A relay already measured this period refuses; the campaign
    records the failure and continues."""
    network = TorNetwork()
    for i in range(4):
        network.add(Relay.with_capacity(f"r{i}", mbit(50), seed=i))
    network["r0"].accept_measurement("bwauth0", 0)  # pre-burn the slot

    auth = quick_team(seed=3)
    params = auth.params
    # Force admission checking through run_measurement directly.
    assignments = allocate_capacity(auth.team, mbit(150))
    refused = run_measurement(
        network["r0"], assignments, params,
        bwauth_id="bwauth0", period_index=0,
        enforce_admission=True, seed=4,
    )
    assert refused.failed
    ok = run_measurement(
        network["r1"], assignments, params,
        bwauth_id="bwauth0", period_index=0,
        enforce_admission=True, seed=5,
    )
    assert not ok.failed


def test_measurer_capacity_loss_between_periods():
    """A measurer degrading between periods shrinks what is measurable;
    requesting beyond the degraded team fails loudly."""
    auth = quick_team(n_measurers=2, capacity_each=mbit(500), seed=6)
    relay = Relay.with_capacity("r", mbit(300), seed=7)
    first = auth.measure_relay(relay, initial_estimate=mbit(300))
    assert first.conclusive

    auth.team[0].measured_capacity = mbit(50)  # host degraded
    big = Relay.with_capacity("big", mbit(300), seed=8)
    second = auth.measure_relay(big, initial_estimate=mbit(300))
    # Team now supplies 550 < f*300: best-effort, flagged inconclusive.
    assert not second.conclusive


def test_disabled_verification_lets_forgers_win(team_auth, params):
    """Ablation: without echo checks a forger gets a (boosted) estimate --
    exactly the attack verification exists to stop."""
    forger = Relay.with_capacity(
        "forger", mbit(300), behavior=ForgingRelayBehavior(seed=9), seed=9
    )
    assignments = allocate_capacity(
        team_auth.team, params.allocation_factor * mbit(300)
    )
    outcome = run_measurement(
        forger, assignments, params, verify=False, seed=10
    )
    assert not outcome.failed
    assert outcome.estimate > mbit(300)  # the forged CPU saving pays off


def test_majority_rule_with_partial_bwauth_coverage():
    """Relays measured by fewer than a majority of BWAuths stay out of
    the consensus (paper §2)."""
    votes = {
        "b0": {"r1": mbit(100), "r2": mbit(50)},
        "b1": {"r1": mbit(105)},
        "b2": {"r1": mbit(95)},
    }
    aggregated = aggregate_bwauth_votes(votes)
    assert "r1" in aggregated
    assert "r2" not in aggregated  # only one vote


def test_campaign_all_relays_malicious():
    """Even a fully malicious network produces explicit failures, not
    bogus estimates."""
    network = TorNetwork()
    for i in range(3):
        network.add(
            Relay.with_capacity(
                f"f{i}", mbit(100),
                behavior=ForgingRelayBehavior(seed=i), seed=20 + i,
            )
        )
    auth = quick_team(seed=21)
    campaign = measure_network(network, auth, full_simulation=True)
    assert not campaign.estimates
    assert set(campaign.failures) == {"f0", "f1", "f2"}


def test_allocation_error_propagates_from_oversized_request():
    auth = quick_team(n_measurers=1, capacity_each=mbit(100), seed=22)
    with pytest.raises(AllocationError):
        allocate_capacity(auth.team, mbit(500))


def test_zero_capacity_network_is_rejected_cleanly():
    params = FlashFlowParams()
    from repro.core.schedule import PeriodSchedule
    from repro.errors import ScheduleError

    with pytest.raises(ScheduleError):
        PeriodSchedule(params=params, team_capacity=0.0, seed=b"x" * 32)
