"""Cross-module integration tests: the full FlashFlow lifecycle.

These exercise the public API the way a deployment would: measure the
measurers, derive a shared schedule, run a period's campaign, publish a
bandwidth file, aggregate across BWAuths into a consensus, and have
clients select paths from it -- with failure injection along the way.
"""

import pytest

from repro import quick_team
from repro.attacks.relays import ForgingRelayBehavior, RatioCheatingRelayBehavior
from repro.core.aggregation import aggregate_bwauth_votes, consensus_from_votes
from repro.core.bwfile import BandwidthFile
from repro.core.netmeasure import measure_network
from repro.core.params import FlashFlowParams
from repro.core.schedule import PeriodSchedule
from repro.tornet.authority import SharedRandomness
from repro.tornet.network import TorNetwork, synthesize_network
from repro.tornet.pathsel import PathSelector
from repro.tornet.relay import Relay
from repro.units import gbit, mbit


def test_full_lifecycle_single_bwauth():
    """Network -> campaign -> bandwidth file -> parse -> weights."""
    network = synthesize_network(n_relays=25, seed=31)
    auth = quick_team(seed=31)
    campaign = measure_network(network, auth, full_simulation=True)
    assert not campaign.failures

    bwfile = BandwidthFile.from_estimates(campaign.estimates, timestamp=1000)
    parsed = BandwidthFile.parse(bwfile.serialize())
    assert len(parsed) == len(network)
    for fp, capacity in parsed.capacities().items():
        truth = network[fp].true_capacity
        assert 0.6 * truth <= capacity <= 1.1 * truth


def test_full_lifecycle_multi_bwauth_consensus():
    """Three BWAuths measure independently; DirAuths take the median;
    clients build paths from the resulting consensus."""
    network = synthesize_network(n_relays=20, seed=32)
    votes = {}
    for index in range(3):
        auth = quick_team(seed=40 + index)
        campaign = measure_network(network, auth, full_simulation=True)
        votes[auth.name + str(index)] = campaign.estimates

    aggregated = aggregate_bwauth_votes(votes)
    assert set(aggregated) == set(network.relays)

    flags = {fp: network[fp].flags for fp in network.relays}
    consensus = consensus_from_votes(votes, valid_after=7, flags=flags)
    selector = PathSelector(consensus, seed=33)
    path = selector.select_path()
    assert len(set(path)) == 3
    for fp in path:
        assert fp in network


def test_campaign_with_malicious_minority():
    """A forging relay fails verification; a ratio-cheater is bounded;
    honest relays are unaffected."""
    network = TorNetwork()
    for i in range(8):
        network.add(Relay.with_capacity(f"honest{i}", mbit(100), seed=50 + i))
    network.add(
        Relay.with_capacity(
            "forger", mbit(100), behavior=ForgingRelayBehavior(seed=1), seed=60
        )
    )
    network.add(
        Relay.with_capacity(
            "cheater", mbit(100),
            behavior=RatioCheatingRelayBehavior(), seed=61,
        )
    )
    auth = quick_team(seed=62)
    campaign = measure_network(network, auth, full_simulation=True)

    assert "forger" in campaign.failures
    assert "forger" not in campaign.estimates
    assert campaign.estimates["cheater"] <= mbit(100) * 1.33 * 1.08
    for i in range(8):
        estimate = campaign.estimates[f"honest{i}"]
        assert 0.75 * mbit(100) <= estimate <= 1.06 * mbit(100)


def test_schedule_feeds_campaign():
    """Derive a schedule from shared randomness and verify it covers the
    same relays a campaign would measure."""
    params = FlashFlowParams()
    network = synthesize_network(n_relays=30, seed=34)
    seed = SharedRandomness.run_round(["d1", "d2", "d3"], seed=35)
    estimates = network.capacities()
    schedule = PeriodSchedule.build(params, gbit(3), estimates, seed=seed)
    assert set(schedule.assignments) == set(network.relays)
    # Every scheduled slot fits within the period.
    for assignment in schedule.assignments.values():
        assert 0 <= assignment.slot < params.slots_per_period


def test_warm_campaign_uses_prior_estimates():
    """Period 2 reuses period 1's estimates and stays accurate."""
    network = synthesize_network(n_relays=15, seed=36)
    auth1 = quick_team(seed=37)
    period1 = measure_network(network, auth1, full_simulation=True)
    auth2 = quick_team(seed=38)
    period2 = measure_network(
        network, auth2,
        prior_estimates=dict(period1.estimates),
        full_simulation=True,
    )
    assert not period2.failures
    for fp in network.relays:
        truth = network[fp].true_capacity
        assert period2.estimates[fp] == pytest.approx(truth, rel=0.3)


def test_measurement_with_heavy_background_still_accurate(team_auth, params):
    """A relay at 50% background utilisation measures accurately because
    reported (clamped) background folds into z (paper Fig 7 discussion)."""
    capacity = mbit(200)
    relay = Relay.with_capacity("busy", capacity, seed=39)
    estimate = team_auth.measure_relay(
        relay, initial_estimate=capacity, background_demand=capacity * 0.5
    )
    lo, hi = params.accuracy_interval(capacity)
    assert lo <= estimate.capacity <= hi


def test_quick_team_shape():
    auth = quick_team(n_measurers=4, capacity_each=mbit(500))
    assert len(auth.team) == 4
    assert auth.team_capacity() == pytest.approx(gbit(2))
