"""Scenario/ExecutionConfig validation and background normalization."""

import pytest

from repro.api import (
    AdversaryMix,
    AdversarySpec,
    ExecutionConfig,
    NetworkSpec,
    Scenario,
    TeamSpec,
)
from repro import quick_team
from repro.core.netmeasure import measure_network, normalize_background_demand
from repro.core.params import FlashFlowParams
from repro.errors import ConfigurationError
from repro.tornet.network import TorNetwork, synthesize_network
from repro.tornet.relay import Relay
from repro.units import mbit


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def test_scenario_is_frozen():
    scenario = Scenario()
    with pytest.raises(AttributeError):
        scenario.seed = 7


def test_scenario_with_overrides_replaces_fields():
    scenario = Scenario(seed=1).with_overrides(seed=9, periods=2)
    assert scenario.seed == 9
    assert scenario.periods == 2


@pytest.mark.parametrize("kwargs", [
    {"periods": 0},
    {"network": "not-a-network"},
    {"team": "not-a-team"},
    {"priors": "bogus-policy"},
    {"background": object()},
    {"name": ""},
])
def test_scenario_rejects_bad_fields(kwargs):
    with pytest.raises(ConfigurationError):
        Scenario(**kwargs)


def test_scenario_rejects_params_with_existing_authority():
    with pytest.raises(ConfigurationError):
        Scenario(team=quick_team(seed=0), params=FlashFlowParams())


def test_scenario_rejects_adversaries_on_explicit_network():
    network = TorNetwork()
    network.add(Relay.with_capacity("r", mbit(10), seed=0))
    mix = AdversaryMix(entries=(AdversarySpec("ratio-cheater", 0.5),))
    with pytest.raises(ConfigurationError):
        Scenario(network=network, adversaries=mix)


def test_adversary_spec_rejects_unknown_name_and_bad_fraction():
    with pytest.raises(ConfigurationError):
        AdversarySpec("no-such-behavior", 0.5)
    with pytest.raises(ConfigurationError):
        AdversarySpec("ratio-cheater", 0.0)
    with pytest.raises(ConfigurationError):
        AdversaryMix(entries=(
            AdversarySpec("ratio-cheater", 0.7),
            AdversarySpec("forger", 0.7),
        ))


@pytest.mark.parametrize("kwargs", [
    {"backend": ""},
    {"backend": "vectr"},  # typos fail at construction, not mid-run
    {"max_workers": 0},
    {"max_rounds": 0},
    {"analytic_error_std": -0.1},
])
def test_execution_config_rejects_bad_fields(kwargs):
    with pytest.raises(ConfigurationError):
        ExecutionConfig(**kwargs)


def test_execution_config_with_backend():
    config = ExecutionConfig(max_rounds=5).with_backend("serial")
    assert config.backend == "serial"
    assert config.max_rounds == 5


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------

def test_network_spec_resolution_is_deterministic():
    scenario = Scenario(network=NetworkSpec(n_relays=8), seed=3)
    first = scenario.resolve()
    second = scenario.resolve()
    assert first.network is not second.network
    assert first.ground_truth == second.ground_truth
    assert len(first.network) == 8


def test_truth_priors_resolve_to_capacities():
    scenario = Scenario(network=NetworkSpec(n_relays=5), priors="truth")
    resolved = scenario.resolve()
    assert resolved.priors == resolved.ground_truth


def test_team_spec_builds_authority_with_params():
    params = FlashFlowParams(slot_seconds=10)
    resolved = Scenario(
        team=TeamSpec(n_measurers=2, capacity_each=mbit(500)),
        params=params,
    ).resolve()
    assert len(resolved.authority.team) == 2
    assert resolved.authority.params.slot_seconds == 10
    assert resolved.params is resolved.authority.params


def test_adversary_mix_assignment_is_deterministic_and_disjoint():
    mix = AdversaryMix(entries=(
        AdversarySpec("ratio-cheater", 0.25),
        AdversarySpec("forger", 0.25),
    ))
    scenario = Scenario(
        network=NetworkSpec(n_relays=16), adversaries=mix, seed=11
    )
    first = scenario.resolve()
    second = scenario.resolve()
    assert first.adversaries == second.adversaries
    assert sorted(first.adversaries.values()).count("ratio-cheater") == 4
    assert sorted(first.adversaries.values()).count("forger") == 4
    for fp, name in first.adversaries.items():
        assert first.network[fp].behavior.name == name


# ---------------------------------------------------------------------------
# Background-demand normalization (the three equivalent forms)
# ---------------------------------------------------------------------------

def test_normalize_background_demand_forms():
    constant = normalize_background_demand(5.0)
    assert constant("any") == 5.0
    table = normalize_background_demand({"a": 2.0})
    assert table("a") == 2.0
    assert table("missing") == 0.0
    fn = lambda t: 7.0  # noqa: E731
    wrapped = normalize_background_demand(fn)
    assert wrapped("any") is fn


@pytest.mark.parametrize("bad", [object(), "text", True])
def test_normalize_background_demand_rejects_junk(bad):
    with pytest.raises(ConfigurationError):
        normalize_background_demand(bad)


def test_normalize_background_demand_passes_values_through():
    # Only the *shape* is validated; values flow through identically
    # for all three forms (the engine clamps per second).
    assert normalize_background_demand(-1.0)("fp") == -1.0
    assert normalize_background_demand({"fp": -1.0})("fp") == -1.0


def test_background_forms_give_identical_estimates():
    """Constant, per-fingerprint dict, and callable backgrounds are
    interchangeable: equivalent inputs, bit-identical estimates."""
    demand = mbit(2)
    results = []
    for background in (
        demand,
        None,  # placeholder: dict built per network below
        lambda _t: demand,
    ):
        network = synthesize_network(n_relays=5, seed=31)
        auth = quick_team(seed=32)
        if background is None:
            background = {fp: demand for fp in network.relays}
        results.append(
            measure_network(
                network, auth, background_demand=background,
                full_simulation=True,
            )
        )
    assert results[0].estimates == results[1].estimates == results[2].estimates
    assert (
        results[0].measurements_run
        == results[1].measurements_run
        == results[2].measurements_run
    )
