"""Multi-period deployments end-to-end: carryover, aging, per-period files.

Drives :meth:`Deployment.run_period`'s prior-aging and
estimate-carryover through the new multi-period scenario
(``Scenario(periods=N)`` / the registered ``multi-period-deployment``),
which was previously untested end-to-end.
"""

import pytest

from repro import quick_team
from repro.api import (
    Campaign,
    ExecutionConfig,
    PeriodCompleted,
    run_scenario,
)
from repro.core.deployment import ESTIMATE_MAX_AGE_PERIODS, Deployment
from repro.tornet.network import TorNetwork, synthesize_network
from repro.tornet.relay import Relay
from repro.units import mbit

ANALYTIC = ExecutionConfig(full_simulation=False)


def test_multi_period_scenario_carries_estimates_forward():
    report = run_scenario(
        "multi-period-deployment", n_relays=8, periods=3, execution=ANALYTIC
    )
    assert report.n_periods == 3
    cold, *warm = report.period_results
    # Period 0 starts cold (no priors): retries push measurements above
    # the relay count. Later periods reuse the previous estimates as z0,
    # so every relay concludes in one measurement.
    assert cold.measurements_run > 8
    for result in warm:
        # Warm-started periods need (far) fewer measurements than the
        # cold first period -- most relays conclude in one slot.
        assert 8 <= result.measurements_run < cold.measurements_run
        assert result.slots_elapsed <= cold.slots_elapsed
        assert set(result.estimates) == set(cold.estimates)
    # The carried-forward priors came from the previous period verbatim.
    rounds_by_period = {}
    for record in report.rounds:
        rounds_by_period.setdefault(record.period_index, []).append(record)
    for period_index, rounds in rounds_by_period.items():
        if period_index == 0:
            continue
        previous = report.period_results[period_index - 1].estimates
        for m in rounds[0].measurements:  # first round: every z0 a prior
            assert m.planned_estimate == previous[m.fingerprint]


def test_multi_period_scenario_publishes_bwfile_per_period():
    report = run_scenario(
        "multi-period-deployment", n_relays=5, periods=3, execution=ANALYTIC
    )
    assert len(report.deployment_records) == 3
    for period_index, record in enumerate(report.deployment_records):
        assert record.period_index == period_index
        assert len(record.bwfile) == 5
        parsed = record.bwfile.weights()
        assert parsed == {
            fp: pytest.approx(est)
            for fp, est in report.period_results[period_index].estimates.items()
        }


def test_multi_period_events_carry_period_indices():
    campaign = Campaign(_scenario(periods=2), ANALYTIC)
    events = list(campaign.iter_rounds())
    completed = [e for e in events if isinstance(e, PeriodCompleted)]
    assert [e.period_index for e in completed] == [0, 1]
    assert all(e.deployment_record is not None for e in completed)
    periods_seen = {r.period_index for r in campaign.report.rounds}
    assert periods_seen == {0, 1}


def _scenario(periods: int):
    from repro.api import get_scenario

    return get_scenario(
        "multi-period-deployment", n_relays=4, periods=periods
    )


def test_prior_aging_relay_unseen_for_a_month_becomes_new_again():
    """End-to-end aging: a relay missing for > ESTIMATE_MAX_AGE_PERIODS
    periods loses its prior and is re-measured as new."""
    full = synthesize_network(n_relays=4, seed=44)
    veteran = next(iter(full.relays))
    without = TorNetwork(
        {fp: r for fp, r in full.relays.items() if fp != veteran}
    )
    deployment = Deployment(
        authority=quick_team(seed=45), full_simulation=False
    )

    deployment.run_period(full)
    assert veteran in deployment.priors_for(full)
    assert deployment.estimate_age(veteran) == 0

    for _ in range(ESTIMATE_MAX_AGE_PERIODS + 1):
        deployment.run_period(without)

    # The estimate is now too old to trust: the relay is "new" again.
    assert deployment.estimate_age(veteran) == ESTIMATE_MAX_AGE_PERIODS + 1
    assert veteran not in deployment.priors_for(full)

    record = deployment.run_period(full)
    assert veteran in record.estimates
    assert deployment.estimate_age(veteran) == 0
    # Re-measured from the new-relay seed, not the stale prior: its
    # first attempt this period was planned at new_relay_seed.
    assert veteran in deployment.priors_for(full)


def test_carryover_reduces_measurements_between_periods_full_sim():
    """The paper's warm-start effect, through the scenario API with the
    real per-second simulation."""
    report = run_scenario(
        "multi-period-deployment", n_relays=5, periods=2,
        execution=ExecutionConfig(),
    )
    first, second = report.period_results
    assert second.measurements_run <= first.measurements_run
    assert set(second.estimates) == set(first.estimates)


def test_estimates_evolve_but_stay_accurate_across_periods():
    network = synthesize_network(n_relays=4, seed=13)
    truth = network.capacities()
    deployment = Deployment(authority=quick_team(seed=14))
    first = deployment.run_period(network)
    second = deployment.run_period(network)
    for fp, cap in truth.items():
        for record in (first, second):
            assert 0.6 * cap <= record.estimates[fp] <= 1.1 * cap


def test_new_relay_joins_mid_deployment():
    network = synthesize_network(n_relays=4, seed=47)
    deployment = Deployment(
        authority=quick_team(seed=47), full_simulation=False
    )
    deployment.run_period(network)
    grown = TorNetwork(dict(network.relays))
    grown.add(Relay.with_capacity("newcomer", mbit(80), seed=48))
    record = deployment.run_period(grown)
    assert "newcomer" in record.estimates
    assert deployment.estimate_age("newcomer") == 0
    assert "newcomer" not in deployment.periods[0].estimates
