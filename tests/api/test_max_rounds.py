"""The ``max_rounds`` stop condition: exactly N attempts, no more, no less.

Audit of the boundary at ``api/campaign.py`` (``job.rounds + 1 >=
execution.max_rounds``): ``job.rounds`` counts *prior* attempts, so the
job being folded is attempt ``job.rounds + 1`` -- a relay that never
converges is attempted exactly ``max_rounds`` times before being
declared ``did not converge``. These tests pin that contract for the
edge budgets ``max_rounds=1`` (no retry at all) and ``max_rounds=2``
(exactly one retry).
"""

import pytest

from repro import quick_team
from repro.api import Campaign, ExecutionConfig, Scenario
from repro.tornet.network import TorNetwork
from repro.tornet.relay import Relay
from repro.units import gbit, mbit

FP = "never-converges"


def _never_converging_campaign(max_rounds: int):
    """A one-relay campaign whose measurement can never be accepted.

    The relay's true capacity (10 Gbit/s) dwarfs what the prior-sized
    allocation supplies, so every analytic estimate is supply-limited:
    z == allocated/m, which always sits above the acceptance threshold
    allocated*(1-eps1)/m, and the tiny prior keeps the job far from the
    team-capacity cap -- the relay retries (with a doubled guess) until
    the round budget runs out.
    """
    network = TorNetwork()
    network.add(Relay.with_capacity(FP, gbit(10.0), seed=7))
    authority = quick_team(seed=8)
    return Campaign(
        Scenario(
            network=network,
            team=authority,
            priors={FP: mbit(10.0)},
        ),
        ExecutionConfig(full_simulation=False, max_rounds=max_rounds),
    )


@pytest.mark.parametrize("max_rounds", [1, 2])
def test_still_failing_relay_is_attempted_exactly_max_rounds_times(max_rounds):
    campaign = _never_converging_campaign(max_rounds)
    report = campaign.run()
    result = report.result

    assert result.estimates == {}
    assert result.failures == {FP: "did not converge"}
    # Exactly N attempts: N rounds of one measurement each.
    assert result.measurements_run == max_rounds
    assert len(report.rounds) == max_rounds

    measurements = [m for r in report.rounds for m in r.measurements]
    assert [m.attempt for m in measurements] == list(range(max_rounds))
    # Every attempt but the last is a retry; the last is the failure.
    for m in measurements[:-1]:
        assert m.retried and not m.failed
    last = measurements[-1]
    assert last.failed and not last.retried
    assert last.failure_reason == "did not converge"


def test_budget_of_two_doubles_the_guess_once():
    report = _never_converging_campaign(2).run()
    first, second = [m for r in report.rounds for m in r.measurements]
    # The retry re-enters with max(z, 2 * z0); the supply-limited z is
    # above 2 * z0 here only if the allocation factor exceeds 2m, so pin
    # the general contract: the second guess is at least the doubled
    # first one, and strictly larger.
    assert second.planned_estimate >= 2.0 * first.planned_estimate
    assert second.planned_estimate > first.planned_estimate
