"""Campaign sharding oracle: ``ExecutionConfig(shards=)`` is invisible.

A sharded round partitions its packed slots into contiguous, balanced
parts and merges the results back in slot order -- so events, per-round
records, estimates, and failures must be *bit-identical* to the
unsharded campaign on every backend and in both simulation modes.
"""

import pytest

from repro.api import Campaign, ExecutionConfig, Scenario
from repro.api.events import RoundCompleted, RoundPlanned
from repro.api.scenario import NetworkSpec, TeamSpec
from repro.errors import ConfigurationError
from repro.kernel.backends import _shard_parts


def _report_key(report):
    measurements = []
    for rnd in report.rounds:
        for m in rnd.measurements:
            measurements.append(
                (
                    m.period_index,
                    m.round_index,
                    m.slot_index,
                    m.fingerprint,
                    m.attempt,
                    m.planned_estimate,
                    m.estimate,
                    m.failed,
                    m.failure_reason,
                    m.accepted,
                    m.retried,
                    m.cells_checked,
                    m.settled,
                )
            )
    return (
        measurements,
        dict(report.result.estimates),
        dict(report.result.failures),
        report.result.measurements_run,
        report.result.slots_elapsed,
    )


def _run(backend, shards, full_simulation=True, n_relays=16):
    scenario = Scenario(
        network=NetworkSpec(n_relays=n_relays, seed=301),
        team=TeamSpec(seed=302),
    )
    execution = ExecutionConfig(
        backend=backend,
        max_workers=2,
        full_simulation=full_simulation,
        shards=shards,
    )
    events = []
    report = Campaign(scenario, execution).run(
        observers=[type("Obs", (), {"on_event": lambda self, e: events.append(e)})()]
    )
    round_events = [
        (e.round_index, e.n_jobs, e.first_slot, e.slots_packed)
        for e in events
        if isinstance(e, RoundPlanned)
    ]
    completed = [
        e.record.round_index for e in events if isinstance(e, RoundCompleted)
    ]
    return _report_key(report), round_events, completed


@pytest.mark.parametrize("backend", ["serial", "thread", "process", "vector"])
def test_sharded_campaign_bit_identical(backend):
    baseline = _run(backend, None)
    for shards in (1, 2, 3, 7):
        assert _run(backend, shards) == baseline, (backend, shards)


@pytest.mark.parametrize("shards", [None, 1, 3])
def test_analytic_campaign_sharding_bit_identical(shards):
    baseline = _run("vector", None, full_simulation=False)
    assert _run("vector", shards, full_simulation=False) == baseline


def test_more_shards_than_jobs():
    baseline = _run("vector", None, n_relays=3)
    assert _run("vector", 64, n_relays=3) == baseline


def test_shard_parts_contiguous_and_balanced():
    items = list(range(10))
    parts = _shard_parts(items, 4)
    assert [len(p) for p in parts] == [3, 3, 2, 2]
    assert [x for p in parts for x in p] == items
    assert _shard_parts(items, 1) == [items]
    # Never more parts than items.
    assert [len(p) for p in _shard_parts([1, 2], 5)] == [1, 1]


def test_shards_validation():
    assert ExecutionConfig(shards=4).shards == 4
    assert ExecutionConfig().shards is None
    with pytest.raises(ConfigurationError, match="shards"):
        ExecutionConfig(shards=0)
    with pytest.raises(ConfigurationError, match="shards"):
        ExecutionConfig(shards=-2)
    with pytest.raises(ConfigurationError, match="shards"):
        ExecutionConfig(shards=2.5)
    with pytest.raises(ConfigurationError, match="shards"):
        ExecutionConfig(shards=True)


def test_sharding_with_retries_bit_identical():
    """A scenario that forces retry rounds keeps the per-round event
    stream identical under sharding (retries re-enter the next round)."""
    scenario = Scenario(
        network=NetworkSpec(n_relays=10, seed=311),
        team=TeamSpec(seed=312),
        priors="truth",
    )

    def run(shards):
        report = Campaign(
            scenario,
            ExecutionConfig(backend="vector", shards=shards, max_workers=2),
        ).run()
        return _report_key(report), len(report.rounds)

    assert run(3) == run(None)
