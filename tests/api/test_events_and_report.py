"""Event streaming, observers, and the CampaignReport superset."""

import io

import pytest

from repro.api import (
    Campaign,
    CampaignCompleted,
    CampaignObserver,
    CampaignStarted,
    ExecutionConfig,
    MetricsObserver,
    NetworkSpec,
    PeriodCompleted,
    PeriodStarted,
    ProgressObserver,
    RoundCompleted,
    RoundPlanned,
    Scenario,
    TimingObserver,
)


@pytest.fixture
def small_scenario():
    return Scenario(name="events-test", network=NetworkSpec(n_relays=6), seed=3)


def test_iter_rounds_event_stream_shape(small_scenario):
    campaign = Campaign(small_scenario, ExecutionConfig())
    events = list(campaign.iter_rounds())
    assert isinstance(events[0], CampaignStarted)
    assert isinstance(events[1], PeriodStarted)
    assert isinstance(events[-1], CampaignCompleted)
    assert isinstance(events[-2], PeriodCompleted)
    planned = [e for e in events if isinstance(e, RoundPlanned)]
    completed = [e for e in events if isinstance(e, RoundCompleted)]
    assert len(planned) == len(completed) >= 1
    for plan, done in zip(planned, completed):
        assert plan.round_index == done.round_index
        assert plan.n_jobs == len(done.record.measurements)
        assert plan.slots_packed == done.record.slots_packed
    report = campaign.report
    assert report is events[-1].report
    assert report.measurements_run == sum(p.n_jobs for p in planned)
    assert report.slots_elapsed == sum(p.slots_packed for p in planned)


def test_observers_do_not_change_results(small_scenario):
    bare = Campaign(small_scenario, ExecutionConfig()).run()
    observed = Campaign(small_scenario, ExecutionConfig()).run(
        observers=[
            ProgressObserver(stream=io.StringIO()),
            MetricsObserver(),
            TimingObserver(),
        ]
    )
    assert observed.estimates == bare.estimates
    assert observed.slots_elapsed == bare.slots_elapsed


def test_metrics_and_timing_observers_collect(small_scenario):
    metrics, timing = MetricsObserver(), TimingObserver()
    stream = io.StringIO()
    report = Campaign(small_scenario, ExecutionConfig()).run(
        observers=[ProgressObserver(stream=stream), metrics, timing]
    )
    summary = metrics.summary()
    assert summary["measurements"] == report.measurements_run
    assert summary["accepted"] == len(report.estimates)
    assert summary["cells_checked"] == report.cells_checked > 0
    assert timing.total_seconds > 0
    assert len(timing.round_seconds) == len(report.rounds)
    out = stream.getvalue()
    assert "[events-test]" in out
    assert "round 0" in out


def test_unknown_events_are_ignored_by_base_observer():
    class Weird:
        kind = "never-seen"

    observer = CampaignObserver()
    observer.on_event(Weird())  # must not raise


def test_report_superset_fields(small_scenario):
    report = Campaign(small_scenario, ExecutionConfig()).run()
    # CampaignResult-compatible surface
    assert report.estimates == report.result.estimates
    assert report.seconds_elapsed == report.slots_elapsed * 30
    assert report.hours_elapsed == pytest.approx(
        report.seconds_elapsed / 3600.0
    )
    # Timeline and truth error
    timeline = report.timeline()
    assert len(timeline) == report.measurements_run
    assert all(m.accepted or m.retried or m.failed for m in timeline)
    errors = report.error_vs_truth()
    assert set(errors) == set(report.ground_truth)
    assert 0 <= report.median_error_vs_truth() < 0.5
    stats = report.verification_stats()
    assert stats["cells_checked"] == report.cells_checked
    assert stats["verification_failures"] == 0
    summary = report.to_dict()
    assert summary["scenario"] == "events-test"
    assert summary["measurements_run"] == report.measurements_run


def test_settled_marks_full_simulation_measurements(small_scenario):
    full = Campaign(small_scenario, ExecutionConfig()).run()
    assert all(m.settled for m in full.timeline() if not m.failed)
    analytic = Campaign(
        small_scenario, ExecutionConfig(full_simulation=False)
    ).run()
    assert not any(m.settled for m in analytic.timeline())
    assert analytic.cells_checked == 0
