"""The acceptance criterion: examples go through the API front door.

No example may call the legacy entry points (``measure_network``,
``compare_systems``) directly -- they describe workloads with
``repro.api`` instead. Source-level check so a regression cannot slip
in silently.
"""

import pathlib

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
LEGACY_CALLS = ("measure_network(", "compare_systems(")


def test_examples_do_not_call_legacy_entry_points():
    sources = sorted(EXAMPLES.glob("*.py"))
    assert sources, "examples directory went missing?"
    offenders = []
    for path in sources:
        text = path.read_text()
        for legacy in LEGACY_CALLS:
            if legacy in text:
                offenders.append((path.name, legacy))
    assert not offenders, offenders


def test_measurement_examples_import_the_api():
    api_importers = {
        "quickstart.py",
        "full_network_measurement.py",
        "adversarial_relay.py",
        "load_balancing_comparison.py",
    }
    for name in api_importers:
        text = (EXAMPLES / name).read_text()
        assert "from repro.api import" in text, name
