"""Deprecation shims: old entry points, bit-identical via the API."""

import warnings

import pytest

from repro import quick_team
from repro.api import Campaign, ExecutionConfig, Scenario
from repro.core.deployment import Deployment
from repro.core.netmeasure import measure_network, run_campaign
from repro.tornet.network import synthesize_network


def _fresh(seed_net=21, seed_auth=22, n_relays=10):
    return synthesize_network(n_relays=n_relays, seed=seed_net), quick_team(
        seed=seed_auth
    )


def test_loose_kwargs_emit_deprecation_warning():
    network, auth = _fresh()
    with pytest.warns(DeprecationWarning, match="ExecutionConfig"):
        measure_network(
            network, auth, full_simulation=False, backend="serial"
        )
    network, auth = _fresh()
    with pytest.warns(DeprecationWarning):
        measure_network(network, auth, full_simulation=False, max_workers=2)


def test_plain_calls_do_not_warn():
    network, auth = _fresh()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        measure_network(network, auth, full_simulation=False)


def test_measure_network_shim_bit_identical_to_campaign():
    network, auth = _fresh()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = measure_network(
            network, auth, full_simulation=True, backend="vector"
        )
    network2, auth2 = _fresh()
    report = Campaign(
        Scenario(network=network2, team=auth2),
        ExecutionConfig(backend="vector"),
    ).run()
    assert shim.estimates == report.estimates
    assert shim.failures == report.failures
    assert shim.slots_elapsed == report.slots_elapsed
    assert shim.measurements_run == report.result.measurements_run
    assert auth.estimates == auth2.estimates


def test_measure_network_shim_with_priors_and_background():
    network, auth = _fresh(seed_net=5, seed_auth=6)
    priors = dict(list(network.capacities().items())[:4])
    background = {fp: 1e6 for fp in network.relays}
    shim = measure_network(
        network, auth, prior_estimates=priors,
        background_demand=background, full_simulation=True,
    )
    network2, auth2 = _fresh(seed_net=5, seed_auth=6)
    report = Campaign(
        Scenario(
            network=network2, team=auth2, priors=priors,
            background=background,
        ),
        ExecutionConfig(),
    ).run()
    assert shim.estimates == report.estimates


def test_run_campaign_returns_full_report():
    network, auth = _fresh()
    report = run_campaign(network, auth, full_simulation=False)
    assert report.result.estimates == report.estimates
    assert report.rounds
    assert report.scenario_name == "measure-network"


def test_deployment_run_period_matches_multi_period_campaign():
    """run_period (shim) and Scenario(periods=N) walk the same loop."""
    periods = 2
    network = synthesize_network(n_relays=6, seed=44)
    deployment = Deployment(authority=quick_team(seed=45))
    records = [deployment.run_period(network) for _ in range(periods)]

    scenario = Scenario(
        network=synthesize_network(n_relays=6, seed=44),
        team=quick_team(seed=45),
        periods=periods,
    )
    report = Campaign(scenario, ExecutionConfig()).run()
    assert len(report.period_results) == periods
    for record, result in zip(records, report.period_results):
        assert record.campaign.estimates == result.estimates
        assert record.campaign.slots_elapsed == result.slots_elapsed
    for record, api_record in zip(records, report.deployment_records):
        assert record.bwfile.serialize() == api_record.bwfile.serialize()
