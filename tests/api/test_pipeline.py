"""Pipelined rounds are the same campaign, differently scheduled.

``ExecutionConfig(pipeline=)`` overlaps each round's stateful compile
stream with worker execution on pool backends. The contract under test:
the streamed event sequence and the assembled ``CampaignReport`` are
bit-identical with the pipeline on or off, for every backend -- and the
pipeline silently stays off where there is no pool to overlap with
(``serial``/``vector``), preserving serial's debugging granularity.
"""

import pytest

from repro import quick_team
from repro.api import (
    Campaign,
    CampaignCompleted,
    ExecutionConfig,
    RoundCompleted,
    RoundPlanned,
    Scenario,
)
from repro.core.allocation import allocate_capacity
from repro.core.engine import MeasurementEngine, MeasurementSpec
from repro.core.params import FlashFlowParams
from repro.errors import ConfigurationError
from repro.kernel.backends import get_backend
from repro.tornet.network import synthesize_network
from repro.tornet.relay import Relay, RelayBehavior
from repro.units import mbit


def _stream(backend, pipeline):
    network = synthesize_network(n_relays=40, seed=71)
    authority = quick_team(seed=72)
    campaign = Campaign(
        Scenario(network=network, team=authority),
        ExecutionConfig(backend=backend, max_workers=2, pipeline=pipeline),
    )
    return list(campaign.iter_rounds()), campaign.report


def _event_signature(event):
    """A timing-free projection of one campaign event."""
    if isinstance(event, RoundCompleted):
        record = event.record
        return (
            "round_completed",
            event.period_index,
            event.round_index,
            record.first_slot,
            record.slots_packed,
            tuple(
                (
                    m.slot_index, m.fingerprint, m.attempt, m.estimate,
                    m.failed, m.failure_reason, m.cells_checked,
                    m.accepted, m.retried, m.settled, m.planned_estimate,
                )
                for m in record.measurements
            ),
        )
    if isinstance(event, RoundPlanned):
        return (
            "round_planned", event.period_index, event.round_index,
            event.n_jobs, event.first_slot, event.slots_packed,
        )
    if isinstance(event, CampaignCompleted):
        report = event.report
        return (
            "campaign_completed",
            tuple(sorted(report.estimates.items())),
            tuple(sorted(report.result.failures.items())),
            report.result.slots_elapsed,
            report.result.measurements_run,
        )
    return (event.kind,)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_pipeline_on_off_bit_identical_events_and_report(backend):
    events_off, report_off = _stream(backend, pipeline=False)
    events_on, report_on = _stream(backend, pipeline=True)
    assert [_event_signature(e) for e in events_off] == [
        _event_signature(e) for e in events_on
    ]
    assert report_off.estimates == report_on.estimates
    assert report_off.result.failures == report_on.result.failures
    assert report_off.result.slots_elapsed == report_on.result.slots_elapsed
    for ra, rb in zip(report_off.rounds, report_on.rounds):
        assert ra.measurements == rb.measurements
    assert len(report_on.estimates) == 40


def test_auto_pipeline_matches_explicit_choices():
    """pipeline=None (auto) produces the same bits as on and off."""
    _, auto = _stream("thread", pipeline=None)
    _, off = _stream("thread", pipeline=False)
    assert auto.estimates == off.estimates
    assert auto.result.measurements_run == off.result.measurements_run


def test_pipeline_is_noop_without_a_pool():
    """serial/vector/analytic have no workers to overlap with."""
    for name in ("serial", "vector", "analytic"):
        assert get_backend(name).open_stream(100, max_workers=4) is None
    _, serial = _stream("serial", pipeline=True)
    _, vector = _stream("vector", pipeline=True)
    _, piped = _stream("process", pipeline=True)
    assert serial.estimates == vector.estimates == piped.estimates


class _StatefulCustomBehavior(RelayBehavior):
    """A genuinely stateful custom behaviour: its report depends on
    running cross-second state, so ``kernel_program()`` inherits the
    base's ``None`` answer and the spec must take the stateful fallback
    (the four library attacks all compile now)."""

    name = "stateful-custom"

    def __init__(self):
        self._seconds = 0

    def report_background(self, actual_bytes, relay):
        self._seconds += 1
        return actual_bytes * (1.0 if self._seconds % 2 else 0.5)


def _specs(params, team, n=24, seed0=400, custom=()):
    specs = []
    for i in range(n):
        behavior = _StatefulCustomBehavior() if i in custom else None
        relay = Relay.with_capacity(
            f"relay{i}", mbit(60 + 25 * i), seed=seed0 + i, behavior=behavior
        )
        specs.append(
            MeasurementSpec(
                target=relay,
                assignments=allocate_capacity(team, mbit(400)),
                params=params,
                seed=seed0 + i,
                enforce_admission=False,
            )
        )
    return specs


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_run_many_pipelined_outcomes_identical(backend):
    params = FlashFlowParams()
    team = quick_team(seed=4).team
    reference = MeasurementEngine().run_many(
        _specs(params, team), backend=backend, max_workers=2, pipeline=False
    )
    piped = MeasurementEngine().run_many(
        _specs(params, team), backend=backend, max_workers=2, pipeline=True
    )
    for a, b in zip(reference, piped):
        assert a.estimate == b.estimate
        assert a.per_second_total == b.per_second_total
        assert a.cells_checked == b.cells_checked


def test_run_many_pipelined_with_stateful_fallbacks():
    """Uncompilable specs (custom stateful behaviours) run on the
    stateful path while the stream drains -- outcomes still land in
    spec order."""
    params = FlashFlowParams()
    team = quick_team(seed=5).team
    custom = {3, 11, 17}
    reference = MeasurementEngine().run_many(
        _specs(params, team, custom=custom),
        backend="thread", max_workers=2, pipeline=False,
    )
    piped = MeasurementEngine().run_many(
        _specs(params, team, custom=custom),
        backend="thread", max_workers=2, pipeline=True,
    )
    assert [o.failed for o in reference] == [o.failed for o in piped]
    for a, b in zip(reference, piped):
        assert a.estimate == b.estimate
        assert a.per_second_total == b.per_second_total


def test_stream_without_chunks_never_creates_a_pool():
    """An all-fallback round must not spawn workers it will never use."""
    stream = get_backend("thread").open_stream(100, max_workers=4)
    assert stream is not None
    assert stream.finish() == []
    assert stream._pool is None


def test_run_many_pipelined_all_fallbacks():
    """Every spec uncompilable: the stream stays empty, results match."""
    params = FlashFlowParams()
    team = quick_team(seed=6).team
    all_custom = frozenset(range(12))
    reference = MeasurementEngine().run_many(
        _specs(params, team, n=12, custom=all_custom),
        backend="process", max_workers=2, pipeline=False,
    )
    piped = MeasurementEngine().run_many(
        _specs(params, team, n=12, custom=all_custom),
        backend="process", max_workers=2, pipeline=True,
    )
    assert [o.failed for o in reference] == [o.failed for o in piped]
    assert [o.estimate for o in reference] == [o.estimate for o in piped]


def test_pipeline_config_validation():
    with pytest.raises(ConfigurationError):
        ExecutionConfig(pipeline="yes")
    # The three legal values construct fine.
    for value in (None, True, False):
        assert ExecutionConfig(pipeline=value).pipeline is value
