"""Oracle tests: Campaign.run() is bit-identical to the pre-PR loop.

``_reference_measure_network`` below is a verbatim port of the
``measure_network`` body as it stood before the scenario API absorbed
it (PR 2 state). Registered scenarios resolved deterministically must
produce the *exact* same estimates through ``Campaign.run()`` on every
kernel backend as that historical loop produces on freshly resolved,
identical inputs.
"""

from collections import deque
from typing import Callable

import pytest

from repro.api import Campaign, ExecutionConfig, get_scenario
from repro.core.allocation import allocate_capacity, total_allocated
from repro.core.engine import MeasurementEngine, MeasurementSpec
from repro.core.netmeasure import CampaignResult
from repro.rng import fork

BACKENDS = ("serial", "thread", "process", "vector")


def _reference_measure_network(
    network,
    authority,
    prior_estimates=None,
    background_demand=0.0,
    max_rounds: int = 8,
    full_simulation: bool = True,
    noise=None,
    analytic_error_std: float = 0.02,
    max_workers=None,
    engine=None,
    backend=None,
) -> CampaignResult:
    """The pre-API ``measure_network`` loop, preserved as an oracle."""
    params = authority.params
    team = authority.team
    team_capacity = authority.team_capacity()
    prior = prior_estimates or {}
    result = CampaignResult(slot_seconds=params.slot_seconds)
    rng = fork(authority.seed, "campaign-analytic")
    if engine is None:
        engine = getattr(authority, "engine", None) or MeasurementEngine()

    old = [fp for fp in network.relays if fp in prior]
    new = [fp for fp in network.relays if fp not in prior]
    old.sort(key=lambda fp: prior[fp], reverse=True)
    queue = deque(
        [(fp, prior[fp], 0) for fp in old]
        + [(fp, params.new_relay_seed, 0) for fp in new]
    )

    def required_for(z0: float) -> float:
        return min(params.allocation_factor * max(z0, 1.0), team_capacity)

    slot_index = 0
    while queue:
        jobs = []
        waiting = queue
        while waiting:
            residual = team_capacity
            this_slot = []
            deferred = deque()
            while waiting:
                fp, z0, rounds = waiting.popleft()
                if required_for(z0) <= residual + 1e-6:
                    this_slot.append((fp, z0, rounds))
                    residual -= required_for(z0)
                else:
                    deferred.append((fp, z0, rounds))
            if not this_slot:
                this_slot.append(deferred.popleft())
            for fp, z0, rounds in this_slot:
                required = required_for(z0)
                jobs.append(
                    (
                        fp,
                        z0,
                        rounds,
                        slot_index,
                        required < params.allocation_factor * z0,
                        allocate_capacity(team, required),
                        (
                            background_demand.get(fp, 0.0)
                            if isinstance(background_demand, dict)
                            else background_demand
                        ),
                        (
                            None
                            if full_simulation
                            else max(0.8, rng.gauss(1.0, analytic_error_std))
                        ),
                    )
                )
            slot_index += 1
            waiting = deferred

        if full_simulation:
            specs = [
                MeasurementSpec(
                    target=network[fp],
                    assignments=assignments,
                    params=params,
                    network=authority.network,
                    background_demand=bg,
                    seed=authority.seed + slot * 7919 + rounds,
                    bwauth_id=authority.name,
                    period_index=0,
                    enforce_admission=False,
                    noise=noise,
                )
                for fp, z0, rounds, slot, capped, assignments, bg, _ in jobs
            ]
            outcomes = engine.run_many(
                specs, max_workers=max_workers, backend=backend
            )
            results = [
                (o.estimate, o.failed, o.failure_reason) for o in outcomes
            ]
        else:
            results = [
                (
                    engine.analytic_estimate(
                        network[fp], assignments, params, wobble
                    ),
                    False,
                    None,
                )
                for fp, z0, rounds, slot, capped, assignments, bg, wobble
                in jobs
            ]

        retries = deque()
        for job, (z, failed, reason) in zip(jobs, results):
            fp, z0, rounds, slot, capped, assignments, bg, _ = job
            result.measurements_run += 1
            if failed:
                result.failures[fp] = reason or "measurement failed"
                continue
            threshold = params.acceptance_threshold(
                total_allocated(assignments)
            )
            if z < threshold or capped:
                result.estimates[fp] = z
                authority.estimates[fp] = z
            elif rounds + 1 >= max_rounds:
                result.failures[fp] = "did not converge"
            else:
                retries.append((fp, max(z, 2.0 * z0), rounds + 1))
        queue = retries

    result.slots_elapsed = slot_index
    return result


def _reference_for_scenario(scenario, execution: ExecutionConfig):
    """Run the oracle loop on a fresh resolution of ``scenario``."""
    resolved = scenario.resolve()
    background: dict | float | Callable = resolved.background
    return _reference_measure_network(
        resolved.network,
        resolved.authority,
        prior_estimates=resolved.priors,
        background_demand=background,
        max_rounds=execution.max_rounds,
        full_simulation=execution.full_simulation,
        noise=resolved.noise,
        analytic_error_std=execution.analytic_error_std,
        max_workers=execution.max_workers,
        backend=execution.backend,
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_fig06_accuracy_campaign_matches_reference(backend):
    scenario = get_scenario("fig06-accuracy", n_relays=8, seed=6)
    execution = ExecutionConfig(backend=backend)
    reference = _reference_for_scenario(scenario, execution)
    report = Campaign(scenario, execution).run()
    assert report.estimates == reference.estimates
    assert report.failures == reference.failures
    assert report.slots_elapsed == reference.slots_elapsed
    assert report.measurements_run == reference.measurements_run


@pytest.mark.parametrize("backend", BACKENDS)
def test_whole_network_efficiency_matches_reference(backend):
    scenario = get_scenario("whole-network-efficiency", n_relays=60, seed=71)
    execution = ExecutionConfig(backend=backend, full_simulation=False)
    reference = _reference_for_scenario(scenario, execution)
    report = Campaign(scenario, execution).run()
    assert report.estimates == reference.estimates
    assert report.slots_elapsed == reference.slots_elapsed
    assert report.measurements_run == reference.measurements_run


@pytest.mark.parametrize(
    "name,overrides",
    [
        ("fig06-accuracy", {"n_relays": 6}),
        ("whole-network-efficiency", {"n_relays": 24}),
        ("background-traffic", {"n_relays": 6}),
        ("inflation-attack", {"n_relays": 8}),
        ("multi-period-deployment", {"n_relays": 4, "periods": 2}),
        ("shadow-measurement", {"n_relays": 6}),
    ],
)
def test_every_registered_scenario_is_backend_invariant(name, overrides):
    """Each canned scenario produces bit-identical estimates on all
    four kernel backends (fresh resolution per run: relays are
    stateful)."""
    reports = {}
    for backend in BACKENDS:
        scenario = get_scenario(name, **overrides)
        base = ExecutionConfig(backend=backend)
        if name == "whole-network-efficiency":
            base = ExecutionConfig(backend=backend, full_simulation=False)
        reports[backend] = Campaign(scenario, base).run()
    reference = reports["vector"]
    assert reference.estimates, name
    for backend, report in reports.items():
        assert report.estimates == reference.estimates, (name, backend)
        assert report.slots_elapsed == reference.slots_elapsed, (name, backend)
