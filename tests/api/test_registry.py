"""The scenario registry, canned scenarios, and the CLI smoke runner."""

import json

import pytest

from repro.api import (
    ExecutionConfig,
    default_execution_for,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
    scenario_registry,
)
from repro.api.__main__ import main as api_main
from repro.api.scenarios import _REGISTRY
from repro.errors import ConfigurationError

CANNED = (
    "fig06-accuracy",
    "whole-network-efficiency",
    "background-traffic",
    "inflation-attack",
    "multi-period-deployment",
    "shadow-measurement",
)


def test_all_canned_scenarios_registered():
    names = scenario_names()
    for name in CANNED:
        assert name in names
    registry = scenario_registry()
    for name in CANNED:
        assert registry[name].description


def test_get_scenario_applies_overrides():
    scenario = get_scenario("fig06-accuracy", n_relays=4, seed=99)
    assert scenario.name == "fig06-accuracy"
    assert scenario.network.n_relays == 4
    assert scenario.seed == 99


def test_get_scenario_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        get_scenario("no-such-scenario")


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        register_scenario("fig06-accuracy")(lambda **kw: None)
    assert "fig06-accuracy" in _REGISTRY  # original entry untouched


def test_register_and_run_custom_scenario():
    from repro.api import NetworkSpec, Scenario

    name = "test-custom-scenario"
    try:
        @register_scenario(name, description="one-file extension point")
        def _factory(n_relays: int = 3, **overrides) -> Scenario:
            return Scenario(
                name=name,
                network=NetworkSpec(n_relays=n_relays),
                seed=5,
                **overrides,
            )

        report = run_scenario(
            name, execution=ExecutionConfig(full_simulation=False)
        )
        assert report.scenario_name == name
        assert len(report.estimates) == 3
    finally:
        _REGISTRY.pop(name, None)


def test_default_execution_for_efficiency_is_analytic():
    assert default_execution_for("whole-network-efficiency").full_simulation \
        is False
    assert default_execution_for("fig06-accuracy").full_simulation is True


def test_inflation_attack_scenario_respects_bound():
    report = run_scenario("inflation-attack", n_relays=10, seed=9)
    inflation = report.adversary_inflation()
    assert inflation
    bound = 1.0 / (1.0 - 0.25)
    for fp, factor in inflation.items():
        assert factor <= bound * 1.001, fp
    honest = [
        fp for fp in report.ground_truth if fp not in report.adversaries
    ]
    for fp in honest:
        if fp in report.estimates:
            assert report.estimates[fp] <= 1.1 * report.ground_truth[fp]


@pytest.mark.parametrize("name", ["background-traffic", "shadow-measurement"])
def test_capacity_proportional_scenarios_rerun_deterministically(name):
    """Backgrounds resolve lazily against a freshly generated network,
    so re-running the *same* Scenario object reproduces its estimates
    (no stateful network hides inside the frozen description)."""
    from repro.api import Campaign

    scenario = get_scenario(name, n_relays=5)
    first = Campaign(scenario, ExecutionConfig()).run()
    second = Campaign(scenario, ExecutionConfig()).run()
    assert first.estimates == second.estimates


def test_background_traffic_scenario_runs_clamped():
    report = run_scenario("background-traffic", n_relays=5, utilization=0.3)
    assert len(report.estimates) == 5
    for fp, estimate in report.estimates.items():
        assert estimate <= 1.35 * report.ground_truth[fp]


def test_cli_list_and_smoke(capsys):
    assert api_main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in CANNED:
        assert name in out

    code = api_main([
        "fig06-accuracy", "--backend", "serial", "--quiet",
        "-o", "n_relays=3",
    ])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["scenario"] == "fig06-accuracy"
    assert summary["relays_estimated"] == 3


def test_cli_no_scenario_shows_listing(capsys):
    assert api_main([]) == 2
    assert "fig06-accuracy" in capsys.readouterr().out
