"""Tests for the measurement slot loop (paper §4.1)."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.relays import (
    ForgingRelayBehavior,
    RatioCheatingRelayBehavior,
    TrafficLiarRelayBehavior,
)
from repro.core.allocation import allocate_capacity
from repro.core.measurement import (
    MeasurementOutcome,
    clamp_background,
    run_measurement,
)
from repro.core.params import FlashFlowParams
from repro.errors import MeasurementFailure
from repro.tornet.relay import Relay
from repro.units import mbit


def _assignments(auth, required):
    return allocate_capacity(auth.team, required)


def test_basic_measurement_close_to_capacity(team_auth, params):
    relay = Relay.with_capacity("r", mbit(250), seed=1)
    outcome = run_measurement(
        relay,
        _assignments(team_auth, params.allocation_factor * mbit(250)),
        params,
        seed=2,
    )
    assert not outcome.failed
    assert outcome.estimate == pytest.approx(mbit(250), rel=0.2)
    assert outcome.duration == params.slot_seconds
    assert len(outcome.per_second_total) == params.slot_seconds


def test_estimate_is_median_of_per_second_totals(team_auth, params):
    relay = Relay.with_capacity("r", mbit(100), seed=3)
    outcome = run_measurement(
        relay, _assignments(team_auth, mbit(300)), params, seed=4
    )
    assert outcome.estimate == pytest.approx(
        statistics.median(outcome.per_second_total)
    )


def test_under_allocated_measurement_is_supply_limited(team_auth, params):
    """With far too little measurer capacity, z tracks the allocation."""
    relay = Relay.with_capacity("r", mbit(900), seed=5)
    outcome = run_measurement(
        relay, _assignments(team_auth, mbit(200)), params, seed=6
    )
    assert outcome.estimate < mbit(300)


def test_background_traffic_included_and_clamped(team_auth, params):
    relay = Relay.with_capacity("r", mbit(250), seed=7)
    outcome = run_measurement(
        relay,
        _assignments(team_auth, params.allocation_factor * mbit(250)),
        params,
        background_demand=mbit(50),
        seed=8,
    )
    assert not outcome.failed
    # Background contributes, but never more than r/(1-r) of measurement.
    for x, y in zip(
        outcome.per_second_measurement, outcome.per_second_background_clamped
    ):
        assert y <= x * params.ratio / (1 - params.ratio) + 1e-6
    assert outcome.estimate == pytest.approx(mbit(250), rel=0.2)


def test_background_demand_callable(team_auth, params):
    relay = Relay.with_capacity("r", mbit(100), seed=9)
    outcome = run_measurement(
        relay,
        _assignments(team_auth, mbit(300)),
        params,
        background_demand=lambda t: mbit(10) if t < 5 else 0.0,
        seed=10,
    )
    assert sum(outcome.per_second_background_clamped[:5]) > 0
    assert sum(outcome.per_second_background_clamped[10:]) == 0


def test_traffic_liar_bounded_by_inflation_factor(team_auth, params):
    """§5: lying about background inflates z by at most 1/(1-r) = 1.33."""
    capacity = mbit(250)
    liar = Relay.with_capacity(
        "liar", capacity,
        behavior=RatioCheatingRelayBehavior(), seed=11,
    )
    outcome = run_measurement(
        liar,
        _assignments(team_auth, params.allocation_factor * capacity),
        params,
        background_demand=0.0,
        seed=12,
    )
    assert not outcome.failed
    assert outcome.estimate <= capacity * params.inflation_bound * 1.10
    # And the lie does buy something over honesty (upper region reached).
    assert outcome.estimate > capacity * 1.05


def test_moderate_liar_also_clamped(team_auth, params):
    relay = Relay.with_capacity(
        "liar2", mbit(100),
        behavior=TrafficLiarRelayBehavior(lie_factor=50.0), seed=13,
    )
    outcome = run_measurement(
        relay,
        _assignments(team_auth, params.allocation_factor * mbit(100)),
        params,
        background_demand=mbit(5),
        seed=14,
    )
    assert outcome.estimate <= mbit(100) * params.inflation_bound * 1.10


def test_forging_relay_fails_measurement(team_auth, params):
    relay = Relay.with_capacity(
        "forger", mbit(500),
        behavior=ForgingRelayBehavior(seed=1), seed=15,
    )
    # Forgery checks fire with probability p per cell; at 500 Mbit/s the
    # expected checks per 30 s slot is ~36, so detection is essentially
    # certain with the paper's p.
    outcome = run_measurement(
        relay,
        _assignments(team_auth, params.allocation_factor * mbit(500)),
        params,
        seed=16,
    )
    assert outcome.failed
    assert outcome.estimate == 0.0
    assert "content check" in outcome.failure_reason


def test_admission_refusal(team_auth, params):
    relay = Relay.with_capacity("r", mbit(100), seed=17)
    assignments = _assignments(team_auth, mbit(300))
    first = run_measurement(
        relay, assignments, params, seed=18,
        enforce_admission=True, bwauth_id="b0", period_index=0,
    )
    assert not first.failed
    second = run_measurement(
        relay, assignments, params, seed=19,
        enforce_admission=True, bwauth_id="b0", period_index=0,
    )
    assert second.failed
    assert "already measured" in second.failure_reason


def test_no_participating_measurers_raises(team_auth, params):
    relay = Relay.with_capacity("r", mbit(100))
    assignments = _assignments(team_auth, mbit(300))
    for a in assignments:
        a.allocated = 0.0
    with pytest.raises(MeasurementFailure):
        run_measurement(relay, assignments, params, seed=20)


def test_custom_duration(team_auth, params):
    relay = Relay.with_capacity("r", mbit(100), seed=21)
    outcome = run_measurement(
        relay, _assignments(team_auth, mbit(300)), params,
        duration=60, seed=22,
    )
    assert outcome.duration == 60
    assert len(outcome.per_second_total) == 60


def test_estimate_with_duration_truncation():
    outcome = MeasurementOutcome(
        estimate=0.0,
        per_second_total=[10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
    )
    assert outcome.estimate_with_duration(3) == 20.0
    assert outcome.estimate_with_duration(6) == 35.0
    assert outcome.estimate_with_duration(100) == 35.0
    with pytest.raises(ValueError):
        outcome.estimate_with_duration(0)


def test_deterministic_given_seed(team_auth, params):
    relay_a = Relay.with_capacity("r", mbit(100), seed=23)
    relay_b = Relay.with_capacity("r", mbit(100), seed=23)
    a = run_measurement(
        relay_a, _assignments(team_auth, mbit(300)), params, seed=24
    )
    b = run_measurement(
        relay_b, _assignments(team_auth, mbit(300)), params, seed=24
    )
    assert a.estimate == b.estimate


def test_clamp_background_monotone():
    assert clamp_background(100.0, 50.0, 0.25) == pytest.approx(
        min(50.0, 100.0 / 3)
    )
    assert clamp_background(100.0, 5.0, 0.25) == 5.0
    assert clamp_background(100.0, 500.0, 0.0) == 0.0
    with pytest.raises(ValueError):
        clamp_background(1.0, 1.0, 1.0)


@given(
    x=st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=1e10)),
    y=st.floats(min_value=0, max_value=1e12),
    r=st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=200, deadline=None)
def test_clamp_bound_property(x, y, r):
    """Clamped background never exceeds the ratio bound, whatever the lie."""
    clamped = clamp_background(x, y, r)
    assert clamped <= y + 1e-9
    if r > 0:
        assert clamped <= x * r / (1 - r) + 1e-9
        total = x + clamped
        if total > 0:
            assert clamped / total <= r + 1e-9
