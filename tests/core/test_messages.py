"""Tests for the authenticated protocol messages (Schnorr signatures)."""

import pytest

from repro.core.messages import (
    MessageChannel,
    MessageType,
    ProtocolMessage,
    SigningIdentity,
)
from repro.errors import AuthenticationError, ProtocolError


@pytest.fixture(scope="module")
def bwauth():
    return SigningIdentity("bwauth0")


def _announce(nonce=1, sender="bwauth0"):
    return ProtocolMessage(
        msg_type=MessageType.MEASUREMENT_ANNOUNCE,
        sender=sender,
        nonce=nonce,
        payload={"measurer_keys": [1, 2, 3]},
    )


def test_sign_and_verify(bwauth):
    msg = _announce().signed_by(bwauth)
    msg.verify(bwauth.public)  # should not raise


def test_unsigned_message_rejected(bwauth):
    with pytest.raises(AuthenticationError):
        _announce().verify(bwauth.public)


def test_wrong_key_rejected(bwauth):
    other = SigningIdentity("other")
    msg = _announce().signed_by(bwauth)
    with pytest.raises(AuthenticationError):
        msg.verify(other.public)


def test_tampered_payload_rejected(bwauth):
    msg = _announce().signed_by(bwauth)
    msg.payload["measurer_keys"] = [9]
    with pytest.raises(AuthenticationError):
        msg.verify(bwauth.public)


def test_identity_must_match_sender(bwauth):
    msg = _announce(sender="not-bwauth0")
    with pytest.raises(ProtocolError):
        msg.signed_by(bwauth)


def test_signature_verifies_exact_message(bwauth):
    a = _announce(nonce=1).signed_by(bwauth)
    b = _announce(nonce=2)
    b.signature = a.signature  # splice signature onto different message
    with pytest.raises(AuthenticationError):
        b.verify(bwauth.public)


def test_channel_accepts_in_order(bwauth):
    channel = MessageChannel("bwauth0", bwauth.public)
    channel.receive(_announce(nonce=1).signed_by(bwauth))
    channel.receive(_announce(nonce=2).signed_by(bwauth))


def test_channel_rejects_replay(bwauth):
    channel = MessageChannel("bwauth0", bwauth.public)
    msg = _announce(nonce=5).signed_by(bwauth)
    channel.receive(msg)
    with pytest.raises(AuthenticationError):
        channel.receive(msg)


def test_channel_rejects_old_nonce(bwauth):
    channel = MessageChannel("bwauth0", bwauth.public)
    channel.receive(_announce(nonce=10).signed_by(bwauth))
    with pytest.raises(AuthenticationError):
        channel.receive(_announce(nonce=3).signed_by(bwauth))


def test_channel_rejects_wrong_sender(bwauth):
    channel = MessageChannel("bwauth0", bwauth.public)
    mallory = SigningIdentity("mallory")
    msg = _announce(sender="mallory").signed_by(mallory)
    with pytest.raises(AuthenticationError):
        channel.receive(msg)


def test_signatures_are_randomized(bwauth):
    """Schnorr signatures use a fresh nonce: same message, new signature."""
    msg = _announce()
    sig1 = bwauth.sign(msg.canonical_bytes())
    sig2 = bwauth.sign(msg.canonical_bytes())
    assert sig1 != sig2
    assert SigningIdentity.verify(bwauth.public, msg.canonical_bytes(), sig1)
    assert SigningIdentity.verify(bwauth.public, msg.canonical_bytes(), sig2)


def test_verify_rejects_out_of_range_signature(bwauth):
    msg = _announce().signed_by(bwauth)
    assert not SigningIdentity.verify(
        bwauth.public, msg.canonical_bytes(), (-1, 5)
    )
