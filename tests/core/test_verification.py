"""Tests for echo-cell verification (paper §4.1/§5)."""

import random

import pytest

from repro.attacks.relays import ForgingRelayBehavior
from repro.core.verification import EchoVerifier, detection_probability
from repro.errors import VerificationFailure
from repro.tornet.relay import Relay
from repro.units import CELL_LEN, mbit


def _verifier(p=1e-5, seed=0):
    return EchoVerifier(p, random.Random(seed))


def test_detection_probability_closed_form():
    assert detection_probability(1e-5, 0) == 0.0
    assert detection_probability(1e-5, 100_000) == pytest.approx(
        1 - (1 - 1e-5) ** 100_000
    )
    assert detection_probability(1.0, 1) == 1.0


def test_detection_probability_validation():
    with pytest.raises(ValueError):
        detection_probability(2.0, 1)
    with pytest.raises(ValueError):
        detection_probability(0.5, -1)


def test_honest_relay_passes_checks():
    relay = Relay.with_capacity("honest", mbit(100))
    verifier = _verifier(p=1.0)
    checked = verifier.check_cells(relay, 50)
    assert checked == 50
    assert verifier.cells_failed == 0


def test_forging_relay_caught():
    relay = Relay.with_capacity(
        "forger", mbit(100), behavior=ForgingRelayBehavior(seed=1)
    )
    verifier = _verifier(p=1.0)
    with pytest.raises(VerificationFailure) as excinfo:
        verifier.check_cells(relay, 10)
    assert excinfo.value.relay_fingerprint == "forger"
    assert verifier.cells_failed == 1


def test_partial_forger_eventually_caught():
    relay = Relay.with_capacity(
        "sneaky", mbit(100),
        behavior=ForgingRelayBehavior(forge_fraction=0.3, seed=2),
    )
    verifier = _verifier(p=1.0, seed=3)
    with pytest.raises(VerificationFailure):
        verifier.check_cells(relay, 200)


def test_sample_count_zero_for_no_cells():
    assert _verifier().sample_count(0) == 0


def test_sample_count_statistics():
    """At 1 Gbit/s (~243k cells/s) and p = 1e-5, ~2.4 checks/second."""
    verifier = _verifier(p=1e-5, seed=4)
    cells_per_second = int(1e9 / 8 / CELL_LEN)
    samples = [verifier.sample_count(cells_per_second) for _ in range(500)]
    mean = sum(samples) / len(samples)
    assert 1.5 < mean < 3.5


def test_sample_count_never_exceeds_cells():
    verifier = _verifier(p=0.9, seed=5)
    for _ in range(100):
        assert verifier.sample_count(3) <= 3


def test_verify_second_with_zero_bytes():
    relay = Relay.with_capacity("r", mbit(100))
    assert _verifier().verify_second(relay, 0.0) == 0


def test_invalid_probability_rejected():
    with pytest.raises(ValueError):
        _verifier(p=1.5)


def test_evasion_probability_matches_paper_example():
    """§5: forging k responses evades with probability (1-p)^k; at the
    paper's p = 1e-5, forging one second of gigabit traffic (~243k
    cells) is caught with probability ~91%."""
    cells = int(1e9 / 8 / CELL_LEN)
    assert detection_probability(1e-5, cells) > 0.90
