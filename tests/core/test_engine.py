"""Tests for the batched, parallel measurement engine.

The contract under test: the engine's precomputation and batching are
pure reorganisations of the historical serial per-second loop -- same
forked RNG streams consumed in the same order -- so its outcomes are
*bit-identical* to serial execution, for any worker count.
"""

import statistics

import pytest

from repro import quick_team
from repro.api import Campaign, ExecutionConfig, Scenario
from repro.core.allocation import allocate_capacity, total_allocated
from repro.core.engine import (
    MeasurementEngine,
    MeasurementNoise,
    MeasurementSpec,
    clamp_background,
)
from repro.core.measurement import run_measurement
from repro.core.measurer import measurer_socket_efficiency
from repro.core.messages import SigningIdentity
from repro.core.netmeasure import measure_network
from repro.core.params import FlashFlowParams
from repro.core.session import MeasurementSession
from repro.core.verification import EchoVerifier
from repro.netsim.latency import NetworkModel, Path, internet_loss_for_rtt
from repro.netsim.socketbuf import KernelConfig
from repro.netsim.tcp import tcp_ramp_profile, tcp_rate_cap
from repro.rng import fork
from repro.tornet.network import synthesize_network
from repro.tornet.relay import Relay
from repro.units import bits_to_bytes, mbit


def _reference_run_measurement(
    target, assignments, params, seed=0, background_demand=0.0,
    duration=None, noise=None, bwauth_id="bwauth0", period_index=0,
    default_rtt=0.118,
):
    """The pre-engine serial loop, kept verbatim as the oracle.

    Re-derives TCP caps and noise socket-by-socket, second-by-second --
    exactly what ``MeasurementEngine`` batches away.
    """
    noise = noise or MeasurementNoise()
    duration = params.slot_seconds if duration is None else duration
    rng = fork(seed, f"measurement-{bwauth_id}-{target.fingerprint}-{period_index}")
    active = [a for a in assignments if a.participates]
    socket_share = max(1, params.n_sockets // len(active))
    target_kernel = (
        target.host.kernel if target.host is not None else KernelConfig.default()
    )
    env = min(
        noise.target_env_max,
        max(noise.target_env_min,
            rng.gauss(noise.target_env_mean, noise.target_env_std)),
    )
    setups = []
    for a in active:
        path = Path(
            src=a.measurer.host.name, dst="target",
            rtt_seconds=default_rtt, loss=internet_loss_for_rtt(default_rtt),
        )
        quality = max(0.45, min(1.0, rng.gauss(0.92, 0.10)))
        setups.append((a, path, quality))
    verifier = EchoVerifier(params.p_check, fork(seed, f"verify-{target.fingerprint}"))
    bg_of = (
        background_demand
        if callable(background_demand)
        else (lambda _t, v=float(background_demand): v)
    )
    zs = []
    for second in range(duration):
        supply_total = 0.0
        for a, path, quality in setups:
            per_socket = tcp_rate_cap(
                path, a.measurer.host.kernel, target_kernel,
                age_seconds=float(second),
            )
            socket_cap = per_socket * socket_share * quality
            per_second = max(0.3, rng.gauss(1.0, noise.supply_noise_std))
            supply_total += (
                min(a.allocated, socket_cap, a.measurer.host.link_capacity)
                * measurer_socket_efficiency(socket_share)
                * per_second
            )
        report = target.measured_second(
            measurement_supply_bits=supply_total,
            background_demand_bits=bg_of(second),
            ratio_r=params.ratio,
            n_measurement_sockets=params.n_sockets,
            external_factor=env,
        )
        x_bits = report.measurement_bytes * 8.0
        y_clamped = clamp_background(
            x_bits, report.background_reported_bytes * 8.0, params.ratio
        )
        zs.append(x_bits + y_clamped)
        verifier.verify_second(target, bits_to_bytes(x_bits))
    return float(statistics.median(zs)), zs, verifier.cells_checked


@pytest.fixture
def engine():
    return MeasurementEngine()


def _spec(relay, team, required, params, **kwargs):
    return MeasurementSpec(
        target=relay,
        assignments=allocate_capacity(team, required),
        params=params,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Old-vs-new equivalence
# ---------------------------------------------------------------------------

def test_engine_matches_serial_reference_exactly(engine):
    """Engine estimates reproduce the serial loop bit-for-bit."""
    params = FlashFlowParams()
    auth = quick_team(seed=1)
    for seed, cap_mbit, bg in [(5, 100, 0.0), (6, 250, mbit(30)), (7, 600, 0.0)]:
        relay_ref = Relay.with_capacity("r", mbit(cap_mbit), seed=seed)
        relay_eng = Relay.with_capacity("r", mbit(cap_mbit), seed=seed)
        assignments = allocate_capacity(
            auth.team, params.allocation_factor * mbit(cap_mbit)
        )
        ref_estimate, ref_zs, ref_cells = _reference_run_measurement(
            relay_ref, assignments, params, seed=seed * 11,
            background_demand=bg,
        )
        outcome = engine.run(
            MeasurementSpec(
                target=relay_eng, assignments=assignments, params=params,
                seed=seed * 11, background_demand=bg,
                enforce_admission=False,
            )
        )
        assert outcome.estimate == ref_estimate
        assert outcome.per_second_total == ref_zs
        assert outcome.cells_checked == ref_cells


def test_run_measurement_wrapper_goes_through_engine():
    """The public wrapper and a direct engine run are the same bits."""
    params = FlashFlowParams()
    auth = quick_team(seed=2)
    relay_a = Relay.with_capacity("r", mbit(200), seed=3)
    relay_b = Relay.with_capacity("r", mbit(200), seed=3)
    assignments = allocate_capacity(auth.team, mbit(500))
    a = run_measurement(relay_a, assignments, params, seed=9)
    b = MeasurementEngine().run(
        MeasurementSpec(
            target=relay_b, assignments=assignments, params=params, seed=9
        )
    )
    assert a.estimate == b.estimate
    assert a.per_second_total == b.per_second_total


def test_ramp_profile_matches_per_second_rate_caps():
    """tcp_ramp_profile == [tcp_rate_cap(age=s) for s], element for element."""
    kernel = KernelConfig.default()
    for rtt in (0.0002, 0.04, 0.21):
        path = Path("a", "b", rtt_seconds=rtt, loss=internet_loss_for_rtt(rtt))
        profile = tcp_ramp_profile(path, kernel, kernel, 40)
        expected = [
            tcp_rate_cap(path, kernel, kernel, age_seconds=float(s))
            for s in range(40)
        ]
        assert profile == expected


# ---------------------------------------------------------------------------
# Concurrency: worker count never changes results
# ---------------------------------------------------------------------------

def _many_specs(params, team, n=8, seed0=40):
    specs = []
    for i in range(n):
        relay = Relay.with_capacity(f"relay{i}", mbit(80 + 40 * i), seed=seed0 + i)
        specs.append(
            _spec(relay, team, mbit(500), params, seed=seed0 + i,
                  enforce_admission=False)
        )
    return specs


def test_run_many_parallel_matches_serial(engine):
    params = FlashFlowParams()
    auth = quick_team(seed=4)
    serial = engine.run_many(_many_specs(params, auth.team), max_workers=1)
    parallel = engine.run_many(_many_specs(params, auth.team), max_workers=4)
    assert len(serial) == len(parallel) == 8
    for a, b in zip(serial, parallel):
        assert a.estimate == b.estimate
        assert a.per_second_total == b.per_second_total
        assert a.cells_checked == b.cells_checked


def test_run_many_duplicate_targets_fall_back_to_serial(engine):
    """Specs sharing a relay must not race its token bucket / RNG."""
    params = FlashFlowParams()
    auth = quick_team(seed=5)
    relay = Relay.with_capacity("shared", mbit(100), seed=50)
    specs = [
        _spec(relay, auth.team, mbit(300), params, seed=s,
              enforce_admission=False)
        for s in (1, 2)
    ]
    outcomes = engine.run_many(specs, max_workers=4)
    # Identical to running them one after the other on a twin relay.
    twin = Relay.with_capacity("shared", mbit(100), seed=50)
    expected = [
        engine.run(_spec(twin, auth.team, mbit(300), params, seed=s,
                         enforce_admission=False))
        for s in (1, 2)
    ]
    assert [o.estimate for o in outcomes] == [o.estimate for o in expected]


def _campaign_result(network, auth, max_workers, full_simulation=True):
    """The supported execution path (no deprecated loose kwargs)."""
    report = Campaign(
        Scenario(network=network, team=auth),
        ExecutionConfig(max_workers=max_workers, full_simulation=full_simulation),
    ).run()
    return report.result


def test_measure_network_worker_count_invariant():
    network1 = synthesize_network(n_relays=20, seed=71)
    network4 = synthesize_network(n_relays=20, seed=71)
    auth1 = quick_team(seed=72)
    auth4 = quick_team(seed=72)
    r1 = _campaign_result(network1, auth1, max_workers=1)
    r4 = _campaign_result(network4, auth4, max_workers=4)
    assert r1.estimates == r4.estimates
    assert r1.failures == r4.failures
    assert r1.slots_elapsed == r4.slots_elapsed
    assert r1.measurements_run == r4.measurements_run


def test_measure_network_analytic_worker_count_invariant():
    network = synthesize_network(n_relays=30, seed=73)
    auth1 = quick_team(seed=74)
    auth4 = quick_team(seed=74)
    r1 = _campaign_result(network, auth1, max_workers=1, full_simulation=False)
    r4 = _campaign_result(network, auth4, max_workers=4, full_simulation=False)
    assert r1.estimates == r4.estimates
    assert r1.slots_elapsed == r4.slots_elapsed


# ---------------------------------------------------------------------------
# Analytic fast path
# ---------------------------------------------------------------------------

def test_analytic_estimate_is_supply_limited_truth(engine):
    params = FlashFlowParams()
    auth = quick_team(seed=6)
    relay = Relay.with_capacity("r", mbit(100), seed=60)
    assignments = allocate_capacity(auth.team, mbit(900))
    supply = total_allocated(assignments) / params.multiplier
    # Plenty of supply: the estimate is the (wobbled) true capacity.
    assert engine.analytic_estimate(relay, assignments, params, wobble=0.97) \
        == pytest.approx(mbit(100) * 0.97)
    # Starved supply: the estimate is supply-limited.
    small = allocate_capacity(auth.team, mbit(90))
    assert engine.analytic_estimate(relay, small, params, wobble=1.0) \
        == pytest.approx(total_allocated(small) / params.multiplier)
    assert supply > 0


# ---------------------------------------------------------------------------
# Satellite bugfixes
# ---------------------------------------------------------------------------

def test_campaign_slot_seconds_follows_params():
    """CampaignResult.slot_seconds comes from the params actually used."""
    params = FlashFlowParams(slot_seconds=10)
    network = synthesize_network(n_relays=5, seed=80)
    auth = quick_team(seed=81, params=params)
    result = measure_network(network, auth, full_simulation=False)
    assert result.slot_seconds == 10
    assert result.seconds_elapsed == result.slots_elapsed * 10


def test_failed_verification_reports_unified_cell_counter():
    """Failure and success paths report the verifier's own counter."""
    from repro.attacks.relays import ForgingRelayBehavior

    params = FlashFlowParams()
    auth = quick_team(seed=7)
    forger = Relay.with_capacity(
        "forger", mbit(500), behavior=ForgingRelayBehavior(seed=1), seed=70
    )
    outcome = run_measurement(
        forger,
        allocate_capacity(auth.team, params.allocation_factor * mbit(500)),
        params,
        seed=71,
    )
    assert outcome.failed
    # The failing cell itself was checked, so the counter includes it.
    assert outcome.cells_checked >= 1


# ---------------------------------------------------------------------------
# Session integration: the engine drives a verifiable transcript
# ---------------------------------------------------------------------------

def test_session_run_measurement_produces_verifiable_transcript():
    from repro.core.messages import MessageType

    params = FlashFlowParams(slot_seconds=5)
    auth = quick_team(seed=8, params=params)
    relay = Relay.with_capacity("r", mbit(150), seed=90)
    assignments = allocate_capacity(auth.team, mbit(400))
    measurer_ids = {m.name: SigningIdentity(m.name) for m in auth.team}
    session = MeasurementSession(
        bwauth=SigningIdentity("bwauth0"),
        measurer_identities=measurer_ids,
        relay_identity=SigningIdentity("r"),
    )
    spec = MeasurementSpec(
        target=relay, assignments=assignments, params=params, seed=91
    )
    outcome = session.run_measurement(spec)
    session.verify_transcript()

    assert not outcome.failed
    # One report per participating measurer per second, plus the relay's.
    n_active = sum(1 for a in assignments if a.participates)
    reports = session.transcript.of_type(MessageType.MEASURER_REPORT)
    assert len(reports) == n_active * params.slot_seconds
    relay_reports = session.transcript.of_type(MessageType.RELAY_REPORT)
    assert len(relay_reports) == params.slot_seconds
    # Transcripted per-second measurer bytes sum to the outcome's x_j.
    by_second = {}
    for message in reports:
        by_second.setdefault(message.payload["second"], 0.0)
        by_second[message.payload["second"]] += message.payload["bytes"]
    for second, x_bits in enumerate(outcome.per_second_measurement):
        assert by_second[second] * 8.0 == pytest.approx(x_bits)
    # And the engine outcome matches an un-transcripted run bit-for-bit.
    twin = Relay.with_capacity("r", mbit(150), seed=90)
    plain = MeasurementEngine().run(
        MeasurementSpec(
            target=twin, assignments=assignments, params=params, seed=91
        )
    )
    assert plain.estimate == outcome.estimate


def test_session_refusal_short_circuits_engine():
    params = FlashFlowParams()
    auth = quick_team(seed=9, params=params)
    relay = Relay.with_capacity("r", mbit(100), seed=95)
    relay.accept_measurement("bwauth0", 0)  # already measured this period
    session = MeasurementSession(
        bwauth=SigningIdentity("bwauth0"),
        measurer_identities={m.name: SigningIdentity(m.name) for m in auth.team},
        relay_identity=SigningIdentity("r"),
    )
    outcome = session.run_measurement(
        MeasurementSpec(
            target=relay,
            assignments=allocate_capacity(auth.team, mbit(300)),
            params=params,
            seed=96,
        )
    )
    assert outcome.failed
    assert "already measured" in outcome.failure_reason
    session.verify_transcript()
