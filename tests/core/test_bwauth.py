"""Tests for the BWAuth measurement loop (paper §4.2)."""

import pytest

from repro import quick_team
from repro.attacks.relays import ForgingRelayBehavior
from repro.core.bwauth import FlashFlowAuthority
from repro.core.measurer import Measurer
from repro.core.params import FlashFlowParams
from repro.errors import AllocationError
from repro.netsim.hosts import Host, make_paper_hosts
from repro.netsim.latency import NetworkModel
from repro.tornet.relay import Relay
from repro.units import gbit, mbit


def test_needs_a_team():
    with pytest.raises(AllocationError):
        FlashFlowAuthority("b", team=[])


def test_old_relay_single_round(team_auth):
    """A correct prior estimate concludes in one measurement (paper §4.2)."""
    relay = Relay.with_capacity("r", mbit(250), seed=1)
    estimate = team_auth.measure_relay(relay, initial_estimate=mbit(250))
    assert estimate.conclusive
    assert estimate.rounds == 1
    assert estimate.capacity == pytest.approx(mbit(250), rel=0.2)


def test_estimate_within_error_bounds(team_auth, params):
    """Accepted estimates land in ((1-eps1)x, (1+eps2)x)."""
    for cap_mbit, seed in ((10, 2), (100, 3), (500, 4), (750, 5)):
        relay = Relay.with_capacity(f"r{cap_mbit}", mbit(cap_mbit), seed=seed)
        estimate = team_auth.measure_relay(
            relay, initial_estimate=mbit(cap_mbit), seed_offset=seed
        )
        lo, hi = params.accuracy_interval(mbit(cap_mbit))
        assert lo <= estimate.capacity <= hi, cap_mbit


def test_underestimated_relay_doubles_up(team_auth):
    """A stale low estimate triggers retries with z0 = max(z, 2 z0)."""
    relay = Relay.with_capacity("r", mbit(400), seed=6)
    estimate = team_auth.measure_relay(relay, initial_estimate=mbit(50))
    assert estimate.conclusive
    assert estimate.rounds >= 2
    assert estimate.capacity == pytest.approx(mbit(400), rel=0.25)


def test_new_relay_uses_seed_estimate(team_auth, params):
    """New relays start from the 75th-percentile seed (51 Mbit/s)."""
    small = Relay.with_capacity("small", mbit(20), seed=7)
    estimate = team_auth.measure_relay(small)
    assert estimate.conclusive
    assert estimate.rounds == 1  # 51 Mbit/s seed covers a 20 Mbit/s relay


def test_new_big_relay_takes_more_rounds(team_auth):
    big = Relay.with_capacity("big", mbit(800), seed=8)
    estimate = team_auth.measure_relay(big)
    assert estimate.conclusive
    assert estimate.rounds > 1
    assert estimate.capacity == pytest.approx(mbit(800), rel=0.25)


def test_estimates_recorded(team_auth):
    relay = Relay.with_capacity("r", mbit(100), seed=9)
    estimate = team_auth.measure_relay(relay, initial_estimate=mbit(100))
    assert team_auth.estimates["r"] == estimate.capacity


def test_capacity_beyond_team_is_best_effort():
    """A relay bigger than the team can saturate is still measured, but
    marked inconclusive (the allocation was capped)."""
    auth = quick_team(n_measurers=1, capacity_each=mbit(400), seed=10)
    relay = Relay.with_capacity("huge", mbit(900), seed=11)
    estimate = auth.measure_relay(relay, initial_estimate=mbit(900))
    assert not estimate.conclusive
    assert estimate.capacity <= mbit(450)


def test_forger_fails_measurement(team_auth):
    relay = Relay.with_capacity(
        "forger", mbit(500), behavior=ForgingRelayBehavior(seed=1), seed=12
    )
    estimate = team_auth.measure_relay(relay, initial_estimate=mbit(500))
    assert estimate.failed
    assert estimate.capacity == 0.0


def test_admission_enforced_once_for_whole_retry_loop(team_auth):
    relay = Relay.with_capacity("r", mbit(100), seed=13)
    first = team_auth.measure_relay(
        relay, initial_estimate=mbit(100),
        enforce_admission=True, period_index=3,
    )
    assert not first.failed
    second = team_auth.measure_relay(
        relay, initial_estimate=mbit(100),
        enforce_admission=True, period_index=3,
    )
    assert second.failed


def test_invalid_initial_estimate(team_auth):
    relay = Relay.with_capacity("r", mbit(100))
    from repro.errors import MeasurementFailure

    with pytest.raises(MeasurementFailure):
        team_auth.measure_relay(relay, initial_estimate=0.0)


def test_measure_measurers_with_network():
    """§4.2: iPerf many-to-one estimates each measurer's capacity."""
    model = NetworkModel.paper_internet(seed=14)
    hosts = make_paper_hosts()
    team = [
        Measurer(name=name, host=hosts[name])
        for name in ("US-NW", "US-E", "NL")
    ]
    auth = FlashFlowAuthority("b", team, network=model, seed=15)
    results = auth.measure_measurers(duration=20)
    assert set(results) == {"US-NW", "US-E", "NL"}
    for name in ("US-NW", "US-E"):
        assert mbit(700) < results[name] <= gbit(1)
    # Estimates are stored on the measurers for allocation.
    for measurer in team:
        assert measurer.measured_capacity == results[measurer.name]


def test_measure_measurers_without_network_uses_link():
    team = [
        Measurer(name="solo", host=Host(name="solo", link_capacity=gbit(1)))
    ]
    auth = FlashFlowAuthority("b", team, seed=16)
    results = auth.measure_measurers()
    assert results["solo"] == gbit(1)
