"""Tests for authenticated sessions and multi-period deployments."""

import pytest

from repro import quick_team
from repro.core.allocation import allocate_capacity
from repro.core.deployment import Deployment, ESTIMATE_MAX_AGE_PERIODS
from repro.core.measurement import MeasurementOutcome
from repro.core.messages import MessageType, SigningIdentity
from repro.core.session import MeasurementSession
from repro.errors import AuthenticationError, ProtocolError
from repro.tornet.network import TorNetwork, synthesize_network
from repro.tornet.relay import Relay
from repro.units import mbit


@pytest.fixture
def session(team_auth):
    return MeasurementSession(
        bwauth=team_auth.identity,
        measurer_identities={
            m.name: SigningIdentity(m.name) for m in team_auth.team
        },
        relay_identity=SigningIdentity("target"),
        period_index=3,
    )


def _outcome():
    return MeasurementOutcome(estimate=mbit(100), duration=30)


def test_session_full_lifecycle(session, team_auth):
    session.announce()
    session.relay_accept()
    assignments = allocate_capacity(team_auth.team, mbit(600))
    session.instruct(assignments, socket_share=53)
    session.record_second(0, {"measurer0": 1e6, "measurer1": 1e6}, 5e4)
    session.record_second(1, {"measurer0": 1.1e6}, 4e4)
    session.end(_outcome())
    session.verify_transcript()  # every signature and nonce checks out

    announce = session.transcript.of_type(MessageType.MEASUREMENT_ANNOUNCE)[0]
    assert "measurer_keys" in announce.payload
    assert len(session.transcript.of_type(MessageType.MEASURER_REPORT)) == 3
    assert len(session.transcript.of_type(MessageType.RELAY_REPORT)) == 2


def test_session_cannot_instruct_before_accept(session, team_auth):
    session.announce()
    assignments = allocate_capacity(team_auth.team, mbit(300))
    with pytest.raises(ProtocolError):
        session.instruct(assignments, socket_share=53)


def test_session_refusal_blocks_measuring(session):
    session.announce()
    session.relay_accept(accept=False)
    with pytest.raises(ProtocolError):
        session.record_second(0, {}, 0.0)


def test_session_cannot_end_twice(session):
    session.announce()
    session.relay_accept()
    session.end(_outcome())
    with pytest.raises(ProtocolError):
        session.end(_outcome())
    with pytest.raises(ProtocolError):
        session.record_second(5, {}, 0.0)


def test_tampered_transcript_detected(session):
    session.announce()
    session.relay_accept()
    session.end(_outcome())
    session.transcript.messages[0].payload["period"] = 999
    with pytest.raises(AuthenticationError):
        session.verify_transcript()


def test_transcript_rejects_unknown_sender(session):
    session.announce()
    mallory = SigningIdentity("mallory")
    from repro.core.messages import ProtocolMessage

    session.transcript.append(
        ProtocolMessage(
            msg_type=MessageType.RELAY_REPORT,
            sender="mallory",
            nonce=99,
            payload={},
        ).signed_by(mallory)
    )
    with pytest.raises(AuthenticationError):
        session.verify_transcript()


# ---------------------------------------------------------------------------
# Deployment
# ---------------------------------------------------------------------------

@pytest.fixture
def small_network():
    return synthesize_network(n_relays=12, seed=44)


def test_deployment_runs_periods(small_network):
    deployment = Deployment(authority=quick_team(seed=45))
    first = deployment.run_period(small_network)
    second = deployment.run_period(small_network)
    assert first.period_index == 0
    assert second.period_index == 1
    assert len(first.estimates) == len(small_network)
    assert len(second.bwfile) == len(small_network)


def test_deployment_warm_start_cuts_measurements(small_network):
    deployment = Deployment(
        authority=quick_team(seed=46), full_simulation=False
    )
    first = deployment.run_period(small_network)
    second = deployment.run_period(small_network)
    assert second.campaign.measurements_run <= first.campaign.measurements_run


def test_deployment_tracks_new_arrivals(small_network):
    deployment = Deployment(authority=quick_team(seed=47))
    deployment.run_period(small_network)
    grown = TorNetwork(dict(small_network.relays))
    grown.add(Relay.with_capacity("newcomer", mbit(80), seed=48))
    record = deployment.run_period(grown)
    assert "newcomer" in record.estimates
    assert deployment.estimate_age("newcomer") == 0


def test_deployment_ages_out_stale_estimates(small_network):
    deployment = Deployment(
        authority=quick_team(seed=49), full_simulation=False
    )
    deployment.run_period(small_network)
    fp = next(iter(small_network.relays))
    # Simulate a month of periods without seeing this relay.
    deployment._history[fp] = (
        deployment._history[fp][0],
        -(ESTIMATE_MAX_AGE_PERIODS + 1),
    )
    assert fp not in deployment.known_estimates()


def test_deployment_bwfile_per_period(small_network):
    deployment = Deployment(
        authority=quick_team(seed=50), full_simulation=False
    )
    record = deployment.run_period(small_network)
    parsed_weights = record.bwfile.weights()
    assert parsed_weights == {
        fp: pytest.approx(est) for fp, est in record.estimates.items()
    }
