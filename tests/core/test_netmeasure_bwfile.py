"""Tests for full-network campaigns, bandwidth files, and aggregation."""

import pytest

from repro import quick_team
from repro.core.aggregation import aggregate_bwauth_votes, consensus_from_votes
from repro.core.bwfile import BandwidthFile, BandwidthLine
from repro.core.netmeasure import measure_network
from repro.errors import ConfigurationError, ProtocolError
from repro.tornet.network import synthesize_network
from repro.units import mbit


@pytest.fixture(scope="module")
def small_network():
    return synthesize_network(n_relays=40, seed=21)


def test_campaign_measures_every_relay(small_network):
    auth = quick_team(seed=22)
    result = measure_network(small_network, auth, full_simulation=True)
    assert set(result.estimates) == set(small_network.relays)
    assert not result.failures


def test_campaign_estimates_accurate(small_network):
    auth = quick_team(seed=23)
    result = measure_network(small_network, auth, full_simulation=True)
    for fp, estimate in result.estimates.items():
        capacity = small_network[fp].true_capacity
        assert 0.6 * capacity <= estimate <= 1.1 * capacity, fp


def test_campaign_with_priors_uses_fewer_measurements(small_network):
    auth_cold = quick_team(seed=24)
    cold = measure_network(small_network, auth_cold, full_simulation=False)
    auth_warm = quick_team(seed=24)
    warm = measure_network(
        small_network, auth_warm,
        prior_estimates=dict(cold.estimates),
        full_simulation=False,
    )
    assert warm.measurements_run <= cold.measurements_run
    assert warm.slots_elapsed <= cold.slots_elapsed


def test_campaign_releases_committed_capacity(small_network):
    auth = quick_team(seed=25)
    measure_network(small_network, auth, full_simulation=False)
    for measurer in auth.team:
        assert measurer.committed == pytest.approx(0.0)


def test_campaign_analytic_mode_fast(small_network):
    auth = quick_team(seed=26)
    result = measure_network(small_network, auth, full_simulation=False)
    assert len(result.estimates) == len(small_network)
    assert result.slots_elapsed > 0
    assert result.seconds_elapsed == result.slots_elapsed * 30


def test_campaign_hours_property():
    from repro.core.netmeasure import CampaignResult

    result = CampaignResult(slots_elapsed=600, slot_seconds=30)
    assert result.hours_elapsed == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# Bandwidth files
# ---------------------------------------------------------------------------

def test_bwfile_round_trip():
    bwfile = BandwidthFile.from_estimates(
        {"r1": mbit(100), "r2": mbit(250)}, timestamp=1234
    )
    parsed = BandwidthFile.parse(bwfile.serialize())
    assert parsed.timestamp == 1234
    assert parsed.capacities()["r1"] == pytest.approx(mbit(100))
    assert parsed.weights()["r2"] == pytest.approx(mbit(250))
    assert len(parsed) == 2


def test_bwfile_line_round_trip():
    line = BandwidthLine("abc", bw=123.0, capacity_bps=456.0, measured_at=7)
    parsed = BandwidthLine.parse(line.serialize())
    assert parsed == line


def test_bwfile_line_without_capacity():
    line = BandwidthLine.parse("node_id=x bw=10")
    assert line.capacity_bps is None


def test_bwfile_malformed_line():
    with pytest.raises(ConfigurationError):
        BandwidthLine.parse("garbage")


def test_bwfile_empty_rejected():
    with pytest.raises(ConfigurationError):
        BandwidthFile.parse("")


def test_bwfile_missing_timestamp_rejected():
    with pytest.raises(ConfigurationError):
        BandwidthFile.parse("version=1.0 generator=flashflow")


def test_bwfile_contains():
    bwfile = BandwidthFile.from_estimates({"r1": 1.0})
    assert "r1" in bwfile
    assert "r2" not in bwfile


# ---------------------------------------------------------------------------
# Multi-BWAuth aggregation
# ---------------------------------------------------------------------------

def test_median_aggregation():
    votes = {
        "b0": {"r": mbit(100)},
        "b1": {"r": mbit(110)},
        "b2": {"r": mbit(900)},  # one corrupt BWAuth cannot move the median
    }
    aggregated = aggregate_bwauth_votes(votes)
    assert aggregated["r"] == mbit(110)


def test_majority_required():
    votes = {"b0": {"r": 1.0}, "b1": {}, "b2": {}}
    assert "r" not in aggregate_bwauth_votes(votes)
    assert "r" in aggregate_bwauth_votes(votes, min_votes=1)


def test_no_votes_rejected():
    with pytest.raises(ProtocolError):
        aggregate_bwauth_votes({})


def test_consensus_from_votes():
    votes = {
        "b0": {"r1": 100.0, "r2": 50.0},
        "b1": {"r1": 120.0, "r2": 60.0},
        "b2": {"r1": 110.0, "r2": 55.0},
    }
    consensus = consensus_from_votes(votes, valid_after=99)
    assert consensus.valid_after == 99
    assert consensus.routers["r1"].weight == 110.0
    assert consensus.normalized_weight("r1") == pytest.approx(110.0 / 165.0)


def test_selective_capacity_defeated_by_median():
    """§5: a relay fast during < half the measurements keeps a low median."""
    low, high = mbit(10), mbit(100)
    votes = {f"b{i}": {"r": low} for i in range(3)}
    votes["b3"] = {"r": high}
    votes["b4"] = {"r": high}
    aggregated = aggregate_bwauth_votes(votes)
    assert aggregated["r"] == low


# ---------------------------------------------------------------------------
# Parser hardening (service-layer publish path republishes parsed files)
# ---------------------------------------------------------------------------

def test_bwfile_duplicate_fingerprint_rejected():
    text = (
        "version=1.0 generator=flashflow timestamp=0\n"
        "node_id=r1 bw=100 measured_at=0\n"
        "node_id=r1 bw=200 measured_at=0\n"
    )
    with pytest.raises(ConfigurationError, match="duplicate fingerprint"):
        BandwidthFile.parse(text)


def test_bwfile_line_duplicate_key_rejected():
    with pytest.raises(ConfigurationError, match="duplicate key"):
        BandwidthLine.parse("node_id=r1 bw=100 bw=200")


def test_bwfile_line_keyless_token_rejected():
    with pytest.raises(ConfigurationError, match="malformed"):
        BandwidthLine.parse("node_id=r1 bw=100 garbage")


def test_bwfile_line_non_numeric_values_rejected():
    with pytest.raises(ConfigurationError, match="malformed"):
        BandwidthLine.parse("node_id=r1 bw=lots")
    with pytest.raises(ConfigurationError, match="malformed"):
        BandwidthLine.parse("node_id=r1 bw=10 measured_at=noon")


def test_bwfile_non_integer_timestamp_rejected():
    with pytest.raises(ConfigurationError, match="not an integer"):
        BandwidthFile.parse("version=1.0 timestamp=yesterday")


def test_bwfile_serialize_parse_serialize_idempotent():
    import random

    rng = random.Random(9)
    bwfile = BandwidthFile.from_estimates(
        {f"relay{i:03d}": rng.uniform(1e6, 1e9) for i in range(50)},
        timestamp=86400,
        generator="bwauth0",
    )
    once = bwfile.serialize()
    twice = BandwidthFile.parse(once).serialize()
    assert twice == once
    assert BandwidthFile.parse(twice).serialize() == twice
