"""Tests for FlashFlow parameters (paper §6.1 defaults and derived values)."""

import pytest

from repro.core.params import FlashFlowParams
from repro.errors import ConfigurationError
from repro.units import DAY, mbit


def test_paper_defaults():
    p = FlashFlowParams()
    assert p.n_sockets == 160
    assert p.multiplier == 2.25
    assert p.slot_seconds == 30
    assert p.epsilon1 == 0.20
    assert p.epsilon2 == 0.05
    assert p.ratio == 0.25
    assert p.p_check == 1e-5
    assert p.period_seconds == DAY
    assert p.new_relay_seed == mbit(51)


def test_allocation_factor_formula():
    """f = m (1 + eps2) / (1 - eps1) = 2.953 with paper defaults."""
    p = FlashFlowParams()
    assert p.allocation_factor == pytest.approx(2.25 * 1.05 / 0.80)


def test_inflation_bound_is_1_33():
    assert FlashFlowParams().inflation_bound == pytest.approx(1.0 / 0.75)


def test_slots_per_period():
    assert FlashFlowParams().slots_per_period == 2880  # 24h / 30s


def test_acceptance_threshold():
    """Accept z < sum(a_i)(1-eps1)/m (paper §4.2)."""
    p = FlashFlowParams()
    assert p.acceptance_threshold(mbit(900)) == pytest.approx(
        mbit(900) * 0.80 / 2.25
    )


def test_accuracy_interval():
    lo, hi = FlashFlowParams().accuracy_interval(mbit(100))
    assert lo == pytest.approx(mbit(80))
    assert hi == pytest.approx(mbit(105))


def test_correct_estimate_always_accepted():
    """§4.2's algebra: if z0 is the true capacity and the measurement is
    accurate (z < (1+eps2) z0), the acceptance condition holds."""
    p = FlashFlowParams()
    z0 = mbit(200)
    allocated = p.allocation_factor * z0
    z_worst_accurate = (1 + p.epsilon2) * z0
    assert z_worst_accurate <= p.acceptance_threshold(allocated) + 1e-6


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_sockets": 0},
        {"multiplier": 0.5},
        {"slot_seconds": 0},
        {"epsilon1": 1.0},
        {"epsilon2": -0.1},
        {"ratio": 1.0},
        {"p_check": 2.0},
        {"period_seconds": 10, "slot_seconds": 30},
    ],
)
def test_invalid_params_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        FlashFlowParams(**kwargs)


def test_params_frozen():
    p = FlashFlowParams()
    with pytest.raises(AttributeError):
        p.ratio = 0.5
