"""Tests for even allocation and measurer-side socket efficiency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import allocate_evenly, total_allocated
from repro.core.measurement import (
    MEASURER_OVERHEAD_FREE_SOCKETS,
    measurer_socket_efficiency,
)
from repro.core.measurer import Measurer
from repro.errors import AllocationError
from repro.netsim.hosts import Host
from repro.units import gbit, mbit


def _team(*capacities):
    return [
        Measurer(
            name=f"m{i}",
            host=Host(name=f"m{i}", link_capacity=c),
            measured_capacity=c,
        )
        for i, c in enumerate(capacities)
    ]


def test_even_split_is_even():
    team = _team(gbit(1), gbit(1), gbit(1))
    assignments = allocate_evenly(team, mbit(900))
    for a in assignments:
        assert a.allocated == pytest.approx(mbit(300))
    assert total_allocated(assignments) == pytest.approx(mbit(900))


def test_even_split_respects_member_capacity():
    team = _team(gbit(2), mbit(100))
    with pytest.raises(AllocationError):
        allocate_evenly(team, mbit(400))  # share 200 > m1's 100


def test_even_split_empty_team():
    with pytest.raises(AllocationError):
        allocate_evenly([], mbit(100))


def test_even_split_negative():
    with pytest.raises(AllocationError):
        allocate_evenly(_team(gbit(1)), -1.0)


@given(
    capacities=st.lists(
        st.floats(min_value=1e8, max_value=5e9), min_size=1, max_size=5
    ),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=80, deadline=None)
def test_even_split_properties(capacities, fraction):
    team = _team(*capacities)
    required = min(capacities) * len(capacities) * fraction
    assignments = allocate_evenly(team, required)
    assert total_allocated(assignments) == pytest.approx(
        required, rel=1e-9, abs=1e-6
    )
    shares = {a.allocated for a in assignments}
    assert len(shares) == 1  # perfectly even


def test_socket_efficiency_free_region():
    assert measurer_socket_efficiency(1) == 1.0
    assert measurer_socket_efficiency(MEASURER_OVERHEAD_FREE_SOCKETS) == 1.0


def test_socket_efficiency_declines():
    assert (
        measurer_socket_efficiency(300)
        < measurer_socket_efficiency(160)
        < measurer_socket_efficiency(61)
        <= 1.0
    )


def test_socket_efficiency_never_zero():
    assert measurer_socket_efficiency(10_000) > 0.0
