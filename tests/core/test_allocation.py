"""Tests for greedy measurer-capacity allocation (paper §4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import allocate_capacity, total_allocated
from repro.core.measurer import Measurer, socket_shares, sufficient_team, team_capacity
from repro.errors import AllocationError, ConfigurationError
from repro.netsim.hosts import Host
from repro.units import gbit, mbit


def _team(*capacities):
    return [
        Measurer(
            name=f"m{i}",
            host=Host(name=f"m{i}", link_capacity=c),
            measured_capacity=c,
        )
        for i, c in enumerate(capacities)
    ]


def test_allocation_sums_to_required():
    team = _team(gbit(1), gbit(1), gbit(1))
    assignments = allocate_capacity(team, mbit(700))
    assert total_allocated(assignments) == pytest.approx(mbit(700))


def test_greedy_prefers_most_residual():
    team = _team(gbit(2), gbit(1))
    assignments = allocate_capacity(team, mbit(500))
    by_name = {a.measurer.name: a.allocated for a in assignments}
    assert by_name["m0"] == pytest.approx(mbit(500))
    assert by_name["m1"] == 0.0


def test_zero_allocation_means_not_participating():
    team = _team(gbit(2), gbit(1))
    assignments = allocate_capacity(team, mbit(100))
    flags = [a.participates for a in assignments]
    assert flags == [True, False]


def test_allocation_spills_to_second_measurer():
    team = _team(gbit(1), gbit(1))
    assignments = allocate_capacity(team, mbit(1500))
    by_name = {a.measurer.name: a.allocated for a in assignments}
    assert by_name["m0"] == pytest.approx(gbit(1))
    assert by_name["m1"] == pytest.approx(mbit(500))


def test_insufficient_team_raises():
    team = _team(mbit(100))
    with pytest.raises(AllocationError):
        allocate_capacity(team, mbit(500))


def test_negative_request_rejected():
    with pytest.raises(AllocationError):
        allocate_capacity(_team(gbit(1)), -1.0)


def test_residual_accounting_for_concurrent_measurements():
    team = _team(gbit(1))
    team[0].commit(mbit(800))
    with pytest.raises(AllocationError):
        allocate_capacity(team, mbit(300))
    assignments = allocate_capacity(team, mbit(200))
    assert total_allocated(assignments) == pytest.approx(mbit(200))
    team[0].release(mbit(800))
    assignments = allocate_capacity(team, mbit(900))
    assert total_allocated(assignments) == pytest.approx(mbit(900))


def test_commit_beyond_residual_rejected():
    team = _team(mbit(100))
    with pytest.raises(ConfigurationError):
        team[0].commit(mbit(200))


def test_team_capacity_and_sufficiency():
    team = _team(gbit(1), gbit(1), gbit(1))
    assert team_capacity(team) == pytest.approx(gbit(3))
    # Paper §7: 3 Gbit/s team vs max relay 998 Mbit/s at f = 2.84-2.95.
    assert sufficient_team(team, mbit(998), allocation_factor=2.953)
    assert not sufficient_team(team, mbit(1200), allocation_factor=2.953)


def test_socket_shares_even_split():
    assert socket_shares(160, 3) == [54, 53, 53]
    assert sum(socket_shares(160, 3)) == 160


def test_socket_shares_one_measurer():
    assert socket_shares(160, 1) == [160]


def test_socket_shares_invalid():
    with pytest.raises(ConfigurationError):
        socket_shares(160, 0)


def test_spawn_processes_rate_split():
    team = _team(gbit(1))
    processes = team[0].spawn_processes(mbit(600), socket_share=54)
    assert len(processes) == team[0].host.cpu_cores
    total_rate = sum(p.rate_limit for p in processes)
    assert total_rate == pytest.approx(mbit(600))


def test_spawn_processes_always_at_least_one():
    measurer = Measurer(
        name="m",
        host=Host(name="m", link_capacity=gbit(1), cpu_cores=0),
        measured_capacity=gbit(1),
    )
    assert len(measurer.spawn_processes(mbit(100), 10)) == 1


@given(
    capacities=st.lists(
        st.floats(min_value=1e6, max_value=5e9), min_size=1, max_size=6
    ),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_allocation_properties(capacities, fraction):
    """Property: sum(a_i) = required, 0 <= a_i <= c_i (paper §4.2)."""
    team = _team(*capacities)
    required = sum(capacities) * fraction
    assignments = allocate_capacity(team, required)
    assert total_allocated(assignments) == pytest.approx(
        required, rel=1e-6, abs=1e-5
    )
    for a in assignments:
        assert -1e-9 <= a.allocated <= a.measurer.capacity + 1e-6
