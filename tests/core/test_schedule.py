"""Tests for measurement scheduling (paper §4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import FlashFlowParams
from repro.core.schedule import PeriodSchedule, greedy_pack_slots
from repro.errors import ScheduleError
from repro.tornet.authority import SharedRandomness
from repro.units import gbit, mbit


@pytest.fixture
def params():
    return FlashFlowParams()


def _estimates(n=50, seed=1):
    import random

    rng = random.Random(seed)
    return {f"r{i}": mbit(rng.uniform(5, 500)) for i in range(n)}


def test_every_old_relay_scheduled(params):
    estimates = _estimates()
    schedule = PeriodSchedule.build(params, gbit(3), estimates, seed=b"x" * 32)
    assert set(schedule.assignments) == set(estimates)


def test_same_seed_same_schedule(params):
    estimates = _estimates()
    seed = SharedRandomness.run_round(["a", "b", "c"], seed=1)
    s1 = PeriodSchedule.build(params, gbit(3), estimates, seed=seed)
    s2 = PeriodSchedule.build(params, gbit(3), estimates, seed=seed)
    assert {f: a.slot for f, a in s1.assignments.items()} == {
        f: a.slot for f, a in s2.assignments.items()
    }


def test_different_seed_different_schedule(params):
    estimates = _estimates(n=100)
    s1 = PeriodSchedule.build(params, gbit(3), estimates, seed=b"a" * 32)
    s2 = PeriodSchedule.build(params, gbit(3), estimates, seed=b"b" * 32)
    slots1 = {f: a.slot for f, a in s1.assignments.items()}
    slots2 = {f: a.slot for f, a in s2.assignments.items()}
    assert slots1 != slots2


def test_no_slot_over_capacity(params):
    estimates = _estimates(n=200, seed=2)
    schedule = PeriodSchedule.build(params, gbit(3), estimates, seed=b"y" * 32)
    for slot, load in schedule.slot_load.items():
        assert load <= schedule.team_capacity + 1e-6


def test_slots_are_randomized(params):
    """Slots spread across the whole period, not packed at the front."""
    estimates = _estimates(n=100, seed=3)
    schedule = PeriodSchedule.build(params, gbit(3), estimates, seed=b"z" * 32)
    slots = [a.slot for a in schedule.assignments.values()]
    assert max(slots) > params.slots_per_period // 2
    assert len(set(slots)) > 50


def test_new_relay_fcfs(params):
    estimates = _estimates(n=5, seed=4)
    schedule = PeriodSchedule.build(params, gbit(3), estimates, seed=b"q" * 32)
    a1 = schedule.add_new_relay("new1", mbit(51), earliest_slot=100)
    a2 = schedule.add_new_relay("new2", mbit(51), earliest_slot=100)
    assert a1.is_new and a2.is_new
    assert a1.slot >= 100
    assert a2.slot >= a1.slot  # first come, first served


def test_new_relay_capacity_respected(params):
    # Tiny team: one new relay fills a slot entirely.
    small_params = FlashFlowParams(slot_seconds=30, period_seconds=90)
    schedule = PeriodSchedule(
        params=small_params, team_capacity=mbit(160), seed=b"s" * 32
    )
    a1 = schedule.add_new_relay("n1", mbit(50))
    a2 = schedule.add_new_relay("n2", mbit(50))
    assert a1.slot != a2.slot  # each needs f*50 = ~148 of the 160 capacity


def test_schedule_full_raises(params):
    small_params = FlashFlowParams(slot_seconds=30, period_seconds=60)
    schedule = PeriodSchedule(
        params=small_params, team_capacity=mbit(160), seed=b"t" * 32
    )
    schedule.add_new_relay("n1", mbit(50))
    schedule.add_new_relay("n2", mbit(50))
    with pytest.raises(ScheduleError):
        schedule.add_new_relay("n3", mbit(50))


def test_duplicate_relay_rejected(params):
    estimates = {"r0": mbit(100)}
    schedule = PeriodSchedule.build(params, gbit(3), estimates, seed=b"u" * 32)
    with pytest.raises(ScheduleError):
        schedule.add_new_relay("r0", mbit(100))


def test_oversized_relay_gets_full_team_slot(params):
    """A relay whose f*z0 exceeds team capacity still gets scheduled,
    occupying a whole slot."""
    estimates = {"huge": gbit(2), "small": mbit(10)}
    schedule = PeriodSchedule.build(params, gbit(3), estimates, seed=b"v" * 32)
    huge = schedule.assignments["huge"]
    assert huge.required_capacity == pytest.approx(gbit(3))


def test_greedy_pack_largest_first(params):
    estimates = {"a": mbit(900), "b": mbit(900), "c": mbit(10), "d": mbit(10)}
    slots = greedy_pack_slots(estimates, params, gbit(3))
    # f*900 = 2.66G: one big relay per slot, small ones fill the gaps.
    assert len(slots) == 2
    assert slots[0][0] == "a" or slots[0][0] == "b"


def test_greedy_pack_capacity_respected(params):
    estimates = _estimates(n=100, seed=5)
    slots = greedy_pack_slots(estimates, params, gbit(3))
    for slot in slots:
        load = sum(
            min(params.allocation_factor * estimates[f], gbit(3))
            for f in slot
        )
        assert load <= gbit(3) + 1e-6


def test_greedy_pack_all_relays_covered(params):
    estimates = _estimates(n=75, seed=6)
    slots = greedy_pack_slots(estimates, params, gbit(3))
    packed = [f for slot in slots for f in slot]
    assert sorted(packed) == sorted(estimates)


@given(
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_greedy_pack_properties(n, seed):
    """Every relay packed exactly once; no slot over team capacity."""
    import random

    rng = random.Random(seed)
    params = FlashFlowParams()
    estimates = {f"r{i}": mbit(rng.uniform(1, 998)) for i in range(n)}
    slots = greedy_pack_slots(estimates, params, gbit(3))
    packed = [f for slot in slots for f in slot]
    assert sorted(packed) == sorted(estimates)
    for slot in slots:
        load = sum(
            min(params.allocation_factor * estimates[f], gbit(3))
            for f in slot
        )
        assert load <= gbit(3) + 1e-6


# ---------------------------------------------------------------------------
# Churn-aware schedule surgery (remove_relay / reslot_relay)
# ---------------------------------------------------------------------------

def test_remove_relay_releases_slot_capacity(params):
    estimates = _estimates(n=20)
    schedule = PeriodSchedule.build(params, gbit(3), estimates, seed=b"x" * 32)
    victim = next(iter(schedule.assignments))
    slot = schedule.assignments[victim].slot
    residual_before = schedule.residual(slot)
    removed = schedule.remove_relay(victim)
    assert removed.fingerprint == victim
    assert victim not in schedule.assignments
    assert schedule.residual(slot) == pytest.approx(
        residual_before + removed.required_capacity
    )


def test_remove_last_relay_in_slot_frees_it_entirely(params):
    schedule = PeriodSchedule.build(
        params, gbit(3), {"only": mbit(100)}, seed=b"y" * 32
    )
    slot = schedule.assignments["only"].slot
    schedule.remove_relay("only")
    assert schedule.slots_in_use() == 0
    assert schedule.residual(slot) == schedule.team_capacity
    # The freed slot is immediately reusable at full capacity.
    schedule.add_new_relay("replacement", mbit(100))
    assert schedule.assignments["replacement"].slot == 0


def test_remove_unknown_relay_raises(params):
    schedule = PeriodSchedule.build(
        params, gbit(3), {"a": mbit(10)}, seed=b"z" * 32
    )
    with pytest.raises(ScheduleError):
        schedule.remove_relay("never-scheduled")


def test_remove_then_readd_round_trips(params):
    estimates = _estimates(n=30)
    schedule = PeriodSchedule.build(params, gbit(3), estimates, seed=b"q" * 32)
    loads_before = dict(schedule.slot_load)
    removed = schedule.remove_relay("r7")
    schedule._place(removed)
    assert dict(schedule.slot_load) == loads_before
    assert schedule.assignments["r7"] == removed


def test_reslot_pulls_relay_into_freed_capacity(params):
    # Fill slot 0 completely, forcing the next new relay into slot 1;
    # once the blocker leaves, reslotting pulls it back to slot 0.
    tight = FlashFlowParams()
    schedule = PeriodSchedule(
        params=tight, team_capacity=gbit(1), seed=b"s" * 32
    )
    schedule.add_new_relay("blocker", gbit(1) / tight.allocation_factor)
    assert schedule.assignments["blocker"].slot == 0
    schedule.add_new_relay("late", mbit(50))
    assert schedule.assignments["late"].slot == 1
    schedule.remove_relay("blocker")
    moved = schedule.reslot_relay("late")
    assert moved.slot == 0
    assert schedule.assignments["late"].slot == 0
    assert moved.is_new


def test_reslot_preserves_required_capacity_exactly(params):
    estimates = _estimates(n=10)
    schedule = PeriodSchedule.build(params, gbit(3), estimates, seed=b"r" * 32)
    before = schedule.assignments["r3"].required_capacity
    moved = schedule.reslot_relay("r3", earliest_slot=0)
    assert moved.required_capacity == before


def test_reslot_failure_restores_original_assignment(params):
    tight = FlashFlowParams(
        slot_seconds=FlashFlowParams().period_seconds,
    )
    schedule = PeriodSchedule(
        params=tight, team_capacity=gbit(1), seed=b"t" * 32
    )
    # One slot total, fully occupied: re-slotting past it cannot succeed.
    schedule.add_new_relay("only", gbit(1) / tight.allocation_factor)
    original = schedule.assignments["only"]
    with pytest.raises(ScheduleError):
        schedule.reslot_relay("only", earliest_slot=1)
    assert schedule.assignments["only"] == original
    assert schedule.slot_load[original.slot] == pytest.approx(
        original.required_capacity
    )
