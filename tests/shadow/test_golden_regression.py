"""Golden regression: pinned headline numbers for the §7 comparison.

``compare_systems`` feeds the paper's Figure 8/9 claims; a refactor of
the flow kernel, the waterfiller, or the measurement stack that shifts
these numbers should fail loudly here, not drift silently. The pinned
values were produced by the stateful walk and are asserted against the
default (vectorized) backend *and* re-checked with
``shadow_backend="stateful"`` -- so this file simultaneously pins the
paper-comparison results and proves backend-invariance at the whole-
pipeline level.

Tolerances are tight (rel=1e-6): the simulation is chaotic at the
trajectory level, so any semantic change produces wildly different
numbers, while a faithful refactor reproduces these exactly. Because
the trajectory also depends on the platform's libm (``math.exp`` /
``pow``), the pins are guarded by a toolchain canary: on a libm whose
last-ulp rounding differs from the one that produced the golden
values, the pinned tests skip instead of failing spuriously (the
oracle and property suites still run everywhere).
"""

import math
import statistics

import pytest

from repro.api import ExecutionConfig, run_scenario
from repro.shadow.config import ShadowConfig
from repro.shadow.experiment import compare_systems

#: repr() of libm probes on the toolchain that produced the goldens.
_LIBM_CANARY = {
    "exp": (0.6180339887498949, "1.8552769586143047"),
    "pow": ((0.9246056361944477, 0.375), "0.9710323555510227"),
}

_libm_matches = (
    repr(math.exp(_LIBM_CANARY["exp"][0])) == _LIBM_CANARY["exp"][1]
    and repr(_LIBM_CANARY["pow"][0][0] ** _LIBM_CANARY["pow"][0][1])
    == _LIBM_CANARY["pow"][1]
)

pinned = pytest.mark.skipif(
    not _libm_matches,
    reason="libm rounding differs from the toolchain that produced the "
    "golden values; the chaotic trajectory would diverge without any "
    "real regression",
)

_CONFIG = dict(
    n_relays=24,
    n_markov_clients=12,
    n_benchmark_clients=4,
    sim_seconds=60,
    warmup_seconds=16,
    seed=11,
    circuit_lifetime_seconds=60,
)

#: Headline numbers for ``compare_systems(ShadowConfig(**_CONFIG),
#: loads=(1.0,), seed=11)``.
GOLDEN = {
    "network_weight_error_flashflow": 0.017662397597883822,
    "network_weight_error_torflow": 0.3054779419762693,
    "network_capacity_error_flashflow": 0.16760216185033616,
    "median_relay_capacity_error": 0.17273480584641898,
    "torflow_median_throughput": 345589186.7184195,
    "flashflow_median_throughput": 345589186.7184196,
    "torflow_ttlb_1m_median": 14.147756777905016,
    "flashflow_ttlb_1m_median": 13.789612753214438,
    "torflow_ttfb_median": 1.172301192750302,
    "flashflow_ttfb_median": 1.0422801464939622,
    "transfers_completed_each": 4,
    "transfers_failed_each": 0,
}


def _headline(result) -> dict:
    out = {
        "network_weight_error_flashflow": result.network_weight_error(
            "flashflow"
        ),
        "network_weight_error_torflow": result.network_weight_error("torflow"),
        "network_capacity_error_flashflow": (
            result.flashflow_network_capacity_error()
        ),
        "median_relay_capacity_error": statistics.median(
            result.flashflow_capacity_errors().values()
        ),
    }
    for system in ("torflow", "flashflow"):
        run = result.run_for(system, 1.0)
        out[f"{system}_median_throughput"] = run.metrics.median_throughput()
        out[f"{system}_ttlb_1m_median"] = run.ttlb_stats(1024 * 1024)["median"]
        out[f"{system}_ttfb_median"] = run.ttfb_stats()["median"]
    return out


@pinned
@pytest.mark.parametrize("shadow_backend", (None, "stateful"))
def test_compare_systems_headline_numbers_pinned(shadow_backend):
    result = compare_systems(
        ShadowConfig(**_CONFIG),
        loads=(1.0,),
        seed=11,
        shadow_backend=shadow_backend,
    )
    headline = _headline(result)
    for key, expected in GOLDEN.items():
        if key.startswith("transfers_"):
            continue
        assert headline[key] == pytest.approx(expected, rel=1e-6), key
    for system in ("torflow", "flashflow"):
        metrics = result.run_for(system, 1.0).metrics
        assert (
            metrics.transfers_completed() == GOLDEN["transfers_completed_each"]
        ), system
        assert metrics.transfers_failed() == GOLDEN["transfers_failed_each"], (
            system
        )
    # The qualitative paper claim the figures hinge on.
    assert (
        headline["network_weight_error_flashflow"]
        < headline["network_weight_error_torflow"] / 2
    )


#: Pinned totals for the canned ``shadow-measurement`` scenario
#: (``n_relays=6``, registry defaults): the measurement phase the §7
#: pipeline runs behind ``flashflow_weights_for``.
GOLDEN_SCENARIO = {
    "estimates_sum": 168291862.20785272,
    "n_estimates": 6,
    "slots_elapsed": 2,
    "measurements_run": 7,
    "median_error_vs_truth": 0.18602311645466352,
}


@pinned
@pytest.mark.parametrize("shadow_backend", (None, "stateful", "vector"))
def test_shadow_measurement_scenario_pinned(shadow_backend):
    """The canned scenario's estimates are pinned, and carrying any
    ``shadow_backend`` through the execution config cannot move them
    (the measurement phase never consults it)."""
    report = run_scenario(
        "shadow-measurement",
        n_relays=6,
        execution=ExecutionConfig().with_shadow_backend(shadow_backend),
    )
    assert len(report.estimates) == GOLDEN_SCENARIO["n_estimates"]
    assert sum(report.estimates.values()) == pytest.approx(
        GOLDEN_SCENARIO["estimates_sum"], rel=1e-6
    )
    assert report.slots_elapsed == GOLDEN_SCENARIO["slots_elapsed"]
    assert report.measurements_run == GOLDEN_SCENARIO["measurements_run"]
    assert report.median_error_vs_truth() == pytest.approx(
        GOLDEN_SCENARIO["median_error_vs_truth"], rel=1e-6
    )
