"""Oracle tests: the vectorized flow kernel is bit-identical to the
stateful per-second walk.

Mirrors ``tests/api/test_campaign_oracle.py``: the historical stateful
walk (``backend="stateful"``) is the oracle, and the vectorized flow
kernel (``backend="vector"``, the default) must reproduce every
``SimulationMetrics`` field with *exact* equality -- TTLB/TTFB lists,
error rates, transfer counts, the full throughput series, and the
per-relay utilisation/peak/p95 dicts -- across seeds, loads, and both
weight systems (ground-truth/FlashFlow-style and TorFlow-style).
"""

import pytest

from repro.errors import ConfigurationError
from repro.shadow.config import ShadowConfig, ShadowNetwork, build_network
from repro.shadow.experiment import torflow_weights_for
from repro.shadow.flows import (
    SHADOW_BACKEND_ENV_VAR,
    StatefulFlowBackend,
    get_shadow_backend,
    resolve_shadow_backend_name,
    shadow_backend_names,
)
from repro.shadow.simulator import NetworkSimulator

BACKENDS = ("stateful", "vector")


def _signature(metrics) -> dict:
    """Every metric a run records, as exactly-comparable values."""
    return {
        "throughput_series": metrics.throughput_series,
        "ttfb": metrics.ttfb(),
        "ttlb_50k": metrics.ttlb(50 * 1024),
        "ttlb_1m": metrics.ttlb(1024 * 1024),
        "ttlb_5m": metrics.ttlb(5 * 1024 * 1024),
        "error_rates": metrics.error_rates(),
        "transfers_completed": metrics.transfers_completed(),
        "transfers_failed": metrics.transfers_failed(),
        "median_throughput": metrics.median_throughput(),
        "relay_utilization": metrics.relay_utilization,
        "relay_peak_throughput": metrics.relay_peak_throughput,
        "relay_p95_throughput": metrics.relay_p95_throughput,
    }


def _network(seed: int, load: float, lifetime: int = 25) -> ShadowNetwork:
    # A short circuit lifetime exercises several churn events (flow-table
    # rebuilds) inside the horizon, including a final span clipped by it.
    return build_network(
        ShadowConfig(
            n_relays=24,
            n_markov_clients=10,
            n_benchmark_clients=4,
            sim_seconds=50,
            warmup_seconds=12,
            seed=seed,
            load_multiplier=load,
            circuit_lifetime_seconds=lifetime,
        )
    )


def _weights(network: ShadowNetwork, system: str, seed: int) -> dict:
    if system == "truth":
        # Ground-truth capacities: the idealized FlashFlow weight set.
        return network.relays.capacities()
    # The TorFlow pipeline's actual output: skewed weights that overload
    # some relays (exercising the EWMA-starvation path; the dedicated
    # high-load test below forces the timeout path too).
    return torflow_weights_for(network, seed=seed, warmup_sim_seconds=30)


@pytest.mark.parametrize("seed", (1, 5))
@pytest.mark.parametrize("load", (1.0, 1.3))
@pytest.mark.parametrize("system", ("truth", "torflow"))
def test_vector_kernel_bit_identical(seed, load, system):
    network = _network(seed, load)
    weights = _weights(network, system, seed)
    signatures = {
        backend: _signature(
            NetworkSimulator(network, seed=seed + 7).run(
                weights, backend=backend
            )
        )
        for backend in BACKENDS
    }
    reference = signatures["stateful"]
    assert reference["transfers_completed"] > 0
    for backend, signature in signatures.items():
        for key, value in reference.items():
            assert signature[key] == value, (backend, key)


def test_vector_kernel_bit_identical_on_timeout_path():
    """An overloaded long-horizon run *must* produce timed-out
    transfers, so the kernel's timeout/error-rate bookkeeping is
    actually exercised -- the moderate-load grid above completes every
    transfer (its horizon is too short for the 15/60/120 s timeouts to
    even be reachable)."""
    network = build_network(
        ShadowConfig(
            n_relays=50,
            n_markov_clients=40,
            n_benchmark_clients=8,
            sim_seconds=150,
            warmup_seconds=30,
            seed=3,
            load_multiplier=1.4,
            circuit_lifetime_seconds=60,
        )
    )
    weights = torflow_weights_for(network, seed=3, warmup_sim_seconds=30)
    stateful = _signature(
        NetworkSimulator(network, seed=4).run(weights, backend="stateful")
    )
    vector = _signature(
        NetworkSimulator(network, seed=4).run(weights, backend="vector")
    )
    assert stateful["transfers_failed"] > 0
    assert vector == stateful


def test_vector_kernel_identical_across_churn_boundaries():
    """Lifetimes that divide/don't divide the horizon all stay exact."""
    for lifetime in (7, 31, 62, 500):
        network = _network(3, 1.0, lifetime=lifetime)
        weights = network.relays.capacities()
        stateful = NetworkSimulator(network, seed=9).run(
            weights, backend="stateful"
        )
        vector = NetworkSimulator(network, seed=9).run(
            weights, backend="vector"
        )
        assert _signature(stateful) == _signature(vector), lifetime


def test_window_memo_never_changes_results():
    """The stateful walk's congested-window memo is exact: enabling it
    cannot change a single metric."""
    network = _network(2, 1.4)
    weights = _weights(network, "torflow", 2)
    memoized = NetworkSimulator(network, seed=4).run(
        weights, backend="stateful"
    )
    plain = StatefulFlowBackend(memoize=False).run(
        NetworkSimulator(network, seed=4), weights
    )
    assert _signature(memoized) == _signature(plain)


def test_default_backend_is_vector(monkeypatch):
    monkeypatch.delenv(SHADOW_BACKEND_ENV_VAR, raising=False)
    assert resolve_shadow_backend_name(None) == "vector"
    assert resolve_shadow_backend_name("auto") == "vector"
    assert resolve_shadow_backend_name("stateful") == "stateful"


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(SHADOW_BACKEND_ENV_VAR, "stateful")
    assert resolve_shadow_backend_name(None) == "stateful"
    # Explicit argument still wins over the environment.
    assert resolve_shadow_backend_name("vector") == "vector"
    monkeypatch.setenv(SHADOW_BACKEND_ENV_VAR, "auto")
    assert resolve_shadow_backend_name(None) == "vector"


def test_registry_lists_both_backends():
    names = shadow_backend_names()
    assert "stateful" in names and "vector" in names
    with pytest.raises(ConfigurationError):
        get_shadow_backend("no-such-backend")


def test_run_rejects_unknown_backend():
    network = _network(1, 1.0)
    sim = NetworkSimulator(network, seed=1)
    with pytest.raises(ConfigurationError):
        sim.run(network.relays.capacities(), backend="bogus")


def test_invalid_env_backend_fails_fast_at_resolution(monkeypatch):
    """A typo'd FLASHFLOW_SHADOW_BACKEND raises at resolution time,
    naming the registered backends -- not a raw KeyError mid-simulation."""
    monkeypatch.setenv(SHADOW_BACKEND_ENV_VAR, "vectr")
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_shadow_backend_name(None)
    message = str(excinfo.value)
    assert SHADOW_BACKEND_ENV_VAR in message
    for name in shadow_backend_names():
        assert name in message
    # Explicit and env-free resolution still validates the same way.
    monkeypatch.delenv(SHADOW_BACKEND_ENV_VAR, raising=False)
    with pytest.raises(ConfigurationError, match="known backends"):
        resolve_shadow_backend_name("statefull")
