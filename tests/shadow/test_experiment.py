"""Tests for the §7 Shadow experiment pipeline (scaled down for speed).

Assertions target the paper's qualitative results: FlashFlow's weights
are far closer to ground truth than TorFlow's, and performance under
FlashFlow weights dominates TorFlow's on every Figure 9 metric.
"""

import statistics

import pytest

from repro.shadow.config import ShadowConfig, build_network
from repro.shadow.experiment import (
    compare_systems,
    flashflow_weights_for,
    network_capacity_error,
    network_weight_error,
    relay_capacity_errors,
    relay_weight_errors,
    torflow_weights_for,
)


@pytest.fixture(scope="module")
def result():
    config = ShadowConfig(
        n_relays=80, n_markov_clients=80, n_benchmark_clients=12,
        sim_seconds=240, warmup_seconds=60, seed=3,
    )
    return compare_systems(config, loads=(1.0, 1.3), seed=3)


# ---------------------------------------------------------------------------
# Error-metric helpers
# ---------------------------------------------------------------------------

def test_relay_capacity_errors_formula():
    errors = relay_capacity_errors({"a": 80.0}, {"a": 100.0})
    assert errors["a"] == pytest.approx(0.2)


def test_network_capacity_error_formula():
    assert network_capacity_error(
        {"a": 50.0, "b": 100.0}, {"a": 100.0, "b": 100.0}
    ) == pytest.approx(0.25)


def test_relay_weight_errors_perfect():
    errors = relay_weight_errors({"a": 2.0, "b": 6.0}, {"a": 25.0, "b": 75.0})
    assert errors["a"] == pytest.approx(1.0)
    assert errors["b"] == pytest.approx(1.0)


def test_network_weight_error_tvd():
    assert network_weight_error(
        {"a": 9.0, "b": 1.0}, {"a": 50.0, "b": 50.0}
    ) == pytest.approx(0.4)


# ---------------------------------------------------------------------------
# Figure 8: measurement error
# ---------------------------------------------------------------------------

def test_fig8_flashflow_beats_torflow_weight_error(result):
    """Paper: NWE 4% (FF) vs 29% (TF)."""
    ff = result.network_weight_error("flashflow")
    tf = result.network_weight_error("torflow")
    assert ff < 0.10
    assert tf > 0.15
    assert ff < tf / 2


def test_fig8_flashflow_capacity_error_moderate(result):
    """Paper: FF relay capacity error median ~16%, NCE ~14%."""
    errors = list(result.flashflow_capacity_errors().values())
    median = statistics.median(errors)
    assert 0.05 < median < 0.30
    assert 0.05 < result.flashflow_network_capacity_error() < 0.30


def test_fig8_torflow_mostly_underweights(result):
    """Paper: >80% of relays underweighted by TorFlow."""
    tf_errors = result.weight_errors("torflow")
    frac_under = statistics.fmean(1 if v < 1 else 0 for v in tf_errors.values())
    ff_errors = result.weight_errors("flashflow")
    ff_frac_extreme = statistics.fmean(
        1 if (v < 0.5 or v > 2) else 0 for v in ff_errors.values()
    )
    assert frac_under > 0.5
    assert ff_frac_extreme < 0.1  # FlashFlow weights stay near truth


# ---------------------------------------------------------------------------
# Figure 9: performance under each weight set
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("size", [50 * 1024, 1024 * 1024, 5 * 1024 * 1024])
def test_fig9a_transfer_times_improve(result, size):
    """Paper: median TTLB decreases 15/29/37% under FlashFlow."""
    tf = result.run_for("torflow", 1.0).ttlb_stats(size)
    ff = result.run_for("flashflow", 1.0).ttlb_stats(size)
    assert ff["median"] < tf["median"]


def test_fig9a_consistency_improves(result):
    """Paper: TTLB standard deviations drop 41-61% under FlashFlow."""
    size = 5 * 1024 * 1024
    tf = result.run_for("torflow", 1.0).ttlb_stats(size)
    ff = result.run_for("flashflow", 1.0).ttlb_stats(size)
    assert ff["std"] < tf["std"]


def test_fig9b_timeouts_eliminated(result):
    """Paper: median timeout rate drops by 100% under FlashFlow."""
    for load in (1.0, 1.3):
        ff = result.run_for("flashflow", load)
        assert ff.median_error_rate() == 0.0
    # TorFlow shows failures somewhere across the load range.
    tf_failures = sum(
        result.run_for("torflow", load).metrics.transfers_failed()
        for load in (1.0, 1.3)
    )
    assert tf_failures > 0


def test_fig9c_throughput_higher_and_scales(result):
    """Paper: FF carries more traffic and scales better with load."""
    tf_100 = result.run_for("torflow", 1.0).metrics.median_throughput()
    ff_100 = result.run_for("flashflow", 1.0).metrics.median_throughput()
    tf_130 = result.run_for("torflow", 1.3).metrics.median_throughput()
    ff_130 = result.run_for("flashflow", 1.3).metrics.median_throughput()
    assert ff_100 > tf_100
    assert ff_130 > tf_130
    assert (ff_130 / ff_100) > (tf_130 / tf_100) * 0.98


def test_loaded_flashflow_beats_unloaded_torflow(result):
    """The paper's surprise: FF at 130% load still beats TF at 100%."""
    size = 1024 * 1024
    ff_130 = result.run_for("flashflow", 1.3).ttlb_stats(size)
    tf_100 = result.run_for("torflow", 1.0).ttlb_stats(size)
    assert ff_130["median"] < tf_100["median"] * 1.15


def test_run_for_unknown_raises(result):
    with pytest.raises(KeyError):
        result.run_for("torflow", 9.9)


# ---------------------------------------------------------------------------
# Weight pipelines in isolation
# ---------------------------------------------------------------------------

def test_torflow_pipeline_standalone():
    network = build_network(
        ShadowConfig(
            n_relays=40, n_markov_clients=30, n_benchmark_clients=4,
            sim_seconds=60, warmup_seconds=20, seed=5,
        )
    )
    weights = torflow_weights_for(network, seed=5, warmup_sim_seconds=60)
    assert set(weights) == set(network.relays.relays)
    assert all(w >= 0 for w in weights.values())


def test_flashflow_pipeline_standalone():
    network = build_network(
        ShadowConfig(
            n_relays=30, n_markov_clients=10, n_benchmark_clients=2,
            sim_seconds=30, warmup_seconds=10, seed=6,
        )
    )
    estimates = flashflow_weights_for(network, seed=6)
    assert set(estimates) == set(network.relays.relays)
    for fp, est in estimates.items():
        cap = network.relays[fp].true_capacity
        assert 0.4 * cap < est < 1.15 * cap


# ---------------------------------------------------------------------------
# Kernel routing: the measurement phase runs on the vectorized kernel
# ---------------------------------------------------------------------------

def test_flashflow_weights_identical_across_kernel_backends():
    """The shadow measurement phase is backend-invariant, bit for bit."""
    config = ShadowConfig(
        n_relays=24, n_markov_clients=10, n_benchmark_clients=2,
        sim_seconds=30, warmup_seconds=10, seed=5,
    )
    # A fresh network per backend: relays are stateful (jitter RNG
    # streams, admission, token buckets), so re-measuring the same
    # objects would legitimately differ.
    weights = {
        backend: flashflow_weights_for(
            build_network(config), seed=5, backend=backend
        )
        for backend in ("vector", "serial", "thread", "process")
    }
    reference = weights["vector"]
    assert len(reference) == 24
    for backend, estimate_map in weights.items():
        assert estimate_map == reference, backend
