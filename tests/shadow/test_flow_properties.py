"""Property-based invariants for the flow kernel's building blocks.

Hypothesis sweeps replace the point checks that previously covered
:func:`repro.shadow.flows.waterfill` and
:func:`repro.tornet.circuit.circuit_rate_cap`:

- **waterfill**: feasibility (no relay over capacity), cap respect,
  non-negativity, conservation (every allocated bit crosses exactly
  three relays), max-min unimprovability (a flow below its cap has a
  saturated relay), and monotonicity -- uniformly scaling relay
  capacity up never decreases any flow's rate.
- **circuit_rate_cap**: the window math -- cap x RTT recovers the
  window size, strict monotonicity in RTT, stream-window scaling (one
  stream gets exactly half of two), saturation at the circuit window,
  and the degenerate branches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shadow.flows import waterfill
from repro.tornet.circuit import (
    CIRCUIT_WINDOW_CELLS,
    STREAM_WINDOW_CELLS,
    circuit_rate_cap,
)
from repro.units import CELL_LEN


def _instance(n_relays, n_flows, seed, max_cap=150.0):
    rng = np.random.default_rng(seed)
    capacity = rng.uniform(1.0, 100.0, n_relays)
    paths = np.stack(
        [rng.choice(n_relays, size=3, replace=False) for _ in range(n_flows)]
    )
    caps = rng.uniform(0.5, max_cap, n_flows)
    return paths, caps, capacity


# ---------------------------------------------------------------------------
# waterfill invariants
# ---------------------------------------------------------------------------

@given(
    n_relays=st.integers(min_value=3, max_value=12),
    n_flows=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=80, deadline=None)
def test_waterfill_feasible_capped_and_conserving(n_relays, n_flows, seed):
    paths, caps, capacity = _instance(n_relays, n_flows, seed)
    rates = waterfill(paths, caps, capacity)

    assert np.all(rates >= 0.0)
    assert np.all(rates <= caps + 1e-7), "cap respect"
    load = np.bincount(
        paths.ravel(), weights=np.repeat(rates, 3), minlength=n_relays
    )
    assert np.all(load <= capacity + 1e-5), "feasibility"
    # Conservation: each flow's bits appear on exactly its three relays.
    assert load.sum() == pytest.approx(3.0 * rates.sum(), rel=1e-9, abs=1e-9)


@given(
    n_relays=st.integers(min_value=3, max_value=12),
    n_flows=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=80, deadline=None)
def test_waterfill_maxmin_unimprovable(n_relays, n_flows, seed):
    """A flow held below its cap must cross a saturated relay."""
    paths, caps, capacity = _instance(n_relays, n_flows, seed)
    rates = waterfill(paths, caps, capacity)
    load = np.bincount(
        paths.ravel(), weights=np.repeat(rates, 3), minlength=n_relays
    )
    saturated = load >= capacity - 1e-4
    for i in range(n_flows):
        if rates[i] < caps[i] - 1e-6:
            assert saturated[paths[i]].any(), "below cap with slack relays"


@given(
    n_relays=st.integers(min_value=3, max_value=10),
    n_flows=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=9999),
    scale=st.floats(min_value=1.0, max_value=4.0),
)
@settings(max_examples=80, deadline=None)
def test_waterfill_monotone_in_capacity(n_relays, n_flows, seed, scale):
    """Uniformly raising relay capacity never hurts any flow.

    (Raising a *single* relay's capacity can legitimately lower the
    max-min total -- fairness is not throughput-optimal -- so the
    monotonicity invariant is about uniform scaling.)
    """
    paths, caps, capacity = _instance(n_relays, n_flows, seed)
    base = waterfill(paths, caps, capacity)
    scaled = waterfill(paths, caps, capacity * scale)
    assert np.all(scaled >= base - 1e-4), "per-flow monotonicity"
    assert scaled.sum() >= base.sum() - 1e-4, "total monotonicity"


@given(
    n_relays=st.integers(min_value=3, max_value=10),
    n_flows=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=60, deadline=None)
def test_waterfill_uncapped_saturates_something(n_relays, n_flows, seed):
    """With effectively infinite caps, some relay must saturate."""
    paths, _, capacity = _instance(n_relays, n_flows, seed)
    caps = np.full(n_flows, np.inf)
    rates = waterfill(paths, caps, capacity)
    load = np.bincount(
        paths.ravel(), weights=np.repeat(rates, 3), minlength=n_relays
    )
    used = np.bincount(paths.ravel(), minlength=n_relays) > 0
    assert np.any(load[used] >= capacity[used] - 1e-4)


# ---------------------------------------------------------------------------
# circuit_rate_cap window math
# ---------------------------------------------------------------------------

_rtts = st.floats(min_value=1e-3, max_value=10.0, allow_nan=False)


@given(rtt=_rtts, n_streams=st.integers(min_value=1, max_value=6))
@settings(max_examples=100, deadline=None)
def test_rate_cap_recovers_window(rtt, n_streams):
    """cap x RTT == the binding window, in bits."""
    cap = circuit_rate_cap(rtt, n_streams=n_streams)
    window_cells = min(CIRCUIT_WINDOW_CELLS, STREAM_WINDOW_CELLS * n_streams)
    assert cap * rtt == pytest.approx(window_cells * CELL_LEN * 8.0, rel=1e-9)


@given(rtt=_rtts, factor=st.floats(min_value=1.001, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_rate_cap_strictly_decreasing_in_rtt(rtt, factor):
    assert circuit_rate_cap(rtt * factor) < circuit_rate_cap(rtt)


@given(rtt=_rtts)
@settings(max_examples=50, deadline=None)
def test_rate_cap_stream_window_scaling(rtt):
    """One stream is stream-window-bound at exactly half the circuit
    window; two or more streams saturate the circuit window."""
    single = circuit_rate_cap(rtt, n_streams=1)
    double = circuit_rate_cap(rtt, n_streams=2)
    assert single == pytest.approx(double / 2.0, rel=1e-12)
    for n in (3, 4, 8):
        assert circuit_rate_cap(rtt, n_streams=n) == double


@given(rtt=_rtts, n_streams=st.integers(min_value=1, max_value=5))
@settings(max_examples=50, deadline=None)
def test_rate_cap_monotone_in_streams(rtt, n_streams):
    assert (
        circuit_rate_cap(rtt, n_streams=n_streams + 1)
        >= circuit_rate_cap(rtt, n_streams=n_streams)
    )


def test_rate_cap_degenerate_branches():
    assert circuit_rate_cap(0.0) == float("inf")
    assert circuit_rate_cap(-1.0) == float("inf")
    assert circuit_rate_cap(0.5, n_streams=0) == 0.0
    assert circuit_rate_cap(0.5, n_streams=-3) == 0.0
