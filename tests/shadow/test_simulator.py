"""Tests for the flow-level simulator and its components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shadow.benchclient import BenchmarkClient
from repro.shadow.config import ShadowConfig, build_network
from repro.shadow.simulator import NetworkSimulator, waterfill
from repro.shadow.trafficgen import MarkovLoadGenerator
from repro.tornet.consensus import Consensus, RouterStatus
from repro.tornet.pathsel import PathSelector
from repro.units import mbit


# ---------------------------------------------------------------------------
# Vectorised waterfilling
# ---------------------------------------------------------------------------

def test_waterfill_single_flow():
    rates = waterfill(
        np.array([[0, 1, 2]]), np.array([np.inf]), np.array([10.0, 5.0, 20.0])
    )
    assert rates[0] == pytest.approx(5.0)  # tightest relay binds


def test_waterfill_cap_limited():
    rates = waterfill(
        np.array([[0, 1, 2]]), np.array([2.0]), np.array([10.0, 10.0, 10.0])
    )
    assert rates[0] == pytest.approx(2.0)


def test_waterfill_sharing():
    paths = np.array([[0, 1, 2], [0, 1, 2]])
    rates = waterfill(paths, np.array([np.inf, np.inf]),
                      np.array([10.0, 100.0, 100.0]))
    assert rates[0] == pytest.approx(5.0)
    assert rates[1] == pytest.approx(5.0)


def test_waterfill_freed_capacity_reused():
    paths = np.array([[0, 1, 2], [0, 3, 4]])
    caps = np.array([1.0, np.inf])
    capacity = np.array([10.0, 100.0, 100.0, 100.0, 100.0])
    rates = waterfill(paths, caps, capacity)
    assert rates[0] == pytest.approx(1.0)
    assert rates[1] == pytest.approx(9.0)


def test_waterfill_empty():
    rates = waterfill(
        np.zeros((0, 3), dtype=np.int64), np.zeros(0), np.array([1.0])
    )
    assert rates.shape == (0,)


@given(
    n_relays=st.integers(min_value=3, max_value=12),
    n_flows=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=60, deadline=None)
def test_waterfill_maxmin_properties(n_relays, n_flows, seed):
    """Feasibility and unimprovability of the vectorised allocator."""
    rng = np.random.default_rng(seed)
    capacity = rng.uniform(1.0, 100.0, n_relays)
    paths = np.stack(
        [rng.choice(n_relays, size=3, replace=False) for _ in range(n_flows)]
    )
    caps = rng.uniform(0.5, 150.0, n_flows)
    rates = waterfill(paths, caps, capacity)

    load = np.bincount(
        paths.ravel(), weights=np.repeat(rates, 3), minlength=n_relays
    )
    assert np.all(load <= capacity + 1e-5)
    assert np.all(rates <= caps + 1e-7)
    saturated = load >= capacity - 1e-4
    for i in range(n_flows):
        if rates[i] < caps[i] - 1e-6:
            assert saturated[paths[i]].any(), "below cap with slack relays"


# ---------------------------------------------------------------------------
# Traffic generator
# ---------------------------------------------------------------------------

def _selector(n=12, seed=0):
    consensus = Consensus(valid_after=0)
    flags = frozenset({"Guard", "Exit", "Running"})
    for i in range(n):
        consensus.add(RouterStatus(f"r{i}", 1.0 + i, flags))
    return PathSelector(consensus, seed=seed)


def test_markov_generator_mean_demand():
    gen = MarkovLoadGenerator(
        "m", base_demand=mbit(10), selector=_selector(),
        rtt_sampler=lambda rng: 0.3, seed=1,
    )
    totals = []
    for t in range(3000):
        totals.append(sum(d for _, d in gen.demands(t)))
    mean = sum(totals) / len(totals)
    assert mean == pytest.approx(mbit(10), rel=0.30)


def test_markov_generator_rotates_circuits():
    gen = MarkovLoadGenerator(
        "m", base_demand=mbit(10), selector=_selector(),
        rtt_sampler=lambda rng: 0.3, circuit_lifetime=10, seed=2,
    )
    gen.refresh_circuits(0)
    assert all(c.built_at == 0 for c in gen.circuits)
    gen.refresh_circuits(50)  # lifetime 10: everything expired
    assert all(c.built_at == 50 for c in gen.circuits)


def test_markov_demand_autocorrelated():
    gen = MarkovLoadGenerator(
        "m", base_demand=mbit(10), selector=_selector(),
        rtt_sampler=lambda rng: 0.3, circuit_lifetime=10_000, seed=3,
    )
    series = [sum(d for _, d in gen.demands(t)) for t in range(2000)]
    x = np.array(series)
    lag1 = np.corrcoef(x[:-1], x[1:])[0, 1]
    assert lag1 > 0.5  # session-scale correlation


# ---------------------------------------------------------------------------
# Benchmark clients
# ---------------------------------------------------------------------------

def _client(seed=0, pause=5):
    return BenchmarkClient(
        "b", selector=_selector(), rtt_sampler=lambda rng: 0.3,
        sizes=(50 * 1024, 1024 * 1024), timeouts=(15, 60),
        pause_seconds=pause, seed=seed,
    )


def test_benchmark_transfer_completes():
    client = _client(seed=1)
    now = 0
    while client.maybe_start(now) is None:
        now += 1
    for _ in range(30):
        client.advance(now, mbit(1))
        now += 1
        if client.records:
            break
    assert client.records
    record = client.records[0]
    assert not record.timed_out
    assert record.ttfb is not None and record.ttlb is not None
    assert record.ttfb <= record.ttlb


def test_benchmark_transfer_times_out():
    client = _client(seed=2)
    now = 0
    while client.maybe_start(now) is None:
        now += 1
    for _ in range(100):
        client.advance(now, 10.0)  # 10 bit/s: hopeless
        now += 1
        if client.records:
            break
    assert client.records[0].timed_out
    assert client.error_rate() == 1.0


def test_benchmark_cycles_sizes():
    client = _client(seed=3, pause=0)
    sizes = []
    now = 0
    for _ in range(400):
        client.maybe_start(now)
        if client.active and not sizes or (
            client.active and client.active.record.size != (sizes[-1] if sizes else None)
        ):
            pass
        client.advance(now, mbit(100))
        now += 1
    sizes = [r.size for r in client.records]
    assert 50 * 1024 in sizes and 1024 * 1024 in sizes


def test_benchmark_ttlb_reflects_rate():
    fast, slow = _client(seed=4), _client(seed=4)
    for client, rate in ((fast, mbit(50)), (slow, mbit(2))):
        now = 0
        while not client.records:
            client.maybe_start(now)
            client.advance(now, rate)
            now += 1
    assert fast.records[0].ttlb < slow.records[0].ttlb


# ---------------------------------------------------------------------------
# End-to-end simulator
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_network():
    return build_network(
        ShadowConfig(
            n_relays=40, n_markov_clients=30, n_benchmark_clients=6,
            sim_seconds=120, warmup_seconds=30, seed=7,
        )
    )


def test_simulator_run_produces_metrics(tiny_network):
    weights = tiny_network.relays.capacities()
    sim = NetworkSimulator(tiny_network, seed=8)
    metrics = sim.run(weights)
    assert len(metrics.throughput_series) == 120
    assert metrics.transfers_completed() > 0
    assert set(metrics.relay_utilization) == set(tiny_network.relays.relays)
    assert all(0 <= u <= 1 for u in metrics.relay_utilization.values())


def test_simulator_throughput_scales_with_load(tiny_network):
    """In the unsaturated regime, carried traffic tracks offered load.

    (Near saturation scaling is sublinear -- the paper's own Figure 9c
    shows +18-29% throughput for +30% load.)
    """
    weights = tiny_network.relays.capacities()
    low_cfg = ShadowConfig(
        **{**tiny_network.config.__dict__, "load_multiplier": 0.4}
    )
    high_cfg = ShadowConfig(
        **{**tiny_network.config.__dict__, "load_multiplier": 0.8}
    )
    from repro.shadow.config import ShadowNetwork

    low = NetworkSimulator(
        ShadowNetwork(config=low_cfg, relays=tiny_network.relays), seed=9
    ).run(weights)
    high = NetworkSimulator(
        ShadowNetwork(config=high_cfg, relays=tiny_network.relays), seed=9
    ).run(weights)
    assert high.median_throughput() > low.median_throughput() * 1.4


def test_simulator_deterministic(tiny_network):
    weights = tiny_network.relays.capacities()
    a = NetworkSimulator(tiny_network, seed=10).run(weights)
    b = NetworkSimulator(tiny_network, seed=10).run(weights)
    assert a.throughput_series == b.throughput_series
    assert a.error_rates() == b.error_rates()


def test_build_network_relay_count():
    network = build_network(
        ShadowConfig(n_relays=50, sim_seconds=10, warmup_seconds=0)
    )
    assert len(network.relays) == 50


def test_circuit_rtt_sampler_range(tiny_network):
    import random

    rng = random.Random(11)
    for _ in range(100):
        rtt = tiny_network.sample_circuit_rtt(rng)
        lo, hi = tiny_network.hop_rtt_range
        assert 4 * lo <= rtt <= 4 * hi
