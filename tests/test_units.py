"""Tests for unit conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_cell_length_is_tor_cell():
    assert units.CELL_LEN == 514


def test_mbit_round_trip():
    assert units.to_mbit(units.mbit(250)) == pytest.approx(250)


def test_gbit_round_trip():
    assert units.to_gbit(units.gbit(1.5)) == pytest.approx(1.5)


def test_mbit_is_si():
    assert units.mbit(1) == 1_000_000


def test_bytes_bits_round_trip():
    assert units.bits_to_bytes(units.bytes_to_bits(12345)) == 12345


def test_rate_conversion():
    assert units.rate_bytes_per_sec(units.mbit(8)) == 1_000_000


def test_cells_for_bytes_exact_boundary():
    assert units.cells_for_bytes(units.CELL_LEN) == 1
    assert units.cells_for_bytes(units.CELL_LEN + 1) == 2


def test_cells_for_bytes_zero_and_negative():
    assert units.cells_for_bytes(0) == 0
    assert units.cells_for_bytes(-5) == 0


def test_bdp_bytes_known_value():
    # 1 Gbit/s at 100 ms: 12.5 MB in flight.
    assert units.bdp_bytes(1e9, 0.1) == pytest.approx(12.5e6)


def test_time_constants():
    assert units.DAY == 86400
    assert units.WEEK == 7 * units.DAY
    assert units.HOUR == 3600


@given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
def test_bit_byte_inverse_property(n):
    assert units.bytes_to_bits(units.bits_to_bytes(n)) == pytest.approx(n)


@given(st.integers(min_value=1, max_value=10**9))
def test_cells_cover_bytes(n):
    cells = units.cells_for_bytes(n)
    assert cells * units.CELL_LEN >= n
    assert (cells - 1) * units.CELL_LEN < n
