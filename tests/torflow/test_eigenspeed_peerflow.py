"""Tests for the EigenSpeed and PeerFlow baselines (paper §8 / Table 2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.torflow.comparison import (
    PAPER_TABLE2,
    comparison_table,
    format_table,
)
from repro.torflow.eigenspeed import EigenSpeed, eigenspeed_liar_attack
from repro.torflow.peerflow import PeerFlow, peerflow_inflation_attack
from repro.units import mbit


def _capacities(n=40, seed=0):
    import random

    rng = random.Random(seed)
    return {f"r{i}": mbit(rng.uniform(5, 500)) for i in range(n)}


# ---------------------------------------------------------------------------
# EigenSpeed
# ---------------------------------------------------------------------------

def test_eigenspeed_honest_weights_track_capacity():
    caps = _capacities(seed=1)
    system = EigenSpeed()
    relays, matrix = system.observation_matrix(caps, seed=2)
    weights = system.compute_weights(relays, matrix)
    ordered_by_cap = sorted(caps, key=caps.get)
    ordered_by_weight = sorted(weights, key=weights.get)
    # Rank correlation: top/bottom deciles agree.
    assert set(ordered_by_cap[-4:]) & set(ordered_by_weight[-8:])
    assert set(ordered_by_cap[:4]) & set(ordered_by_weight[:8])


def test_eigenspeed_observation_matrix_symmetric_zero_diag():
    caps = _capacities(n=10, seed=3)
    _, matrix = EigenSpeed().observation_matrix(caps, seed=4)
    assert np.allclose(matrix, matrix.T)
    assert np.all(np.diag(matrix) == 0)


def test_eigenspeed_matrix_shape_checked():
    with pytest.raises(ConfigurationError):
        EigenSpeed().compute_weights(["a", "b"], np.zeros((3, 3)))


def test_eigenspeed_liar_attack_inflates():
    """Colluders inflate their weight share well beyond capacity share
    (paper Table 2: 21.5x; [25] reports 7.4-28.1x)."""
    caps = _capacities(n=50, seed=5)
    malicious = [f"r{i}" for i in range(3)]  # small colluding set
    trusted = [f"r{i}" for i in range(40, 50)]
    result = eigenspeed_liar_attack(
        caps, malicious, trusted=trusted, seed=6
    )
    assert result["inflation_factor"] > 3.0
    assert result["attacked_share"] > result["honest_share"]


def test_eigenspeed_empty_network():
    assert EigenSpeed().compute_weights([], np.zeros((0, 0))) == {}


# ---------------------------------------------------------------------------
# PeerFlow
# ---------------------------------------------------------------------------

def test_peerflow_honest_weights_track_capacity():
    caps = _capacities(seed=7)
    system = PeerFlow()
    relays, reports = system.traffic_reports(caps, seed=8)
    weights = system.compute_weights(relays, reports)
    biggest = max(caps, key=caps.get)
    smallest = min(caps, key=caps.get)
    assert weights[biggest] > weights[smallest]


def test_peerflow_inflation_bounded():
    """Table 2: PeerFlow caps inflation near 2/tau (10x at tau = 0.2),
    far below what the colluders ask for (1000x)."""
    caps = _capacities(n=60, seed=9)
    malicious = [f"r{i}" for i in range(4)]
    result = peerflow_inflation_attack(caps, malicious, seed=10)
    assert result["inflation_factor"] < result["theory_bound"] * 1.5
    assert result["inflation_factor"] < 50  # nowhere near the 1000x ask


def test_peerflow_growth_cap():
    caps = {f"r{i}": mbit(100) for i in range(10)}
    system = PeerFlow(max_growth=1.25)
    relays, reports = system.traffic_reports(caps, seed=11)
    previous = {fp: 1.0 for fp in caps}
    weights = system.compute_weights(relays, reports, previous)
    for fp in caps:
        assert weights[fp] <= 1.25 + 1e-9


def test_peerflow_trusted_fraction_validated():
    with pytest.raises(ConfigurationError):
        PeerFlow(trusted_fraction=0.0)


def test_peerflow_statistic_resists_inflated_minority():
    system = PeerFlow(quantile=0.25)
    reports = np.array([1e12, 100.0, 90.0, 80.0, 70.0])
    weights = np.array([0.1, 1.0, 1.0, 1.0, 1.0])
    stat = system.relay_statistic(reports, weights)
    assert stat <= 100.0  # the huge lying report is above the quantile


# ---------------------------------------------------------------------------
# Table 2 harness
# ---------------------------------------------------------------------------

def test_comparison_table_ordering():
    rows = comparison_table()
    by_name = {row.system: row for row in rows}
    # FlashFlow: smallest attack advantage, fastest measurement.
    assert by_name["FlashFlow"].attack_advantage == pytest.approx(1.0 / 0.75)
    advantages = [row.attack_advantage for row in rows]
    assert min(advantages) == by_name["FlashFlow"].attack_advantage
    assert by_name["TorFlow"].attack_advantage == max(advantages)
    assert (
        by_name["FlashFlow"].measurement_seconds
        < by_name["EigenSpeed"].measurement_seconds
        < by_name["TorFlow"].measurement_seconds
        < by_name["PeerFlow"].measurement_seconds
    )


def test_comparison_table_capacity_values_column():
    by_name = {row.system: row for row in comparison_table()}
    assert by_name["FlashFlow"].capacity_values == "provided"
    assert by_name["EigenSpeed"].capacity_values == "unavailable"


def test_comparison_accepts_measured_values():
    rows = comparison_table(
        torflow_advantage=150.0, eigenspeed_advantage=20.0,
        peerflow_advantage=9.0, flashflow_hours=4.8,
    )
    by_name = {row.system: row for row in rows}
    assert by_name["TorFlow"].attack_advantage == 150.0
    assert by_name["FlashFlow"].measurement_hours == pytest.approx(4.8)


def test_format_table_renders():
    text = format_table(comparison_table())
    assert "FlashFlow" in text
    assert "1.33x" in text
    assert "PeerFlow" in text


def test_paper_reference_values():
    assert PAPER_TABLE2["TorFlow"].attack_advantage == 177.0
    assert PAPER_TABLE2["PeerFlow"].measurement_days == 14.0
