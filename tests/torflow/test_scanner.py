"""Tests for the TorFlow scanner model."""

import pytest

from repro.torflow.scanner import (
    TORFLOW_FILE_SIZES,
    TorFlowScanner,
    scanner_time_estimate,
    torflow_weights,
)
from repro.units import DAY, gbit, mbit


def test_file_sizes_are_paper_set():
    """13 sizes: 2^i KiB for i in 4..16 (paper §2)."""
    assert len(TORFLOW_FILE_SIZES) == 13
    assert TORFLOW_FILE_SIZES[0] == 16 * 1024
    assert TORFLOW_FILE_SIZES[-1] == 64 * 1024 * 1024


def _capacities(n=30, seed=0):
    import random

    rng = random.Random(seed)
    return {f"r{i}": mbit(rng.uniform(2, 500)) for i in range(n)}


def test_scan_produces_speed_and_ratio_per_relay():
    caps = _capacities()
    scan = TorFlowScanner(seed=1).scan(caps, {fp: 0.3 for fp in caps})
    assert set(scan.speeds) == set(caps)
    assert set(scan.ratios) == set(caps)


def test_ratios_average_to_one():
    caps = _capacities(n=100, seed=2)
    scan = TorFlowScanner(seed=3).scan(caps, {fp: 0.3 for fp in caps})
    mean_ratio = sum(scan.ratios.values()) / len(scan.ratios)
    assert mean_ratio == pytest.approx(1.0, rel=0.05)


def test_loaded_relay_measures_slower():
    caps = {f"r{i}": mbit(100) for i in range(20)}
    utils = {fp: 0.1 for fp in caps}
    utils["r0"] = 0.97  # nearly saturated
    scan = TorFlowScanner(seed=4, probes_per_relay=16).scan(caps, utils)
    mean_others = sum(
        scan.speeds[fp] for fp in caps if fp != "r0"
    ) / (len(caps) - 1)
    assert scan.speeds["r0"] < mean_others * 0.5


def test_small_relay_cannot_demonstrate_speed():
    """The TorFlow pathology: probe speed is bottlenecked by the relay's
    free capacity, so small relays always ratio below big ones."""
    caps = {f"big{i}": mbit(300) for i in range(10)}
    caps.update({f"small{i}": mbit(3) for i in range(10)})
    scan = TorFlowScanner(seed=5, probes_per_relay=16).scan(
        caps, {fp: 0.2 for fp in caps}
    )
    big_mean = sum(scan.ratios[f"big{i}"] for i in range(10)) / 10
    small_mean = sum(scan.ratios[f"small{i}"] for i in range(10)) / 10
    assert small_mean < big_mean * 0.5


def test_weights_multiply_advertised_by_ratio():
    advertised = {"a": mbit(10), "b": mbit(10)}
    scan = TorFlowScanner(seed=6).scan(
        {"a": mbit(100), "b": mbit(100)}, {"a": 0.0, "b": 0.0}
    )
    weights = torflow_weights(advertised, scan)
    assert weights["a"] == pytest.approx(advertised["a"] * scan.ratios["a"])


def test_self_report_attack_inflates_weight():
    """Table 2's TorFlow attack: a false advertised bandwidth passes
    straight through into the weight."""
    caps = _capacities(n=20, seed=7)
    advertised = {fp: cap * 0.5 for fp, cap in caps.items()}
    target = "r0"
    honest = torflow_weights(
        advertised, TorFlowScanner(seed=8).scan(caps, {fp: 0.3 for fp in caps})
    )
    advertised[target] = caps[target] * 100  # the lie
    attacked = torflow_weights(
        advertised, TorFlowScanner(seed=8).scan(caps, {fp: 0.3 for fp in caps})
    )
    assert attacked[target] / honest[target] == pytest.approx(200.0)


def test_scanner_time_matches_table2():
    """A single 1 Gbit/s scanner takes ~2 days for the network."""
    seconds = scanner_time_estimate(6500, gbit(1))
    assert 1.0 < seconds / DAY < 3.5


def test_scan_deterministic():
    caps = _capacities(n=10, seed=9)
    utils = {fp: 0.2 for fp in caps}
    a = TorFlowScanner(seed=10).scan(caps, utils)
    b = TorFlowScanner(seed=10).scan(caps, utils)
    assert a.speeds == b.speeds
