"""Suppression grammar, FF000 hygiene, and the baseline round-trip."""

import json
from pathlib import Path

from repro.analysis import (
    load_baseline,
    match_baseline,
    run_paths,
    save_baseline,
)
from repro.analysis.baseline import (
    BaselineEntry,
    BaselineError,
    check_reasons,
    updated_baseline,
)

import pytest

BAD = """\
import os

def payload():
    return os.urandom(16)
"""


def _write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def _lint(tmp_path: Path):
    return run_paths([tmp_path / "src"], root=tmp_path)


# ----------------------------------------------------------- suppressions

def test_suppression_with_reason_silences_next_line(tmp_path):
    src = (
        "import os\n\n"
        "def payload():\n"
        "    # ff-lint: allow[FF003] reason=fixture exercises the grammar\n"
        "    return os.urandom(16)\n"
    )
    _write(tmp_path, "src/repro/core/s.py", src)
    assert _lint(tmp_path) == []


def test_trailing_suppression_covers_its_own_line(tmp_path):
    src = (
        "import os\n\n"
        "def payload():\n"
        "    return os.urandom(16)"
        "  # ff-lint: allow[FF003] reason=trailing form\n"
    )
    _write(tmp_path, "src/repro/core/t.py", src)
    assert _lint(tmp_path) == []


def test_suppression_without_reason_is_ff000_and_suppresses_nothing(tmp_path):
    src = (
        "import os\n\n"
        "def payload():\n"
        "    # ff-lint: allow[FF003]\n"
        "    return os.urandom(16)\n"
    )
    _write(tmp_path, "src/repro/core/nr.py", src)
    codes = sorted(f.code for f in _lint(tmp_path))
    assert codes == ["FF000", "FF003"]


def test_suppression_with_unknown_code_is_ff000(tmp_path):
    src = (
        "import os\n\n"
        "def payload():\n"
        "    # ff-lint: allow[FF999] reason=no such rule\n"
        "    return os.urandom(16)\n"
    )
    _write(tmp_path, "src/repro/core/uk.py", src)
    codes = sorted(f.code for f in _lint(tmp_path))
    assert codes == ["FF000", "FF003"]


def test_suppression_only_silences_named_codes(tmp_path):
    src = (
        "import os\n\n"
        "def payload():\n"
        "    # ff-lint: allow[FF002] reason=wrong code on purpose\n"
        "    return os.urandom(16)\n"
    )
    _write(tmp_path, "src/repro/core/wc.py", src)
    assert [f.code for f in _lint(tmp_path)] == ["FF003"]


def test_unparsable_file_is_ff000_not_a_crash(tmp_path):
    _write(tmp_path, "src/repro/core/syn.py", "def broken(:\n")
    findings = _lint(tmp_path)
    assert [f.code for f in findings] == ["FF000"]
    assert "unparsable" in findings[0].message


# --------------------------------------------------------------- baseline

def test_baseline_round_trip_add_fix_prune(tmp_path):
    target = _write(tmp_path, "src/repro/core/b.py", BAD)
    baseline_path = tmp_path / ".ff-lint-baseline.json"

    # 1. Grandfather the finding.
    findings = _lint(tmp_path)
    assert [f.code for f in findings] == ["FF003"]
    entries = updated_baseline(findings, [])
    assert len(entries) == 1 and entries[0].reason == ""
    entries = [BaselineEntry(**{**entries[0].__dict__, "reason": "legacy"})]
    save_baseline(baseline_path, entries)

    # 2. Reloaded baseline matches: nothing new, nothing stale.
    loaded = load_baseline(baseline_path)
    new, matched, stale = match_baseline(_lint(tmp_path), loaded)
    assert (new, len(matched), stale) == ([], 1, [])

    # 3. Matching survives line drift (context-keyed, not line-keyed).
    target.write_text("# pushed down a line\n" + BAD, encoding="utf-8")
    new, matched, stale = match_baseline(_lint(tmp_path), loaded)
    assert (new, len(matched), stale) == ([], 1, [])

    # 4. Fix the violation: the entry goes stale and update prunes it.
    target.write_text("def payload():\n    return b'x' * 16\n",
                      encoding="utf-8")
    findings = _lint(tmp_path)
    new, matched, stale = match_baseline(findings, loaded)
    assert (new, matched, len(stale)) == ([], [], 1)
    assert updated_baseline(findings, loaded) == []


def test_baseline_matches_with_multiplicity(tmp_path):
    src = BAD + "\ndef payload2():\n    return os.urandom(16)\n"
    _write(tmp_path, "src/repro/core/m.py", src)
    findings = _lint(tmp_path)
    assert [f.code for f in findings] == ["FF003", "FF003"]
    # Identical context lines: one entry only covers one occurrence.
    one = updated_baseline(findings, [])[:1]
    new, matched, stale = match_baseline(findings, one)
    assert (len(new), len(matched), stale) == (1, 1, [])


def test_updated_baseline_preserves_reasons(tmp_path):
    _write(tmp_path, "src/repro/core/r.py", BAD)
    findings = _lint(tmp_path)
    old = [
        BaselineEntry(**{**e.__dict__, "reason": "kept"})
        for e in updated_baseline(findings, [])
    ]
    assert [e.reason for e in updated_baseline(findings, old)] == ["kept"]


def test_check_reasons_flags_empty(tmp_path):
    entries = [
        BaselineEntry(code="FF003", path="a.py", line=1, context="x",
                      reason=""),
        BaselineEntry(code="FF003", path="a.py", line=2, context="y",
                      reason="fine"),
    ]
    assert check_reasons(entries) == entries[:1]


def test_load_baseline_rejects_bad_schema_and_missing_fields(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps({"schema": "wrong"}), encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(path)
    path.write_text(
        json.dumps({"schema": "ff-lint-baseline/1",
                    "entries": [{"code": "FF003"}]}),
        encoding="utf-8",
    )
    with pytest.raises(BaselineError):
        load_baseline(path)


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == []
