"""Each lint rule fires exactly once on its minimal fixture and stays
quiet on the sanctioned alternative."""

from pathlib import Path

from repro.analysis import run_paths


def _lint(tmp_path: Path, rel: str, source: str):
    """Write ``source`` at ``<tmp>/<rel>`` and lint the tree."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return run_paths([tmp_path / "src"], root=tmp_path)


def _codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------- FF001

FF001_BAD = """\
import numpy as np

def congestion(x):
    return np.exp(x)
"""


def test_ff001_fires_once_in_critical_module(tmp_path):
    findings = _lint(tmp_path, "src/repro/kernel/bad.py", FF001_BAD)
    assert _codes(findings) == ["FF001"]
    assert "np" in findings[0].context


def test_ff001_silent_outside_critical_modules(tmp_path):
    findings = _lint(tmp_path, "src/repro/metrics/free.py", FF001_BAD)
    assert findings == []


def test_ff001_allows_elementwise_nontranscendental(tmp_path):
    ok = "import numpy as np\n\ndef f(a, b):\n    return np.minimum(a, b)\n"
    assert _lint(tmp_path, "src/repro/kernel/ok.py", ok) == []


def test_ff001_resolves_from_import(tmp_path):
    bad = "from numpy import exp\n\ndef f(x):\n    return exp(x)\n"
    findings = _lint(tmp_path, "src/repro/shadow/flows.py", bad)
    assert _codes(findings) == ["FF001"]


# ---------------------------------------------------------------- FF002

FF002_BAD = """\
import time

def stamp():
    return time.time()
"""


def test_ff002_fires_once_outside_obs(tmp_path):
    findings = _lint(tmp_path, "src/repro/core/timing.py", FF002_BAD)
    assert _codes(findings) == ["FF002"]


def test_ff002_allowed_in_obs_and_scripts(tmp_path):
    assert _lint(tmp_path, "src/repro/obs/spans.py", FF002_BAD) == []
    assert _lint(tmp_path, "scripts/tool.py", FF002_BAD) == []


def test_ff002_resolves_from_import(tmp_path):
    bad = (
        "from time import perf_counter\n\n"
        "def f():\n    return perf_counter()\n"
    )
    findings = _lint(tmp_path, "src/repro/api/hot.py", bad)
    assert _codes(findings) == ["FF002"]


# ---------------------------------------------------------------- FF003

FF003_BAD = """\
import os

def payload():
    return os.urandom(16)
"""


def test_ff003_fires_once_on_urandom(tmp_path):
    findings = _lint(tmp_path, "src/repro/tornet/pay.py", FF003_BAD)
    assert _codes(findings) == ["FF003"]


def test_ff003_fires_on_global_random_and_legacy_np(tmp_path):
    bad = (
        "import random\nimport numpy as np\n\n"
        "def f():\n"
        "    return random.random() + np.random.rand()\n"
    )
    findings = _lint(tmp_path, "src/repro/core/amb.py", bad)
    assert _codes(findings) == ["FF003", "FF003"]


def test_ff003_allows_seeded_constructors(tmp_path):
    ok = (
        "import random\nimport numpy as np\n\n"
        "def f(seed):\n"
        "    r = random.Random(seed)\n"
        "    g = np.random.default_rng(seed)\n"
        "    return r.random() + g.random()\n"
    )
    assert _lint(tmp_path, "src/repro/core/ok.py", ok) == []


# ---------------------------------------------------------------- FF004

FF004_BAD = """\
def settle(rng, members):
    total = 0
    for m in {1, 2, 3}:
        total += rng.random()
    return total
"""


def test_ff004_fires_once_on_set_loop_with_rng(tmp_path):
    findings = _lint(tmp_path, "src/repro/core/loop.py", FF004_BAD)
    assert _codes(findings) == ["FF004"]


def test_ff004_quiet_with_sorted_or_no_rng(tmp_path):
    ok = (
        "def settle(rng, members):\n"
        "    total = 0\n"
        "    for m in sorted({1, 2, 3}):\n"
        "        total += rng.random()\n"
        "    return total\n"
    )
    assert _lint(tmp_path, "src/repro/core/ok1.py", ok) == []
    no_rng = "def f(xs):\n    return [x for x in {1, 2}]\n"
    assert _lint(tmp_path, "src/repro/core/ok2.py", no_rng) == []


def test_ff004_tracks_names_assigned_from_sets(tmp_path):
    bad = (
        "def f(rng):\n"
        "    pending = set(range(4))\n"
        "    return [rng.random() for p in pending]\n"
    )
    findings = _lint(tmp_path, "src/repro/core/assigned.py", bad)
    assert _codes(findings) == ["FF004"]


# ---------------------------------------------------------------- FF005

FF005_BAD = """\
from repro.api import campaign

def run():
    return campaign
"""


def test_ff005_fires_once_on_upward_module_scope_import(tmp_path):
    findings = _lint(tmp_path, "src/repro/kernel/up.py", FF005_BAD)
    assert _codes(findings) == ["FF005"]


def test_ff005_allows_lazy_import_and_obs_metrics(tmp_path):
    lazy = (
        "def run():\n"
        "    from repro.api import campaign\n"
        "    return campaign\n"
    )
    assert _lint(tmp_path, "src/repro/kernel/lazy.py", lazy) == []
    metrics = "from repro.obs.metrics import counter\n"
    assert _lint(tmp_path, "src/repro/kernel/m.py", metrics) == []


def test_ff005_catches_type_checking_imports(tmp_path):
    bad = (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.service.daemon import Daemon\n"
    )
    findings = _lint(tmp_path, "src/repro/core/tc.py", bad)
    assert _codes(findings) == ["FF005"]


def test_ff005_does_not_restrict_upper_layers(tmp_path):
    ok = "from repro.service.daemon import Daemon\n"
    assert _lint(tmp_path, "src/repro/api/front.py", ok) == []


# ---------------------------------------------------------------- FF006

FF006_BAD = """\
def load(path):
    try:
        return open(path).read()
    except OSError:
        return ""
"""


def test_ff006_fires_once_on_silent_fallback(tmp_path):
    findings = _lint(tmp_path, "src/repro/service/sil.py", FF006_BAD)
    assert _codes(findings) == ["FF006"]


def test_ff006_satisfied_by_raise_warn_or_counter(tmp_path):
    reraise = (
        "def f():\n"
        "    try:\n        return g()\n"
        "    except ValueError as exc:\n        raise RuntimeError from exc\n"
    )
    warned = (
        "from repro.obs.metrics import warn_once\n\n"
        "def f():\n"
        "    try:\n        return g()\n"
        "    except ValueError:\n"
        "        warn_once('x')\n        return None\n"
    )
    counted = (
        "def f(counter):\n"
        "    try:\n        return g()\n"
        "    except ValueError:\n"
        "        counter.inc()\n        return None\n"
    )
    for i, src in enumerate((reraise, warned, counted)):
        assert _lint(tmp_path, f"src/repro/service/ok{i}.py", src) == []


def test_ff006_exempts_main_modules(tmp_path):
    assert _lint(tmp_path, "src/repro/service/__main__.py", FF006_BAD) == []
