"""CLI exit codes and the end-to-end run over the shipped tree."""

import json
from pathlib import Path

from repro.analysis import load_baseline, match_baseline, run_paths
from repro.analysis.__main__ import BASELINE_NAME, main
from repro.analysis.baseline import check_reasons

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD = """\
import os

def payload():
    return os.urandom(16)
"""


def _fixture_tree(tmp_path: Path) -> Path:
    path = tmp_path / "src" / "repro" / "core" / "bad.py"
    path.parent.mkdir(parents=True)
    path.write_text(BAD, encoding="utf-8")
    return tmp_path


def test_strict_nonzero_on_violation(tmp_path, capsys):
    root = _fixture_tree(tmp_path)
    rc = main([str(root / "src"), "--root", str(root), "--strict"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "FF003" in out and "FAIL" in out


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "ok.py").write_text(
        "def f():\n    return 1\n", encoding="utf-8"
    )
    rc = main([str(tmp_path / "src"), "--root", str(tmp_path), "--strict"])
    assert rc == 0
    assert "ok: 0 new findings" in capsys.readouterr().out


def test_update_baseline_then_strict_flow(tmp_path, capsys):
    root = _fixture_tree(tmp_path)
    baseline = root / BASELINE_NAME
    argv = [str(root / "src"), "--root", str(root)]

    assert main(argv + ["--update-baseline"]) == 0
    entries = load_baseline(baseline)
    assert len(entries) == 1 and entries[0].reason == ""

    # Reason-less entries pass plain runs but fail --strict + checks.
    assert main(argv) == 0
    assert main(argv + ["--strict"]) == 1
    assert main(argv + ["--check-baseline"]) == 1

    filled = json.loads(baseline.read_text(encoding="utf-8"))
    filled["entries"][0]["reason"] = "fixture: grandfathered on purpose"
    baseline.write_text(json.dumps(filled), encoding="utf-8")
    assert main(argv + ["--strict"]) == 0
    assert main(argv + ["--check-baseline"]) == 0

    # Fixing the violation makes the entry stale: strict flags it,
    # --update-baseline prunes it.
    (root / "src" / "repro" / "core" / "bad.py").write_text(
        "def payload():\n    return b'x' * 16\n", encoding="utf-8"
    )
    assert main(argv + ["--strict"]) == 1
    assert "stale" in capsys.readouterr().out
    assert main(argv + ["--update-baseline"]) == 0
    assert load_baseline(baseline) == []
    assert main(argv + ["--strict"]) == 0


def test_malformed_baseline_is_usage_error(tmp_path, capsys):
    root = _fixture_tree(tmp_path)
    (root / BASELINE_NAME).write_text("{not json", encoding="utf-8")
    rc = main([str(root / "src"), "--root", str(root)])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_json_output(tmp_path, capsys):
    root = _fixture_tree(tmp_path)
    rc = main([str(root / "src"), "--root", str(root), "--json",
               "--no-baseline"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in payload["new"]] == ["FF003"]


def test_rules_listing(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    for code in ("FF000", "FF001", "FF002", "FF003", "FF004", "FF005",
                 "FF006"):
        assert code in out


def test_graph_dot_emits_digraph(tmp_path, capsys):
    root = _fixture_tree(tmp_path)
    rc = main([str(root / "src"), "--root", str(root), "--graph", "dot"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph repro_imports {")
    assert '"repro.core.bad"' in out


# ------------------------------------------------------------------ e2e

def test_shipped_tree_has_zero_non_baseline_findings():
    findings = run_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    entries = load_baseline(REPO_ROOT / BASELINE_NAME)
    new, _matched, stale = match_baseline(findings, entries)
    assert new == [], "\n".join(f.render() for f in new)
    assert stale == [], "stale baseline entries: run --update-baseline"


def test_shipped_baseline_entries_all_carry_reasons():
    entries = load_baseline(REPO_ROOT / BASELINE_NAME)
    assert entries, "baseline should exist and be non-trivial"
    assert check_reasons(entries) == []


def test_strict_cli_exits_zero_on_shipped_tree(capsys):
    rc = main([str(REPO_ROOT / "src"), "--root", str(REPO_ROOT),
               "--strict"])
    assert rc == 0, capsys.readouterr().out
