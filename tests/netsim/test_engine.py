"""Tests for the simulation clock."""

import pytest

from repro.netsim.engine import SimClock


def test_clock_starts_at_zero():
    assert SimClock().now == 0


def test_clock_custom_start():
    assert SimClock(start=100).now == 100


def test_schedule_and_run():
    clock = SimClock()
    fired = []
    clock.schedule(5, lambda: fired.append(clock.now))
    clock.run_until(10)
    assert fired == [5]
    assert clock.now == 10


def test_schedule_in_relative():
    clock = SimClock(start=10)
    fired = []
    clock.schedule_in(3, lambda: fired.append(clock.now))
    clock.advance(5)
    assert fired == [13]


def test_events_run_in_time_order():
    clock = SimClock()
    order = []
    clock.schedule(5, lambda: order.append("b"))
    clock.schedule(3, lambda: order.append("a"))
    clock.schedule(7, lambda: order.append("c"))
    clock.run_until(10)
    assert order == ["a", "b", "c"]


def test_ties_break_in_insertion_order():
    clock = SimClock()
    order = []
    clock.schedule(5, lambda: order.append("first"))
    clock.schedule(5, lambda: order.append("second"))
    clock.run_until(5)
    assert order == ["first", "second"]


def test_cannot_schedule_in_past():
    clock = SimClock(start=10)
    with pytest.raises(ValueError):
        clock.schedule(5, lambda: None)


def test_events_can_schedule_more_events():
    clock = SimClock()
    fired = []

    def chain():
        fired.append(clock.now)
        if clock.now < 3:
            clock.schedule_in(1, chain)

    clock.schedule(1, chain)
    clock.run_all()
    assert fired == [1, 2, 3]


def test_run_until_does_not_run_future_events():
    clock = SimClock()
    fired = []
    clock.schedule(5, lambda: fired.append(5))
    clock.schedule(15, lambda: fired.append(15))
    clock.run_until(10)
    assert fired == [5]
    assert clock.pending() == 1


def test_ticks_iterates_each_second():
    clock = SimClock()
    seen = list(clock.ticks(5))
    assert seen == [0, 1, 2, 3, 4]
    assert clock.now == 5


def test_ticks_runs_scheduled_events():
    clock = SimClock()
    fired = []
    clock.schedule(2, lambda: fired.append("x"))
    for _ in clock.ticks(5):
        pass
    assert fired == ["x"]
