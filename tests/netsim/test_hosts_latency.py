"""Tests for hosts, kernel configs, and the path model."""

import pytest

from repro.errors import ConfigurationError
from repro.netsim.hosts import Host, make_paper_hosts
from repro.netsim.latency import (
    LAB_LOSS,
    NetworkModel,
    internet_loss_for_rtt,
)
from repro.netsim.socketbuf import KernelConfig
from repro.units import MIB, gbit


def test_paper_hosts_inventory():
    hosts = make_paper_hosts()
    assert set(hosts) == {"US-SW", "US-NW", "US-E", "IN", "NL"}
    # Table 1 facts.
    assert hosts["US-E"].network_type == "residential"
    assert not hosts["US-SW"].virtual
    assert hosts["US-NW"].virtual
    assert hosts["IN"].cpu_cores == 2
    assert hosts["NL"].link_capacity == pytest.approx(gbit(1.611))


def test_virtual_hosts_get_more_jitter():
    hosts = make_paper_hosts()
    assert hosts["IN"].jitter > hosts["US-E"].jitter


def test_host_requires_positive_capacity():
    with pytest.raises(ValueError):
        Host("bad", link_capacity=0)


def test_host_equality_by_name():
    a = Host("x", link_capacity=1e9)
    b = Host("x", link_capacity=2e9)
    assert a == b
    assert hash(a) == hash(b)


def test_with_kernel_returns_copy():
    host = Host("x", link_capacity=1e9)
    tuned = host.with_kernel(KernelConfig.tuned())
    assert tuned.kernel.name == "tuned"
    assert host.kernel.name == "default"


def test_default_kernel_buffer_sizes():
    kernel = KernelConfig.default()
    assert kernel.read_buf_max == 4 * MIB
    assert kernel.write_buf_max == 6 * MIB


def test_tuned_kernel_buffer_sizes():
    kernel = KernelConfig.tuned()
    assert kernel.read_buf_max == kernel.write_buf_max == 64 * MIB


def test_window_limit_is_min_of_directions():
    a, b = KernelConfig.default(), KernelConfig.tuned()
    assert a.window_limit_bytes(b) == 6 * MIB  # a's write buffer binds
    assert b.window_limit_bytes(a) == 4 * MIB  # a's read buffer binds


def test_paper_internet_rtts():
    model = NetworkModel.paper_internet()
    assert model.path("US-SW", "IN").rtt_seconds == pytest.approx(0.210)
    assert model.path("US-SW", "US-E").rtt_seconds == pytest.approx(0.062)
    # Symmetric.
    assert model.path("IN", "US-SW").rtt_seconds == pytest.approx(0.210)


def test_loss_grows_with_rtt():
    assert internet_loss_for_rtt(0.3) > internet_loss_for_rtt(0.03)


def test_lab_pair_is_nearly_lossless():
    model = NetworkModel.lab_pair()
    path = model.path("lab-target", "lab-client")
    assert path.loss == pytest.approx(LAB_LOSS)
    assert path.rtt_seconds == pytest.approx(0.00013)


def test_set_rtt_override():
    model = NetworkModel.lab_pair()
    model.set_rtt("lab-target", "lab-client", 0.120, loss=1e-8)
    assert model.path("lab-target", "lab-client").rtt_seconds == 0.120
    assert model.path("lab-target", "lab-client").loss == 1e-8


def test_unknown_path_raises():
    model = NetworkModel.paper_internet()
    with pytest.raises(ConfigurationError):
        model.path("US-SW", "MOON")


def test_self_path_near_zero_rtt():
    model = NetworkModel.paper_internet()
    assert model.path("US-SW", "US-SW").rtt_seconds < 0.001


def test_path_quality_in_bounds():
    model = NetworkModel.paper_internet(seed=5)
    for _ in range(200):
        q = model.sample_path_quality()
        assert model.quality_min <= q <= 1.0
