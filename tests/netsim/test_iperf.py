"""Tests for the iPerf model against the paper's Tables 1 and 3."""

import pytest

from repro.netsim.iperf import iperf_many_to_one, iperf_pair
from repro.netsim.latency import NetworkModel
from repro.units import mbit


@pytest.fixture(scope="module")
def model():
    return NetworkModel.paper_internet(seed=3)


def test_many_to_one_saturates_us_hosts(model):
    """Table 1/3: all three US hosts measure close to ~1 Gbit/s."""
    for host, expected in (("US-SW", 954), ("US-NW", 946), ("US-E", 941)):
        result = iperf_many_to_one(model, host, duration=30, seed=1)
        assert result.mbit == pytest.approx(expected, rel=0.08)


def test_many_to_one_nl_exceeds_gigabit(model):
    """Table 3: NL's NIC is faster than 1 Gbit/s when saturated."""
    result = iperf_many_to_one(model, "NL", duration=30, seed=2)
    assert result.mbit > 1000


def test_udp_pair_beats_tcp_pair(model):
    """Appendix B: UDP iPerf exceeds TCP iPerf on every pair."""
    for peer in ("US-NW", "US-E", "IN", "NL"):
        udp = iperf_pair(model, "US-SW", peer, mode="udp", duration=20, seed=4)
        tcp = iperf_pair(model, "US-SW", peer, mode="tcp", duration=20, seed=4)
        assert udp.median_bits_per_sec > tcp.median_bits_per_sec, peer


def test_tcp_pair_slower_on_high_rtt_path(model):
    near = iperf_pair(model, "US-SW", "US-E", mode="tcp", duration=20, seed=5)
    far = iperf_pair(model, "US-SW", "IN", mode="tcp", duration=20, seed=5)
    assert near.median_bits_per_sec > far.median_bits_per_sec


def test_udp_pair_bounded_by_slower_link(model):
    result = iperf_pair(model, "US-SW", "NL", mode="udp", duration=20, seed=6)
    # US-SW's ~954 Mbit/s link binds, not NL's 1.6 Gbit/s.
    assert result.median_bits_per_sec < mbit(1050)
    assert result.median_bits_per_sec > mbit(700)


def test_result_has_per_second_series(model):
    result = iperf_pair(model, "US-SW", "US-E", duration=15, seed=7)
    assert len(result.per_second) == 15


def test_invalid_mode_rejected(model):
    with pytest.raises(ValueError):
        iperf_pair(model, "US-SW", "US-E", mode="sctp")


def test_target_cannot_be_source(model):
    with pytest.raises(ValueError):
        iperf_many_to_one(model, "US-SW", sources=["US-SW", "NL"])


def test_deterministic_given_seed(model):
    a = iperf_many_to_one(model, "US-E", duration=10, seed=42)
    b = iperf_many_to_one(model, "US-E", duration=10, seed=42)
    assert a.median_bits_per_sec == b.median_bits_per_sec
