"""Tests for max-min fair allocation, including hypothesis invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fairshare import Flow, Resource, max_min_fair, total_on_resource


def test_single_flow_gets_resource_capacity():
    r = Resource("link", 100.0)
    rates = max_min_fair([Flow("f", [r])])
    assert rates["f"] == pytest.approx(100.0)


def test_two_flows_split_equally():
    r = Resource("link", 100.0)
    rates = max_min_fair([Flow("a", [r]), Flow("b", [r])])
    assert rates["a"] == pytest.approx(50.0)
    assert rates["b"] == pytest.approx(50.0)


def test_cap_limited_flow_frees_capacity():
    r = Resource("link", 100.0)
    rates = max_min_fair([Flow("small", [r], cap=10.0), Flow("big", [r])])
    assert rates["small"] == pytest.approx(10.0)
    assert rates["big"] == pytest.approx(90.0)


def test_classic_three_link_example():
    # Textbook max-min: flows over a chain of links.
    l1, l2 = Resource("l1", 10.0), Resource("l2", 8.0)
    flows = [
        Flow("through", [l1, l2]),
        Flow("only1", [l1]),
        Flow("only2", [l2]),
    ]
    rates = max_min_fair(flows)
    assert rates["through"] == pytest.approx(4.0)
    assert rates["only2"] == pytest.approx(4.0)
    assert rates["only1"] == pytest.approx(6.0)


def test_multiplicity_consumes_double():
    r = Resource("cpu", 100.0)
    rates = max_min_fair([Flow("echo", [r, r])])
    assert rates["echo"] == pytest.approx(50.0)


def test_zero_capacity_resource_starves_flow():
    dead = Resource("dead", 0.0)
    live = Resource("live", 100.0)
    rates = max_min_fair([Flow("f", [dead, live]), Flow("g", [live])])
    assert rates["f"] == 0.0
    assert rates["g"] == pytest.approx(100.0)


def test_zero_cap_flow_gets_nothing():
    r = Resource("link", 100.0)
    rates = max_min_fair([Flow("z", [r], cap=0.0), Flow("f", [r])])
    assert rates["z"] == 0.0
    assert rates["f"] == pytest.approx(100.0)


def test_uncapped_flow_on_infinite_resource():
    r = Resource("inf", math.inf)
    rates = max_min_fair([Flow("f", [r])])
    assert math.isinf(rates["f"])


def test_empty_flow_list():
    assert max_min_fair([]) == {}


def test_conflicting_resource_capacities_rejected():
    with pytest.raises(ValueError):
        max_min_fair(
            [
                Flow("a", [Resource("x", 10.0)]),
                Flow("b", [Resource("x", 20.0)]),
            ]
        )


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------

@st.composite
def _scenario(draw):
    n_resources = draw(st.integers(min_value=1, max_value=5))
    resources = [
        Resource(f"r{i}", draw(st.floats(min_value=1.0, max_value=1000.0)))
        for i in range(n_resources)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for i in range(n_flows):
        k = draw(st.integers(min_value=1, max_value=n_resources))
        picked = draw(
            st.lists(
                st.sampled_from(resources), min_size=k, max_size=k, unique_by=id
            )
        )
        cap = draw(
            st.one_of(
                st.just(math.inf),
                st.floats(min_value=0.5, max_value=2000.0),
            )
        )
        flows.append(Flow(f"f{i}", picked, cap=cap))
    return flows


@given(_scenario())
@settings(max_examples=150, deadline=None)
def test_feasibility_invariant(flows):
    """No resource over-subscribed, no flow above its cap."""
    rates = max_min_fair(flows)
    for flow in flows:
        assert rates[flow.fid] <= flow.cap + 1e-6
    resource_ids = {r.rid: r for f in flows for r in f.resources}
    for rid, resource in resource_ids.items():
        if math.isinf(resource.capacity):
            continue
        assert total_on_resource(flows, rates, rid) <= resource.capacity + 1e-5


@given(_scenario())
@settings(max_examples=150, deadline=None)
def test_unimprovability_invariant(flows):
    """Every flow is at its cap or crosses a saturated resource."""
    rates = max_min_fair(flows)
    resource_ids = {r.rid: r for f in flows for r in f.resources}
    for flow in flows:
        rate = rates[flow.fid]
        if math.isinf(rate):
            continue
        if rate >= flow.cap - 1e-6:
            continue
        saturated = any(
            not math.isinf(resource_ids[rid].capacity)
            and total_on_resource(flows, rates, rid)
            >= resource_ids[rid].capacity - 1e-4
            for rid in flow._multiplicity
        )
        assert saturated, f"flow {flow.fid} below cap with slack everywhere"
