"""Tests for the fluid TCP model (paper Appendices D/E.1 behaviours)."""

import math

import pytest

from repro.netsim.latency import Path
from repro.netsim.socketbuf import KernelConfig
from repro.netsim.tcp import (
    TcpConnection,
    mathis_rate_cap,
    slow_start_rate_cap,
    tcp_rate_cap,
)
from repro.units import MIB, mbit


def _path(rtt_ms: float, loss: float = 0.0) -> Path:
    return Path("a", "b", rtt_seconds=rtt_ms / 1000.0, loss=loss)


def test_window_cap_binds_default_kernel_high_rtt():
    """Default 4 MiB buffers at 120 ms cap ~280 Mbit/s (paper Fig 12)."""
    rate = tcp_rate_cap(
        _path(120, loss=1e-9), KernelConfig.default(), KernelConfig.default()
    )
    expected = 4 * MIB * 8 / 0.120
    assert rate == pytest.approx(expected, rel=0.01)
    assert rate < mbit(300)


def test_tuned_kernel_lifts_window_cap():
    default = tcp_rate_cap(
        _path(120, loss=1e-8), KernelConfig.default(), KernelConfig.default()
    )
    tuned = tcp_rate_cap(
        _path(120, loss=1e-8), KernelConfig.tuned(), KernelConfig.tuned()
    )
    assert tuned > default * 3


def test_window_uses_min_of_send_and_receive_buffers():
    mixed = tcp_rate_cap(
        _path(100, loss=1e-9), KernelConfig.tuned(), KernelConfig.default()
    )
    both_default = tcp_rate_cap(
        _path(100, loss=1e-9), KernelConfig.default(), KernelConfig.default()
    )
    # Receiver's 4 MiB read buffer binds either way.
    assert mixed == pytest.approx(both_default, rel=0.01)


def test_mathis_decreases_with_rtt():
    low = mathis_rate_cap(_path(30, loss=1e-4))
    high = mathis_rate_cap(_path(300, loss=1e-4))
    assert low > high


def test_mathis_decreases_with_loss():
    clean = mathis_rate_cap(_path(100, loss=1e-6))
    lossy = mathis_rate_cap(_path(100, loss=1e-3))
    assert clean > lossy


def test_mathis_infinite_when_lossless():
    assert math.isinf(mathis_rate_cap(_path(100, loss=0.0)))


def test_slow_start_ramps_with_age():
    path = _path(100)
    young = slow_start_rate_cap(path, age_seconds=0.05)
    old = slow_start_rate_cap(path, age_seconds=2.0)
    assert young < old


def test_slow_start_gone_after_seconds_at_low_rtt():
    """With sub-second RTTs full speed is reached almost immediately."""
    path = _path(30)
    assert slow_start_rate_cap(path, age_seconds=1.0) > mbit(1000)


def test_app_limit_binds():
    rate = tcp_rate_cap(
        _path(30, loss=1e-9),
        KernelConfig.tuned(),
        KernelConfig.tuned(),
        app_limit=mbit(50),
    )
    assert rate == pytest.approx(mbit(50))


def test_connection_quality_scales_rate():
    path = _path(100, loss=1e-5)
    full = TcpConnection(path, KernelConfig.default(), KernelConfig.default())
    degraded = TcpConnection(
        path, KernelConfig.default(), KernelConfig.default(), quality=0.5
    )
    full.age_seconds = degraded.age_seconds = 60.0
    assert degraded.rate_cap() == pytest.approx(full.rate_cap() * 0.5)


def test_connection_tick_advances_age():
    conn = TcpConnection(
        _path(100), KernelConfig.default(), KernelConfig.default()
    )
    conn.tick()
    conn.tick(2.5)
    assert conn.age_seconds == pytest.approx(3.5)


def test_paper_fig12_ordering():
    """Figure 12: tuned beats default at every RTT; throughput falls as
    RTT grows within a kernel config."""
    results = {}
    for rtt in (28, 120, 340):
        for kernel in (KernelConfig.default(), KernelConfig.tuned()):
            results[(rtt, kernel.name)] = tcp_rate_cap(
                _path(rtt, loss=1e-8), kernel, kernel
            )
    for rtt in (28, 120, 340):
        assert results[(rtt, "tuned")] >= results[(rtt, "default")]
    assert (
        results[(28, "default")]
        > results[(120, "default")]
        > results[(340, "default")]
    )
    assert results[(120, "tuned")] > results[(340, "tuned")]
