"""Tracer unit tests: span tree shape, parenting, the null fast path."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    get_tracer,
    use_tracer,
)


def test_default_ambient_tracer_is_the_null_singleton():
    assert get_tracer() is NULL_TRACER
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.spans == ()


def test_null_tracer_returns_the_shared_span_singleton():
    # Zero allocation on the disabled path: every span() call hands back
    # the same object, whatever the arguments.
    s1 = NULL_TRACER.span("round", anything=1)
    s2 = NULL_TRACER.span("other")
    assert s1 is NULL_SPAN
    assert s2 is NULL_SPAN
    assert s1.recording is False
    with s1 as entered:
        assert entered is NULL_SPAN
        assert s1.set(key="value") is NULL_SPAN
    assert NULL_TRACER.current_span_id() is None
    NULL_TRACER.finish()  # no-op, must not raise


def test_spans_nest_and_close_children_first():
    tracer = Tracer()
    with tracer.span("campaign") as campaign:
        with tracer.span("round") as round_span:
            with tracer.span("round.compile"):
                pass
    names = [s.name for s in tracer.spans]
    # Close order: innermost first.
    assert names == ["round.compile", "round", "campaign"]
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["campaign"].parent_id is None
    assert by_name["round"].parent_id == campaign.span_id
    assert by_name["round.compile"].parent_id == round_span.span_id


def test_sibling_spans_share_a_parent():
    tracer = Tracer()
    with tracer.span("round") as parent:
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    children = [s for s in tracer.spans if s.name in ("a", "b")]
    assert [s.parent_id for s in children] == [parent.span_id] * 2


def test_explicit_parent_id_wins_over_the_stack():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            with tracer.span("chunk", parent_id=outer.span_id) as chunk:
                pass
    assert chunk.parent_id == outer.span_id != inner.span_id


def test_worker_thread_parents_explicitly():
    # The thread backend's pattern: the dispatcher captures its current
    # span id and worker threads (whose stacks are empty) parent to it.
    tracer = Tracer()
    with tracer.span("round.execute") as execute:
        parent_id = tracer.current_span_id()
        assert parent_id == execute.span_id

        def work():
            assert tracer.current_span_id() is None  # own empty stack
            with tracer.span("kernel.chunk", parent_id=parent_id):
                pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    chunks = [s for s in tracer.spans if s.name == "kernel.chunk"]
    assert len(chunks) == 4
    assert all(s.parent_id == execute.span_id for s in chunks)


def test_span_ids_allocate_parent_first():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    for span in tracer.spans:
        if span.parent_id is not None:
            assert span.parent_id < span.span_id


def test_span_records_times_and_attrs():
    tracer = Tracer()
    with tracer.span("work", backend="vector") as span:
        span.set(n_jobs=3)
    assert span.wall_seconds >= 0.0
    assert span.cpu_seconds >= 0.0
    record = span.to_dict()
    assert record["type"] == "span"
    assert record["name"] == "work"
    assert record["attrs"] == {"backend": "vector", "n_jobs": 3}


def test_span_captures_exception_type():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("failing"):
            raise ValueError("boom")
    (span,) = tracer.spans
    assert span.attrs["error"] == "ValueError"


def test_use_tracer_restores_the_previous_tracer():
    tracer = Tracer()
    assert get_tracer() is NULL_TRACER
    with use_tracer(tracer) as installed:
        assert installed is tracer
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_use_tracer_restores_on_error():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with use_tracer(tracer):
            raise RuntimeError
    assert get_tracer() is NULL_TRACER


def test_wall_by_name_totals_per_span_name():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("round"):
            pass
    totals = tracer.wall_by_name()
    assert set(totals) == {"round"}
    assert totals["round"] >= 0.0
