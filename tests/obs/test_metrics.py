"""Metrics registry unit tests: instruments, snapshots, one-shot warnings."""

from __future__ import annotations

import warnings

import pytest

from repro.obs import (
    DegradationWarning,
    MetricsRegistry,
    get_registry,
    reset_registry,
    reset_warnings,
    warn_once,
)


@pytest.fixture(autouse=True)
def _isolate_global_state():
    reset_registry()
    reset_warnings()
    yield
    reset_registry()
    reset_warnings()


def test_counter_increments():
    registry = MetricsRegistry()
    c = registry.counter("rounds")
    c.inc()
    c.inc(4)
    assert c.value == 5
    # Create-on-first-use returns the same instrument for the same name.
    assert registry.counter("rounds") is c


def test_gauge_tracks_high_water_mark():
    g = MetricsRegistry().gauge("in_flight")
    g.set(3)
    g.set(7)
    g.set(2)
    assert g.value == 2
    assert g.max_value == 7


def test_histogram_aggregates_and_retains_samples():
    h = MetricsRegistry().histogram("round.wall_seconds")
    for value in (0.5, 1.5, 1.0):
        h.observe(value)
    assert h.count == 3
    assert h.total == pytest.approx(3.0)
    assert h.min == 0.5
    assert h.max == 1.5
    assert h.mean() == pytest.approx(1.0)
    assert h.samples == [0.5, 1.5, 1.0]


def test_empty_histogram_mean_is_zero():
    assert MetricsRegistry().histogram("h").mean() == 0.0


def test_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("kernel.shm.fallbacks").inc(2)
    registry.gauge("kernel.stream.in_flight").set(3)
    registry.histogram("round.wall_seconds").observe(0.25)
    snap = registry.snapshot()
    assert snap["counters"] == {"kernel.shm.fallbacks": 2}
    assert snap["gauges"] == {
        "kernel.stream.in_flight": {"value": 3, "max": 3}
    }
    assert snap["histograms"]["round.wall_seconds"] == {
        "count": 1,
        "total": 0.25,
        "min": 0.25,
        "max": 0.25,
        "mean": 0.25,
    }


def test_empty_histogram_snapshot_has_null_bounds():
    registry = MetricsRegistry()
    registry.histogram("h")
    snap = registry.snapshot()["histograms"]["h"]
    assert snap["min"] is None and snap["max"] is None
    assert snap["count"] == 0


def test_registry_reset_clears_everything():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(1)
    registry.histogram("h").observe(1)
    registry.reset()
    assert registry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


def test_global_registry_is_a_singleton():
    get_registry().counter("test.probe").inc()
    assert get_registry().counter("test.probe").value == 1
    reset_registry()
    assert get_registry().counter("test.probe").value == 0


def test_warn_once_fires_exactly_once_per_key():
    with pytest.warns(DegradationWarning, match="shm gone"):
        assert warn_once("k1", "shm gone") is True
    # Second call for the same key: silent, returns False.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert warn_once("k1", "shm gone") is False
    # A different key still fires.
    with pytest.warns(DegradationWarning):
        assert warn_once("k2", "pool rebuilt") is True


def test_reset_warnings_rearms_the_one_shot():
    with pytest.warns(DegradationWarning):
        warn_once("k", "msg")
    reset_warnings()
    with pytest.warns(DegradationWarning):
        assert warn_once("k", "msg") is True


def test_degradation_warning_is_a_runtime_warning():
    # RuntimeWarning, not DeprecationWarning: pytest's filterwarnings
    # must never turn an environmental degradation into a test failure.
    assert issubclass(DegradationWarning, RuntimeWarning)
    assert not issubclass(DegradationWarning, DeprecationWarning)
