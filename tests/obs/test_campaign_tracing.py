"""Guard tests: tracing never perturbs results, disabled path stays null.

These are the ISSUE's acceptance guards: a traced campaign must be
bit-identical to an untraced one, and a campaign run without
``ExecutionConfig(trace=...)`` must leave the ambient null tracer
untouched (zero spans recorded anywhere).
"""

from __future__ import annotations

import types

import pytest

from repro.api import Campaign, ExecutionConfig, NetworkSpec, Scenario
from repro.obs import (
    NULL_TRACER,
    DegradationWarning,
    get_registry,
    get_tracer,
    reset_registry,
    reset_warnings,
    validate_trace,
)


def _scenario():
    return Scenario(
        name="obs-guard",
        network=NetworkSpec(n_relays=12),
        seed=11,
    )


def _execution(**kw):
    return ExecutionConfig(backend="vector", full_simulation=False, **kw)


def _measurement_rows(report):
    """Every measurement outcome, excluding wall-clock fields."""
    rows = []
    for record in report.rounds:
        for m in record.measurements:
            rows.append(
                (
                    m.period_index,
                    m.round_index,
                    m.slot_index,
                    m.fingerprint,
                    m.attempt,
                    m.planned_estimate,
                    m.estimate,
                    m.accepted,
                    m.retried,
                    m.failed,
                    m.failure_reason,
                    m.cells_checked,
                )
            )
    return rows


def test_traced_campaign_is_bit_identical_to_untraced(tmp_path):
    untraced = Campaign(_scenario(), _execution()).run()
    traced_campaign = Campaign(
        _scenario(), _execution(trace=str(tmp_path / "trace.jsonl"))
    )
    traced = traced_campaign.run()

    assert traced.estimates == untraced.estimates
    assert traced.failures == untraced.failures
    assert traced.slots_elapsed == untraced.slots_elapsed
    assert _measurement_rows(traced) == _measurement_rows(untraced)


def test_traced_campaign_writes_a_valid_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    campaign = Campaign(_scenario(), _execution(trace=str(path)))
    campaign.run()

    stats = validate_trace(path)
    assert stats["roots"] == 1
    names = set(stats["span_names"])
    assert {"campaign", "campaign.resolve", "period", "round"} <= names
    manifest = stats["manifest"]
    assert manifest["scenario"] == "obs-guard"
    assert manifest["seed"] == 11
    assert manifest["backend"] == "vector"
    # The campaign keeps its recording tracer for post-run summaries.
    assert campaign.tracer is not NULL_TRACER
    assert campaign.tracer.wall_by_name()["campaign"] > 0.0
    # The ambient tracer was restored after the run.
    assert get_tracer() is NULL_TRACER


def test_untraced_campaign_records_zero_spans():
    campaign = Campaign(_scenario(), _execution())
    campaign.run()
    # No trace requested: the ambient tracer is the null singleton and
    # it accumulated nothing (its span tuple is immutable and empty).
    assert campaign.tracer is NULL_TRACER
    assert get_tracer() is NULL_TRACER
    assert NULL_TRACER.spans == ()


def test_shm_fallback_counts_and_warns_once(monkeypatch):
    from repro.kernel import shm as shm_mod

    reset_registry()
    reset_warnings()

    def broken(*args, **kwargs):
        raise OSError("no /dev/shm left")

    monkeypatch.setattr(shm_mod.shared_memory, "SharedMemory", broken)
    chunk = [types.SimpleNamespace(duration=4, rng_state=None)]

    with pytest.warns(DegradationWarning, match="shared memory"):
        assert shm_mod.pack_chunk(chunk) == (None, None)
    assert get_registry().counter("kernel.shm.fallbacks").value == 1

    # Second fallback: counted again, but the warning stays one-shot.
    with pytest.warns(DegradationWarning) as caught:
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            assert shm_mod.pack_chunk(chunk) == (None, None)
        _w.warn("sentinel", DegradationWarning)
    assert [str(w.message) for w in caught.list] == ["sentinel"]
    assert get_registry().counter("kernel.shm.fallbacks").value == 2

    reset_registry()
    reset_warnings()


def test_cli_trace_flag_end_to_end(tmp_path, capsys):
    from repro.api.__main__ import main

    path = tmp_path / "cli-trace.jsonl"
    exit_code = main(
        [
            "fig06-accuracy",
            "--quiet",
            "--backend",
            "vector",
            "--trace",
            str(path),
            "--metrics",
            "-o",
            "n_relays=10",
        ]
    )
    assert exit_code in (0, None)
    stats = validate_trace(path)
    assert stats["spans"] > 0 and stats["roots"] == 1
    err = capsys.readouterr().err
    assert "trace written to" in err
    assert "campaign" in err  # the --metrics summary table
