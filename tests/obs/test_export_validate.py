"""Exporter + validator tests: JSONL record sequence, schema checks."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    TRACE_SCHEMA,
    JsonlTraceWriter,
    MetricsRegistry,
    TraceValidationError,
    Tracer,
    maybe_profile,
    render_summary,
    run_manifest,
    validate_trace,
)


def _read_records(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]


def _write_trace(path, n_children=2):
    """One traced 'run': root span, children, metrics, end record."""
    registry = MetricsRegistry()
    registry.counter("campaign.rounds").inc(n_children)
    tracer = Tracer(sink=JsonlTraceWriter(path, run_manifest("unit", 7, "vector")))
    with tracer.span("campaign", scenario="unit"):
        for index in range(n_children):
            with tracer.span("round", round_index=index):
                pass
    tracer.finish(registry=registry)
    return tracer


def test_run_manifest_fields():
    manifest = run_manifest("fig06", 3, "vector", shards=2, pipeline=True)
    assert manifest["type"] == "manifest"
    assert manifest["schema"] == TRACE_SCHEMA
    assert manifest["scenario"] == "fig06"
    assert manifest["seed"] == 3
    assert manifest["backend"] == "vector"
    assert manifest["shards"] == 2 and manifest["pipeline"] is True
    assert manifest["cpu_count"] >= 1
    assert isinstance(manifest["python"], str)
    assert len(manifest["run_id"]) == 32


def test_writer_record_sequence(tmp_path):
    path = tmp_path / "trace.jsonl"
    _write_trace(path, n_children=2)
    records = _read_records(path)
    kinds = [r["type"] for r in records]
    assert kinds == ["manifest", "span", "span", "span", "metrics", "end"]
    # Children close (and are written) before their parent.
    assert [r["name"] for r in records[1:4]] == ["round", "round", "campaign"]
    assert records[-1]["spans"] == 3
    assert records[4]["counters"] == {"campaign.rounds": 2}


def test_writer_double_finish_is_a_noop(tmp_path):
    path = tmp_path / "trace.jsonl"
    writer = JsonlTraceWriter(path, run_manifest("unit", 0, None))
    writer.finish()
    writer.finish()
    records = _read_records(path)
    assert [r["type"] for r in records] == ["manifest", "end"]


def test_writer_creates_parent_directories(tmp_path):
    path = tmp_path / "a" / "b" / "trace.jsonl"
    JsonlTraceWriter(path, run_manifest("unit", 0, None)).finish()
    assert path.exists()


def test_validate_accepts_a_real_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    _write_trace(path, n_children=3)
    stats = validate_trace(path)
    assert stats["spans"] == 4
    assert stats["roots"] == 1
    assert stats["max_depth"] == 2
    assert stats["metrics_records"] == 1
    assert stats["span_names"] == ["campaign", "round"]
    assert stats["manifest"]["scenario"] == "unit"


def test_validate_rejects_missing_manifest(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "end", "spans": 0}\n')
    with pytest.raises(TraceValidationError, match="manifest"):
        validate_trace(path)


def test_validate_rejects_truncated_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    _write_trace(path)
    lines = path.read_text().splitlines()
    # Drop the end record: the file looks like a killed run.
    path.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(TraceValidationError, match="no end record"):
        validate_trace(path)


def test_validate_rejects_bad_parent_order(tmp_path):
    path = tmp_path / "trace.jsonl"
    manifest = json.dumps(run_manifest("unit", 0, None))
    span = json.dumps(
        {
            "type": "span",
            "id": 1,
            "parent": 2,
            "name": "x",
            "wall_seconds": 0.0,
            "cpu_seconds": 0.0,
        }
    )
    path.write_text(manifest + "\n" + span + "\n")
    with pytest.raises(TraceValidationError, match="not allocated"):
        validate_trace(path)


def test_validate_rejects_missing_metrics(tmp_path):
    path = tmp_path / "trace.jsonl"
    manifest = json.dumps(run_manifest("unit", 0, None))
    end = json.dumps({"type": "end", "spans": 0})
    path.write_text(manifest + "\n" + end + "\n")
    with pytest.raises(TraceValidationError, match="metrics"):
        validate_trace(path)


def test_validate_rejects_garbage_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text("not json\n")
    with pytest.raises(TraceValidationError, match="unparseable"):
        validate_trace(path)


def test_validate_rejects_span_count_mismatch(tmp_path):
    path = tmp_path / "trace.jsonl"
    _write_trace(path, n_children=1)
    lines = path.read_text().splitlines()
    end = json.loads(lines[-1])
    end["spans"] = 99
    path.write_text("\n".join(lines[:-1] + [json.dumps(end)]) + "\n")
    with pytest.raises(TraceValidationError, match="99 spans"):
        validate_trace(path)


def test_render_summary_lists_spans_and_counters():
    tracer = Tracer()
    with tracer.span("campaign"):
        with tracer.span("round"):
            pass
    registry = MetricsRegistry()
    registry.counter("campaign.rounds").inc(5)
    registry.counter("never.incremented")  # zero counters are elided
    registry.gauge("kernel.stream.in_flight").set(2)
    text = render_summary(tracer, registry)
    assert "campaign" in text and "round" in text
    assert "campaign.rounds" in text and "5" in text
    assert "never.incremented" not in text
    assert "kernel.stream.in_flight" in text


def test_maybe_profile_noop_without_path():
    with maybe_profile(None) as profiler:
        assert profiler is None


def test_maybe_profile_writes_pstats_and_text(tmp_path):
    import pstats

    path = tmp_path / "run.prof"
    with maybe_profile(path, limit=5) as profiler:
        assert profiler is not None
        sum(range(1000))
    assert path.exists()
    pstats.Stats(str(path))  # parses as a standard pstats dump
    text = path.with_suffix(".prof.txt").read_text()
    assert "cumulative" in text
