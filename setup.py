"""Thin setup shim.

The build environment for this reproduction has no network access and no
``wheel`` package, so PEP 517 editable installs fail. This file lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (legacy
``setup.py develop``) install the package; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
