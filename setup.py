"""Thin setup shim.

The build environment for this reproduction has no network access and no
``wheel`` package, so PEP 517 editable installs fail. This file lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (legacy
``setup.py develop``) install the package; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup(
    extras_require={
        # The tier-1 suite plus the shadow flow kernel's property-based
        # invariants (tests/shadow/test_flow_properties.py).
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
