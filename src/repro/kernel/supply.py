"""The vectorized per-second measurement walk.

:func:`execute_batch` runs a whole round of compiled measurements as one
numpy array walk: at each second, capacity (token-bucket availability
under the KIST/CPU/link base cap, times jitter and environment),
measurement/background split via the ratio-r clamp, bucket settlement,
and the BWAuth-side clamp are elementwise float64 operations across all
measurements at once. Every operation mirrors the exact arithmetic of
:meth:`repro.tornet.relay.Relay.measured_second` +
:meth:`repro.core.engine.MeasurementEngine.execute`, in the same order,
so each element of the walk is bit-identical to the stateful path.

Adversarial behaviours compiled through
:class:`repro.tornet.relay.BehaviorProgram` run in the same walk as
separate lanes: non-ratio-enforcing relays take the
``measured_second`` else-branch split, liars scale the reported
background, and ratio cheaters derive their claim from measurement
traffic -- each lane's op chain mirrors the stateful behaviour hook
exactly, selected per measurement with ``np.where``.

Echo-cell verification is replayed afterwards from the walk's
measurement series: the per-second sample counts consume the
measurement's ``verify-*`` RNG stream exactly as
:class:`repro.core.verification.EchoVerifier` would, and each sampled
cell performs the honest encrypt/echo/compare round trip with the real
circuit key, so ``cells_checked`` (and the simulated crypto work) match
the stateful path. Honest relays by construction never fail the check;
forging relays replay their forge decisions from the behaviour's
compiled RNG state, and the first forged checked cell fails the
measurement exactly as the stateful :class:`EchoVerifier` would
(truncated series, zero estimate, the same failure message).

The walk returns, besides the outcome, the relay-state deltas (final
bucket tokens, per-second forwarded bytes) the caller settles back onto
the live relay via :meth:`Relay.settle_measured_walk` -- this is what
lets the walk itself run in a worker process.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.engine import MeasurementOutcome
from repro.core.verification import sample_cell_count
from repro.kernel.compile import CompiledMeasurement
from repro.tornet.cell import PAYLOAD_LEN
from repro.tornet.relaycrypto import CircuitKey
from repro.tornet.tokenbucket import available_second_array, take_second_array
from repro.units import CELL_LEN, bits_to_bytes

#: One CircuitKey per distinct key bytes per process: keeps the keystream
#: block cache warm across measurements (cell indices restart at zero
#: every slot, so later slots verify almost entirely from cache).
_KEY_CACHE: dict[bytes, CircuitKey] = {}


def _circuit_key(key_bytes: bytes) -> CircuitKey:
    key = _KEY_CACHE.get(key_bytes)
    if key is None:
        key = CircuitKey(key_bytes)
        if len(_KEY_CACHE) > 64:
            _KEY_CACHE.clear()
        _KEY_CACHE[key_bytes] = key
    return key


_EMPTY = np.zeros(0)


@dataclass
class KernelResult:
    """Result of one compiled measurement plus relay-state deltas.

    Per-second series stay numpy arrays end to end -- array buffers
    pickle an order of magnitude faster than lists of Python floats,
    which matters for the ``process`` backend's result path --and are
    materialised into a :class:`MeasurementOutcome` by
    :meth:`to_outcome` on the consuming side.
    """

    index: int
    estimate: float = 0.0
    cells_checked: int = 0
    duration: int = 0
    total_allocated: float = 0.0
    #: Per-second series (bit/s): measurement x_j, reported background,
    #: clamped background, totals z_j, and relay capacity (the
    #: SecondReport.capacity_bits oracle series).
    measurement: np.ndarray = field(default_factory=lambda: _EMPTY)
    background_reported: np.ndarray = field(default_factory=lambda: _EMPTY)
    background_clamped: np.ndarray = field(default_factory=lambda: _EMPTY)
    totals: np.ndarray = field(default_factory=lambda: _EMPTY)
    capacity_bits: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Bytes the relay forwarded each second (observed-bandwidth
    #: settlement).
    total_bytes: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Final token-bucket fill (bytes); None when the relay is unlimited
    #: or the measurement never executed (admission refusal).
    final_bucket_tokens: float | None = None
    #: Pass-through outcome (admission refusal): no walk was executed.
    outcome: MeasurementOutcome | None = None
    #: Verification replay failed the slot (a forged checked cell).
    failed: bool = False
    failure_reason: str | None = None
    #: Forged cells detected by the replay (settled back onto the
    #: behaviour together with its advanced RNG state).
    cells_forged: int = 0
    behavior_rng_state: tuple | None = None

    def to_outcome(self) -> MeasurementOutcome:
        """Materialise the walk into the engine's outcome type."""
        if self.outcome is not None:
            return self.outcome
        return MeasurementOutcome(
            estimate=self.estimate,
            per_second_measurement=self.measurement.tolist(),
            per_second_background_reported=self.background_reported.tolist(),
            per_second_background_clamped=self.background_clamped.tolist(),
            per_second_total=self.totals.tolist(),
            total_allocated=self.total_allocated,
            duration=self.duration,
            failed=self.failed,
            failure_reason=self.failure_reason,
            cells_checked=self.cells_checked,
        )


@dataclass
class _ReplayResult:
    """What the verification replay observed for one measurement."""

    cells_checked: int = 0
    #: Second of the first forged checked cell; None = slot passed.
    fail_second: int | None = None
    failure_reason: str | None = None
    cells_forged: int = 0
    #: Behaviour RNG state after the replay (forgers only).
    behavior_rng_state: tuple | None = None


def _verify_replay(
    cm: CompiledMeasurement, measurement_bits: Sequence[float]
) -> _ReplayResult:
    """Replay per-second echo-cell verification.

    Consumes the ``verify-*`` stream exactly like
    ``EchoVerifier.verify_second`` + ``check_cells``: one sample-count
    draw sequence per second, then the relay-side decryption per sampled
    cell, whose payload comes from the measurement's dedicated
    ``verify-payload-*`` stream (the same bytes, in the same order, the
    stateful verifier's ``payload_rng`` draws -- never ambient entropy). An honest relay's echo is *defined* as the local decryption,
    so the measurer-side comparison would compare the decryption against
    itself; the replay performs the decryption work once and counts the
    cell as checked -- same cells checked, no possible failure.

    Forging behaviours draw their per-cell forge decision from the
    behaviour RNG state compiled into the measurement, in the stateful
    stream order (one ``random()`` per checked cell, plus the forged
    payload's ``randbytes`` on a forge). A forged 509-byte payload
    collides with the expected decryption with probability 2^-4072, so
    the replay treats detection as certain -- the same rounding the
    paper's (1-p)^k evasion bound makes -- and fails the slot at that
    cell with the stateful verifier's message.
    """
    if cm.p_check is None:
        return _ReplayResult()
    rng = random.Random(cm.verify_seed)
    payload_rng = random.Random(cm.payload_seed)
    key = _circuit_key(cm.key_bytes)
    forge_fraction = cm.program.forge_fraction
    behavior_rng: random.Random | None = None
    if forge_fraction is not None and cm.behavior_rng_state is not None:
        behavior_rng = random.Random()
        behavior_rng.setstate(cm.behavior_rng_state)
    cells_checked = 0
    next_cell_index = 0
    for second, x_bits in enumerate(list(measurement_bits)):
        cells_sent = int(bits_to_bytes(x_bits) // CELL_LEN)
        count = sample_cell_count(rng, cells_sent, cm.p_check)
        for _ in range(count):
            index = next_cell_index
            next_cell_index += 1
            key.process(payload_rng.randbytes(PAYLOAD_LEN), index)
            cells_checked += 1
            if (
                behavior_rng is not None
                and behavior_rng.random() < forge_fraction
            ):
                behavior_rng.randbytes(PAYLOAD_LEN)
                return _ReplayResult(
                    cells_checked=cells_checked,
                    fail_second=second,
                    failure_reason=(
                        f"echo cell {index} failed content check"
                    ),
                    cells_forged=1,
                    behavior_rng_state=behavior_rng.getstate(),
                )
    return _ReplayResult(
        cells_checked=cells_checked,
        behavior_rng_state=(
            behavior_rng.getstate() if behavior_rng is not None else None
        ),
    )


def _walk_group(
    cms: list[CompiledMeasurement], duration: int
) -> list[KernelResult]:
    """Walk same-duration measurements as one vectorized array walk."""
    n = len(cms)
    supply = np.stack([cm.supply_series() for cm in cms])
    bg_demand = np.stack([cm.background for cm in cms])
    noise_env = np.stack([cm.noise_env for cm in cms])
    base = np.array([cm.base_capacity for cm in cms], dtype=np.float64)
    ratio = np.array([cm.ratio for cm in cms], dtype=np.float64)
    one_minus_r = 1.0 - ratio
    has_bucket = np.array([cm.bucket is not None for cm in cms])
    any_bucket = bool(has_bucket.any())
    tokens = np.array(
        [cm.bucket[0] if cm.bucket else 0.0 for cm in cms], dtype=np.float64
    )
    rate = np.array(
        [cm.bucket[1] if cm.bucket else 0.0 for cm in cms], dtype=np.float64
    )
    burst = np.array(
        [cm.bucket[2] if cm.bucket else 0.0 for cm in cms], dtype=np.float64
    )

    # Behaviour-program lanes. The all-defaults case keeps the historical
    # honest walk untouched; mixed groups compute both splits and select
    # per lane with np.where (each lane's op chain is bit-identical to
    # its stateful behaviour hook).
    enforces = np.array([cm.program.enforces_ratio for cm in cms])
    bg_scale = np.array(
        [cm.program.background_report_scale for cm in cms], dtype=np.float64
    )
    has_claim = np.array(
        [cm.program.measurement_claim_factor is not None for cm in cms]
    )
    claim_factor = np.array(
        [cm.program.measurement_claim_factor or 0.0 for cm in cms],
        dtype=np.float64,
    )
    honest_split = bool(enforces.all())
    any_claim = bool(has_claim.any())

    xs = np.empty((n, duration))
    ys_raw = np.empty((n, duration))
    ys_clamped = np.empty((n, duration))
    zs = np.empty((n, duration))
    caps_out = np.empty((n, duration))
    total_bytes = np.empty((n, duration))
    # Per-second bucket-fill history: a verification failure truncates
    # the slot mid-walk, and the relay's final token level is the fill
    # after the failing second's settlement.
    tokens_history = np.empty((n, duration)) if any_bucket else None

    for second in range(duration):
        # Relay.measured_second: capacity = min(base, bucket peek), then
        # *= noise * external_factor.
        if any_bucket:
            avail_bits = available_second_array(tokens, rate) * 8.0
            capacity = np.where(
                has_bucket, np.minimum(base, avail_bits), base
            )
        else:
            capacity = base
        capacity = capacity * noise_env[:, second]

        # Capacity split between measurement and background traffic.
        demand = bg_demand[:, second]
        supply_s = supply[:, second]
        if honest_split:
            # Honest ratio-r split (the enforces_ratio() branch).
            background = np.minimum(demand, ratio * capacity)
            measurement = np.minimum(supply_s, capacity - background)
            background = np.minimum(
                background, measurement * ratio / one_minus_r
            )
            measurement = np.minimum(supply_s, capacity - background)
        else:
            bg_h = np.minimum(demand, ratio * capacity)
            meas_h = np.minimum(supply_s, capacity - bg_h)
            bg_h = np.minimum(bg_h, meas_h * ratio / one_minus_r)
            meas_h = np.minimum(supply_s, capacity - bg_h)
            # Ratio-ignoring lanes: everything to measurement traffic
            # (measured_second's else-branch).
            meas_n = np.minimum(supply_s, capacity)
            bg_n = np.minimum(
                demand, np.maximum(0.0, capacity - meas_n)
            )
            measurement = np.where(enforces, meas_h, meas_n)
            background = np.where(enforces, bg_h, bg_n)

        total_bits = measurement + background
        if any_bucket:
            _, new_tokens = take_second_array(
                tokens, rate, burst, total_bits / 8.0
            )
            tokens = np.where(has_bucket, new_tokens, tokens)
            tokens_history[:, second] = tokens

        # Engine-side accounting: byte round trips, the behaviour's
        # background report, and the BWAuth clamp, op for op (the /8*8
        # chains and the honest *1.0 report scale are exact in IEEE-754
        # but are kept anyway so every intermediate matches the stateful
        # path: reported = report_background(background/8.0) * 8.0).
        meas_bytes = measurement / 8.0
        reported = (background / 8.0) * bg_scale
        if any_claim:
            # Ratio cheaters report the full claimed allowance derived
            # from the measurement traffic they forwarded.
            reported = np.where(
                has_claim, meas_bytes * claim_factor, reported
            )
        reported_bytes = (reported * 8.0) / 8.0
        x_bits = meas_bytes * 8.0
        y_bits = reported_bytes * 8.0
        y_clamped = np.minimum(y_bits, x_bits * ratio / one_minus_r)

        xs[:, second] = x_bits
        ys_raw[:, second] = y_bits
        ys_clamped[:, second] = y_clamped
        zs[:, second] = x_bits + y_clamped
        caps_out[:, second] = capacity
        total_bytes[:, second] = total_bits / 8.0

    # The stateful clamp_background choke point rejects non-finite
    # claimed reports; mirror it here so a bad program can't smuggle
    # inf/NaN past the vectorized clamp.
    if not np.isfinite(ys_raw).all():
        raise ValueError(
            "non-finite background report in compiled walk: a relay's "
            "claimed normal traffic must be a finite byte count"
        )

    results = []
    for i, cm in enumerate(cms):
        replay = _verify_replay(cm, xs[i])
        if replay.fail_second is not None:
            # The BWAuth ends the measurement early (paper §4.1): series
            # truncate after the failing second, the estimate is zero,
            # and the relay's bucket settles at that second's fill.
            end = replay.fail_second + 1
            results.append(
                KernelResult(
                    index=cm.index,
                    estimate=0.0,
                    cells_checked=replay.cells_checked,
                    duration=end,
                    total_allocated=cm.total_allocated,
                    measurement=xs[i, :end],
                    background_reported=ys_raw[i, :end],
                    background_clamped=ys_clamped[i, :end],
                    totals=zs[i, :end],
                    capacity_bits=caps_out[i, :end],
                    total_bytes=total_bytes[i, :end],
                    final_bucket_tokens=(
                        float(tokens_history[i, end - 1])
                        if cm.bucket is not None
                        else None
                    ),
                    failed=True,
                    failure_reason=replay.failure_reason,
                    cells_forged=replay.cells_forged,
                    behavior_rng_state=replay.behavior_rng_state,
                )
            )
            continue
        results.append(
            KernelResult(
                index=cm.index,
                estimate=float(statistics.median(zs[i].tolist())),
                cells_checked=replay.cells_checked,
                duration=duration,
                total_allocated=cm.total_allocated,
                measurement=xs[i],
                background_reported=ys_raw[i],
                background_clamped=ys_clamped[i],
                totals=zs[i],
                capacity_bits=caps_out[i],
                total_bytes=total_bytes[i],
                final_bucket_tokens=(
                    float(tokens[i]) if cm.bucket is not None else None
                ),
                behavior_rng_state=replay.behavior_rng_state,
            )
        )
    return results


def execute_batch(
    compiled: Sequence[CompiledMeasurement],
) -> list[KernelResult]:
    """Execute compiled measurements as vectorized array walks.

    Measurements are grouped by duration (one array walk per group);
    results come back in input order. Admission refusals pass their
    compiled-in outcome through without executing.
    """
    results: dict[int, KernelResult] = {}
    groups: dict[int, list[CompiledMeasurement]] = {}
    order: list[int] = []
    for cm in compiled:
        order.append(cm.index)
        if cm.outcome is not None:
            results[cm.index] = KernelResult(index=cm.index, outcome=cm.outcome)
        else:
            groups.setdefault(cm.duration, []).append(cm)
    for duration, cms in groups.items():
        for result in _walk_group(cms, duration):
            results[result.index] = result
    return [results[index] for index in order]


def execute_compiled(cm: CompiledMeasurement) -> KernelResult:
    """Execute one compiled measurement (a batch of one)."""
    return execute_batch([cm])[0]
