"""The vectorized per-second measurement walk.

:func:`execute_batch` runs a whole round of compiled measurements as one
numpy array walk: at each second, capacity (token-bucket availability
under the KIST/CPU/link base cap, times jitter and environment),
measurement/background split via the ratio-r clamp, bucket settlement,
and the BWAuth-side clamp are elementwise float64 operations across all
measurements at once. Every operation mirrors the exact arithmetic of
:meth:`repro.tornet.relay.Relay.measured_second` +
:meth:`repro.core.engine.MeasurementEngine.execute`, in the same order,
so each element of the walk is bit-identical to the stateful path.

Echo-cell verification is replayed afterwards from the walk's
measurement series: the per-second sample counts consume the
measurement's ``verify-*`` RNG stream exactly as
:class:`repro.core.verification.EchoVerifier` would, and each sampled
cell performs the honest encrypt/echo/compare round trip with the real
circuit key, so ``cells_checked`` (and the simulated crypto work) match
the stateful path. Honest relays by construction never fail the check.

The walk returns, besides the outcome, the relay-state deltas (final
bucket tokens, per-second forwarded bytes) the caller settles back onto
the live relay via :meth:`Relay.settle_measured_walk` -- this is what
lets the walk itself run in a worker process.
"""

from __future__ import annotations

import os
import random
import statistics
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.engine import MeasurementOutcome
from repro.core.verification import sample_cell_count
from repro.kernel.compile import CompiledMeasurement
from repro.tornet.cell import PAYLOAD_LEN
from repro.tornet.relaycrypto import CircuitKey
from repro.tornet.tokenbucket import available_second_array, take_second_array
from repro.units import CELL_LEN, bits_to_bytes

#: One CircuitKey per distinct key bytes per process: keeps the keystream
#: block cache warm across measurements (cell indices restart at zero
#: every slot, so later slots verify almost entirely from cache).
_KEY_CACHE: dict[bytes, CircuitKey] = {}


def _circuit_key(key_bytes: bytes) -> CircuitKey:
    key = _KEY_CACHE.get(key_bytes)
    if key is None:
        key = CircuitKey(key_bytes)
        if len(_KEY_CACHE) > 64:
            _KEY_CACHE.clear()
        _KEY_CACHE[key_bytes] = key
    return key


_EMPTY = np.zeros(0)


@dataclass
class KernelResult:
    """Result of one compiled measurement plus relay-state deltas.

    Per-second series stay numpy arrays end to end -- array buffers
    pickle an order of magnitude faster than lists of Python floats,
    which matters for the ``process`` backend's result path --and are
    materialised into a :class:`MeasurementOutcome` by
    :meth:`to_outcome` on the consuming side.
    """

    index: int
    estimate: float = 0.0
    cells_checked: int = 0
    duration: int = 0
    total_allocated: float = 0.0
    #: Per-second series (bit/s): measurement x_j, reported background,
    #: clamped background, totals z_j, and relay capacity (the
    #: SecondReport.capacity_bits oracle series).
    measurement: np.ndarray = field(default_factory=lambda: _EMPTY)
    background_reported: np.ndarray = field(default_factory=lambda: _EMPTY)
    background_clamped: np.ndarray = field(default_factory=lambda: _EMPTY)
    totals: np.ndarray = field(default_factory=lambda: _EMPTY)
    capacity_bits: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Bytes the relay forwarded each second (observed-bandwidth
    #: settlement).
    total_bytes: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Final token-bucket fill (bytes); None when the relay is unlimited
    #: or the measurement never executed (admission refusal).
    final_bucket_tokens: float | None = None
    #: Pass-through outcome (admission refusal): no walk was executed.
    outcome: MeasurementOutcome | None = None

    def to_outcome(self) -> MeasurementOutcome:
        """Materialise the walk into the engine's outcome type."""
        if self.outcome is not None:
            return self.outcome
        return MeasurementOutcome(
            estimate=self.estimate,
            per_second_measurement=self.measurement.tolist(),
            per_second_background_reported=self.background_reported.tolist(),
            per_second_background_clamped=self.background_clamped.tolist(),
            per_second_total=self.totals.tolist(),
            total_allocated=self.total_allocated,
            duration=self.duration,
            cells_checked=self.cells_checked,
        )


def _verify_replay(
    cm: CompiledMeasurement, measurement_bits: Sequence[float]
) -> int:
    """Replay per-second echo-cell verification; returns cells checked.

    Consumes the ``verify-*`` stream exactly like
    ``EchoVerifier.verify_second`` + ``check_cells``: one sample-count
    draw sequence per second, then the relay-side decryption per sampled
    cell. An honest relay's echo is *defined* as the local decryption,
    so the measurer-side comparison would compare the decryption against
    itself; the replay performs the decryption work once and counts the
    cell as checked -- same cells checked, no possible failure (which is
    why only honest relays compile; anything else runs the stateful
    :class:`EchoVerifier` path).
    """
    if cm.p_check is None:
        return 0
    rng = random.Random(cm.verify_seed)
    key = _circuit_key(cm.key_bytes)
    cells_checked = 0
    next_cell_index = 0
    for x_bits in list(measurement_bits):
        cells_sent = int(bits_to_bytes(x_bits) // CELL_LEN)
        count = sample_cell_count(rng, cells_sent, cm.p_check)
        for _ in range(count):
            key.process(os.urandom(PAYLOAD_LEN), next_cell_index)
            cells_checked += 1
            next_cell_index += 1
    return cells_checked


def _walk_group(
    cms: list[CompiledMeasurement], duration: int
) -> list[KernelResult]:
    """Walk same-duration measurements as one vectorized array walk."""
    n = len(cms)
    supply = np.stack([cm.supply_series() for cm in cms])
    bg_demand = np.stack([cm.background for cm in cms])
    noise_env = np.stack([cm.noise_env for cm in cms])
    base = np.array([cm.base_capacity for cm in cms], dtype=np.float64)
    ratio = np.array([cm.ratio for cm in cms], dtype=np.float64)
    one_minus_r = 1.0 - ratio
    has_bucket = np.array([cm.bucket is not None for cm in cms])
    any_bucket = bool(has_bucket.any())
    tokens = np.array(
        [cm.bucket[0] if cm.bucket else 0.0 for cm in cms], dtype=np.float64
    )
    rate = np.array(
        [cm.bucket[1] if cm.bucket else 0.0 for cm in cms], dtype=np.float64
    )
    burst = np.array(
        [cm.bucket[2] if cm.bucket else 0.0 for cm in cms], dtype=np.float64
    )

    xs = np.empty((n, duration))
    ys_raw = np.empty((n, duration))
    ys_clamped = np.empty((n, duration))
    zs = np.empty((n, duration))
    caps_out = np.empty((n, duration))
    total_bytes = np.empty((n, duration))

    for second in range(duration):
        # Relay.measured_second: capacity = min(base, bucket peek), then
        # *= noise * external_factor.
        if any_bucket:
            avail_bits = available_second_array(tokens, rate) * 8.0
            capacity = np.where(
                has_bucket, np.minimum(base, avail_bits), base
            )
        else:
            capacity = base
        capacity = capacity * noise_env[:, second]

        # Honest ratio-r split (the enforces_ratio() branch).
        demand = bg_demand[:, second]
        background = np.minimum(demand, ratio * capacity)
        measurement = np.minimum(supply[:, second], capacity - background)
        background = np.minimum(
            background, measurement * ratio / one_minus_r
        )
        measurement = np.minimum(supply[:, second], capacity - background)

        total_bits = measurement + background
        if any_bucket:
            _, new_tokens = take_second_array(
                tokens, rate, burst, total_bits / 8.0
            )
            tokens = np.where(has_bucket, new_tokens, tokens)

        # Engine-side accounting: byte round trips and the BWAuth clamp,
        # op for op (the /8*8 chains are exact in IEEE-754 but are kept
        # anyway so every intermediate matches the stateful path).
        meas_bytes = measurement / 8.0
        reported_bytes = ((background / 8.0) * 8.0) / 8.0
        x_bits = meas_bytes * 8.0
        y_bits = reported_bytes * 8.0
        y_clamped = np.minimum(y_bits, x_bits * ratio / one_minus_r)

        xs[:, second] = x_bits
        ys_raw[:, second] = y_bits
        ys_clamped[:, second] = y_clamped
        zs[:, second] = x_bits + y_clamped
        caps_out[:, second] = capacity
        total_bytes[:, second] = total_bits / 8.0

    results = []
    for i, cm in enumerate(cms):
        results.append(
            KernelResult(
                index=cm.index,
                estimate=float(statistics.median(zs[i].tolist())),
                cells_checked=_verify_replay(cm, xs[i]),
                duration=duration,
                total_allocated=cm.total_allocated,
                measurement=xs[i],
                background_reported=ys_raw[i],
                background_clamped=ys_clamped[i],
                totals=zs[i],
                capacity_bits=caps_out[i],
                total_bytes=total_bytes[i],
                final_bucket_tokens=(
                    float(tokens[i]) if cm.bucket is not None else None
                ),
            )
        )
    return results


def execute_batch(
    compiled: Sequence[CompiledMeasurement],
) -> list[KernelResult]:
    """Execute compiled measurements as vectorized array walks.

    Measurements are grouped by duration (one array walk per group);
    results come back in input order. Admission refusals pass their
    compiled-in outcome through without executing.
    """
    results: dict[int, KernelResult] = {}
    groups: dict[int, list[CompiledMeasurement]] = {}
    order: list[int] = []
    for cm in compiled:
        order.append(cm.index)
        if cm.outcome is not None:
            results[cm.index] = KernelResult(index=cm.index, outcome=cm.outcome)
        else:
            groups.setdefault(cm.duration, []).append(cm)
    for duration, cms in groups.items():
        for result in _walk_group(cms, duration):
            results[result.index] = result
    return [results[index] for index in order]


def execute_compiled(cm: CompiledMeasurement) -> KernelResult:
    """Execute one compiled measurement (a batch of one)."""
    return execute_batch([cm])[0]
