"""Pluggable execution backends for compiled measurements.

A backend takes a list of picklable
:class:`repro.kernel.compile.CompiledMeasurement` and returns one
:class:`repro.kernel.supply.KernelResult` per input, in input order.
Because compiled execution is pure, **every backend produces bit-
identical results**; backends differ only in how the work is scheduled:

- ``serial``  -- one measurement at a time, in the calling thread (the
  baseline granularity: each measurement is its own array walk).
- ``thread``  -- a ``ThreadPoolExecutor`` over *chunks*, each chunk one
  vectorized batch walk (numpy releases the GIL for the array ops).
- ``process`` -- a persistent ``ProcessPoolExecutor`` over chunks of the
  picklable compiled measurements; each worker executes its chunk as one
  vectorized batch walk. Real parallel speedup for campaign-scale
  batches: workers recompute the heavy pure half (TCP ramps, the array
  walk, verification crypto) outside the parent's GIL, and even a single
  worker beats ``serial`` by batching its chunks.
- ``vector``  -- the whole batch as one vectorized numpy array walk
  (:func:`repro.kernel.supply.execute_batch`); the fastest in-process
  option and the ``auto`` default.

Selection order: explicit ``backend=`` argument, then
``FlashFlowParams.kernel_backend``, then the ``FLASHFLOW_KERNEL_BACKEND``
environment variable, then ``auto``.
"""

from __future__ import annotations

import atexit
import os
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.kernel.compile import CompiledMeasurement
from repro.kernel.shm import (
    execute_batch_shm,
    pack_chunk,
    shm_enabled,
    unpack_chunk,
)
from repro.kernel.supply import KernelResult, execute_batch, execute_compiled
from repro.obs.metrics import get_registry, warn_once
from repro.obs.trace import get_tracer
from repro.workers import default_worker_count, workers_from_env

#: Environment variable consulted when params leave the backend unset.
BACKEND_ENV_VAR = "FLASHFLOW_KERNEL_BACKEND"

#: Fewest measurements worth batching into one chunk: below this the
#: per-chunk dispatch/pickle overhead outweighs the vectorization win.
MIN_CHUNK = 8


def _note_pool_rebuild() -> None:
    """Count a broken-pool rebuild and surface it once per process.

    Pool rebuilds were historically invisible (the retry succeeds and
    the round completes normally); the counter and one-shot warning make
    the degradation -- a worker died, lost chunks re-executed -- show up
    in metrics output and on stderr.
    """
    get_registry().counter("kernel.pool.rebuilds").inc()
    warn_once(
        "pool-rebuild",
        "a kernel worker process died mid-round; the pool was rebuilt "
        "and the lost chunks re-executed (results are unaffected -- "
        "compiled measurements are pure)",
    )


def _traced_chunk(tracer, chunk, parent_id):
    """Execute one chunk under a worker-side span (thread pools only).

    Worker threads share the campaign's tracer but have empty span
    stacks, so the dispatcher captures its current span id and the
    chunk parents explicitly.
    """
    with tracer.span(
        "kernel.chunk",
        parent_id=parent_id,
        n_compiled=len(chunk),
        transport="inline",
    ):
        return execute_batch(chunk)


def _chunk_target(n: int, workers: int) -> int:
    """Chunk size for a batch of ``n`` over a ``workers``-wide pool.

    With several workers, ~4 chunks per worker balances load against
    vectorization width; a single worker gets the whole batch as one
    chunk (splitting would only add dispatch round trips). Chunks never
    shrink below :data:`MIN_CHUNK`. The streaming path uses the same
    sizing; chunk boundaries never affect results (each measurement's
    walk is independent), only scheduling.
    """
    n_chunks = workers * 4 if workers > 1 else 1
    return max(MIN_CHUNK, -(-n // n_chunks))


def _chunks(
    compiled: Sequence[CompiledMeasurement], workers: int
) -> list[list[CompiledMeasurement]]:
    """Split a batch into contiguous chunks for a worker pool."""
    target = _chunk_target(len(compiled), workers)
    return [list(compiled[i : i + target]) for i in range(0, len(compiled), target)]


def _shard_parts(
    compiled: Sequence[CompiledMeasurement], shards: int
) -> list[list[CompiledMeasurement]]:
    """Partition a batch into ``shards`` contiguous, balanced parts.

    Campaign sharding (``ExecutionConfig(shards=)``) prescribes the
    chunk boundaries instead of :func:`_chunk_target`'s sizing.  Every
    measurement's walk is independent and parts are merged back in
    input order, so shard count never affects results -- only which
    worker executes which contiguous slice of the round.
    """
    n = len(compiled)
    k = max(1, min(shards, n))
    base, extra = divmod(n, k)
    parts = []
    start = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        parts.append(list(compiled[start : start + size]))
        start += size
    return parts


def _partition(
    compiled: Sequence[CompiledMeasurement],
    workers: int,
    shards: int | None,
) -> list[list[CompiledMeasurement]]:
    if shards is not None and shards > 1:
        return _shard_parts(compiled, shards)
    return _chunks(compiled, workers)


class KernelStream:
    """A bounded pipeline of compiled-measurement chunks over a pool.

    The caller feeds compiled measurements one at a time (in spec order,
    preserving the stateful compile order) via :meth:`add`; full chunks
    are submitted to the pool immediately, so workers execute earlier
    chunks while the caller is still compiling later specs.
    :meth:`finish` flushes the tail chunk and returns every result in
    submission (= input) order -- the same concatenation the batch path
    produces, so results are bit-identical to an unpipelined run.

    In-flight chunks are bounded: once ``max_in_flight`` futures are
    outstanding, :meth:`add` harvests the oldest before submitting more
    (the single-round lookahead bound -- memory stays proportional to the
    pool, not the round). Submitted chunks are retained until their
    results arrive so a broken process pool can be rebuilt -- once, like
    the batch path's single retry -- and the lost chunks re-executed
    (compiled measurements are pure; re-execution is safe).

    The pool itself is acquired lazily on the first flushed chunk, so a
    round whose specs all fall back to the stateful path never spawns
    workers (matching the batch path, which only touches the backend
    when something compiled).
    """

    def __init__(
        self,
        pool_factory: Callable[[], Executor],
        chunk_target: int,
        max_in_flight: int,
        owns_pool: bool,
        rebuild: Callable[[], Executor] | None = None,
        shm_transport: bool = False,
    ) -> None:
        self._pool_factory = pool_factory
        self._pool: Executor | None = None
        self._chunk_target = max(1, chunk_target)
        self._max_in_flight = max(1, max_in_flight)
        self._owns_pool = owns_pool
        self._rebuild = rebuild
        self._rebuilt = False
        #: Ship chunk arrays through shared memory (process pools only).
        #: Cleared on the first pack failure so an exhausted /dev/shm
        #: degrades to plain pickling instead of aborting the round.
        self._shm = shm_transport
        self._chunk: list[CompiledMeasurement] = []
        #: (chunk, payload, handle, future) awaiting results, oldest
        #: first; payload/handle are None for plain-pickled chunks.
        self._pending: deque = deque()
        self._results: list[KernelResult] = []

    def add(self, cm: CompiledMeasurement) -> None:
        self._chunk.append(cm)
        if len(self._chunk) >= self._chunk_target:
            self._flush()

    def _submit(self, chunk, payload):
        if payload is not None:
            return self._pool.submit(execute_batch_shm, payload)
        return self._pool.submit(execute_batch, chunk)

    def _flush(self) -> None:
        if not self._chunk:
            return
        if self._pool is None:
            self._pool = self._pool_factory()
        if len(self._pending) >= self._max_in_flight:
            self._harvest_oldest()
        chunk = self._chunk
        self._chunk = []
        payload = handle = None
        if self._shm:
            payload, handle = pack_chunk(chunk)
            if payload is None:
                # pack_chunk already counted and warned; remember the
                # degradation so later chunks skip the doomed pack.
                self._shm = False
        self._pending.append((chunk, payload, handle, self._submit(chunk, payload)))
        registry = get_registry()
        registry.counter("kernel.stream.chunks").inc()
        registry.gauge("kernel.stream.in_flight").set(len(self._pending))

    def _harvest_oldest(self) -> None:
        chunk, payload, handle, future = self._pending.popleft()
        try:
            with get_tracer().span(
                "kernel.chunk",
                n_compiled=len(chunk),
                transport="shm" if handle is not None else "pickle",
            ):
                out = future.result()
        except BrokenProcessPool:
            if self._rebuild is None or self._rebuilt:
                # Second failure (or a pool that cannot be rebuilt): a
                # chunk that deterministically kills its worker must
                # surface, not loop respawning pools.
                if handle is not None:
                    handle.dispose()
                raise
            # A worker died mid-round (OOM kill, signal): rebuild the
            # pool once and re-run every chunk whose results were lost,
            # in order -- the batch path's single-retry contract.  Shm
            # blocks are only unlinked after harvest, so the packed
            # payloads stay valid for resubmission.
            _note_pool_rebuild()
            self._rebuilt = True
            lost = [(chunk, payload, handle)] + [
                entry[:3] for entry in self._pending
            ]
            self._pending.clear()
            self._pool = self._rebuild()
            for lost_chunk, lost_payload, lost_handle in lost:
                self._pending.append(
                    (
                        lost_chunk,
                        lost_payload,
                        lost_handle,
                        self._submit(lost_chunk, lost_payload),
                    )
                )
            while self._pending:
                self._harvest_oldest()
            return
        if handle is not None:
            self._results.extend(unpack_chunk(out, handle))
        else:
            self._results.extend(out)

    def finish(self) -> list[KernelResult]:
        """Flush the tail and collect every result, in input order."""
        try:
            self._flush()
            while self._pending:
                self._harvest_oldest()
            return self._results
        finally:
            self.close()

    def close(self) -> None:
        """Release the pool (cancelling stragglers on an aborted round)."""
        for _, _, handle, future in self._pending:
            future.cancel()
            if handle is not None:
                handle.dispose()
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)


class KernelBackend:
    """Base class: executes compiled measurements, returns results in order."""

    name = "base"

    def run(
        self,
        compiled: Sequence[CompiledMeasurement],
        max_workers: int | None = None,
        shards: int | None = None,
    ) -> list[KernelResult]:
        raise NotImplementedError

    def open_stream(
        self, n_specs: int, max_workers: int | None = None
    ) -> KernelStream | None:
        """A :class:`KernelStream` for pipelined rounds, or ``None``.

        ``None`` means this backend has no workers to overlap with (the
        in-process ``serial``/``vector``/``analytic`` walks) or the batch
        is too small to be worth streaming; the caller falls back to the
        compile-everything-then-:meth:`run` batch path.
        """
        return None


class SerialBackend(KernelBackend):
    """One measurement at a time in the calling thread."""

    name = "serial"

    def run(self, compiled, max_workers=None, shards=None):
        return [execute_compiled(cm) for cm in compiled]


class VectorBackend(KernelBackend):
    """The whole batch as one vectorized array walk (the auto default)."""

    name = "vector"

    def run(self, compiled, max_workers=None, shards=None):
        if shards is not None and shards > 1:
            # Per-measurement walks are independent, so executing the
            # shard partitions separately and concatenating in order is
            # bit-identical to the single batched walk.
            return [
                result
                for part in _shard_parts(compiled, shards)
                for result in execute_batch(part)
            ]
        return execute_batch(compiled)


class ThreadBackend(KernelBackend):
    """A thread pool over chunked vectorized walks."""

    name = "thread"

    def run(self, compiled, max_workers=None, shards=None):
        workers = max_workers or default_worker_count()
        if workers <= 1 or len(compiled) <= 1:
            return execute_batch(compiled)
        tracer = get_tracer()
        parts = _partition(compiled, workers, shards)
        if tracer.enabled:
            # Chunk spans run *in* the worker threads (they share the
            # process-global tracer) and parent to the dispatcher's
            # current span explicitly.
            parent_id = tracer.current_span_id()
            run_chunk = (
                lambda chunk: _traced_chunk(tracer, chunk, parent_id)
            )
        else:
            run_chunk = execute_batch
        with ThreadPoolExecutor(max_workers=workers) as pool:
            chunk_results = pool.map(run_chunk, parts)
        return [result for chunk in chunk_results for result in chunk]

    def open_stream(self, n_specs, max_workers=None):
        workers = max_workers or default_worker_count()
        if workers <= 1 or n_specs <= MIN_CHUNK:
            return None
        return KernelStream(
            pool_factory=lambda: ThreadPoolExecutor(max_workers=workers),
            chunk_target=_chunk_target(n_specs, workers),
            max_in_flight=workers * 4,
            owns_pool=True,
        )


class ProcessBackend(KernelBackend):
    """A persistent process pool over per-measurement walks.

    The pool is created lazily and kept for the life of the program
    (campaigns call ``run_many`` once per round; respawning workers each
    round would dominate the round's wall time). Results are
    deterministic regardless of worker count: each compiled measurement
    executes purely and ``map`` restores input order.
    """

    name = "process"

    def __init__(self) -> None:
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        atexit.register(self.shutdown)

    def _get_pool(self, workers: int) -> ProcessPoolExecutor:
        if self._pool is None or self._pool_workers != workers:
            self.shutdown()
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._pool_workers = workers
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_workers = 0

    def _workers(self, max_workers: int | None) -> int:
        # The walks are CPU-bound: more worker processes than cores only
        # adds interpreter memory and context switches (the engine's
        # cpu+4 default is sized for its historical thread pool), so
        # even an explicit request -- max_workers argument or the
        # FLASHFLOW_WORKERS override -- is clamped to the core count.
        cpus = os.cpu_count() or 1
        requested = max_workers if max_workers is not None else workers_from_env()
        return max(1, min(requested or cpus, cpus, 32))

    def run(self, compiled, max_workers=None, shards=None):
        workers = self._workers(max_workers)
        if len(compiled) <= 1:
            return execute_batch(compiled)
        chunks = _partition(compiled, workers, shards)
        if shm_enabled():
            packed = []
            for chunk in chunks:
                payload, handle = pack_chunk(chunk)
                if payload is None:
                    # Shared memory unavailable/exhausted: fall back to
                    # plain pickling for the whole batch.
                    for _, stale in packed:
                        stale.dispose()
                    packed = None
                    break
                packed.append((payload, handle))
            if packed is not None:
                return self._run_shm(packed, workers)
        try:
            chunk_results = list(
                self._get_pool(workers).map(execute_batch, chunks)
            )
        except BrokenProcessPool:
            # A worker died (OOM kill, signal). The executor is
            # permanently broken; rebuild it once and retry -- compiled
            # measurements are pure, so re-execution is safe.
            _note_pool_rebuild()
            self.shutdown()
            chunk_results = list(
                self._get_pool(workers).map(execute_batch, chunks)
            )
        return [result for chunk in chunk_results for result in chunk]

    def _run_shm(self, packed, workers):
        """Execute pre-packed shm chunks, harvesting in input order.

        Blocks are unlinked per chunk right after harvest, so a
        broken-pool rebuild can resubmit every not-yet-harvested payload
        unchanged (the single-retry contract of the pickling path).
        """
        pool = self._get_pool(workers)
        tracer = get_tracer()
        futures = [pool.submit(execute_batch_shm, payload) for payload, _ in packed]
        results: list[KernelResult] = []
        retried = False
        index = 0
        try:
            while index < len(packed):
                try:
                    # Parent-side chunk span (worker processes see the
                    # null tracer): submit-to-harvest wall time.
                    with tracer.span(
                        "kernel.chunk",
                        n_compiled=len(packed[index][1].layout),
                        transport="shm",
                    ):
                        light = futures[index].result()
                except BrokenProcessPool:
                    if retried:
                        raise
                    retried = True
                    _note_pool_rebuild()
                    self.shutdown()
                    pool = self._get_pool(workers)
                    for j in range(index, len(packed)):
                        futures[j] = pool.submit(
                            execute_batch_shm, packed[j][0]
                        )
                    continue
                results.extend(unpack_chunk(light, packed[index][1]))
                index += 1
        finally:
            for j in range(index, len(packed)):
                packed[j][1].dispose()
        return results

    def open_stream(self, n_specs, max_workers=None):
        workers = self._workers(max_workers)
        if n_specs <= MIN_CHUNK:
            return None

        def rebuild() -> ProcessPoolExecutor:
            self.shutdown()
            return self._get_pool(workers)

        # The persistent pool outlives the stream (owns_pool=False):
        # campaigns open one stream per round and respawning workers
        # each round would dominate the round's wall time.
        return KernelStream(
            pool_factory=lambda: self._get_pool(workers),
            chunk_target=_chunk_target(n_specs, workers),
            max_in_flight=workers * 4,
            owns_pool=False,
            rebuild=rebuild,
            shm_transport=shm_enabled(),
        )


class AnalyticBackend(VectorBackend):
    """The analytic estimation kernel's registry entry.

    Selecting ``analytic`` makes the ``full_simulation=False`` campaign
    path run whole rounds of analytic estimates as one array walk
    (:mod:`repro.kernel.analytic`) -- which every backend except
    ``serial`` does anyway; the name exists so configs can ask for the
    analytic kernel explicitly. For compiled full-simulation
    measurements it behaves exactly like ``vector`` (one batched array
    walk, bit-identical to every other backend).
    """

    name = "analytic"


_BACKENDS: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend instance to the registry (name taken from the class)."""
    _BACKENDS[backend.name] = backend
    return backend


register_backend(SerialBackend())
register_backend(VectorBackend())
register_backend(ThreadBackend())
register_backend(ProcessBackend())
register_backend(AnalyticBackend())


def backend_names() -> list[str]:
    """Registered backend names (for docs/CLIs)."""
    return sorted(_BACKENDS)


def resolve_backend_name(
    explicit: str | None = None, params_backend: str | None = None
) -> str:
    """Apply the selection order; ``auto`` resolves to ``vector``.

    The resolved name is validated against the registry *here*, before
    any campaign work starts: a typo'd ``FLASHFLOW_KERNEL_BACKEND`` (or
    explicit/params name) fails fast with a :class:`ConfigurationError`
    naming the registered backends instead of surfacing as a raw
    ``KeyError`` mid-campaign.
    """
    env = os.environ.get(BACKEND_ENV_VAR)
    if explicit:
        name, source = explicit, "backend argument"
    elif params_backend:
        name, source = params_backend, "FlashFlowParams.kernel_backend"
    elif env:
        name, source = env, f"the {BACKEND_ENV_VAR} environment variable"
    else:
        name, source = "auto", "default"
    if name == "auto":
        return VectorBackend.name
    if name not in _BACKENDS:
        raise ConfigurationError(
            f"unknown kernel backend {name!r} (from {source}); "
            f"known backends: auto, {', '.join(backend_names())}"
        )
    return name


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name; raises with the known names listed."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; "
            f"known backends: {', '.join(backend_names())}"
        ) from None
