"""Pluggable execution backends for compiled measurements.

A backend takes a list of picklable
:class:`repro.kernel.compile.CompiledMeasurement` and returns one
:class:`repro.kernel.supply.KernelResult` per input, in input order.
Because compiled execution is pure, **every backend produces bit-
identical results**; backends differ only in how the work is scheduled:

- ``serial``  -- one measurement at a time, in the calling thread (the
  baseline granularity: each measurement is its own array walk).
- ``thread``  -- a ``ThreadPoolExecutor`` over *chunks*, each chunk one
  vectorized batch walk (numpy releases the GIL for the array ops).
- ``process`` -- a persistent ``ProcessPoolExecutor`` over chunks of the
  picklable compiled measurements; each worker executes its chunk as one
  vectorized batch walk. Real parallel speedup for campaign-scale
  batches: workers recompute the heavy pure half (TCP ramps, the array
  walk, verification crypto) outside the parent's GIL, and even a single
  worker beats ``serial`` by batching its chunks.
- ``vector``  -- the whole batch as one vectorized numpy array walk
  (:func:`repro.kernel.supply.execute_batch`); the fastest in-process
  option and the ``auto`` default.

Selection order: explicit ``backend=`` argument, then
``FlashFlowParams.kernel_backend``, then the ``FLASHFLOW_KERNEL_BACKEND``
environment variable, then ``auto``.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.kernel.compile import CompiledMeasurement
from repro.kernel.supply import KernelResult, execute_batch, execute_compiled

#: Environment variable consulted when params leave the backend unset.
BACKEND_ENV_VAR = "FLASHFLOW_KERNEL_BACKEND"

#: Fewest measurements worth batching into one chunk: below this the
#: per-chunk dispatch/pickle overhead outweighs the vectorization win.
MIN_CHUNK = 8


def _chunks(
    compiled: Sequence[CompiledMeasurement], workers: int
) -> list[list[CompiledMeasurement]]:
    """Split a batch into contiguous chunks for a worker pool.

    With several workers, ~4 chunks per worker balances load against
    vectorization width; a single worker gets the whole batch as one
    chunk (splitting would only add dispatch round trips). Chunks never
    shrink below :data:`MIN_CHUNK`.
    """
    n = len(compiled)
    n_chunks = workers * 4 if workers > 1 else 1
    target = max(MIN_CHUNK, -(-n // n_chunks))
    return [list(compiled[i : i + target]) for i in range(0, n, target)]


class KernelBackend:
    """Base class: executes compiled measurements, returns results in order."""

    name = "base"

    def run(
        self,
        compiled: Sequence[CompiledMeasurement],
        max_workers: int | None = None,
    ) -> list[KernelResult]:
        raise NotImplementedError


class SerialBackend(KernelBackend):
    """One measurement at a time in the calling thread."""

    name = "serial"

    def run(self, compiled, max_workers=None):
        return [execute_compiled(cm) for cm in compiled]


class VectorBackend(KernelBackend):
    """The whole batch as one vectorized array walk (the auto default)."""

    name = "vector"

    def run(self, compiled, max_workers=None):
        return execute_batch(compiled)


class ThreadBackend(KernelBackend):
    """A thread pool over chunked vectorized walks."""

    name = "thread"

    def run(self, compiled, max_workers=None):
        workers = max_workers or min(32, (os.cpu_count() or 1) + 4)
        if workers <= 1 or len(compiled) <= 1:
            return execute_batch(compiled)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            chunk_results = pool.map(execute_batch, _chunks(compiled, workers))
        return [result for chunk in chunk_results for result in chunk]


class ProcessBackend(KernelBackend):
    """A persistent process pool over per-measurement walks.

    The pool is created lazily and kept for the life of the program
    (campaigns call ``run_many`` once per round; respawning workers each
    round would dominate the round's wall time). Results are
    deterministic regardless of worker count: each compiled measurement
    executes purely and ``map`` restores input order.
    """

    name = "process"

    def __init__(self) -> None:
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        atexit.register(self.shutdown)

    def _get_pool(self, workers: int) -> ProcessPoolExecutor:
        if self._pool is None or self._pool_workers != workers:
            self.shutdown()
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._pool_workers = workers
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_workers = 0

    def run(self, compiled, max_workers=None):
        # The walks are CPU-bound: more worker processes than cores only
        # adds interpreter memory and context switches (the engine's
        # cpu+4 default is sized for its historical thread pool).
        cpus = os.cpu_count() or 1
        workers = max(1, min(max_workers or cpus, cpus, 32))
        if len(compiled) <= 1:
            return execute_batch(compiled)
        chunks = _chunks(compiled, workers)
        try:
            chunk_results = list(
                self._get_pool(workers).map(execute_batch, chunks)
            )
        except BrokenProcessPool:
            # A worker died (OOM kill, signal). The executor is
            # permanently broken; rebuild it once and retry -- compiled
            # measurements are pure, so re-execution is safe.
            self.shutdown()
            chunk_results = list(
                self._get_pool(workers).map(execute_batch, chunks)
            )
        return [result for chunk in chunk_results for result in chunk]


_BACKENDS: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend instance to the registry (name taken from the class)."""
    _BACKENDS[backend.name] = backend
    return backend


register_backend(SerialBackend())
register_backend(VectorBackend())
register_backend(ThreadBackend())
register_backend(ProcessBackend())


def backend_names() -> list[str]:
    """Registered backend names (for docs/CLIs)."""
    return sorted(_BACKENDS)


def resolve_backend_name(
    explicit: str | None = None, params_backend: str | None = None
) -> str:
    """Apply the selection order; ``auto`` resolves to ``vector``."""
    name = (
        explicit
        or params_backend
        or os.environ.get(BACKEND_ENV_VAR)
        or "auto"
    )
    if name == "auto":
        name = VectorBackend.name
    return name


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name; raises with the known names listed."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; "
            f"known backends: {', '.join(backend_names())}"
        ) from None
