"""The vectorized analytic estimation kernel.

Fast campaign sweeps and multi-period deployments run with
``full_simulation=False``: instead of the per-second traffic walk, every
measurement of a round collapses to the engine's closed-form
:meth:`repro.core.engine.MeasurementEngine.analytic_estimate` -- the
supply-limited, wobbled true capacity -- plus the BWAuth's accept/retry
decision against the acceptance threshold. The historical path walked
that round in scalar Python, one ``analytic_estimate`` call and one
``acceptance_threshold`` recomputation per job.

This module lowers a whole round at once, the same recipe
:mod:`repro.kernel.supply` applies to the full-simulation walk:

- **compile** (:func:`compile_analytic_round`): one pass over the round's
  jobs gathers the per-job scalars -- ground-truth capacity, the
  allocation sum (the per-spec supply cap, summed in assignment order
  exactly like :func:`repro.core.allocation.total_allocated`), the
  pre-drawn wobble noise factor, and the team-capacity ``capped`` flag --
  into float64/bool arrays;
- **execute** (:func:`execute_analytic_round`): the ratio-style supply
  split ``min(capacity * wobble, allocated / m)``, the BWAuth acceptance
  clamp ``allocated * (1 - eps1) / m``, and the accept decision
  ``z < threshold or capped`` run as elementwise ops across all
  measurements in the round.

Every array op mirrors the scalar arithmetic operation for operation
(IEEE-754 double multiply/divide/compare, ``np.minimum`` == ``min`` for
non-NaN inputs), so estimates, thresholds, and accept decisions are
**bit-identical** to the stateful ``analytic_estimate`` loop -- the
oracle suite in ``tests/kernel/test_analytic.py`` asserts exact ``==``.

Backend selection reuses the kernel registry
(:mod:`repro.kernel.backends`): the ``analytic`` name is registered
alongside ``serial``/``thread``/``process``/``vector``, and
:func:`run_analytic_round` resolves the usual chain (explicit argument >
``FlashFlowParams.kernel_backend`` > ``FLASHFLOW_KERNEL_BACKEND`` >
``auto``). ``serial`` keeps the historical scalar loop alive for
debugging granularity; every other backend runs the single array walk
(an elementwise O(n) pass gains nothing from thread/process chunking).
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Iterator, Sequence

import numpy as np

from repro.core.engine import MeasurementEngine
from repro.core.params import FlashFlowParams
from repro.kernel.backends import _shard_parts, resolve_backend_name
from repro.obs.trace import get_tracer

_ALLOCATED = attrgetter("allocated")
_WOBBLE = attrgetter("wobble")
_CAPPED = attrgetter("capped")

__all__ = [
    "AnalyticRoundResult",
    "CompiledAnalyticRound",
    "compile_analytic_round",
    "execute_analytic_round",
    "run_analytic_round",
]


@dataclass
class CompiledAnalyticRound:
    """One round of analytic measurements, lowered to arrays.

    ``allocated`` sums each job's assignments in assignment order --
    the same left-to-right accumulation as ``total_allocated`` -- so the
    downstream supply and threshold arithmetic sees the exact scalars
    the stateful loop would.
    """

    #: Ground-truth relay capacity per job (bit/s).
    capacity: np.ndarray
    #: sum(a_i) per job (bit/s), in assignment order.
    allocated: np.ndarray
    #: Pre-drawn measurement-error factor per job.
    wobble: np.ndarray
    #: Whether the job's required allocation was capped by team capacity
    #: (capped jobs are accepted regardless of the threshold).
    capped: np.ndarray
    #: Measurer-capacity multiplier m shared by the round.
    multiplier: float
    #: epsilon_1 of the acceptance threshold shared by the round.
    epsilon1: float


@dataclass
class AnalyticRoundResult:
    """Per-job estimates plus (on the vectorized path) fold decisions.

    ``thresholds``/``accepted`` are ``None`` on the ``serial`` debug
    path; the campaign fold then recomputes the accept decision per job
    exactly as the historical loop did. When present they are
    bit-identical to that recomputation, so the fold may consume them
    directly.
    """

    #: Capacity estimate z per job (bit/s), in job order.
    estimates: list[float]
    #: BWAuth acceptance threshold per job, or None (serial path).
    thresholds: list[float] | None = None
    #: ``z < threshold or capped`` per job, or None (serial path).
    accepted: list[bool] | None = None


def _true_capacities(jobs: Sequence) -> Iterator[float]:
    """``job.relay.true_capacity`` per job, property machinery inlined.

    The kernel idiom (:mod:`repro.kernel.supply` mirrors
    ``Relay.measured_second`` the same way): reproduce the stateful
    arithmetic -- here :attr:`Relay.true_capacity`'s
    min(CPU, link, rate-limit) chain -- without per-job descriptor and
    call overhead. The oracle suite asserts this matches the property
    exactly.
    """
    for job in jobs:
        relay = job.relay
        cap = relay.cpu.max_forward_bits
        host = relay.host
        if host is not None and host.link_capacity < cap:
            cap = host.link_capacity
        rate = relay.rate_limit
        if rate is not None and rate < cap:
            cap = rate
        yield cap


def compile_analytic_round(
    jobs: Sequence, params: FlashFlowParams
) -> CompiledAnalyticRound:
    """Gather a round's analytic inputs into arrays (the prepare half).

    ``jobs`` need ``relay``/``assignments``/``wobble``/``capped``
    attributes (the campaign's ``_Job``); compilation is one pure pass,
    no RNG and no relay state beyond reading ``true_capacity``.
    """
    n = len(jobs)
    capacity = np.fromiter(_true_capacities(jobs), dtype=np.float64, count=n)
    allocated = np.fromiter(
        (sum(map(_ALLOCATED, job.assignments)) for job in jobs),
        dtype=np.float64,
        count=n,
    )
    wobble = np.fromiter(map(_WOBBLE, jobs), dtype=np.float64, count=n)
    capped = np.fromiter(map(_CAPPED, jobs), dtype=np.bool_, count=n)
    return CompiledAnalyticRound(
        capacity=capacity,
        allocated=allocated,
        wobble=wobble,
        capped=capped,
        multiplier=params.multiplier,
        epsilon1=params.epsilon1,
    )


def execute_analytic_round(
    compiled: CompiledAnalyticRound,
) -> AnalyticRoundResult:
    """Walk one compiled round as elementwise array ops.

    Op for op the scalar path's arithmetic:

    - estimate: ``min(capacity * wobble, allocated / m)``
      (:meth:`MeasurementEngine.analytic_finish`),
    - threshold: ``allocated * (1 - eps1) / m``
      (:meth:`FlashFlowParams.acceptance_threshold`),
    - accept: ``z < threshold or capped`` (the campaign fold).
    """
    supply = compiled.allocated / compiled.multiplier
    estimates = np.minimum(compiled.capacity * compiled.wobble, supply)
    thresholds = (
        compiled.allocated * (1.0 - compiled.epsilon1) / compiled.multiplier
    )
    accepted = (estimates < thresholds) | compiled.capped
    return AnalyticRoundResult(
        estimates=estimates.tolist(),
        thresholds=thresholds.tolist(),
        accepted=accepted.tolist(),
    )


def run_analytic_round(
    engine: MeasurementEngine,
    jobs: Sequence,
    params: FlashFlowParams | None = None,
    backend: str | None = None,
    shards: int | None = None,
) -> AnalyticRoundResult:
    """Run one round of analytic estimates on the selected backend.

    Backend resolution is the kernel's usual chain (explicit >
    ``params.kernel_backend`` > ``FLASHFLOW_KERNEL_BACKEND`` > ``auto``),
    validated at resolution time. ``serial`` runs the stateful
    reference -- one :meth:`MeasurementEngine.analytic_estimate` call per
    job, fold decisions left to the caller -- and every other backend
    runs the compiled array walk. Both produce bit-identical campaigns.

    ``shards`` partitions the round's jobs into that many contiguous,
    balanced parts and walks the parts in order, concatenating the
    per-part results -- elementwise ops over a contiguous partition, so
    the sharded round is bit-identical to the unsharded one (the
    ``serial`` reference loop already walks jobs one at a time and
    ignores the flag).
    """
    params = params or engine.params or FlashFlowParams()
    name = resolve_backend_name(backend, params.kernel_backend)
    tracer = get_tracer()
    if name == "serial":
        with tracer.span(
            "round.analytic", backend=name, n_jobs=len(jobs)
        ):
            return AnalyticRoundResult(
                estimates=[
                    engine.analytic_estimate(
                        job.relay, job.assignments, params, job.wobble
                    )
                    for job in jobs
                ]
            )
    with tracer.span(
        "round.analytic", backend=name, n_jobs=len(jobs), shards=shards
    ):
        if shards is not None and shards > 1 and len(jobs) > 1:
            parts = _shard_parts(list(jobs), shards)
            results = [
                execute_analytic_round(compile_analytic_round(part, params))
                for part in parts
            ]
            return AnalyticRoundResult(
                estimates=[z for r in results for z in r.estimates],
                thresholds=[t for r in results for t in r.thresholds],
                accepted=[a for r in results for a in r.accepted],
            )
        return execute_analytic_round(compile_analytic_round(jobs, params))
