"""Shared-memory transport for the process backend.

The process backend historically pickled every
:class:`~repro.kernel.compile.CompiledMeasurement` into the pool and
every :class:`~repro.kernel.supply.KernelResult` back out.  The bulky
parts -- the per-second input arrays (``noise_env``, ``background``),
the 625-word measurement-RNG state, and the six per-second result
arrays -- are flat numeric data, so they move through one
``multiprocessing.shared_memory`` block per chunk instead:

- the parent *packs* a chunk: creates one block sized for the chunk's
  inputs, RNG words, and a pre-allocated output region; copies the
  arrays in; and keeps a tiny picklable payload (per-measurement
  skeletons plus byte offsets);
- the worker *attaches* by name, rebuilds numpy views at the recorded
  offsets, executes the chunk with the ordinary
  :func:`~repro.kernel.supply.execute_batch`, writes the result arrays
  into the output region, detaches, and returns scalar-only skeletons;
- the parent rebuilds full :class:`KernelResult` objects from the
  output region and unlinks the block.

Create/attach/unlink responsibilities are split exactly that way on
purpose: on CPython 3.11 only the *creating* process registers a block
with the resource tracker, so parent-creates / worker-attaches /
parent-unlinks leaves nothing for the tracker to complain about, and a
broken-pool retry can resubmit the same payload because the block is
only unlinked after its results were harvested.

Results are bit-identical to the pickling path: the worker runs the
same ``execute_batch`` over views of the same float64 values, and the
parent copies the outputs back out unchanged.  Set ``FLASHFLOW_SHM=0``
to force the plain pickling transport; packing also falls back
transparently when shared memory is unavailable (e.g. no ``/dev/shm``).
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field

import numpy as np

from repro.kernel.supply import KernelResult, execute_batch
from repro.obs.metrics import get_registry, warn_once

try:  # pragma: no cover - stdlib, but gate anyway for exotic builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

#: Environment toggle: "0"/"false"/"no"/"off" disables the shm transport.
SHM_ENV = "FLASHFLOW_SHM"

#: KernelResult array fields, in output-region order.
RESULT_ARRAY_FIELDS = (
    "measurement",
    "background_reported",
    "background_clamped",
    "totals",
    "capacity_bits",
    "total_bytes",
)


def shm_enabled() -> bool:
    """Whether the shared-memory transport is enabled and available."""
    if shared_memory is None:
        return False
    return os.environ.get(SHM_ENV, "").strip().lower() not in (
        "0", "false", "no", "off",
    )


@dataclass
class ShmChunk:
    """Parent-side handle for one packed chunk (block + layout)."""

    block: object
    #: Total block size in bytes (worker re-derives views from offsets).
    size: int
    #: (array_offset, duration) per measurement, in chunk order.
    layout: list = field(default_factory=list)

    def dispose(self) -> None:
        """Close and unlink the block, swallowing double-dispose races."""
        try:
            self.block.close()
        except (OSError, BufferError):
            pass
        try:
            self.block.unlink()
        except (OSError, FileNotFoundError):
            pass


def _align8(n: int) -> int:
    return (n + 7) & ~7


def pack_chunk(chunk) -> tuple[tuple | None, ShmChunk | None]:
    """Pack compiled measurements into one shared block.

    Returns ``(payload, handle)`` -- the payload is small and picklable,
    the handle stays with the parent -- or ``(None, None)`` when shared
    memory cannot be used (caller falls back to plain pickling).
    """
    if not chunk:
        return None, None
    offsets = []
    total = 0
    for cm in chunk:
        d = cm.duration
        arr_off = total
        # 2*d input doubles (noise_env, background) + 6*d output doubles.
        total += 8 * d * 8
        words = cm.rng_state[1] if cm.rng_state else ()
        rng_off = total
        total += _align8(4 * len(words))
        offsets.append((arr_off, rng_off, len(words)))
    try:
        block = shared_memory.SharedMemory(create=True, size=max(8, total))
    except (OSError, ValueError):
        # Historically this degradation was silent; now it's counted and
        # warned once so an exhausted /dev/shm shows up in run output.
        get_registry().counter("kernel.shm.fallbacks").inc()
        warn_once(
            "shm-fallback",
            "shared memory unavailable or exhausted; kernel chunks fall "
            "back to plain pickling (results are unaffected, transport "
            "only; set FLASHFLOW_SHM=0 to silence by disabling shm)",
        )
        return None, None
    registry = get_registry()
    registry.counter("kernel.shm.blocks").inc()
    registry.counter("kernel.shm.bytes").inc(max(8, total))
    metas = []
    for cm, (arr_off, rng_off, n_words) in zip(chunk, offsets):
        d = cm.duration
        if d:
            inputs = np.ndarray(
                2 * d, dtype=np.float64, buffer=block.buf, offset=arr_off
            )
            inputs[:d] = cm.noise_env
            inputs[d:] = cm.background
            del inputs
        if n_words:
            words = np.ndarray(
                n_words, dtype=np.uint32, buffer=block.buf, offset=rng_off
            )
            words[:] = cm.rng_state[1]
            del words
        skeleton = copy.copy(cm)
        skeleton.noise_env = None
        skeleton.background = None
        skeleton.rng_state = None
        rng_meta = (
            (cm.rng_state[0], cm.rng_state[2]) if cm.rng_state else None
        )
        metas.append((skeleton, arr_off, rng_off, n_words, rng_meta))
    handle = ShmChunk(
        block=block,
        size=max(8, total),
        layout=[(off[0], cm.duration) for cm, off in zip(chunk, offsets)],
    )
    return (block.name, metas), handle


def execute_batch_shm(payload):
    """Worker entry point: attach, rebuild, execute, write back, detach.

    Returns one scalar-only result skeleton per measurement:
    ``(index, estimate, cells_checked, duration, total_allocated,
    has_arrays, final_bucket_tokens, outcome, failed, failure_reason,
    cells_forged, behavior_rng_state)``. ``duration`` may be shorter
    than the packed slot on a verification failure; the result arrays
    then occupy the first ``duration`` elements of each output slot.
    """
    name, metas = payload
    block = shared_memory.SharedMemory(name=name)
    try:
        return _execute_attached(block, metas)
    finally:
        # Views into the mapping are all dropped inside
        # _execute_attached's frame; on an exception the traceback may
        # still pin them, in which case the mapping leaks with the
        # (already failing) task rather than masking the real error.
        try:
            block.close()
        except BufferError:  # pragma: no cover
            pass


def _execute_attached(block, metas):
    cms = []
    for skeleton, arr_off, rng_off, n_words, rng_meta in metas:
        d = skeleton.duration
        if d:
            inputs = np.ndarray(
                2 * d, dtype=np.float64, buffer=block.buf, offset=arr_off
            )
            skeleton.noise_env = inputs[:d]
            skeleton.background = inputs[d:]
        else:
            skeleton.noise_env = np.zeros(0)
            skeleton.background = np.zeros(0)
        if n_words:
            words = np.ndarray(
                n_words, dtype=np.uint32, buffer=block.buf, offset=rng_off
            )
            version, gauss_next = rng_meta
            skeleton.rng_state = (version, tuple(words.tolist()), gauss_next)
        else:
            skeleton.rng_state = ()
        cms.append(skeleton)

    results = execute_batch(cms)

    light = []
    for result, (skeleton, arr_off, _, _, _) in zip(results, metas):
        d = skeleton.duration
        dur = result.duration  # < d when verification failed the slot
        has_arrays = bool(result.total_bytes.size)
        if has_arrays:
            out = np.ndarray(
                6 * d,
                dtype=np.float64,
                buffer=block.buf,
                offset=arr_off + 2 * d * 8,
            )
            for k, name in enumerate(RESULT_ARRAY_FIELDS):
                out[k * d:k * d + dur] = getattr(result, name)
            del out
        light.append(
            (
                result.index,
                result.estimate,
                result.cells_checked,
                result.duration,
                result.total_allocated,
                has_arrays,
                result.final_bucket_tokens,
                result.outcome,
                result.failed,
                result.failure_reason,
                result.cells_forged,
                result.behavior_rng_state,
            )
        )
        # Drop the views before the caller closes the mapping.
        skeleton.noise_env = None
        skeleton.background = None
    return light


def unpack_chunk(light, handle: ShmChunk) -> list[KernelResult]:
    """Rebuild full results from the output region; disposes the block."""
    results = []
    try:
        for row, (arr_off, d) in zip(light, handle.layout):
            (index, estimate, cells_checked, duration, total_allocated,
             has_arrays, final_bucket_tokens, outcome, failed,
             failure_reason, cells_forged, behavior_rng_state) = row
            arrays = {}
            if has_arrays:
                out = np.ndarray(
                    6 * d,
                    dtype=np.float64,
                    buffer=handle.block.buf,
                    offset=arr_off + 2 * d * 8,
                )
                for k, name in enumerate(RESULT_ARRAY_FIELDS):
                    arrays[name] = out[k * d:k * d + duration].copy()
                del out
            results.append(
                KernelResult(
                    index=index,
                    estimate=estimate,
                    cells_checked=cells_checked,
                    duration=duration,
                    total_allocated=total_allocated,
                    final_bucket_tokens=final_bucket_tokens,
                    outcome=outcome,
                    failed=failed,
                    failure_reason=failure_reason,
                    cells_forged=cells_forged,
                    behavior_rng_state=behavior_rng_state,
                    **arrays,
                )
            )
    finally:
        handle.dispose()
    return results
