"""Lowering measurements into picklable compiled form.

:func:`compile_measurement` turns a :class:`MeasurementSpec` plus the
engine's prepared inputs (:meth:`MeasurementEngine.prepare_inputs`) into
a :class:`CompiledMeasurement`: a self-contained, picklable description
of one honest-relay measurement whose per-second walk needs no Python
object state at all. Compilation performs **every RNG draw** the
stateful engine path would perform, in the same order on the same forked
streams:

1. the environment factor and per-assignment path qualities (inside
   ``prepare_inputs``),
2. the target relay's per-second jitter draws
   (:meth:`repro.tornet.relay.Relay.draw_noise_series` -- the relay's
   stream is shared across its measurements, so it must advance here).

The engine's per-second *supply-noise* draws are the one exception: the
measurement stream is forked per spec and nothing else ever reads it, so
its post-prepare state ships inside the compiled measurement and the
draws happen wherever the walk executes -- same stream, same positions,
bit-identical values, but the drawing cost parallelises.

What remains -- TCP ramp profiles, the capacity/ratio walk, and echo-cell
verification replay -- is pure computation over the compiled arrays and
can run anywhere (another thread, another process) with bit-identical
results. The relay's stateful side effects (token bucket level,
observed-bandwidth history) are settled back onto the live relay by the
caller from the walk's results.

Relay behaviours compile through the
:meth:`repro.tornet.relay.RelayBehavior.kernel_program` protocol: any
behaviour describing its walk as a :class:`repro.tornet.relay.\
BehaviorProgram` -- the honest default and the four common §5 attacks
(traffic liar, ratio cheater, forger, selective capacity) -- lowers into
the array walk; behaviours returning ``None`` (genuinely stateful custom
subclasses, e.g. cross-relay colluders), and specs carrying a transcript
session, are *not* compilable: they return ``None`` here and the caller
falls back to the stateful :meth:`MeasurementEngine.run` path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.core.engine import (
    MeasurementEngine,
    MeasurementOutcome,
    MeasurementSpec,
    assignment_caps,
)
from repro.netsim.latency import Path
from repro.netsim.socketbuf import KernelConfig
from repro.rng import seed_from
from repro.tornet.relay import HONEST_PROGRAM, BehaviorProgram


@dataclass(frozen=True)
class CompiledAssignment:
    """Picklable pure inputs for one assignment's supply-cap series."""

    path: Path
    sender_kernel: KernelConfig
    allocated: float
    link_capacity: float
    quality: float

    def caps(
        self,
        target_kernel: KernelConfig,
        duration: int,
        socket_share: int,
        efficiency: float,
    ) -> list[float]:
        """The effective per-second cap series (deferred heavy half)."""
        return assignment_caps(
            self.path,
            self.sender_kernel,
            target_kernel,
            duration,
            self.allocated,
            self.link_capacity,
            socket_share,
            self.quality,
            efficiency,
        )


@dataclass
class CompiledMeasurement:
    """One measurement, lowered to arrays plus pure picklable inputs.

    The measurement RNG state (for the supply-noise draws), ``noise_env``
    (relay jitter x environment factor), ``background`` and the
    token-bucket snapshot fully determine the behaviour-program walk; the
    assignment cap series is recomputed from :class:`CompiledAssignment`
    wherever the measurement executes (cheap, pure, and keeps the
    pickled payload small).
    """

    index: int
    fingerprint: str
    duration: int
    #: Normal-traffic ratio r for this measurement's params.
    ratio: float
    socket_share: int
    efficiency: float
    target_kernel: KernelConfig
    assignments: list[CompiledAssignment]
    #: ``random.Random`` state of the measurement stream right after
    #: prepare -- exactly where the stateful path starts its per-second
    #: supply-noise draws.
    rng_state: tuple
    #: Std-dev of the per-second supply noise.
    supply_noise_std: float
    #: Pre-bucket forwarding capacity: min(CPU, schedulers, link), bit/s.
    base_capacity: float
    #: Relay jitter draw x environment factor, shape [duration].
    noise_env: np.ndarray
    #: (tokens, rate, burst) snapshot in bytes, or None when unlimited.
    bucket: tuple[float, float, float] | None
    #: Background (client) demand per second, bit/s, shape [duration].
    background: np.ndarray
    total_allocated: float
    #: Echo-cell check probability; None disables verification replay.
    p_check: float | None
    #: Seed of the measurement's ``verify-*`` RNG stream.
    verify_seed: int
    #: Seed of the ``verify-payload-*`` stream the sampled-cell payloads
    #: are drawn from (the stateful verifier's ``payload_rng`` fork).
    payload_seed: int
    #: Shared circuit key bytes for the verification replay.
    key_bytes: bytes | None
    #: Early result (admission refusal); skips execution entirely.
    outcome: MeasurementOutcome | None = None
    #: The behaviour's closed-form walk (honest defaults for honest
    #: relays; lane scalars for compiled attacks).
    program: BehaviorProgram = HONEST_PROGRAM
    #: ``random.Random`` state of the behaviour's own stream at slot
    #: start (forgers only, verify on): the verification replay advances
    #: a copy and the caller settles it back via
    #: :meth:`RelayBehavior.settle_verify_replay`.
    behavior_rng_state: tuple | None = None

    def caps_arrays(self) -> list[np.ndarray]:
        """Per-assignment effective cap series as float64 arrays."""
        return [
            np.asarray(
                a.caps(
                    self.target_kernel,
                    self.duration,
                    self.socket_share,
                    self.efficiency,
                ),
                dtype=np.float64,
            )
            for a in self.assignments
        ]

    def supply_noise(self) -> np.ndarray:
        """Per-second supply noise draws, shape [n_assignments, duration].

        Resumes the measurement stream from its compiled state and draws
        in the stateful loop's order (second-major, assignment-minor):
        same stream, same positions, bit-identical values.
        """
        rng = random.Random()
        rng.setstate(self.rng_state)
        gauss = rng.gauss
        noise_std = self.supply_noise_std
        n = len(self.assignments)
        count = self.duration * n
        return (
            np.fromiter(
                (max(0.3, gauss(1.0, noise_std)) for _ in range(count)),
                dtype=np.float64,
                count=count,
            )
            .reshape(self.duration, n)
            .T
        )

    def supply_series(self) -> np.ndarray:
        """Total measurement supply per second (bit/s), shape [duration].

        Accumulates assignment contributions in assignment order --
        exactly the stateful loop's left-to-right summation -- so each
        element is bit-identical to the engine's ``supply_total``.
        """
        supply = np.zeros(self.duration, dtype=np.float64)
        for row, caps in zip(self.supply_noise(), self.caps_arrays()):
            supply += caps * row
        return supply


def is_compilable(engine: MeasurementEngine, spec: MeasurementSpec) -> bool:
    """Whether the kernel can reproduce this spec's walk in closed form.

    A spec compiles when its behaviour publishes a
    :class:`BehaviorProgram` (honest and the four common attacks);
    behaviours whose :meth:`RelayBehavior.kernel_program` returns
    ``None`` -- any custom subclass that does not opt in -- stay on the
    stateful fallback, as do transcript sessions.
    """
    if spec.session is not None:
        return False
    if spec.target.behavior.kernel_program() is None:
        return False
    if spec.verify and not engine.reuse_circuit_keys:
        # A per-measurement DH handshake is part of the stateful path's
        # simulated work; don't silently skip it.
        return False
    return True


def compile_measurement(
    engine: MeasurementEngine,
    spec: MeasurementSpec,
    index: int = 0,
    predrawn_noise: np.ndarray | None = None,
) -> CompiledMeasurement | None:
    """Lower ``spec`` to a :class:`CompiledMeasurement`, or ``None``.

    Must be called in the same relative order as the stateful path would
    have run the spec's prepare phase: it consumes the measurement RNG
    stream, the relay's jitter stream, and the relay's admission state.

    ``predrawn_noise`` is a column-wise jitter row from
    :func:`repro.tornet.columnar.noise_row` (see ``run_specs``'s bulk
    predraw): when given, the relay's stateful ``draw_noise_series``
    call is skipped and the consumed draws are recorded on the relay as
    a pending skip, keeping its RNG stream position identical.
    """
    if not is_compilable(engine, spec):
        return None

    inputs = engine.prepare_inputs(spec)
    params, duration, target = inputs.params, inputs.duration, spec.target

    if inputs.outcome is not None:
        return CompiledMeasurement(
            index=index,
            fingerprint=target.fingerprint,
            duration=duration,
            ratio=params.ratio,
            socket_share=inputs.socket_share,
            efficiency=inputs.efficiency,
            target_kernel=inputs.target_kernel,
            assignments=[],
            rng_state=(),
            supply_noise_std=0.0,
            base_capacity=0.0,
            noise_env=np.zeros(duration),
            bucket=None,
            background=np.zeros(duration),
            total_allocated=inputs.total_allocated,
            p_check=None,
            verify_seed=0,
            payload_seed=0,
            key_bytes=None,
            outcome=inputs.outcome,
        )

    assignments = [
        CompiledAssignment(
            path=path,
            sender_kernel=a.measurer.host.kernel,
            allocated=a.allocated,
            link_capacity=a.measurer.host.link_capacity,
            quality=quality,
        )
        for a, path, quality in inputs.entries
    ]

    # Engine supply-noise draws happen wherever the walk executes: the
    # measurement stream is private to this spec, so shipping its
    # post-prepare state preserves the draw positions exactly.
    rng_state = inputs.rng.getstate()

    # Relay-side jitter: pre-drawn from the relay's own stream, folded
    # with the environment factor exactly as measured_second does
    # (noise * external_factor, then capacity *= that product).
    env = inputs.env
    if predrawn_noise is not None:
        assert predrawn_noise.shape[0] == duration
        target._noise_skip += duration
        noise_env = predrawn_noise * env
    else:
        noise_env = np.fromiter(
            (draw * env for draw in target.draw_noise_series(duration)),
            dtype=np.float64,
            count=duration,
        )

    base_capacity = target.forwarding_capacity(
        n_measurement_sockets=params.n_sockets,
        n_background_sockets=20,
        being_measured=True,
    )
    bucket = target.bucket.state() if target.bucket is not None else None

    bg = spec.background_demand
    if callable(bg):
        background = np.array(
            [float(bg(second)) for second in range(duration)], dtype=np.float64
        )
    else:
        background = np.full(duration, float(bg), dtype=np.float64)

    if spec.verify:
        p_check: float | None = params.p_check
        key_bytes = engine._verifier_key().key_bytes
    else:
        p_check = None
        key_bytes = None

    # The behaviour's closed-form walk; fetched after prepare_inputs so
    # slot-constant decisions (begin_measurement's selective roll) have
    # already landed in base_capacity. Forgers also ship their RNG state:
    # the verification replay consumes forge decisions from a copy.
    program = target.behavior.kernel_program()
    behavior_rng_state = (
        target.behavior._rng.getstate()
        if program.forge_fraction is not None and spec.verify
        else None
    )

    return CompiledMeasurement(
        index=index,
        fingerprint=target.fingerprint,
        duration=duration,
        ratio=params.ratio,
        socket_share=inputs.socket_share,
        efficiency=inputs.efficiency,
        target_kernel=inputs.target_kernel,
        assignments=assignments,
        rng_state=rng_state,
        supply_noise_std=inputs.noise.supply_noise_std,
        base_capacity=base_capacity,
        noise_env=noise_env,
        bucket=bucket,
        background=background,
        total_allocated=inputs.total_allocated,
        p_check=p_check,
        verify_seed=seed_from(spec.seed, f"verify-{target.fingerprint}"),
        payload_seed=seed_from(
            spec.seed, f"verify-payload-{target.fingerprint}"
        ),
        key_bytes=key_bytes,
        program=program,
        behavior_rng_state=behavior_rng_state,
    )
