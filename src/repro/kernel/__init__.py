"""The vectorized measurement kernel (compile -> supply -> backends).

This package is the execution layer beneath
:meth:`repro.core.engine.MeasurementEngine.run_many`:

- :mod:`repro.kernel.compile` lowers a measurement spec plus the
  engine's prepared inputs into a picklable
  :class:`~repro.kernel.compile.CompiledMeasurement` -- all RNG draws
  performed up front in stateful order, everything else pure;
- :mod:`repro.kernel.supply` executes compiled measurements as
  vectorized numpy array walks, bit-identical to the stateful
  :meth:`Relay.measured_second` path;
- :mod:`repro.kernel.backends` schedules the walks on a pluggable
  backend (``serial``/``thread``/``process``/``vector``).

Specs the kernel cannot compile -- adversarial relay behaviours,
transcript sessions -- fall back to the engine's stateful ``run`` path,
preserving exact semantics for every spec.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernel.backends import (
    BACKEND_ENV_VAR,
    KernelBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.kernel.compile import (
    CompiledAssignment,
    CompiledMeasurement,
    compile_measurement,
    is_compilable,
)
from repro.kernel.supply import KernelResult, execute_batch, execute_compiled

__all__ = [
    "BACKEND_ENV_VAR",
    "CompiledAssignment",
    "CompiledMeasurement",
    "KernelBackend",
    "KernelResult",
    "backend_names",
    "compile_measurement",
    "execute_batch",
    "execute_compiled",
    "get_backend",
    "is_compilable",
    "register_backend",
    "resolve_backend_name",
    "run_specs",
]


def run_specs(
    engine,
    specs: Sequence,
    backend: str | None = None,
    max_workers: int | None = None,
):
    """Run independent measurement specs through the kernel.

    Compiles every compilable spec (in spec order -- compilation consumes
    relay RNG/admission state exactly where the stateful path would),
    executes the compiled batch on the selected backend, runs the
    fallback specs on the engine's stateful path, settles relay state
    deltas, and returns outcomes in spec order.

    The backend is a batch-level choice: the explicit ``backend``
    argument, else the *first* spec's params (``kernel_backend`` on
    later specs in a mixed batch is not consulted), else the engine's
    params, the environment, and finally ``auto``. Results are
    bit-identical for every backend, so this only selects scheduling.
    """
    specs = list(specs)
    compiled: list[CompiledMeasurement] = []
    fallback_indices: list[int] = []
    for index, spec in enumerate(specs):
        cm = compile_measurement(engine, spec, index=index)
        if cm is None:
            fallback_indices.append(index)
        else:
            compiled.append(cm)

    results = [None] * len(specs)
    for index in fallback_indices:
        results[index] = engine.run(specs[index])

    if compiled:
        first = specs[0]
        params = first.params or engine.params
        name = resolve_backend_name(
            backend, params.kernel_backend if params is not None else None
        )
        kernel_results = get_backend(name).run(
            compiled, max_workers=max_workers
        )
        for result in kernel_results:
            spec = specs[result.index]
            if result.total_bytes.size:
                spec.target.settle_measured_walk(
                    result.total_bytes.tolist(), result.final_bucket_tokens
                )
            results[result.index] = result.to_outcome()
    return results
