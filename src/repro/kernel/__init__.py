"""The vectorized measurement kernel (compile -> supply -> backends).

This package is the execution layer beneath
:meth:`repro.core.engine.MeasurementEngine.run_many`:

- :mod:`repro.kernel.compile` lowers a measurement spec plus the
  engine's prepared inputs into a picklable
  :class:`~repro.kernel.compile.CompiledMeasurement` -- all RNG draws
  performed up front in stateful order, everything else pure;
- :mod:`repro.kernel.supply` executes compiled measurements as
  vectorized numpy array walks, bit-identical to the stateful
  :meth:`Relay.measured_second` path;
- :mod:`repro.kernel.backends` schedules the walks on a pluggable
  backend (``serial``/``thread``/``process``/``vector``).

Relay behaviours compile through
:meth:`repro.tornet.relay.RelayBehavior.kernel_program`: the honest
default and the four common §5 attacks (traffic liar, ratio cheater,
forger, selective capacity) all lower into the array walk. Specs the
kernel cannot compile -- genuinely stateful custom behaviours (e.g. the
cross-relay :class:`repro.attacks.CollusionBehavior`) and transcript
sessions -- fall back to the engine's stateful ``run`` path, preserving
exact semantics for every spec.

Two more execution modes live here:

- :mod:`repro.kernel.analytic` lowers whole rounds of the engine's
  closed-form ``analytic_estimate`` (the ``full_simulation=False``
  campaign path) into one array walk, registered under the ``analytic``
  backend name;
- pipelined rounds (``run_specs(pipeline=...)``) overlap the stateful
  compile stream with worker execution on pool backends, bit-identical
  to the batch path.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernel.analytic import (
    AnalyticRoundResult,
    CompiledAnalyticRound,
    compile_analytic_round,
    execute_analytic_round,
    run_analytic_round,
)
from repro.kernel.backends import (
    BACKEND_ENV_VAR,
    KernelBackend,
    KernelStream,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.kernel.compile import (
    CompiledAssignment,
    CompiledMeasurement,
    compile_measurement,
    is_compilable,
)
from repro.kernel.supply import KernelResult, execute_batch, execute_compiled
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

__all__ = [
    "BACKEND_ENV_VAR",
    "AnalyticRoundResult",
    "CompiledAnalyticRound",
    "CompiledAssignment",
    "CompiledMeasurement",
    "KernelBackend",
    "KernelResult",
    "KernelStream",
    "backend_names",
    "compile_analytic_round",
    "compile_measurement",
    "execute_analytic_round",
    "execute_batch",
    "execute_compiled",
    "get_backend",
    "is_compilable",
    "register_backend",
    "resolve_backend_name",
    "run_analytic_round",
    "run_specs",
]


def _predraw_noise(engine, specs) -> dict:
    """Column-wise jitter predraw for the round's compilable specs.

    Returns ``{spec_index: noise_row}`` for every spec whose compile is
    *guaranteed* to reach the relay's ``draw_noise_series`` call --
    eligibility mirrors :func:`compile_measurement` exactly (compilable,
    at least one participating assignment, admission will be granted)
    and each target may appear only once in the batch, so the predrawn
    rows replace the stateful draws one for one and every relay RNG
    stream stays on identical positions.
    """
    from repro.tornet.columnar import noise_row

    target_counts: dict[int, int] = {}
    for spec in specs:
        key = id(spec.target)
        target_counts[key] = target_counts.get(key, 0) + 1

    rows: dict[int, object] = {}
    for index, spec in enumerate(specs):
        if target_counts[id(spec.target)] != 1:
            continue
        if not is_compilable(engine, spec):
            continue
        if not any(a.participates for a in spec.assignments):
            continue
        target = spec.target
        if spec.enforce_admission and (
            (spec.bwauth_id, spec.period_index) in target._measured_in
        ):
            continue
        params = spec.params or engine.params
        if params is None:
            from repro.core.params import FlashFlowParams

            params = FlashFlowParams()
        duration = params.slot_seconds if spec.duration is None else spec.duration
        rows[index] = noise_row(target, duration)
    return rows


def run_specs(
    engine,
    specs: Sequence,
    backend: str | None = None,
    max_workers: int | None = None,
    pipeline: bool | None = False,
    shards: int | None = None,
):
    """Run independent measurement specs through the kernel.

    Compiles every compilable spec (in spec order -- compilation consumes
    relay RNG/admission state exactly where the stateful path would),
    executes the compiled batch on the selected backend, runs the
    fallback specs on the engine's stateful path, settles relay state
    deltas, and returns outcomes in spec order.

    The backend is a batch-level choice: the explicit ``backend``
    argument, else the *first* spec's params (``kernel_backend`` on
    later specs in a mixed batch is not consulted), else the engine's
    params, the environment, and finally ``auto``. Results are
    bit-identical for every backend, so this only selects scheduling.

    ``pipeline`` (``True``, or ``None`` for auto) overlaps compilation
    with execution on backends that expose a worker pool
    (``thread``/``process``): compilation still happens one spec at a
    time in the calling thread, in spec order -- the stateful draws are
    untouched -- but finished chunks are submitted to the pool
    immediately, so workers execute the round's head while its tail is
    still compiling, and the stateful fallback specs run on the calling
    thread while the last chunks drain. Compiled execution is pure and
    settlement still happens here, in spec order, so the pipelined round
    is bit-identical to the batch path. Backends with no pool to overlap
    with (``serial``/``vector``/``analytic``) ignore the flag.

    ``shards`` partitions the compiled batch into that many contiguous,
    balanced parts and hands the partition to the backend as its chunk
    boundaries (worker pools execute one shard per task; in-process
    backends walk the shards in order). Results are merged back in spec
    order, so the sharded round is bit-identical to the unsharded one.
    Sharding prescribes chunk boundaries, so it takes the batch path
    (``pipeline`` is ignored when ``shards`` is set).
    """
    specs = list(specs)
    first_params = (specs[0].params or engine.params) if specs else None
    name = resolve_backend_name(
        backend,
        first_params.kernel_backend if first_params is not None else None,
    )
    backend_obj = get_backend(name)
    tracer = get_tracer()
    registry = get_registry()

    results = [None] * len(specs)
    fallback_indices: list[int] = []

    # Bulk compile path: relay jitter for the whole round is pre-drawn
    # column-wise up front, so the per-spec compile loop skips the
    # stateful per-relay gauss draws (bit-identical rows, same stream
    # positions -- see repro.tornet.columnar.noise_row).
    predrawn = _predraw_noise(engine, specs) if specs else {}

    stream = (
        backend_obj.open_stream(len(specs), max_workers)
        if (pipeline or pipeline is None) and shards is None
        else None
    )
    if stream is not None:
        try:
            # Pipelined: the compile span covers the feed loop, so its
            # wall time includes the stream.add submissions that overlap
            # with worker execution (drain time shows up separately).
            with tracer.span(
                "round.compile",
                backend=name, n_specs=len(specs), pipeline=True,
            ):
                for index, spec in enumerate(specs):
                    cm = compile_measurement(
                        engine, spec, index=index,
                        predrawn_noise=predrawn.get(index),
                    )
                    if cm is None:
                        fallback_indices.append(index)
                    else:
                        stream.add(cm)
            # Stateful fallbacks run here while workers drain the tail.
            if fallback_indices:
                with tracer.span(
                    "round.fallback", n_specs=len(fallback_indices)
                ):
                    for index in fallback_indices:
                        results[index] = engine.run(specs[index])
        except BaseException:
            stream.close()
            raise
        with tracer.span("round.drain", backend=name):
            kernel_results = stream.finish()
    else:
        compiled: list[CompiledMeasurement] = []
        with tracer.span(
            "round.compile", backend=name, n_specs=len(specs)
        ):
            for index, spec in enumerate(specs):
                cm = compile_measurement(
                    engine, spec, index=index,
                    predrawn_noise=predrawn.get(index)
                )
                if cm is None:
                    fallback_indices.append(index)
                else:
                    compiled.append(cm)
        if fallback_indices:
            with tracer.span(
                "round.fallback", n_specs=len(fallback_indices)
            ):
                for index in fallback_indices:
                    results[index] = engine.run(specs[index])
        with tracer.span(
            "round.execute",
            backend=name, n_compiled=len(compiled), shards=shards,
        ):
            kernel_results = (
                backend_obj.run(
                    compiled, max_workers=max_workers, shards=shards
                )
                if compiled
                else []
            )

    registry.counter("kernel.specs.compiled").inc(
        len(specs) - len(fallback_indices)
    )
    if fallback_indices:
        registry.counter("kernel.specs.fallback").inc(len(fallback_indices))

    with tracer.span("round.settle", n_results=len(kernel_results)):
        for result in kernel_results:
            spec = specs[result.index]
            if result.total_bytes.size:
                spec.target.settle_measured_walk(
                    result.total_bytes.tolist(), result.final_bucket_tokens
                )
                # The stateful walk notes every second's measurement
                # traffic to the behaviour; only the last note survives
                # as state, so settling it restores exact parity (the
                # ratio cheater's claim ledger, notably).
                spec.target.behavior.note_measurement(
                    float(result.measurement[-1]) / 8.0, spec.target
                )
            if result.behavior_rng_state is not None:
                # Forgers: the verification replay consumed the
                # behaviour's RNG in a worker; write the advanced state
                # (and any detected forgeries) back onto the live object.
                spec.target.behavior.settle_verify_replay(
                    result.behavior_rng_state, result.cells_forged
                )
            results[result.index] = result.to_outcome()
    return results
