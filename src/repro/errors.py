"""Exception hierarchy for the FlashFlow reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class AllocationError(ReproError):
    """The measurement team cannot supply the requested measurer capacity."""


class MeasurementFailure(ReproError):
    """A measurement slot was aborted (e.g. a failed echo-cell check)."""

    def __init__(self, message: str, relay_fingerprint: str | None = None):
        super().__init__(message)
        self.relay_fingerprint = relay_fingerprint


class VerificationFailure(MeasurementFailure):
    """A sampled echo cell came back with incorrect contents (paper §4.1)."""


class AuthenticationError(ReproError):
    """A protocol message failed authentication (paper §4.1 setup)."""


class ScheduleError(ReproError):
    """The measurement schedule could not be constructed or was violated."""


class ProtocolError(ReproError):
    """A peer violated the measurement protocol state machine."""
