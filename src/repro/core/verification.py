"""Random echo-cell verification (paper §4.1, §5).

"To ensure that the target is correctly decrypting and forwarding cells,
the measurer records the contents of each cell sent with probability p
(e.g., p = 1e-5) and checks that the returned content of such cells is
correct, reporting failure from the measurement if not."

The verifier operates on real cell bytes: for each sampled cell it builds
a random-payload MEASURE cell, asks the relay to process it (decrypt +
echo), and compares the result against the locally computed decryption. A
relay that forges k responses evades detection with probability (1-p)^k
(paper §5); :func:`detection_probability` exposes the closed form used by
the security analysis benches.
"""

from __future__ import annotations

import math
import random

from repro.errors import VerificationFailure
from repro.rng import seed_from
from repro.tornet.cell import PAYLOAD_LEN, Cell
from repro.tornet.relay import Relay
from repro.tornet.relaycrypto import CircuitKey, establish_circuit_key

#: Fallback seed for the sampled-cell payload stream when a verifier is
#: built without an explicit ``payload_rng`` (direct unit-test use).
#: The engine always passes the measurement's ``verify-payload-*`` fork.
_DEFAULT_PAYLOAD_SEED = seed_from(0, "verify-payload")


def detection_probability(p_check: float, forged_cells: int) -> float:
    """Probability at least one of ``forged_cells`` forgeries is checked.

    Each sent cell is recorded with probability p; a forged response that
    is checked is detected with overwhelming probability (random 509-byte
    payloads collide with probability 2^-4072). The paper's §5 evasion
    bound is (1-p)^k; detection is its complement.
    """
    if not 0 <= p_check <= 1:
        raise ValueError("p_check must be a probability")
    if forged_cells < 0:
        raise ValueError("forged cell count cannot be negative")
    return 1.0 - (1.0 - p_check) ** forged_cells


def sample_cell_count(
    rng: random.Random, cells_sent: int, p_check: float
) -> int:
    """How many of ``cells_sent`` cells get recorded for checking.

    Binomial(n, p) with tiny p, sampled via Poisson inversion (normal
    approximation above expected 50). Module-level so the vectorized
    measurement kernel (:mod:`repro.kernel.supply`) can replay the exact
    draw sequence of :meth:`EchoVerifier.sample_count` outside a verifier
    instance.
    """
    if cells_sent <= 0:
        return 0
    expected = cells_sent * p_check
    # Poisson via inversion; expected is ~2.5 even at 1 Gbit/s.
    if expected > 50:
        return max(0, round(rng.gauss(expected, expected ** 0.5)))
    threshold = rng.random()
    term = math.exp(-expected)
    cumulative = term
    k = 0
    while cumulative < threshold and k < cells_sent:
        k += 1
        term *= expected / k
        cumulative += term
    return k


class EchoVerifier:
    """Per-measurement verification state for one measuring process."""

    def __init__(self, p_check: float, rng: random.Random,
                 key: CircuitKey | None = None,
                 payload_rng: random.Random | None = None):
        if not 0 <= p_check <= 1:
            raise ValueError("p_check must be a probability")
        self.p_check = p_check
        self._rng = rng
        # Sampled-cell payloads come from their own seeded stream, not
        # ``os.urandom`` (reproducible transcripts) and not ``rng`` (the
        # ``verify-*`` sample-count stream's positions must not move --
        # the kernel replay consumes that stream draw-for-draw).
        if payload_rng is None:
            payload_rng = random.Random(_DEFAULT_PAYLOAD_SEED)
        self._payload_rng = payload_rng
        if key is None:
            key, _ = establish_circuit_key()
        self.key = key
        self.cells_checked = 0
        self.cells_failed = 0
        self._next_cell_index = 0

    def sample_count(self, cells_sent: int) -> int:
        """How many of ``cells_sent`` cells get recorded this second.

        Binomial(n, p) sampled exactly for small n, via the normal
        approximation guard for large n (p is tiny, so a Poisson draw is
        appropriate and cheap).
        """
        return sample_cell_count(self._rng, cells_sent, self.p_check)

    def check_cells(self, relay: Relay, n_cells: int, circ_id: int = 1) -> int:
        """Send ``n_cells`` sampled cells through the relay and verify.

        Returns the number of cells checked; raises
        :class:`VerificationFailure` on the first mismatch (the BWAuth
        ends the measurement early, paper §4.1).
        """
        for _ in range(n_cells):
            index = self._next_cell_index
            self._next_cell_index += 1
            payload = self._payload_rng.randbytes(PAYLOAD_LEN)
            cell = Cell.measurement(circ_id, payload)
            expected = self.key.process(payload, index)
            echoed = relay.process_measurement_cell(cell, self.key, index)
            self.cells_checked += 1
            if echoed.payload != expected:
                self.cells_failed += 1
                raise VerificationFailure(
                    f"echo cell {index} failed content check",
                    relay_fingerprint=relay.fingerprint,
                )
        return n_cells

    def verify_second(self, relay: Relay, measurement_bytes: float) -> int:
        """Run this second's sampled checks for ``measurement_bytes`` echoed."""
        from repro.units import CELL_LEN

        cells_sent = int(measurement_bytes // CELL_LEN)
        return self.check_cells(relay, self.sample_count(cells_sent))
