"""Authenticated measurement sessions (paper §4.1 setup).

Drives the signed coordination message flow around a measurement:

1. the BWAuth ANNOUNCEs the measurement to the target, listing the
   participating measurers' public keys;
2. the relay ACCEPTs (or REFUSEs -- one measurement per BWAuth per
   period) over the authenticated channel;
3. the BWAuth INSTRUCTs each measurer with its allocation a_i and socket
   share;
4. per-second MEASURER_REPORT / RELAY_REPORT messages carry x_i^j / y_j;
5. MEASUREMENT_END closes the session (normally or on a verification
   failure).

Every message is Schnorr-signed and replay-protected; the session
records the transcript so tests (and audits) can replay and verify it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.core.allocation import MeasurerAssignment, total_allocated
from repro.core.engine import (
    MeasurementEngine,
    MeasurementOutcome,
    MeasurementSpec,
    default_engine,
    socket_share_for,
)
from repro.core.params import FlashFlowParams
from repro.core.messages import (
    MessageChannel,
    MessageType,
    ProtocolMessage,
    SigningIdentity,
)
from repro.errors import AuthenticationError, ProtocolError


@dataclass
class SessionTranscript:
    """The ordered, signed message log of one measurement session."""

    messages: list[ProtocolMessage] = field(default_factory=list)

    def append(self, message: ProtocolMessage) -> None:
        self.messages.append(message)

    def of_type(self, msg_type: MessageType) -> list[ProtocolMessage]:
        return [m for m in self.messages if m.msg_type == msg_type]

    def verify_all(self, keys: dict[str, int]) -> None:
        """Re-verify every signature against the senders' public keys."""
        channels = {
            name: MessageChannel(name, public) for name, public in keys.items()
        }
        for message in self.messages:
            if message.sender not in channels:
                raise AuthenticationError(
                    f"unknown sender {message.sender!r} in transcript"
                )
            channels[message.sender].receive(message)


class MeasurementSession:
    """One BWAuth-coordinated, fully authenticated measurement session."""

    def __init__(
        self,
        bwauth: SigningIdentity,
        measurer_identities: dict[str, SigningIdentity],
        relay_identity: SigningIdentity,
        period_index: int = 0,
    ):
        self.bwauth = bwauth
        self.measurers = measurer_identities
        self.relay = relay_identity
        self.period_index = period_index
        self.transcript = SessionTranscript()
        self._nonces = itertools.count(1)
        self._accepted = False
        self._ended = False

    # ------------------------------------------------------------------
    # Message helpers
    # ------------------------------------------------------------------

    def _send(
        self, identity: SigningIdentity, msg_type: MessageType, payload: dict
    ) -> ProtocolMessage:
        message = ProtocolMessage(
            msg_type=msg_type,
            sender=identity.name,
            nonce=next(self._nonces),
            payload=payload,
        ).signed_by(identity)
        self.transcript.append(message)
        return message

    # ------------------------------------------------------------------
    # Lifecycle (paper §4.1)
    # ------------------------------------------------------------------

    def announce(self) -> ProtocolMessage:
        """BWAuth -> relay: the measurement and its measurers' keys."""
        if self._accepted:
            raise ProtocolError("measurement already announced and accepted")
        return self._send(
            self.bwauth,
            MessageType.MEASUREMENT_ANNOUNCE,
            {
                "period": self.period_index,
                "measurer_keys": {
                    name: str(identity.public)
                    for name, identity in self.measurers.items()
                },
            },
        )

    def relay_accept(self, accept: bool = True) -> ProtocolMessage:
        """Relay -> BWAuth: admit or refuse the measurement."""
        message = self._send(
            self.relay,
            MessageType.RELAY_ACCEPT if accept else MessageType.RELAY_REFUSE,
            {"period": self.period_index},
        )
        self._accepted = accept
        return message

    def instruct(
        self, assignments: list[MeasurerAssignment], socket_share: int
    ) -> list[ProtocolMessage]:
        """BWAuth -> each participating measurer: allocation + sockets."""
        if not self._accepted:
            raise ProtocolError("relay has not accepted the measurement")
        messages = []
        for assignment in assignments:
            if not assignment.participates:
                continue
            name = assignment.measurer.name
            if name not in self.measurers:
                raise ProtocolError(f"measurer {name!r} has no identity")
            messages.append(
                self._send(
                    self.bwauth,
                    MessageType.MEASURER_INSTRUCT,
                    {
                        "measurer": name,
                        "allocation_bits": assignment.allocated,
                        "sockets": socket_share,
                    },
                )
            )
        return messages

    def record_second(
        self, second: int, measurer_bytes: dict[str, float],
        relay_reported_bytes: float,
    ) -> None:
        """Per-second signed reports from measurers and the relay."""
        if not self._accepted or self._ended:
            raise ProtocolError("session is not in the measuring state")
        for name, x_bytes in measurer_bytes.items():
            self._send(
                self.measurers[name],
                MessageType.MEASURER_REPORT,
                {"second": second, "bytes": x_bytes},
            )
        self._send(
            self.relay,
            MessageType.RELAY_REPORT,
            {"second": second, "bytes": relay_reported_bytes},
        )

    def end(self, outcome: MeasurementOutcome) -> ProtocolMessage:
        """BWAuth -> all: close the session."""
        if self._ended:
            raise ProtocolError("session already ended")
        self._ended = True
        return self._send(
            self.bwauth,
            MessageType.MEASUREMENT_END,
            {
                "failed": outcome.failed,
                "reason": outcome.failure_reason or "",
                "estimate_bits": outcome.estimate,
                "seconds": outcome.duration,
            },
        )

    # ------------------------------------------------------------------
    # Engine-driven execution (paper §4.1, end to end)
    # ------------------------------------------------------------------

    def run_measurement(
        self,
        spec: MeasurementSpec,
        engine: MeasurementEngine | None = None,
    ) -> MeasurementOutcome:
        """Run one measurement with full protocol choreography.

        Drives the signed message flow (ANNOUNCE / ACCEPT / INSTRUCT /
        per-second reports / END) around an engine execution: the engine
        feeds each second's per-measurer received bytes and the relay's
        report back into this session's transcript, so the result is a
        complete, verifiable log of the measurement that produced the
        returned outcome.
        """
        engine = engine or default_engine()
        params = spec.params or engine.params or FlashFlowParams()
        target = spec.target

        self.announce()
        accepted = not spec.enforce_admission or target.accept_measurement(
            spec.bwauth_id, spec.period_index
        )
        self.relay_accept(accepted)
        if not accepted:
            outcome = MeasurementOutcome(
                estimate=0.0,
                total_allocated=total_allocated(list(spec.assignments)),
                failed=True,
                failure_reason="relay refused: already measured this period",
            )
            self.end(outcome)
            return outcome

        active = [a for a in spec.assignments if a.participates]
        if active:
            self.instruct(
                list(spec.assignments), socket_share_for(params, len(active))
            )
        # Admission was already negotiated over this session's channel.
        outcome = engine.run(
            replace(spec, enforce_admission=False, session=self)
        )
        self.end(outcome)
        return outcome

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def public_keys(self) -> dict[str, int]:
        keys = {self.bwauth.name: self.bwauth.public,
                self.relay.name: self.relay.public}
        keys.update(
            {name: identity.public for name, identity in self.measurers.items()}
        )
        return keys

    def verify_transcript(self) -> None:
        """Check every signature and nonce in order (audit path)."""
        self.transcript.verify_all(self.public_keys())
