"""Bandwidth files: the BWAuth's output (paper §7).

A bandwidth file carries one line per measured relay with its capacity
estimate and derived consensus weight, plus a small header. The format is
modelled on Tor's bandwidth-file spec (key=value pairs, one relay per
line) so the files are human-readable and diffable:

    version=1.0 generator=flashflow timestamp=1719500000
    node_id=relay00001 bw=12500000 capacity_bps=100000000 measured_at=100
    ...
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BandwidthLine:
    """One relay's entry."""

    fingerprint: str
    #: Consensus weight (dimensionless; Tor convention: bytes/sec scale).
    bw: float
    #: Capacity estimate in bit/s (FlashFlow provides true capacity values,
    #: one of its advantages over TorFlow -- Table 2 "Capacity Values").
    capacity_bps: float | None = None
    measured_at: int = 0

    def serialize(self) -> str:
        parts = [f"node_id={self.fingerprint}", f"bw={self.bw:.0f}"]
        if self.capacity_bps is not None:
            parts.append(f"capacity_bps={self.capacity_bps:.0f}")
        parts.append(f"measured_at={self.measured_at}")
        return " ".join(parts)

    @classmethod
    def parse(cls, line: str) -> "BandwidthLine":
        parts = line.strip().split()
        if any("=" not in part for part in parts):
            raise ConfigurationError(f"malformed bandwidth line: {line!r}")
        fields = dict(part.split("=", 1) for part in parts)
        if len(fields) != len(parts):
            raise ConfigurationError(
                f"duplicate key in bandwidth line: {line!r}"
            )
        if "node_id" not in fields or "bw" not in fields:
            raise ConfigurationError(f"malformed bandwidth line: {line!r}")
        try:
            return cls(
                fingerprint=fields["node_id"],
                bw=float(fields["bw"]),
                capacity_bps=(
                    float(fields["capacity_bps"])
                    if "capacity_bps" in fields
                    else None
                ),
                measured_at=int(fields.get("measured_at", 0)),
            )
        except ValueError as exc:
            raise ConfigurationError(
                f"malformed bandwidth line: {line!r} ({exc})"
            ) from None


@dataclass
class BandwidthFile:
    """A complete bandwidth file."""

    timestamp: int
    generator: str = "flashflow"
    version: str = "1.0"
    lines: dict[str, BandwidthLine] = field(default_factory=dict)

    def add(self, line: BandwidthLine) -> None:
        self.lines[line.fingerprint] = line

    def __len__(self) -> int:
        return len(self.lines)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.lines

    def weights(self) -> dict[str, float]:
        return {fp: line.bw for fp, line in self.lines.items()}

    def capacities(self) -> dict[str, float]:
        return {
            fp: line.capacity_bps
            for fp, line in self.lines.items()
            if line.capacity_bps is not None
        }

    def serialize(self) -> str:
        header = (
            f"version={self.version} generator={self.generator} "
            f"timestamp={self.timestamp}"
        )
        body = "\n".join(
            self.lines[fp].serialize() for fp in sorted(self.lines)
        )
        return header + ("\n" + body if body else "") + "\n"

    @classmethod
    def parse(cls, text: str) -> "BandwidthFile":
        rows = [line for line in text.splitlines() if line.strip()]
        if not rows:
            raise ConfigurationError("empty bandwidth file")
        header = dict(
            part.split("=", 1) for part in rows[0].split() if "=" in part
        )
        if "timestamp" not in header:
            raise ConfigurationError("bandwidth file missing timestamp")
        try:
            timestamp = int(header["timestamp"])
        except ValueError:
            raise ConfigurationError(
                f"bandwidth file timestamp {header['timestamp']!r} "
                f"is not an integer"
            ) from None
        bwfile = cls(
            timestamp=timestamp,
            generator=header.get("generator", "unknown"),
            version=header.get("version", "1.0"),
        )
        for row in rows[1:]:
            line = BandwidthLine.parse(row)
            if line.fingerprint in bwfile.lines:
                # Silent last-write-wins would let a corrupt (or tampered)
                # file drop relays without a trace; daemons republishing
                # parsed files must round-trip exactly.
                raise ConfigurationError(
                    f"duplicate fingerprint {line.fingerprint!r} "
                    f"in bandwidth file"
                )
            bwfile.add(line)
        return bwfile

    @classmethod
    def from_estimates(
        cls, estimates: dict[str, float], timestamp: int = 0,
        generator: str = "flashflow",
    ) -> "BandwidthFile":
        """Build a file where weights are the capacity estimates themselves.

        FlashFlow's weights are proportional to measured capacity; Tor
        convention expresses bw in KiB/s-ish units, but only relative
        weight matters for load balancing, so we keep bit/s.
        """
        bwfile = cls(timestamp=timestamp, generator=generator)
        for fp, capacity in estimates.items():
            bwfile.add(
                BandwidthLine(
                    fingerprint=fp,
                    bw=capacity,
                    capacity_bps=capacity,
                    measured_at=timestamp,
                )
            )
        return bwfile
