"""Multi-BWAuth aggregation (paper §4, §5).

Each DirAuth trusts one BWAuth; the DirAuths put the **median** of the
BWAuths' measurements into the consensus. The median is what defeats
selective-capacity relays: a relay that shows high capacity during fewer
than half of the (independently, secretly scheduled) measurements cannot
move its median (paper §5).
"""

from __future__ import annotations

import statistics

from repro.errors import ProtocolError
from repro.tornet.authority import build_consensus
from repro.tornet.consensus import Consensus


def aggregate_bwauth_votes(
    votes: dict[str, dict[str, float]], min_votes: int | None = None
) -> dict[str, float]:
    """Median-aggregate per-BWAuth capacity votes.

    ``votes`` maps bwauth name -> {fingerprint -> capacity estimate}. A
    relay needs measurements from a majority of BWAuths (Tor's rule for
    using new relays, paper §2) unless ``min_votes`` overrides it.
    """
    if not votes:
        raise ProtocolError("no BWAuth votes to aggregate")
    needed = (len(votes) // 2 + 1) if min_votes is None else min_votes
    by_relay: dict[str, list[float]] = {}
    for bwauth_votes in votes.values():
        for fingerprint, value in bwauth_votes.items():
            by_relay.setdefault(fingerprint, []).append(value)
    return {
        fingerprint: float(statistics.median(values))
        for fingerprint, values in by_relay.items()
        if len(values) >= needed
    }


def consensus_from_votes(
    votes: dict[str, dict[str, float]],
    valid_after: int = 0,
    flags: dict[str, frozenset[str]] | None = None,
    min_votes: int | None = None,
) -> Consensus:
    """Build a consensus whose weights are the aggregated capacities."""
    needed = (len(votes) // 2 + 1) if min_votes is None else min_votes
    return build_consensus(
        valid_after=valid_after,
        bwauth_weights=votes,
        flags=flags,
        min_votes=needed,
    )
