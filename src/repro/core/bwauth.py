"""The FlashFlow Bandwidth Authority (paper §4.2).

A BWAuth coordinates its measurement team:

- *measuring measurers*: estimate each measurer's forwarding capacity with
  concurrent bidirectional UDP iPerf against the rest of the team (a lower
  bound is fine -- underestimates only slow the campaign);
- *measuring old relays*: allocate ``f * z0`` of team capacity (greedy),
  run a slot, accept ``z`` if ``z < sum(a_i)(1 - eps1)/m``, otherwise set
  ``z0 = max(z, 2 z0)`` (guaranteeing at least a doubling) and retry;
- *measuring new relays*: same, seeded with the 75th-percentile measured
  capacity among relays over the past month.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.allocation import (
    MeasurerAssignment,
    allocate_capacity,
    total_allocated,
)
from repro.core.engine import (
    MeasurementEngine,
    MeasurementNoise,
    MeasurementOutcome,
    MeasurementSpec,
)
from repro.core.measurer import Measurer
from repro.core.messages import SigningIdentity
from repro.core.params import FlashFlowParams
from repro.errors import AllocationError, MeasurementFailure
from repro.netsim.iperf import iperf_many_to_one
from repro.netsim.latency import NetworkModel
from repro.tornet.relay import Relay


@dataclass
class RelayEstimate:
    """The conclusion of measuring one relay (possibly several slots)."""

    fingerprint: str
    capacity: float
    rounds: int
    conclusive: bool
    outcomes: list[MeasurementOutcome] = field(default_factory=list)
    failed: bool = False
    failure_reason: str | None = None

    @property
    def slots_used(self) -> int:
        return len(self.outcomes)


class FlashFlowAuthority:
    """One BWAuth and its measurement team."""

    def __init__(
        self,
        name: str,
        team: list[Measurer],
        params: FlashFlowParams | None = None,
        network: NetworkModel | None = None,
        seed: int = 0,
    ):
        if not team:
            raise AllocationError("a BWAuth needs at least one measurer")
        self.name = name
        self.team = list(team)
        self.params = params or FlashFlowParams()
        self.network = network
        self.seed = seed
        self.identity = SigningIdentity(name)
        #: fingerprint -> last accepted capacity estimate (bit/s).
        self.estimates: dict[str, float] = {}
        #: The execution engine all of this authority's measurements --
        #: single-relay and campaign -- run through.
        self.engine = MeasurementEngine(
            params=self.params, network=self.network
        )

    # ------------------------------------------------------------------
    # Measuring measurers (paper §4.2)
    # ------------------------------------------------------------------

    def measure_measurers(self, duration: int = 60) -> dict[str, float]:
        """Estimate each measurer's capacity with team-wide UDP iPerf.

        Requires a network model containing the team hosts. Each measurer
        is saturated by all others simultaneously for ``duration`` seconds;
        the estimate is the median per-second sum. With fewer than two
        measurers (nothing to exchange traffic with), the link rate is the
        only available bound and is used directly.
        """
        results = {}
        for i, measurer in enumerate(self.team):
            others = [m.host.name for m in self.team if m.name != measurer.name]
            if self.network is None or not others:
                estimate = measurer.host.link_capacity
            else:
                estimate = iperf_many_to_one(
                    self.network,
                    target=measurer.host.name,
                    sources=others,
                    duration=duration,
                    seed=self.seed + i,
                ).median_bits_per_sec
            measurer.measured_capacity = min(
                estimate, measurer.host.link_capacity
            )
            results[measurer.name] = measurer.measured_capacity
        return results

    def team_capacity(self) -> float:
        return sum(m.capacity for m in self.team)

    # ------------------------------------------------------------------
    # Measuring a relay (paper §4.2)
    # ------------------------------------------------------------------

    def measure_relay(
        self,
        target: Relay,
        initial_estimate: float | None = None,
        target_location: str | None = None,
        background_demand: float | Callable[[int], float] = 0.0,
        period_index: int = 0,
        max_rounds: int = 10,
        noise: MeasurementNoise | None = None,
        enforce_admission: bool = False,
        seed_offset: int = 0,
    ) -> RelayEstimate:
        """Measure ``target`` to a conclusive capacity estimate.

        ``initial_estimate`` is the existing estimate ``z0`` for an old
        relay; ``None`` marks a new relay, seeded from
        ``params.new_relay_seed`` (the 75th-percentile capacity, §4.2).

        ``enforce_admission`` applies the one-measurement-per-period rule;
        the retry loop itself is considered a single logical measurement,
        so admission is checked once up front when enabled.
        """
        params = self.params
        z0 = initial_estimate if initial_estimate is not None else params.new_relay_seed
        if z0 <= 0:
            raise MeasurementFailure(
                "capacity guess must be positive", target.fingerprint
            )

        if enforce_admission and not target.accept_measurement(
            self.name, period_index
        ):
            return RelayEstimate(
                fingerprint=target.fingerprint,
                capacity=0.0,
                rounds=0,
                conclusive=False,
                failed=True,
                failure_reason="relay refused: already measured this period",
            )

        outcomes: list[MeasurementOutcome] = []
        for round_index in range(max_rounds):
            required = min(params.allocation_factor * z0, self.team_capacity())
            capped = required < params.allocation_factor * z0
            assignments = allocate_capacity(self.team, required)
            outcome = self.engine.run(
                MeasurementSpec(
                    target=target,
                    assignments=assignments,
                    params=params,
                    network=self.network,
                    target_location=target_location,
                    background_demand=background_demand,
                    seed=self.seed + seed_offset + round_index,
                    bwauth_id=self.name,
                    period_index=period_index,
                    enforce_admission=False,
                    noise=noise,
                )
            )
            outcomes.append(outcome)

            if outcome.failed:
                return RelayEstimate(
                    fingerprint=target.fingerprint,
                    capacity=0.0,
                    rounds=round_index + 1,
                    conclusive=False,
                    outcomes=outcomes,
                    failed=True,
                    failure_reason=outcome.failure_reason,
                )

            z = outcome.estimate
            threshold = params.acceptance_threshold(total_allocated(assignments))
            if z < threshold or capped:
                # Accept: z is small enough relative to the allocated
                # capacity that it must be close to the true capacity --
                # or the team is already fully committed (nothing more to
                # allocate, take the best available answer).
                self.estimates[target.fingerprint] = z
                return RelayEstimate(
                    fingerprint=target.fingerprint,
                    capacity=z,
                    rounds=round_index + 1,
                    conclusive=not capped,
                    outcomes=outcomes,
                )
            z0 = max(z, 2.0 * z0)

        return RelayEstimate(
            fingerprint=target.fingerprint,
            capacity=outcomes[-1].estimate,
            rounds=max_rounds,
            conclusive=False,
            outcomes=outcomes,
            failed=True,
            failure_reason="estimate did not converge within max_rounds",
        )
