"""FlashFlow protocol parameters (paper §6.1, Appendix E).

The paper derives its defaults experimentally:

- ``s`` = 160 measurement sockets across the team (Appendix E.1: the
  count at which the slowest host stops improving),
- ``m`` = 2.25 measurer-capacity multiplier (Appendix E.2: the smallest
  multiplier that avoids results below 80% of ground truth),
- ``t`` = 30 s measurement slots with the median per-second throughput as
  the result (Appendix E.3),
- ``eps1`` = 0.20, ``eps2`` = 0.05 error bounds (Appendix E.5),
- ``r`` = 0.25 background-traffic ratio (§6.2: bounds malicious inflation
  to 1/(1-r) = 1.33 while letting most relays keep serving clients),
- ``p_check`` = 1e-5 echo-cell verification probability (§4.1),
- ``period`` = 24 h measurement period (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import DAY, mbit


@dataclass(frozen=True)
class FlashFlowParams:
    """All FlashFlow parameters, with paper defaults."""

    #: Total TCP measurement sockets across all measurers (Appendix E.1).
    n_sockets: int = 160
    #: Measurer-capacity multiplier m (Appendix E.2).
    multiplier: float = 2.25
    #: Measurement slot duration t, seconds (Appendix E.3).
    slot_seconds: int = 30
    #: Lower error bound eps1 (estimates above (1-eps1)x, Appendix E.5).
    epsilon1: float = 0.20
    #: Upper error bound eps2 (estimates below (1+eps2)x).
    epsilon2: float = 0.05
    #: Maximum normal-traffic ratio r during measurement (§4.1/§6.2).
    ratio: float = 0.25
    #: Per-cell verification sampling probability p (§4.1).
    p_check: float = 1e-5
    #: Measurement period length, seconds (§4.3).
    period_seconds: int = DAY
    #: Capacity estimate seed for never-seen relays: the 75th-percentile
    #: measured capacity over the past month (§4.2); the paper's July 2019
    #: value was 51 Mbit/s.
    new_relay_seed: float = mbit(51)
    #: Execution backend for batched measurement runs
    #: (:mod:`repro.kernel.backends`): ``"serial"``, ``"thread"``,
    #: ``"process"``, ``"vector"``, or ``"auto"``. ``None`` defers to the
    #: ``FLASHFLOW_KERNEL_BACKEND`` environment variable, then ``auto``
    #: (the vectorized in-process walk). Every backend produces
    #: bit-identical estimates; this only selects how the work is run.
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.n_sockets <= 0:
            raise ConfigurationError("need at least one measurement socket")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier m must be >= 1")
        if self.slot_seconds <= 0:
            raise ConfigurationError("slot duration must be positive")
        if not 0 <= self.epsilon1 < 1:
            raise ConfigurationError("eps1 must be in [0, 1)")
        if self.epsilon2 < 0:
            raise ConfigurationError("eps2 must be >= 0")
        if not 0 <= self.ratio < 1:
            raise ConfigurationError("ratio r must be in [0, 1)")
        if not 0 <= self.p_check <= 1:
            raise ConfigurationError("p_check must be a probability")
        if self.period_seconds < self.slot_seconds:
            raise ConfigurationError("period must hold at least one slot")
        if self.kernel_backend is not None and (
            not isinstance(self.kernel_backend, str) or not self.kernel_backend
        ):
            raise ConfigurationError(
                "kernel_backend must be a backend name or None"
            )

    @property
    def allocation_factor(self) -> float:
        """f = m (1 + eps2) / (1 - eps1) (paper §4.2).

        With the paper defaults this is 2.25 * 1.05 / 0.80 = 2.953; §7
        quotes 2.84 after rounding intermediate values, so both are within
        the protocol's tolerance. We use the exact formula.
        """
        return self.multiplier * (1.0 + self.epsilon2) / (1.0 - self.epsilon1)

    @property
    def inflation_bound(self) -> float:
        """Maximum estimate inflation for a lying relay: 1/(1-r) (§5)."""
        return 1.0 / (1.0 - self.ratio)

    @property
    def slots_per_period(self) -> int:
        return self.period_seconds // self.slot_seconds

    def acceptance_threshold(self, total_allocated: float) -> float:
        """Accept estimate z if z < sum(a_i) (1 - eps1) / m (paper §4.2)."""
        return total_allocated * (1.0 - self.epsilon1) / self.multiplier

    def accuracy_interval(self, true_capacity: float) -> tuple[float, float]:
        """The ((1-eps1)x, (1+eps2)x) interval an accurate estimate lands in."""
        return (
            (1.0 - self.epsilon1) * true_capacity,
            (1.0 + self.epsilon2) * true_capacity,
        )
