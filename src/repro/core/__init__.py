"""FlashFlow: the paper's primary contribution.

A FlashFlow deployment is a set of *measurement teams*, each coordinated by
a Bandwidth Authority (BWAuth). A team actively saturates a target relay
with measurement traffic from multiple measurers at once, while the relay
continues to forward a bounded fraction ``r`` of normal client traffic.
Because the relay must actually receive, decrypt, and return measurement
cells -- with contents spot-checked at random -- its demonstrated capacity
cannot be faked, bounding a malicious relay's inflation to ``1/(1-r)``
(1.33x at the default r = 0.25).

Public API highlights:

- :class:`FlashFlowParams` -- all protocol parameters with paper defaults,
- :class:`Measurer` / :func:`allocate_capacity` -- team modelling,
- :class:`MeasurementEngine` -- the batched, parallel execution core
  (precomputed per-assignment invariants, ``run_many`` concurrency, the
  analytic fast path),
- :func:`run_measurement` -- one authenticated measurement slot,
- :class:`FlashFlowAuthority` -- the BWAuth measurement loop (old/new
  relays, retry-with-doubling),
- :class:`PeriodSchedule` -- the seeded randomized measurement schedule,
- :func:`measure_network` -- a full measurement campaign,
- :class:`BandwidthFile` -- the output consumed by the DirAuths,
- :func:`aggregate_bwauth_votes` -- median aggregation across BWAuths.
"""

from repro.core.allocation import (
    MeasurerAssignment,
    allocate_capacity,
    allocate_evenly,
)
from repro.core.bwauth import FlashFlowAuthority, RelayEstimate
from repro.core.deployment import Deployment, PeriodRecord
from repro.core.engine import (
    MeasurementEngine,
    MeasurementNoise,
    MeasurementSpec,
)
from repro.core.bwfile import BandwidthFile, BandwidthLine
from repro.core.aggregation import aggregate_bwauth_votes
from repro.core.measurement import MeasurementOutcome, run_measurement
from repro.core.measurer import Measurer, MeasuringProcess
from repro.core.messages import MessageType, ProtocolMessage, SigningIdentity
from repro.core.netmeasure import CampaignResult, measure_network
from repro.core.params import FlashFlowParams
from repro.core.schedule import PeriodSchedule, greedy_pack_slots
from repro.core.session import MeasurementSession, SessionTranscript
from repro.core.verification import EchoVerifier, detection_probability

__all__ = [
    "BandwidthFile",
    "Deployment",
    "MeasurementSession",
    "PeriodRecord",
    "SessionTranscript",
    "allocate_evenly",
    "BandwidthLine",
    "CampaignResult",
    "EchoVerifier",
    "FlashFlowAuthority",
    "FlashFlowParams",
    "MeasurementEngine",
    "MeasurementNoise",
    "MeasurementOutcome",
    "MeasurementSpec",
    "Measurer",
    "MeasurerAssignment",
    "MeasuringProcess",
    "MessageType",
    "PeriodSchedule",
    "ProtocolMessage",
    "RelayEstimate",
    "SigningIdentity",
    "aggregate_bwauth_votes",
    "allocate_capacity",
    "detection_probability",
    "greedy_pack_slots",
    "measure_network",
    "run_measurement",
]
