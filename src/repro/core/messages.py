"""Authenticated coordination protocol (paper §4.1).

"A BWAuth initiates a single measurement by creating an authenticated
connection to each measurer and to the target relay. Authentication is
performed using the public key of the BWAuth, which we assume is
distributed in the Tor network consensus. The BWAuth sends the target the
public keys of each measurer involved in the measurement."

Identities sign with Schnorr signatures over the RFC 3526 2048-bit safe
prime (a real asymmetric scheme, dependency-free). Messages carry a type,
sender, monotonically increasing nonce (replay protection), a payload dict,
and a signature over the canonical serialisation.
"""

from __future__ import annotations

import enum
import hashlib
import json
import secrets
from dataclasses import dataclass, field

from repro.errors import AuthenticationError, ProtocolError
from repro.tornet.relaycrypto import MODP_2048_PRIME, MODP_GENERATOR

#: Order of the quadratic-residue subgroup of the safe-prime group.
GROUP_ORDER = (MODP_2048_PRIME - 1) // 2
#: Generator of the subgroup (g^2 is always a quadratic residue).
SUBGROUP_GENERATOR = pow(MODP_GENERATOR, 2, MODP_2048_PRIME)


def _hash_to_int(*parts: bytes) -> int:
    digest = hashlib.sha256(b"||".join(parts)).digest()
    return int.from_bytes(digest, "big") % GROUP_ORDER


class SigningIdentity:
    """A Schnorr keypair used by BWAuths and measurers."""

    def __init__(self, name: str, private: int | None = None):
        self.name = name
        self._private = (
            private if private is not None else secrets.randbelow(GROUP_ORDER - 1) + 1
        )
        self.public = pow(SUBGROUP_GENERATOR, self._private, MODP_2048_PRIME)

    def sign(self, message: bytes) -> tuple[int, int]:
        """Produce a Schnorr signature (e, s) over ``message``."""
        k = secrets.randbelow(GROUP_ORDER - 1) + 1
        r = pow(SUBGROUP_GENERATOR, k, MODP_2048_PRIME)
        e = _hash_to_int(r.to_bytes(256, "big"), message)
        s = (k + self._private * e) % GROUP_ORDER
        return (e, s)

    @staticmethod
    def verify(public: int, message: bytes, signature: tuple[int, int]) -> bool:
        """Check a Schnorr signature against a public key."""
        e, s = signature
        if not (0 <= e < GROUP_ORDER and 0 <= s < GROUP_ORDER):
            return False
        # g^s = r * y^e  =>  r = g^s * y^-e
        gv = pow(SUBGROUP_GENERATOR, s, MODP_2048_PRIME)
        yv = pow(public, GROUP_ORDER - e, MODP_2048_PRIME)
        r = (gv * yv) % MODP_2048_PRIME
        return _hash_to_int(r.to_bytes(256, "big"), message) == e


class MessageType(enum.Enum):
    """Coordination message types in a measurement's lifecycle."""

    #: BWAuth -> relay: announce measurement, list measurer public keys.
    MEASUREMENT_ANNOUNCE = "announce"
    #: BWAuth -> measurer: capacity allocation and socket share.
    MEASURER_INSTRUCT = "instruct"
    #: Relay -> BWAuth: accept (or refuse -- once per period) the measurement.
    RELAY_ACCEPT = "accept"
    RELAY_REFUSE = "refuse"
    #: Measurer -> BWAuth: per-second measurement bytes x_i^j.
    MEASURER_REPORT = "measurer-report"
    #: Relay -> BWAuth: per-second normal-traffic bytes y_j.
    RELAY_REPORT = "relay-report"
    #: Measurer -> BWAuth: a sampled echo cell failed its content check.
    VERIFY_FAILURE = "verify-failure"
    #: BWAuth -> all: measurement over (normal end or early abort).
    MEASUREMENT_END = "end"


@dataclass
class ProtocolMessage:
    """One signed coordination message."""

    msg_type: MessageType
    sender: str
    nonce: int
    payload: dict
    signature: tuple[int, int] | None = None

    def canonical_bytes(self) -> bytes:
        body = {
            "type": self.msg_type.value,
            "sender": self.sender,
            "nonce": self.nonce,
            "payload": self.payload,
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()

    def signed_by(self, identity: SigningIdentity) -> "ProtocolMessage":
        if identity.name != self.sender:
            raise ProtocolError("identity does not match message sender")
        self.signature = identity.sign(self.canonical_bytes())
        return self

    def verify(self, public_key: int) -> None:
        if self.signature is None:
            raise AuthenticationError("message is unsigned")
        if not SigningIdentity.verify(
            public_key, self.canonical_bytes(), self.signature
        ):
            raise AuthenticationError(
                f"bad signature on {self.msg_type.value} from {self.sender}"
            )


class MessageChannel:
    """An authenticated, replay-protected message stream from one sender."""

    def __init__(self, sender: str, public_key: int):
        self.sender = sender
        self.public_key = public_key
        self._last_nonce = -1

    def receive(self, message: ProtocolMessage) -> ProtocolMessage:
        """Verify signature, sender, and nonce monotonicity."""
        if message.sender != self.sender:
            raise AuthenticationError(
                f"message from {message.sender!r} on {self.sender!r} channel"
            )
        message.verify(self.public_key)
        if message.nonce <= self._last_nonce:
            raise AuthenticationError(
                f"replayed or out-of-order nonce {message.nonce}"
            )
        self._last_nonce = message.nonce
        return message
