"""Continuous multi-period operation (paper §4.3 / §5).

A :class:`Deployment` runs a BWAuth across successive 24-hour measurement
periods: each period re-measures every known relay (old relays first,
using the previous period's estimates as z0), folds in newly appeared
relays FCFS, ages out relays unseen for a month (they become "new"
again), and publishes a bandwidth file per period.

This is the loop the paper's security arguments lean on: relays are
re-measured every period, so a malicious relay "can only reduce its
capacity until the next period".

The period's measurement campaign runs through the scenario API
(:class:`repro.api.Campaign`); multi-period scenarios
(``Scenario(periods=N)``) drive this class's prior-carryover and aging
bookkeeping (:meth:`priors_for` / :meth:`record_period`) directly while
streaming per-round events, and :meth:`run_period` remains the
single-period entry point with its historical signature and
bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.bwauth import FlashFlowAuthority
from repro.core.bwfile import BandwidthFile
from repro.core.netmeasure import CampaignResult, run_campaign
from repro.tornet.network import TorNetwork
from repro.units import DAY

#: Estimates older than this many periods are no longer trusted: the
#: relay is treated as new again (paper §4.2: "were last measured so
#: long ago (e.g., a month)").
ESTIMATE_MAX_AGE_PERIODS = 30


@dataclass
class PeriodRecord:
    """One period's outputs."""

    period_index: int
    campaign: CampaignResult
    bwfile: BandwidthFile

    @property
    def estimates(self) -> dict[str, float]:
        return self.campaign.estimates


@dataclass
class Deployment:
    """A BWAuth operating over consecutive measurement periods."""

    authority: FlashFlowAuthority
    full_simulation: bool = True
    #: fingerprint -> (estimate bits/s, period last measured).
    _history: dict[str, tuple[float, int]] = field(default_factory=dict)
    periods: list[PeriodRecord] = field(default_factory=list)
    #: Periods completed before this object existed (checkpoint/resume:
    #: a restored deployment resumes period numbering where the snapshot
    #: left off without carrying the old periods' full records).
    completed_before: int = 0

    @property
    def current_period(self) -> int:
        return self.completed_before + len(self.periods)

    def history_snapshot(self) -> dict[str, tuple[float, int]]:
        """A copy of the prior-estimate history (for checkpointing)."""
        return dict(self._history)

    @classmethod
    def restore(
        cls,
        authority: FlashFlowAuthority,
        history: dict[str, tuple[float, int]],
        completed_periods: int,
        full_simulation: bool = True,
    ) -> "Deployment":
        """Rebuild a deployment from checkpointed history.

        ``history`` is a prior :meth:`history_snapshot`;
        ``completed_periods`` is how many periods the snapshot had
        recorded. :meth:`priors_for`, aging, and period numbering then
        behave exactly as if the original deployment had kept running.
        """
        return cls(
            authority=authority,
            full_simulation=full_simulation,
            _history={fp: (float(e), int(p)) for fp, (e, p) in history.items()},
            completed_before=int(completed_periods),
        )

    def known_estimates(self) -> dict[str, float]:
        """Estimates still fresh enough to be used as priors."""
        now = self.current_period
        return {
            fp: estimate
            for fp, (estimate, measured_at) in self._history.items()
            if now - measured_at <= ESTIMATE_MAX_AGE_PERIODS
        }

    def priors_for(self, network: TorNetwork) -> dict[str, float]:
        """Usable priors for the relays currently in ``network``."""
        return {
            fp: estimate
            for fp, estimate in self.known_estimates().items()
            if fp in network
        }

    def record_period(self, campaign: CampaignResult) -> PeriodRecord:
        """Fold one finished campaign into history; publish its bwfile."""
        period_index = self.current_period
        for fp, estimate in campaign.estimates.items():
            self._history[fp] = (estimate, period_index)
        bwfile = BandwidthFile.from_estimates(
            campaign.estimates,
            timestamp=period_index * DAY,
            generator=self.authority.name,
        )
        record = PeriodRecord(
            period_index=period_index, campaign=campaign, bwfile=bwfile
        )
        self.periods.append(record)
        return record

    def run_period(
        self,
        network: TorNetwork,
        background_demand: float | dict[str, float] | Callable[[int], float] = 0.0,
    ) -> PeriodRecord:
        """Measure every relay currently in ``network`` once.

        Thin wrapper over the scenario API: for streamed events or
        execution knobs (kernel backend, worker cap), run a
        ``Scenario(periods=N)`` through :class:`repro.api.Campaign`
        instead -- results are bit-identical.
        """
        report = run_campaign(
            network,
            self.authority,
            prior_estimates=self.priors_for(network),
            background_demand=background_demand,
            full_simulation=self.full_simulation,
        )
        return self.record_period(report.result)

    def estimate_age(self, fingerprint: str) -> int | None:
        """Completed periods since ``fingerprint`` was last measured.

        0 means it was measured in the most recent period; None = never.
        """
        if fingerprint not in self._history:
            return None
        last_completed = self.current_period - 1
        return last_completed - self._history[fingerprint][1]
