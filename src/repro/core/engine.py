"""The batched, parallel measurement engine (paper §4.1, §4.3, §7).

This module is the execution core behind every simulated FlashFlow
measurement. The original hot path re-derived per-socket TCP caps and
noise socket-by-socket, second-by-second in pure Python; the engine
splits a measurement into

1. a **prepare** phase that computes all per-assignment invariants once
   per measurement -- resolved network paths, per-second TCP ramp
   profiles (:func:`repro.netsim.tcp.tcp_ramp_profile`), socket shares,
   the measurer-side socket-efficiency factor, and the binding
   link/allocation caps -- collapsing everything that does not change
   second-to-second into one effective-cap array per assignment; and
2. an **execute** phase that draws all per-second supply noise in a
   single RNG pass and walks the slot with nothing but a handful of
   multiply-adds per second plus the stateful relay and verifier calls.

Both phases consume the measurement's forked RNG stream
(:func:`repro.rng.fork`) in exactly the order the historical serial loop
did, so estimates are bit-identical to pre-engine results, and
:meth:`MeasurementEngine.run_many` can execute independent measurements
concurrently with any worker count while producing the same bits as
serial execution. Batches of independent specs are lowered by
:mod:`repro.kernel` into picklable compiled measurements whose honest-
relay per-second walk runs as numpy array arithmetic on a pluggable
backend (``serial``/``thread``/``process``/``vector``); the stateful
per-second path below (:meth:`MeasurementEngine.execute`) remains the
reference semantics and the fallback for adversarial relay behaviours
and transcript sessions.

The engine also hosts the **analytic fast path**
(:meth:`MeasurementEngine.analytic_estimate`) used by campaign code that
only cares about slot accounting, and shares one Diffie-Hellman circuit
key across verifiers (the handshake is pure simulation overhead --
estimates and forgery detection are independent of the key bits; pass
``reuse_circuit_keys=False`` to recover a fresh handshake per slot).
"""

from __future__ import annotations

import math
import statistics
import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.allocation import MeasurerAssignment, total_allocated
from repro.core.measurer import measurer_socket_efficiency
from repro.core.params import FlashFlowParams
from repro.core.verification import EchoVerifier
from repro.errors import MeasurementFailure, VerificationFailure
from repro.netsim.latency import NetworkModel, Path, internet_loss_for_rtt
from repro.netsim.socketbuf import KernelConfig
from repro.netsim.tcp import tcp_ramp_profile
from repro.rng import fork
from repro.tornet.relay import Relay
from repro.tornet.relaycrypto import CircuitKey, establish_circuit_key
from repro.units import bits_to_bytes
from repro.workers import default_worker_count

#: Median Internet RTT used when no explicit topology is given
#: (the tmodel dataset median the paper cites in Appendix D).
DEFAULT_RTT_SECONDS = 0.118


@dataclass(frozen=True)
class MeasurementNoise:
    """Stochastic environment knobs for a measurement.

    ``target_env_mean``/``target_env_std`` model cross-traffic and
    time-of-day variation at the target host over a whole measurement;
    per-second relay jitter lives in :class:`repro.tornet.relay.Relay`.
    The defaults reproduce the paper's Figure 6 spread (95% of
    measurements within 11% of ground truth) on dedicated Internet hosts;
    the Shadow experiments use a lower mean (shared congested topology).
    """

    target_env_mean: float = 1.0
    target_env_std: float = 0.035
    target_env_min: float = 0.85
    target_env_max: float = 1.03
    #: Per-second multiplicative noise on each measurer's supply.
    supply_noise_std: float = 0.03


@dataclass
class MeasurementOutcome:
    """Result of one measurement slot."""

    #: Capacity estimate z = median(z_j), bit/s. Zero if the slot failed.
    estimate: float
    #: Per-second measurement traffic x_j, bit/s.
    per_second_measurement: list[float] = field(default_factory=list)
    #: Per-second normal traffic as reported by the relay (bit/s).
    per_second_background_reported: list[float] = field(default_factory=list)
    #: Per-second normal traffic after the r-ratio clamp (bit/s).
    per_second_background_clamped: list[float] = field(default_factory=list)
    #: Per-second totals z_j (bit/s).
    per_second_total: list[float] = field(default_factory=list)
    #: Sum of the a_i allocated for this slot (bit/s).
    total_allocated: float = 0.0
    duration: int = 0
    failed: bool = False
    failure_reason: str | None = None
    cells_checked: int = 0

    def estimate_with_duration(self, seconds: int) -> float:
        """Re-aggregate as if the slot had lasted only ``seconds``.

        Used by the Appendix E.3 duration-strategy analysis: a 60-second
        run can be truncated to emulate 10/20/30-second median strategies.
        """
        if seconds <= 0:
            raise ValueError("duration must be positive")
        if not self.per_second_total:
            return 0.0
        window = self.per_second_total[: min(seconds, len(self.per_second_total))]
        return float(statistics.median(window))


def clamp_background(x_bits: float, y_bits: float, ratio: float) -> float:
    """The BWAuth's normal-traffic clamp: y <= x * r / (1 - r) (§4.1).

    ``y_bits`` is relay-controlled input (the claimed normal traffic), so
    a non-finite claim is rejected outright rather than multiplied or
    compared raw -- ``min(inf, 0 * r/(1-r))`` would quietly produce 0.0
    while ``inf`` could leak through any x > 0 comparison as NaN fodder
    downstream.
    """
    if ratio >= 1:
        raise ValueError("ratio must be < 1")
    if not math.isfinite(y_bits):
        raise ValueError(
            f"non-finite background report ({y_bits!r}): a relay's claimed "
            "normal traffic must be a finite byte count"
        )
    if ratio <= 0:
        return 0.0
    return min(y_bits, x_bits * ratio / (1.0 - ratio))


def socket_share_for(params: FlashFlowParams, n_active: int) -> int:
    """Each participating measurer's share of the ``s`` sockets (§4.1)."""
    return max(1, params.n_sockets // n_active)


def assignment_caps(
    path: Path,
    sender_kernel,
    target_kernel,
    duration: int,
    allocated: float,
    link_capacity: float,
    socket_share: int,
    quality: float,
    efficiency: float,
) -> list[float]:
    """One assignment's effective per-second supply caps.

    min(a_i, TCP ramp cap * sockets * quality, link) * socket efficiency
    -- everything about the assignment that does not change with the
    per-second noise draw. Pure (no RNG, no shared state): the kernel
    backends recompute it from picklable inputs in worker processes, and
    :meth:`MeasurementEngine.prepare` uses the same code in-process, so
    both paths produce bit-identical caps.
    """
    ramp = tcp_ramp_profile(path, sender_kernel, target_kernel, duration)
    return [
        min(allocated, per_socket * socket_share * quality, link_capacity)
        * efficiency
        for per_socket in ramp
    ]


def _resolve_path(
    network: NetworkModel | None,
    measurer_host: str,
    target_location: str | None,
    default_rtt: float,
) -> Path:
    if network is not None and target_location is not None:
        try:
            return network.path(measurer_host, target_location)
        except Exception:
            pass
    return Path(
        src=measurer_host,
        dst=target_location or "target",
        rtt_seconds=default_rtt,
        loss=internet_loss_for_rtt(default_rtt),
    )


@dataclass(frozen=True)
class MeasurementSpec:
    """Everything needed to run one measurement slot.

    A spec is a pure description: building one draws no randomness and
    touches no shared state, so lists of specs can be handed to
    :meth:`MeasurementEngine.run_many` for concurrent execution. Fields
    left ``None`` fall back to the engine's defaults.
    """

    target: Relay
    assignments: Sequence[MeasurerAssignment]
    params: FlashFlowParams | None = None
    network: NetworkModel | None = None
    target_location: str | None = None
    background_demand: float | Callable[[int], float] = 0.0
    duration: int | None = None
    seed: int = 0
    bwauth_id: str = "bwauth0"
    period_index: int = 0
    verify: bool = True
    enforce_admission: bool = True
    noise: MeasurementNoise | None = None
    default_rtt: float | None = None
    #: Optional :class:`repro.core.session.MeasurementSession` (or any
    #: object with a compatible ``record_second``) receiving signed
    #: per-second reports as the slot runs.
    session: object | None = None


@dataclass
class _AssignmentProfile:
    """Per-assignment invariants, precomputed once per measurement."""

    assignment: MeasurerAssignment
    #: Effective per-second supply cap: min(a_i, TCP cap * sockets *
    #: quality, link) * socket efficiency -- everything but the
    #: per-second noise draw.
    caps: list[float]


@dataclass
class _PlanInputs:
    """The stochastic half of a prepared measurement.

    Everything that must be resolved *in order* on the measurement's
    forked RNG stream (environment factor, per-assignment path
    qualities) plus the admission decision -- and nothing that is pure
    computation. The kernel compiler consumes these directly so the
    heavy pure half (TCP ramp profiles) can run in worker processes.
    """

    spec: MeasurementSpec
    params: FlashFlowParams
    noise: MeasurementNoise
    duration: int
    rng: object
    env: float
    socket_share: int
    efficiency: float
    target_kernel: KernelConfig
    #: (assignment, resolved path, drawn quality) per active assignment.
    entries: list[tuple[MeasurerAssignment, Path, float]]
    total_allocated: float
    #: Early result (admission refusal); skips execution entirely.
    outcome: MeasurementOutcome | None = None


@dataclass(frozen=True)
class AnalyticInputs:
    """The gathered scalars behind one analytic estimate.

    ``capacity`` is the relay's ground-truth Tor capacity, ``allocated``
    the sum of the a_i in assignment order, ``multiplier`` the team's
    m. :meth:`MeasurementEngine.analytic_finish` (scalar) and the
    analytic kernel's array walk (one round at a time) consume the same
    three numbers, so both produce the same bits.
    """

    capacity: float
    allocated: float
    multiplier: float


@dataclass
class _Plan:
    """A prepared measurement, ready for the batched per-second walk."""

    spec: MeasurementSpec
    params: FlashFlowParams
    noise: MeasurementNoise
    duration: int
    rng: object
    env: float
    profiles: list[_AssignmentProfile]
    verifier: EchoVerifier | None
    bg_of: Callable[[int], float]
    total_allocated: float
    #: Early result (admission refusal); skips execution entirely.
    outcome: MeasurementOutcome | None = None


class MeasurementEngine:
    """Prepares and executes measurement slots, serially or in parallel.

    One engine instance is safe to share across threads: per-measurement
    state lives in the plan, and the only shared mutable is the lazily
    established circuit key, which is created under a lock and immutable
    afterwards.
    """

    def __init__(
        self,
        params: FlashFlowParams | None = None,
        network: NetworkModel | None = None,
        noise: MeasurementNoise | None = None,
        default_rtt: float = DEFAULT_RTT_SECONDS,
        max_workers: int | None = None,
        reuse_circuit_keys: bool = True,
    ):
        self.params = params
        self.network = network
        self.noise = noise
        self.default_rtt = default_rtt
        self.max_workers = max_workers
        self.reuse_circuit_keys = reuse_circuit_keys
        self._shared_key: CircuitKey | None = None
        self._key_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Circuit keys
    # ------------------------------------------------------------------

    def _verifier_key(self) -> CircuitKey | None:
        """One DH handshake per engine instead of per measurement.

        The 2048-bit modular exponentiations of
        :func:`establish_circuit_key` dominated the pre-engine profile
        while contributing nothing to the simulation: estimates and the
        (1-p)^k forgery-detection bound are independent of the key bits.
        """
        if not self.reuse_circuit_keys:
            return None  # EchoVerifier runs its own handshake.
        if self._shared_key is None:
            with self._key_lock:
                if self._shared_key is None:
                    self._shared_key = establish_circuit_key()[0]
        return self._shared_key

    # ------------------------------------------------------------------
    # Prepare: per-measurement invariants
    # ------------------------------------------------------------------

    def prepare_inputs(self, spec: MeasurementSpec) -> _PlanInputs:
        """Resolve the spec's stochastic half.

        RNG draws happen in the exact order of the historical serial
        loop's setup phase: environment factor first, then one path
        quality per participating assignment. No pure computation (TCP
        ramps) happens here -- that is :meth:`finish_plan` (in-process)
        or a kernel backend (possibly in a worker process).
        """
        params = spec.params or self.params or FlashFlowParams()
        noise = spec.noise or self.noise or MeasurementNoise()
        network = spec.network if spec.network is not None else self.network
        default_rtt = (
            spec.default_rtt if spec.default_rtt is not None else self.default_rtt
        )
        duration = params.slot_seconds if spec.duration is None else spec.duration
        target = spec.target
        rng = fork(
            spec.seed,
            f"measurement-{spec.bwauth_id}-{target.fingerprint}"
            f"-{spec.period_index}",
        )

        active = [a for a in spec.assignments if a.participates]
        if not active:
            raise MeasurementFailure(
                "no measurer allocated any capacity", target.fingerprint
            )

        target_kernel = (
            target.host.kernel if target.host is not None else KernelConfig.default()
        )
        if spec.enforce_admission and not target.accept_measurement(
            spec.bwauth_id, spec.period_index
        ):
            return _PlanInputs(
                spec=spec, params=params, noise=noise, duration=duration,
                rng=rng, env=1.0, socket_share=1, efficiency=1.0,
                target_kernel=target_kernel, entries=[],
                total_allocated=total_allocated(list(spec.assignments)),
                outcome=MeasurementOutcome(
                    estimate=0.0,
                    total_allocated=total_allocated(list(spec.assignments)),
                    failed=True,
                    failure_reason="relay refused: already measured this period",
                ),
            )

        # Slot-constant behaviour decisions (the selective-capacity roll)
        # fire once per admitted measurement, before anything snapshots
        # capacity; both the stateful and compiled paths pass through
        # here, so behaviour RNG streams stay aligned by construction.
        target.behavior.begin_measurement(target)

        socket_share = socket_share_for(params, len(active))
        env = min(
            noise.target_env_max,
            max(
                noise.target_env_min,
                rng.gauss(noise.target_env_mean, noise.target_env_std),
            ),
        )

        efficiency = measurer_socket_efficiency(socket_share)
        entries = []
        for a in active:
            path = _resolve_path(
                network, a.measurer.host.name, spec.target_location, default_rtt
            )
            quality = (
                network.sample_path_quality(rng)
                if network is not None
                else max(0.45, min(1.0, rng.gauss(0.92, 0.10)))
            )
            entries.append((a, path, quality))

        return _PlanInputs(
            spec=spec, params=params, noise=noise, duration=duration,
            rng=rng, env=env, socket_share=socket_share,
            efficiency=efficiency, target_kernel=target_kernel,
            entries=entries,
            total_allocated=total_allocated(list(spec.assignments)),
        )

    def finish_plan(self, inputs: _PlanInputs) -> _Plan:
        """Do the pure half of preparation: ramps, caps, verifier."""
        spec = inputs.spec
        if inputs.outcome is not None:
            return _Plan(
                spec=spec, params=inputs.params, noise=inputs.noise,
                duration=inputs.duration, rng=inputs.rng, env=inputs.env,
                profiles=[], verifier=None, bg_of=lambda _t: 0.0,
                total_allocated=inputs.total_allocated,
                outcome=inputs.outcome,
            )

        profiles = []
        for a, path, quality in inputs.entries:
            # a_i is enforced by the processes' BandwidthRate; the TCP cap
            # by the path; the measurer's own link by its capacity;
            # managing many sockets costs measurer CPU.
            caps = assignment_caps(
                path,
                a.measurer.host.kernel,
                inputs.target_kernel,
                inputs.duration,
                a.allocated,
                a.measurer.host.link_capacity,
                inputs.socket_share,
                quality,
                inputs.efficiency,
            )
            profiles.append(_AssignmentProfile(assignment=a, caps=caps))

        verifier = (
            EchoVerifier(
                inputs.params.p_check,
                fork(spec.seed, f"verify-{spec.target.fingerprint}"),
                key=self._verifier_key(),
                payload_rng=fork(
                    spec.seed, f"verify-payload-{spec.target.fingerprint}"
                ),
            )
            if spec.verify
            else None
        )

        background = spec.background_demand
        bg_of = (
            background
            if callable(background)
            else (lambda _t, v=float(background): v)
        )

        return _Plan(
            spec=spec, params=inputs.params, noise=inputs.noise,
            duration=inputs.duration, rng=inputs.rng, env=inputs.env,
            profiles=profiles, verifier=verifier, bg_of=bg_of,
            total_allocated=inputs.total_allocated,
        )

    def prepare(self, spec: MeasurementSpec) -> _Plan:
        """Resolve the spec and precompute all per-assignment invariants."""
        return self.finish_plan(self.prepare_inputs(spec))

    # ------------------------------------------------------------------
    # Execute: batched per-second walk
    # ------------------------------------------------------------------

    def execute(self, plan: _Plan) -> MeasurementOutcome:
        """Walk the slot using the precomputed caps.

        All supply noise is drawn in a single pass up front (same stream
        positions as drawing inside the loop: the measurement RNG feeds
        nothing else once the plan exists); the per-second work is then
        one multiply-add per assignment plus the stateful relay report
        and echo-cell verification.
        """
        if plan.outcome is not None:
            return plan.outcome
        spec, params, noise = plan.spec, plan.params, plan.noise
        target, duration = spec.target, plan.duration
        profiles, verifier = plan.profiles, plan.verifier
        n_profiles = len(profiles)
        cap_arrays = [p.caps for p in profiles]

        gauss = plan.rng.gauss
        noise_std = noise.supply_noise_std
        draws = [
            max(0.3, gauss(1.0, noise_std))
            for _ in range(duration * n_profiles)
        ]
        # Relay jitter is pre-drawn for the whole slot too, so the relay's
        # RNG stream advances by exactly `duration` draws whether or not
        # verification ends the slot early -- the same consumption as the
        # compiled kernel walk, keeping both paths bit-aligned afterwards.
        relay_noise = target.draw_noise_series(duration)

        session = spec.session
        measurer_names = [p.assignment.measurer.name for p in profiles]

        xs: list[float] = []
        ys_raw: list[float] = []
        ys_clamped: list[float] = []
        zs: list[float] = []

        draw_index = 0
        for second in range(duration):
            supply_total = 0.0
            contributions: list[float] | None = [] if session is not None else None
            for caps in cap_arrays:
                part = caps[second] * draws[draw_index]
                draw_index += 1
                supply_total += part
                if contributions is not None:
                    contributions.append(part)

            report = target.measured_second(
                measurement_supply_bits=supply_total,
                background_demand_bits=plan.bg_of(second),
                ratio_r=params.ratio,
                n_measurement_sockets=params.n_sockets,
                external_factor=plan.env,
                noise=relay_noise[second],
            )
            x_bits = report.measurement_bytes * 8.0
            y_bits = report.background_reported_bytes * 8.0
            y_clamped = clamp_background(x_bits, y_bits, params.ratio)

            xs.append(x_bits)
            ys_raw.append(y_bits)
            ys_clamped.append(y_clamped)
            zs.append(x_bits + y_clamped)

            if session is not None and contributions is not None:
                # Received measurement bytes split by each measurer's
                # share of the offered supply.
                share = (
                    report.measurement_bytes / supply_total
                    if supply_total > 0
                    else 0.0
                )
                session.record_second(
                    second,
                    {
                        name: part * share
                        for name, part in zip(measurer_names, contributions)
                    },
                    report.background_reported_bytes,
                )

            if verifier is not None:
                try:
                    verifier.verify_second(target, bits_to_bytes(x_bits))
                except VerificationFailure as failure:
                    # The BWAuth ends the measurement early (paper §4.1).
                    return MeasurementOutcome(
                        estimate=0.0,
                        per_second_measurement=xs,
                        per_second_background_reported=ys_raw,
                        per_second_background_clamped=ys_clamped,
                        per_second_total=zs,
                        total_allocated=plan.total_allocated,
                        duration=second + 1,
                        failed=True,
                        failure_reason=str(failure),
                        cells_checked=verifier.cells_checked,
                    )

        return MeasurementOutcome(
            estimate=float(statistics.median(zs)),
            per_second_measurement=xs,
            per_second_background_reported=ys_raw,
            per_second_background_clamped=ys_clamped,
            per_second_total=zs,
            total_allocated=plan.total_allocated,
            duration=duration,
            cells_checked=verifier.cells_checked if verifier is not None else 0,
        )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(self, spec: MeasurementSpec) -> MeasurementOutcome:
        """Run one measurement slot."""
        return self.execute(self.prepare(spec))

    def run_many(
        self,
        specs: Sequence[MeasurementSpec],
        max_workers: int | None = None,
        backend: str | None = None,
        pipeline: bool | None = False,
        shards: int | None = None,
    ) -> list[MeasurementOutcome]:
        """Run independent measurements through the kernel.

        Every spec's randomness comes from its own forked stream (seed +
        per-measurement label) and every stateful object (target relay,
        verifier) is per-spec, so any backend and worker count --
        including 1 -- produces bit-identical outcomes in spec order.

        Specs are lowered to picklable :class:`repro.kernel.compile.\
CompiledMeasurement` objects and executed by a kernel backend
        (``serial``/``thread``/``process``/``vector``; see
        :mod:`repro.kernel.backends`). ``backend`` overrides the
        ``FlashFlowParams.kernel_backend`` / ``FLASHFLOW_KERNEL_BACKEND``
        selection. Specs the kernel cannot compile (adversarial relay
        behaviours, transcript sessions) run on the stateful
        :meth:`run` path, still in deterministic spec order.

        Specs sharing a target relay fall back to serial stateful
        execution entirely: the relay's token bucket and RNG are stateful
        and draw in slot order.

        ``pipeline`` overlaps the (stateful, main-thread) compile stream
        with worker execution on pool backends: ``True`` requests it,
        ``None`` enables it automatically where the backend supports
        streaming (``thread``/``process``), ``False`` (the default here)
        keeps the historical compile-everything-then-execute batch.
        Results are bit-identical either way -- compiled execution is
        pure, so only scheduling changes.

        ``shards`` partitions the compiled round into contiguous,
        balanced parts handed to the backend as its chunk boundaries
        (``ExecutionConfig(shards=)`` forwards here); the merge order is
        deterministic, so results stay bit-identical to unsharded runs.
        """
        specs = list(specs)
        if max_workers is None:
            max_workers = self.max_workers
        if max_workers is None:
            max_workers = default_worker_count()
        distinct_targets = len({id(s.target) for s in specs})
        if len(specs) <= 1 or distinct_targets < len(specs):
            from repro.obs.metrics import get_registry
            from repro.obs.trace import get_tracer

            # Whole-round stateful fallback (shared targets draw RNG in
            # slot order): counted so campaigns that silently lose
            # vectorization show up in metrics output.
            if len(specs) > 1:
                get_registry().counter("engine.stateful_rounds").inc()
            with get_tracer().span("round.stateful", n_specs=len(specs)):
                return [self.run(spec) for spec in specs]
        from repro.kernel import run_specs

        return run_specs(
            self,
            specs,
            backend=backend,
            max_workers=max_workers,
            pipeline=pipeline,
            shards=shards,
        )

    # ------------------------------------------------------------------
    # Analytic fast path (subsumes the old full_simulation=False branch)
    # ------------------------------------------------------------------

    def analytic_inputs(
        self,
        target: Relay,
        assignments: Sequence[MeasurerAssignment],
        params: FlashFlowParams | None = None,
    ) -> "AnalyticInputs":
        """Gather the analytic estimate's inputs (the prepare half).

        Mirrors the :meth:`prepare_inputs` / :meth:`finish_plan` split of
        the full-simulation path: this half touches live objects (relay,
        assignments, params fallback chain) and the finish half
        (:meth:`analytic_finish`) is pure arithmetic over the gathered
        scalars -- exactly what :mod:`repro.kernel.analytic` lowers into
        arrays for a whole round at once.
        """
        params = params or self.params or FlashFlowParams()
        return AnalyticInputs(
            capacity=target.true_capacity,
            allocated=total_allocated(list(assignments)),
            multiplier=params.multiplier,
        )

    @staticmethod
    def analytic_finish(inputs: "AnalyticInputs", wobble: float = 1.0) -> float:
        """The pure half: supply-limited wobbled true capacity."""
        return min(inputs.capacity * wobble, inputs.allocated / inputs.multiplier)

    def analytic_estimate(
        self,
        target: Relay,
        assignments: Sequence[MeasurerAssignment],
        params: FlashFlowParams | None = None,
        wobble: float = 1.0,
    ) -> float:
        """Closed-form estimate: supply-limited true capacity.

        The measurers can push ``sum(a_i) / m`` of goodput; an honest
        relay echoes up to its true capacity scaled by ``wobble`` (the
        caller's pre-drawn measurement-error factor). Used by campaign
        code where only accept/retry accounting matters, not per-second
        traffic. This is the stateful reference semantics; whole rounds
        of analytic estimates run vectorized through
        :func:`repro.kernel.analytic.run_analytic_round`, bit-identical
        to calling this in a loop.
        """
        return self.analytic_finish(
            self.analytic_inputs(target, assignments, params), wobble
        )


#: Process-wide engine used by the thin compatibility wrappers.
_default_engine: MeasurementEngine | None = None
_default_engine_lock = threading.Lock()


def default_engine() -> MeasurementEngine:
    """The shared engine behind :func:`repro.core.measurement.run_measurement`."""
    global _default_engine
    if _default_engine is None:
        with _default_engine_lock:
            if _default_engine is None:
                _default_engine = MeasurementEngine()
    return _default_engine
