"""Full-network measurement campaigns (paper §4.3, §7).

Runs one BWAuth's measurement of an entire network. Each campaign
*round* packs every waiting relay into consecutive t-second slots
greedily (largest first, the paper's efficiency scheduler); all
measurements of the round -- within a slot and across the round's
independent slots -- are then executed concurrently by the
:class:`repro.core.engine.MeasurementEngine` (``run_many``), which
lowers the round onto the vectorized measurement kernel
(:mod:`repro.kernel`: compiled per-second capacity series walked as
numpy arrays on a ``serial``/``thread``/``process``/``vector`` backend).
Per-measurement forked RNG streams make the results bit-identical to
serial stateful execution regardless of backend or worker count.
Outcomes are folded back in deterministic slot order; inconclusive
relays re-enter the next round with a doubled estimate.

Retries are *round-granular*: an inconclusive relay is re-measured after
the current round's remaining slots rather than squeezed into the next
slot's residual capacity (the pre-engine serial loop's behaviour). This
is what makes a round's slots mutually independent and concurrently
executable; the cost is that a campaign with retries may occupy a few
more slots, and per-measurement seeds (slot-index derived) shift for
retried relays. Estimates remain draws from the same distribution, and
for a fixed worker count the whole campaign is deterministic.

``full_simulation=False`` skips the per-second traffic loop and applies
the protocol's accept/retry logic against the engine's analytic
measurement model (:meth:`MeasurementEngine.analytic_estimate`); it is
used by the scheduling-efficiency benches where only slot counts matter.
The analytic wobble factors are pre-drawn serially in slot order, so the
analytic path is equally worker-count independent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.allocation import MeasurerAssignment, allocate_capacity, total_allocated
from repro.core.bwauth import FlashFlowAuthority
from repro.core.engine import MeasurementEngine, MeasurementNoise, MeasurementSpec
from repro.rng import fork
from repro.tornet.network import TorNetwork
from repro.tornet.relay import Relay


@dataclass
class CampaignResult:
    """Outcome of measuring a whole network once."""

    #: Slot duration of the schedule that produced this campaign; always
    #: populated from the authority's ``FlashFlowParams`` so
    #: ``seconds_elapsed``/``hours_elapsed`` cannot silently disagree
    #: with the schedule actually used.
    slot_seconds: int
    #: Accepted capacity estimates, bit/s.
    estimates: dict[str, float] = field(default_factory=dict)
    #: Relays that never produced an accepted estimate.
    failures: dict[str, str] = field(default_factory=dict)
    #: Number of t-second slots the campaign occupied.
    slots_elapsed: int = 0
    #: Individual measurements run (retries included).
    measurements_run: int = 0

    @property
    def seconds_elapsed(self) -> int:
        return self.slots_elapsed * self.slot_seconds

    @property
    def hours_elapsed(self) -> float:
        return self.seconds_elapsed / 3600.0


@dataclass
class _Job:
    """One scheduled measurement of a campaign round."""

    fingerprint: str
    z0: float
    rounds: int
    slot_index: int
    relay: Relay
    capped: bool
    assignments: list[MeasurerAssignment]
    background: float | Callable[[int], float]
    #: Pre-drawn analytic measurement-error factor (analytic mode only).
    wobble: float | None = None


def measure_network(
    network: TorNetwork,
    authority: FlashFlowAuthority,
    prior_estimates: dict[str, float] | None = None,
    background_demand: float | dict[str, float] | Callable[[int], float] = 0.0,
    max_rounds: int = 8,
    full_simulation: bool = True,
    noise: MeasurementNoise | None = None,
    analytic_error_std: float = 0.02,
    max_workers: int | None = None,
    engine: MeasurementEngine | None = None,
    backend: str | None = None,
) -> CampaignResult:
    """Measure every relay in ``network`` once (one measurement period).

    ``prior_estimates`` supplies z0 for old relays (fingerprint -> bit/s);
    relays absent from it are treated as new and seeded from
    ``params.new_relay_seed``. Old relays are scheduled before new ones
    (paper §4.3 priority). ``background_demand`` may be a constant, a
    callable of time, or a per-fingerprint dict (bit/s of client traffic
    present at each relay during its measurement).

    ``max_workers`` caps the engine's concurrency (``None`` = engine
    default, ``1`` = serial); ``backend`` selects the kernel execution
    backend (``serial``/``thread``/``process``/``vector``; ``None``
    defers to params/environment). The estimates are identical for every
    backend and worker count.
    """
    params = authority.params
    team = authority.team
    team_capacity = authority.team_capacity()
    prior = prior_estimates or {}
    result = CampaignResult(slot_seconds=params.slot_seconds)
    rng = fork(authority.seed, "campaign-analytic")
    if engine is None:
        engine = getattr(authority, "engine", None) or MeasurementEngine()

    old = [fp for fp in network.relays if fp in prior]
    new = [fp for fp in network.relays if fp not in prior]
    # Old relays first (guaranteed measurement), then new FCFS; within each
    # class, largest guess first to pack slots tightly.
    old.sort(key=lambda fp: prior[fp], reverse=True)
    queue: deque[tuple[str, float, int]] = deque(
        [(fp, prior[fp], 0) for fp in old]
        + [(fp, params.new_relay_seed, 0) for fp in new]
    )

    def required_for(z0: float) -> float:
        return min(params.allocation_factor * max(z0, 1.0), team_capacity)

    slot_index = 0
    while queue:
        # --- Pack the whole waiting queue into consecutive slots -------
        # Every queued relay is independent of the others' outcomes, so a
        # round's slots can all be planned up front and run concurrently.
        jobs: list[_Job] = []
        waiting = queue
        while waiting:
            residual = team_capacity
            this_slot: list[tuple[str, float, int]] = []
            deferred: deque[tuple[str, float, int]] = deque()
            while waiting:
                fp, z0, rounds = waiting.popleft()
                if required_for(z0) <= residual + 1e-6:
                    this_slot.append((fp, z0, rounds))
                    residual -= required_for(z0)
                else:
                    deferred.append((fp, z0, rounds))
            if not this_slot:
                # Should be unreachable: required is capped at team capacity.
                this_slot.append(deferred.popleft())

            for fp, z0, rounds in this_slot:
                required = required_for(z0)
                jobs.append(
                    _Job(
                        fingerprint=fp,
                        z0=z0,
                        rounds=rounds,
                        slot_index=slot_index,
                        relay=network[fp],
                        capped=required < params.allocation_factor * z0,
                        assignments=allocate_capacity(team, required),
                        background=(
                            background_demand.get(fp, 0.0)
                            if isinstance(background_demand, dict)
                            else background_demand
                        ),
                        wobble=(
                            None
                            if full_simulation
                            else max(0.8, rng.gauss(1.0, analytic_error_std))
                        ),
                    )
                )
            slot_index += 1
            waiting = deferred

        # --- Execute the round ----------------------------------------
        if full_simulation:
            specs = [
                MeasurementSpec(
                    target=job.relay,
                    assignments=job.assignments,
                    params=params,
                    network=authority.network,
                    background_demand=job.background,
                    seed=authority.seed + job.slot_index * 7919 + job.rounds,
                    bwauth_id=authority.name,
                    period_index=0,
                    enforce_admission=False,
                    noise=noise,
                )
                for job in jobs
            ]
            outcomes = engine.run_many(
                specs, max_workers=max_workers, backend=backend
            )
            results = [
                (o.estimate, o.failed, o.failure_reason) for o in outcomes
            ]
        else:
            results = [
                (
                    engine.analytic_estimate(
                        job.relay, job.assignments, params, job.wobble
                    ),
                    False,
                    None,
                )
                for job in jobs
            ]

        # --- Fold outcomes back in deterministic slot order -----------
        retries: deque[tuple[str, float, int]] = deque()
        for job, (z, failed, reason) in zip(jobs, results):
            result.measurements_run += 1
            if failed:
                result.failures[job.fingerprint] = reason or "measurement failed"
                continue
            threshold = params.acceptance_threshold(
                total_allocated(job.assignments)
            )
            if z < threshold or job.capped:
                result.estimates[job.fingerprint] = z
                authority.estimates[job.fingerprint] = z
            elif job.rounds + 1 >= max_rounds:
                result.failures[job.fingerprint] = "did not converge"
            else:
                retries.append(
                    (job.fingerprint, max(z, 2.0 * job.z0), job.rounds + 1)
                )
        queue = retries

    result.slots_elapsed = slot_index
    return result
