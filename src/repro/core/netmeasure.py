"""Full-network measurement campaigns (paper §4.3, §7).

The campaign loop itself lives in :mod:`repro.api.campaign` (the
scenario-driven front door): each campaign *round* packs every waiting
relay into consecutive t-second slots greedily (largest first, the
paper's efficiency scheduler); all measurements of the round are
executed concurrently by the :class:`repro.core.engine.\
MeasurementEngine` (``run_many``), which lowers the round onto the
vectorized measurement kernel (:mod:`repro.kernel`). Outcomes fold
back in deterministic slot order; inconclusive relays re-enter the
next round with a doubled estimate.

Retries are *round-granular*: an inconclusive relay is re-measured
after the current round's remaining slots rather than squeezed into the
next slot's residual capacity (the pre-engine serial loop's behaviour).
This is what makes a round's slots mutually independent and
concurrently executable; the cost is that a campaign with retries may
occupy a few more slots, and per-measurement seeds (slot-index derived)
shift for retried relays. Estimates remain draws from the same
distribution, and for a fixed worker count the whole campaign is
deterministic.

:func:`measure_network` remains as a thin deprecation shim with the
historical signature -- bit-identical results, loose execution kwargs
deprecated in favour of :class:`repro.api.ExecutionConfig`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.bwauth import FlashFlowAuthority
from repro.core.engine import MeasurementEngine, MeasurementNoise
from repro.errors import ConfigurationError
from repro.tornet.network import TorNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> core)
    from repro.api.report import CampaignReport


@dataclass
class CampaignResult:
    """Outcome of measuring a whole network once."""

    #: Slot duration of the schedule that produced this campaign; always
    #: populated from the authority's ``FlashFlowParams`` so
    #: ``seconds_elapsed``/``hours_elapsed`` cannot silently disagree
    #: with the schedule actually used.
    slot_seconds: int
    #: Accepted capacity estimates, bit/s.
    estimates: dict[str, float] = field(default_factory=dict)
    #: Relays that never produced an accepted estimate.
    failures: dict[str, str] = field(default_factory=dict)
    #: Number of t-second slots the campaign occupied.
    slots_elapsed: int = 0
    #: Individual measurements run (retries included).
    measurements_run: int = 0

    @property
    def seconds_elapsed(self) -> int:
        return self.slots_elapsed * self.slot_seconds

    @property
    def hours_elapsed(self) -> float:
        return self.seconds_elapsed / 3600.0


def normalize_background_demand(
    background_demand: float | dict[str, float] | Callable[[int], float],
) -> Callable[[str], float | Callable[[int], float]]:
    """Collapse the three background-traffic forms into one resolver.

    ``background_demand`` may be a constant (bit/s at every relay), a
    per-fingerprint dict (relays absent from it see zero), or a
    callable of the measurement second (applied identically at every
    relay). Returns ``fingerprint -> per-relay demand`` where the
    per-relay demand is itself a constant or a callable of time --
    exactly what :class:`repro.core.engine.MeasurementSpec.\
background_demand` accepts. Every campaign path resolves backgrounds
    through this one helper, so the three forms are interchangeable:
    equivalent inputs produce bit-identical estimates.
    """
    if isinstance(background_demand, dict):
        table = background_demand
        return lambda fp: table.get(fp, 0.0)
    if callable(background_demand):
        return lambda fp: background_demand
    if isinstance(background_demand, (int, float)) and not isinstance(
        background_demand, bool
    ):
        # Values are passed through unvalidated for all three forms
        # alike (the engine clamps per second); only the *shape* is
        # checked here.
        value = float(background_demand)
        return lambda fp: value
    raise ConfigurationError(
        "background_demand must be a constant (bit/s), a per-fingerprint "
        f"dict, or a callable of the second; got {type(background_demand)!r}"
    )


def measure_network(
    network: TorNetwork,
    authority: FlashFlowAuthority,
    prior_estimates: dict[str, float] | None = None,
    background_demand: float | dict[str, float] | Callable[[int], float] = 0.0,
    max_rounds: int = 8,
    full_simulation: bool = True,
    noise: MeasurementNoise | None = None,
    analytic_error_std: float = 0.02,
    max_workers: int | None = None,
    engine: MeasurementEngine | None = None,
    backend: str | None = None,
) -> CampaignResult:
    """Measure every relay in ``network`` once (one measurement period).

    .. deprecated::
        This is a compatibility shim over :class:`repro.api.Campaign`
        (results are bit-identical). Passing the loose execution kwargs
        ``max_workers=``/``backend=``/``engine=`` here emits a
        :class:`DeprecationWarning`; use ``Campaign(Scenario(...),
        ExecutionConfig(...))`` instead.

    ``prior_estimates`` supplies z0 for old relays (fingerprint ->
    bit/s); relays absent from it are treated as new and seeded from
    ``params.new_relay_seed``. Old relays are scheduled before new ones
    (paper §4.3 priority). ``background_demand`` may be a constant, a
    callable of time, or a per-fingerprint dict (see
    :func:`normalize_background_demand`). Estimates are identical for
    every backend and worker count.
    """
    if backend is not None or max_workers is not None or engine is not None:
        warnings.warn(
            "measure_network(..., backend=, max_workers=, engine=) is "
            "deprecated; describe the workload with repro.api.Scenario "
            "and the execution policy with repro.api.ExecutionConfig, "
            "then run it via repro.api.Campaign",
            DeprecationWarning,
            stacklevel=2,
        )
    report = run_campaign(
        network,
        authority,
        prior_estimates=prior_estimates,
        background_demand=background_demand,
        max_rounds=max_rounds,
        full_simulation=full_simulation,
        noise=noise,
        analytic_error_std=analytic_error_std,
        max_workers=max_workers,
        engine=engine,
        backend=backend,
    )
    return report.result


def run_campaign(
    network: TorNetwork,
    authority: FlashFlowAuthority,
    prior_estimates: dict[str, float] | None = None,
    background_demand: float | dict[str, float] | Callable[[int], float] = 0.0,
    max_rounds: int = 8,
    full_simulation: bool = True,
    noise: MeasurementNoise | None = None,
    analytic_error_std: float = 0.02,
    max_workers: int | None = None,
    engine: MeasurementEngine | None = None,
    backend: str | None = None,
) -> "CampaignReport":
    """One-period campaign over existing objects, through the API.

    Internal rewiring helper shared by the :func:`measure_network` shim
    and :meth:`repro.core.deployment.Deployment.run_period`: wraps the
    live ``network``/``authority`` in a :class:`repro.api.Scenario`,
    maps the execution knobs onto :class:`repro.api.ExecutionConfig`,
    and runs a :class:`repro.api.Campaign` (no observers). Returns the
    full :class:`repro.api.report.CampaignReport`.
    """
    from repro.api import Campaign, ExecutionConfig, Scenario

    scenario = Scenario(
        name="measure-network",
        network=network,
        team=authority,
        priors=dict(prior_estimates) if prior_estimates else None,
        background=background_demand,
        noise=noise,
    )
    execution = ExecutionConfig(
        backend=backend,
        max_workers=max_workers,
        full_simulation=full_simulation,
        max_rounds=max_rounds,
        analytic_error_std=analytic_error_std,
    )
    return Campaign(scenario, execution, engine=engine).run()
