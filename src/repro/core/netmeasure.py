"""Full-network measurement campaigns (paper §4.3, §7).

Runs one BWAuth's measurement of an entire network: relays are packed into
t-second slots greedily (largest first, the paper's efficiency scheduler),
measured concurrently within a slot using committed measurer capacity, and
re-queued with a doubled estimate when a measurement is inconclusive.

``full_simulation=False`` skips the per-second traffic loop and applies
the protocol's accept/retry logic against an analytic measurement model;
it is used by the scheduling-efficiency benches where only slot counts
matter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.allocation import allocate_capacity, total_allocated
from repro.core.bwauth import FlashFlowAuthority
from repro.core.measurement import MeasurementNoise, run_measurement
from repro.rng import fork
from repro.tornet.network import TorNetwork


@dataclass
class CampaignResult:
    """Outcome of measuring a whole network once."""

    #: Accepted capacity estimates, bit/s.
    estimates: dict[str, float] = field(default_factory=dict)
    #: Relays that never produced an accepted estimate.
    failures: dict[str, str] = field(default_factory=dict)
    #: Number of t-second slots the campaign occupied.
    slots_elapsed: int = 0
    #: Individual measurements run (retries included).
    measurements_run: int = 0
    slot_seconds: int = 30

    @property
    def seconds_elapsed(self) -> int:
        return self.slots_elapsed * self.slot_seconds

    @property
    def hours_elapsed(self) -> float:
        return self.seconds_elapsed / 3600.0


def measure_network(
    network: TorNetwork,
    authority: FlashFlowAuthority,
    prior_estimates: dict[str, float] | None = None,
    background_demand: float | dict[str, float] | Callable[[int], float] = 0.0,
    max_rounds: int = 8,
    full_simulation: bool = True,
    noise: MeasurementNoise | None = None,
    analytic_error_std: float = 0.02,
) -> CampaignResult:
    """Measure every relay in ``network`` once (one measurement period).

    ``prior_estimates`` supplies z0 for old relays (fingerprint -> bit/s);
    relays absent from it are treated as new and seeded from
    ``params.new_relay_seed``. Old relays are scheduled before new ones
    (paper §4.3 priority). ``background_demand`` may be a constant, a
    callable of time, or a per-fingerprint dict (bit/s of client traffic
    present at each relay during its measurement).
    """
    params = authority.params
    team = authority.team
    team_capacity = authority.team_capacity()
    prior = prior_estimates or {}
    result = CampaignResult(slot_seconds=params.slot_seconds)
    rng = fork(authority.seed, "campaign-analytic")

    old = [fp for fp in network.relays if fp in prior]
    new = [fp for fp in network.relays if fp not in prior]
    # Old relays first (guaranteed measurement), then new FCFS; within each
    # class, largest guess first to pack slots tightly.
    old.sort(key=lambda fp: prior[fp], reverse=True)
    queue: deque[tuple[str, float, int]] = deque(
        [(fp, prior[fp], 0) for fp in old]
        + [(fp, params.new_relay_seed, 0) for fp in new]
    )

    slot_index = 0
    while queue:
        residual = team_capacity
        this_slot: list[tuple[str, float, int]] = []
        deferred: deque[tuple[str, float, int]] = deque()
        while queue:
            fp, z0, rounds = queue.popleft()
            required = min(params.allocation_factor * max(z0, 1.0), team_capacity)
            if required <= residual + 1e-6:
                this_slot.append((fp, z0, rounds))
                residual -= required
            else:
                deferred.append((fp, z0, rounds))
        if not this_slot:
            # Should be unreachable: required is capped at team capacity.
            fp, z0, rounds = deferred.popleft()
            this_slot.append((fp, z0, rounds))

        for fp, z0, rounds in this_slot:
            relay = network[fp]
            required = min(params.allocation_factor * max(z0, 1.0), team_capacity)
            capped = required < params.allocation_factor * z0
            assignments = allocate_capacity(team, required)
            for a in assignments:
                a.measurer.commit(a.allocated)
            if isinstance(background_demand, dict):
                relay_background = background_demand.get(fp, 0.0)
            else:
                relay_background = background_demand
            try:
                if full_simulation:
                    outcome = run_measurement(
                        target=relay,
                        assignments=assignments,
                        params=params,
                        network=authority.network,
                        background_demand=relay_background,
                        seed=authority.seed + slot_index * 7919 + rounds,
                        bwauth_id=authority.name,
                        period_index=0,
                        enforce_admission=False,
                        noise=noise,
                    )
                    z = outcome.estimate
                    failed = outcome.failed
                    reason = outcome.failure_reason
                else:
                    supply = total_allocated(assignments) / params.multiplier
                    wobble = max(0.8, rng.gauss(1.0, analytic_error_std))
                    z = min(relay.true_capacity * wobble, supply)
                    failed, reason = False, None
            finally:
                for a in assignments:
                    a.measurer.release(a.allocated)

            result.measurements_run += 1
            if failed:
                result.failures[fp] = reason or "measurement failed"
                continue
            threshold = params.acceptance_threshold(total_allocated(assignments))
            if z < threshold or capped:
                result.estimates[fp] = z
                authority.estimates[fp] = z
            elif rounds + 1 >= max_rounds:
                result.failures[fp] = "did not converge"
            else:
                deferred.append((fp, max(z, 2.0 * z0), rounds + 1))

        queue = deferred
        slot_index += 1

    result.slots_elapsed = slot_index
    return result
