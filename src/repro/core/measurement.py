"""One FlashFlow measurement slot (paper §4.1).

The BWAuth divides the required capacity across its measurers; each
measurer opens its share of the ``s`` measurement sockets to the target and
pushes MEASURE cells as fast as its BandwidthRate (``a_i/k_i`` per process)
and TCP allow. Each second ``j``:

- the BWAuth receives ``x_i^j`` measurement bytes relayed to measurer ``i``
  and sums them into ``x_j``;
- the target reports ``y_j`` normal-traffic bytes, which the BWAuth clamps
  to ``x_j * r / (1 - r)`` so a lying relay gains at most ``1/(1-r)``;
- the per-second estimate is ``z_j = x_j + y_j``.

The slot's capacity estimate is ``z = median(z_1 .. z_t)``. Sampled echo
cells are verified continuously; a failed check aborts the slot early.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable

from repro.core.allocation import MeasurerAssignment, total_allocated
from repro.core.params import FlashFlowParams
from repro.core.verification import EchoVerifier
from repro.errors import MeasurementFailure, VerificationFailure
from repro.netsim.latency import NetworkModel, Path, internet_loss_for_rtt
from repro.netsim.socketbuf import KernelConfig
from repro.netsim.tcp import tcp_rate_cap
from repro.rng import fork
from repro.tornet.relay import Relay
from repro.units import bits_to_bytes

#: Median Internet RTT used when no explicit topology is given
#: (the tmodel dataset median the paper cites in Appendix D).
DEFAULT_RTT_SECONDS = 0.118

#: Measurer-side socket-management overhead: beyond this per-measurer
#: socket count, capacity fades (the post-peak decline of paper Fig 14).
MEASURER_OVERHEAD_FREE_SOCKETS = 60
MEASURER_OVERHEAD_PER_SOCKET = 0.0008


def measurer_socket_efficiency(n_sockets: int) -> float:
    """Fraction of a measurer's capacity left after socket bookkeeping."""
    excess = max(0, n_sockets - MEASURER_OVERHEAD_FREE_SOCKETS)
    return 1.0 / (1.0 + MEASURER_OVERHEAD_PER_SOCKET * excess)


@dataclass(frozen=True)
class MeasurementNoise:
    """Stochastic environment knobs for a measurement.

    ``target_env_mean``/``target_env_std`` model cross-traffic and
    time-of-day variation at the target host over a whole measurement;
    per-second relay jitter lives in :class:`repro.tornet.relay.Relay`.
    The defaults reproduce the paper's Figure 6 spread (95% of
    measurements within 11% of ground truth) on dedicated Internet hosts;
    the Shadow experiments use a lower mean (shared congested topology).
    """

    target_env_mean: float = 1.0
    target_env_std: float = 0.035
    target_env_min: float = 0.85
    target_env_max: float = 1.03
    #: Per-second multiplicative noise on each measurer's supply.
    supply_noise_std: float = 0.03


@dataclass
class MeasurementOutcome:
    """Result of one measurement slot."""

    #: Capacity estimate z = median(z_j), bit/s. Zero if the slot failed.
    estimate: float
    #: Per-second measurement traffic x_j, bit/s.
    per_second_measurement: list[float] = field(default_factory=list)
    #: Per-second normal traffic as reported by the relay (bit/s).
    per_second_background_reported: list[float] = field(default_factory=list)
    #: Per-second normal traffic after the r-ratio clamp (bit/s).
    per_second_background_clamped: list[float] = field(default_factory=list)
    #: Per-second totals z_j (bit/s).
    per_second_total: list[float] = field(default_factory=list)
    #: Sum of the a_i allocated for this slot (bit/s).
    total_allocated: float = 0.0
    duration: int = 0
    failed: bool = False
    failure_reason: str | None = None
    cells_checked: int = 0

    def estimate_with_duration(self, seconds: int) -> float:
        """Re-aggregate as if the slot had lasted only ``seconds``.

        Used by the Appendix E.3 duration-strategy analysis: a 60-second
        run can be truncated to emulate 10/20/30-second median strategies.
        """
        if seconds <= 0:
            raise ValueError("duration must be positive")
        if not self.per_second_total:
            return 0.0
        window = self.per_second_total[: min(seconds, len(self.per_second_total))]
        return float(statistics.median(window))


def clamp_background(x_bits: float, y_bits: float, ratio: float) -> float:
    """The BWAuth's normal-traffic clamp: y <= x * r / (1 - r) (§4.1)."""
    if ratio >= 1:
        raise ValueError("ratio must be < 1")
    if ratio <= 0:
        return 0.0
    return min(y_bits, x_bits * ratio / (1.0 - ratio))


def _resolve_path(
    network: NetworkModel | None,
    measurer_host: str,
    target_location: str | None,
    default_rtt: float,
) -> Path:
    if network is not None and target_location is not None:
        try:
            return network.path(measurer_host, target_location)
        except Exception:
            pass
    return Path(
        src=measurer_host,
        dst=target_location or "target",
        rtt_seconds=default_rtt,
        loss=internet_loss_for_rtt(default_rtt),
    )


def run_measurement(
    target: Relay,
    assignments: list[MeasurerAssignment],
    params: FlashFlowParams | None = None,
    network: NetworkModel | None = None,
    target_location: str | None = None,
    background_demand: float | Callable[[int], float] = 0.0,
    duration: int | None = None,
    seed: int = 0,
    bwauth_id: str = "bwauth0",
    period_index: int = 0,
    verify: bool = True,
    enforce_admission: bool = True,
    noise: MeasurementNoise | None = None,
    default_rtt: float = DEFAULT_RTT_SECONDS,
) -> MeasurementOutcome:
    """Run one measurement slot of ``target`` by the assigned team."""
    params = params or FlashFlowParams()
    noise = noise or MeasurementNoise()
    duration = params.slot_seconds if duration is None else duration
    rng = fork(seed, f"measurement-{bwauth_id}-{target.fingerprint}-{period_index}")

    active = [a for a in assignments if a.participates]
    if not active:
        raise MeasurementFailure(
            "no measurer allocated any capacity", target.fingerprint
        )

    if enforce_admission and not target.accept_measurement(bwauth_id, period_index):
        return MeasurementOutcome(
            estimate=0.0,
            total_allocated=total_allocated(assignments),
            failed=True,
            failure_reason="relay refused: already measured this period",
        )

    # --- Per-measurement setup -------------------------------------------
    n_team = len(active)
    socket_share = max(1, params.n_sockets // n_team)
    target_kernel = (
        target.host.kernel if target.host is not None else KernelConfig.default()
    )
    env = min(
        noise.target_env_max,
        max(
            noise.target_env_min,
            rng.gauss(noise.target_env_mean, noise.target_env_std),
        ),
    )

    setups = []
    for a in active:
        path = _resolve_path(
            network, a.measurer.host.name, target_location, default_rtt
        )
        quality = (
            network.sample_path_quality(rng)
            if network is not None
            else max(0.45, min(1.0, rng.gauss(0.92, 0.10)))
        )
        setups.append((a, path, quality))

    verifier = (
        EchoVerifier(params.p_check, fork(seed, f"verify-{target.fingerprint}"))
        if verify
        else None
    )

    bg_of = (
        background_demand
        if callable(background_demand)
        else (lambda _t, v=float(background_demand): v)
    )

    xs: list[float] = []
    ys_raw: list[float] = []
    ys_clamped: list[float] = []
    zs: list[float] = []
    cells_checked = 0

    # --- Per-second loop --------------------------------------------------
    for second in range(duration):
        supply_total = 0.0
        for a, path, quality in setups:
            per_socket = tcp_rate_cap(
                path,
                a.measurer.host.kernel,
                target_kernel,
                age_seconds=float(second),
            )
            socket_cap = per_socket * socket_share * quality
            per_second = max(0.3, rng.gauss(1.0, noise.supply_noise_std))
            # a_i is enforced by the processes' BandwidthRate; socket_cap
            # by TCP; the measurer's own link by its capacity; managing
            # many sockets costs measurer CPU.
            supply_total += (
                min(a.allocated, socket_cap, a.measurer.host.link_capacity)
                * measurer_socket_efficiency(socket_share)
                * per_second
            )

        report = target.measured_second(
            measurement_supply_bits=supply_total,
            background_demand_bits=bg_of(second),
            ratio_r=params.ratio,
            n_measurement_sockets=params.n_sockets,
            external_factor=env,
        )
        x_bits = report.measurement_bytes * 8.0
        y_bits = report.background_reported_bytes * 8.0
        y_clamped = clamp_background(x_bits, y_bits, params.ratio)

        xs.append(x_bits)
        ys_raw.append(y_bits)
        ys_clamped.append(y_clamped)
        zs.append(x_bits + y_clamped)

        if verifier is not None:
            try:
                cells_checked += verifier.verify_second(
                    target, bits_to_bytes(x_bits)
                )
            except VerificationFailure as failure:
                # The BWAuth ends the measurement early (paper §4.1).
                return MeasurementOutcome(
                    estimate=0.0,
                    per_second_measurement=xs,
                    per_second_background_reported=ys_raw,
                    per_second_background_clamped=ys_clamped,
                    per_second_total=zs,
                    total_allocated=total_allocated(assignments),
                    duration=second + 1,
                    failed=True,
                    failure_reason=str(failure),
                    cells_checked=verifier.cells_checked,
                )

    return MeasurementOutcome(
        estimate=float(statistics.median(zs)),
        per_second_measurement=xs,
        per_second_background_reported=ys_raw,
        per_second_background_clamped=ys_clamped,
        per_second_total=zs,
        total_allocated=total_allocated(assignments),
        duration=duration,
        cells_checked=cells_checked,
    )
