"""One FlashFlow measurement slot (paper §4.1).

The BWAuth divides the required capacity across its measurers; each
measurer opens its share of the ``s`` measurement sockets to the target and
pushes MEASURE cells as fast as its BandwidthRate (``a_i/k_i`` per process)
and TCP allow. Each second ``j``:

- the BWAuth receives ``x_i^j`` measurement bytes relayed to measurer ``i``
  and sums them into ``x_j``;
- the target reports ``y_j`` normal-traffic bytes, which the BWAuth clamps
  to ``x_j * r / (1 - r)`` so a lying relay gains at most ``1/(1-r)``;
- the per-second estimate is ``z_j = x_j + y_j``.

The slot's capacity estimate is ``z = median(z_1 .. z_t)``. Sampled echo
cells are verified continuously; a failed check aborts the slot early.

Execution lives in :mod:`repro.core.engine`: :func:`run_measurement` is a
thin compatibility wrapper that builds a :class:`MeasurementSpec` and hands
it to the shared :class:`MeasurementEngine`, which precomputes per-
assignment invariants and batches the per-second supply computation. The
measurement dataclasses and helpers are re-exported here for callers that
predate the engine.
"""

from __future__ import annotations

from typing import Callable

from repro.core.allocation import MeasurerAssignment
from repro.core.engine import (
    DEFAULT_RTT_SECONDS,
    MeasurementNoise,
    MeasurementOutcome,
    MeasurementSpec,
    clamp_background,
    default_engine,
)
from repro.core.measurer import (
    MEASURER_OVERHEAD_FREE_SOCKETS,
    MEASURER_OVERHEAD_PER_SOCKET,
    measurer_socket_efficiency,
)
from repro.core.params import FlashFlowParams
from repro.netsim.latency import NetworkModel
from repro.tornet.relay import Relay

__all__ = [
    "DEFAULT_RTT_SECONDS",
    "MEASURER_OVERHEAD_FREE_SOCKETS",
    "MEASURER_OVERHEAD_PER_SOCKET",
    "MeasurementNoise",
    "MeasurementOutcome",
    "clamp_background",
    "measurer_socket_efficiency",
    "run_measurement",
]


def run_measurement(
    target: Relay,
    assignments: list[MeasurerAssignment],
    params: FlashFlowParams | None = None,
    network: NetworkModel | None = None,
    target_location: str | None = None,
    background_demand: float | Callable[[int], float] = 0.0,
    duration: int | None = None,
    seed: int = 0,
    bwauth_id: str = "bwauth0",
    period_index: int = 0,
    verify: bool = True,
    enforce_admission: bool = True,
    noise: MeasurementNoise | None = None,
    default_rtt: float = DEFAULT_RTT_SECONDS,
) -> MeasurementOutcome:
    """Run one measurement slot of ``target`` by the assigned team."""
    return default_engine().run(
        MeasurementSpec(
            target=target,
            assignments=assignments,
            params=params,
            network=network,
            target_location=target_location,
            background_demand=background_demand,
            duration=duration,
            seed=seed,
            bwauth_id=bwauth_id,
            period_index=period_index,
            verify=verify,
            enforce_admission=enforce_admission,
            noise=noise,
            default_rtt=default_rtt,
        )
    )
