"""Measurement scheduling (paper §4.3).

Each 24-hour period is divided into t-second slots. Before a period
starts, the BWAuths derive a shared random seed (Tor's shared-randomness
protocol); each then locally computes the same schedule:

- every *old* relay gets a slot chosen uniformly at random among slots with
  enough unallocated team capacity for ``f * z0``;
- *new* relays are measured first-come-first-served in the earliest slots
  with sufficient residual capacity.

The schedule is secret (derived from the private seed), which prevents
both selective-capacity relays and targeted denial-of-service (§5).

:func:`greedy_pack_slots` implements the §7 efficiency scheduler: pack
relays largest-first into consecutive slots to find the *fastest* the
network can be measured.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.params import FlashFlowParams
from repro.errors import ScheduleError


@dataclass
class SlotAssignment:
    """One relay's scheduled measurement."""

    fingerprint: str
    slot: int
    required_capacity: float
    is_new: bool = False


@dataclass
class PeriodSchedule:
    """A full measurement period's schedule for one BWAuth."""

    params: FlashFlowParams
    team_capacity: float
    seed: bytes
    assignments: dict[str, SlotAssignment] = field(default_factory=dict)
    slot_load: dict[int, float] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.team_capacity <= 0:
            raise ScheduleError("team capacity must be positive")
        # Dense mirror of ``slot_load`` for vectorised feasibility scans;
        # loads are accumulated exactly like the dict (same float adds).
        self._loads = np.zeros(self.n_slots, dtype=float)
        for slot, load in self.slot_load.items():
            if 0 <= slot < self._loads.size:
                self._loads[slot] = load

    @property
    def n_slots(self) -> int:
        return self.params.slots_per_period

    def residual(self, slot: int) -> float:
        return self.team_capacity - self.slot_load.get(slot, 0.0)

    def _place(self, assignment: SlotAssignment) -> None:
        if assignment.fingerprint in self.assignments:
            raise ScheduleError(
                f"{assignment.fingerprint} already scheduled this period"
            )
        if assignment.required_capacity > self.residual(assignment.slot) + 1e-6:
            raise ScheduleError(
                f"slot {assignment.slot} lacks capacity for "
                f"{assignment.fingerprint}"
            )
        self.assignments[assignment.fingerprint] = assignment
        self.slot_load[assignment.slot] = (
            self.slot_load.get(assignment.slot, 0.0)
            + assignment.required_capacity
        )
        if 0 <= assignment.slot < self._loads.size:
            self._loads[assignment.slot] = self.slot_load[assignment.slot]

    @classmethod
    def build(
        cls,
        params: FlashFlowParams,
        team_capacity: float,
        estimates: dict[str, float],
        seed: bytes,
    ) -> "PeriodSchedule":
        """Schedule every old relay at a random feasible slot.

        ``estimates`` maps fingerprint -> existing capacity estimate z0.
        Required slot capacity per relay is ``min(f * z0, team capacity)``
        (a relay guessed above what the team can supply still gets its
        best-effort full-team slot).
        """
        schedule = cls(params=params, team_capacity=team_capacity, seed=seed)
        rng = random.Random(seed)
        order = sorted(estimates)  # determinism: same seed => same schedule
        rng.shuffle(order)
        for fingerprint in order:
            required = min(
                params.allocation_factor * max(estimates[fingerprint], 1.0),
                team_capacity,
            )
            # Vectorised feasibility scan over all slots; elementwise this
            # is the same ``residual(slot) + 1e-6 >= required`` test, and
            # rng.choice draws exactly one value either way, keeping the
            # schedule identical to the per-slot Python loop.
            feasible = np.flatnonzero(
                (team_capacity - schedule._loads) + 1e-6 >= required
            )
            if feasible.size == 0:
                raise ScheduleError(
                    f"no slot can hold {fingerprint} "
                    f"(needs {required:.0f} bit/s)"
                )
            slot = int(rng.choice(feasible))
            schedule._place(
                SlotAssignment(
                    fingerprint=fingerprint,
                    slot=slot,
                    required_capacity=required,
                )
            )
        return schedule

    def add_new_relay(self, fingerprint: str, z0: float,
                      earliest_slot: int = 0) -> SlotAssignment:
        """Schedule a newly appeared relay FCFS (paper §4.3).

        New relays take the first slot at/after ``earliest_slot`` (their
        arrival time) with enough residual capacity.
        """
        required = min(
            self.params.allocation_factor * max(z0, 1.0), self.team_capacity
        )
        earliest_slot = max(0, earliest_slot)
        window = self._loads[earliest_slot:]
        fits = (self.team_capacity - window) + 1e-6 >= required
        if fits.any():
            slot = earliest_slot + int(np.argmax(fits))
            assignment = SlotAssignment(
                fingerprint=fingerprint,
                slot=slot,
                required_capacity=required,
                is_new=True,
            )
            self._place(assignment)
            return assignment
        raise ScheduleError(
            f"no remaining slot can hold new relay {fingerprint}"
        )

    def remove_relay(self, fingerprint: str) -> SlotAssignment:
        """Unschedule a relay that left the network mid-deployment.

        The assignment's capacity is released back to its slot, so later
        :meth:`add_new_relay` calls can re-slot arriving relays into the
        freed space -- the churn-aware path continuous deployments use
        when the consensus drops a relay between schedule computation
        and measurement. Returns the removed assignment.
        """
        assignment = self.assignments.pop(fingerprint, None)
        if assignment is None:
            raise ScheduleError(f"{fingerprint} is not scheduled this period")
        remaining = (
            self.slot_load.get(assignment.slot, 0.0)
            - assignment.required_capacity
        )
        if remaining > 1e-6:
            self.slot_load[assignment.slot] = remaining
        else:
            # The slot is empty (up to float residue): drop it entirely so
            # slots_in_use/makespan shrink back, mirroring never-assigned.
            self.slot_load.pop(assignment.slot, None)
            remaining = 0.0
        if 0 <= assignment.slot < self._loads.size:
            self._loads[assignment.slot] = remaining
        return assignment

    def reslot_relay(self, fingerprint: str,
                     earliest_slot: int = 0) -> SlotAssignment:
        """Move a scheduled relay to the earliest feasible slot.

        Removal + FCFS re-insertion (the relay keeps its required
        capacity and ``is_new`` flag): used when churn frees earlier
        capacity and a late-slotted relay can be pulled forward. Raises
        :class:`ScheduleError` -- with the original assignment restored
        -- if no slot at/after ``earliest_slot`` fits.
        """
        removed = self.remove_relay(fingerprint)
        earliest_slot = max(0, earliest_slot)
        window = self._loads[earliest_slot:]
        fits = (
            (self.team_capacity - window) + 1e-6
            >= removed.required_capacity
        )
        if not fits.any():
            self._place(removed)
            raise ScheduleError(
                f"no slot at/after {earliest_slot} can re-slot {fingerprint}"
            )
        assignment = SlotAssignment(
            fingerprint=fingerprint,
            slot=earliest_slot + int(np.argmax(fits)),
            required_capacity=removed.required_capacity,
            is_new=removed.is_new,
        )
        self._place(assignment)
        return assignment

    def slots_in_use(self) -> int:
        return len(self.slot_load)

    def makespan_slots(self) -> int:
        """Index (exclusive) of the last used slot."""
        if not self.slot_load:
            return 0
        return max(self.slot_load) + 1

    def by_slot(self) -> dict[int, list[SlotAssignment]]:
        out: dict[int, list[SlotAssignment]] = {}
        for a in self.assignments.values():
            out.setdefault(a.slot, []).append(a)
        return out


def greedy_pack_slots(
    estimates: dict[str, float],
    params: FlashFlowParams,
    team_capacity: float,
) -> list[list[str]]:
    """Pack relays into the fewest consecutive slots (paper §7).

    "We greedily assign relays to each slot in order, with each assignment
    choosing the largest relay for which there is available capacity to
    measure." Returns the list of slots, each a list of fingerprints.

    Implemented with a bisect on the (sorted) requirement list rather
    than a full rescan of the remaining relays per slot: "largest relay
    that still fits" is the rightmost entry at or below the residual.
    This packs the July-2019-scale networks of the §7 efficiency benches
    in milliseconds while producing exactly the slots the linear rescan
    would (same greedy order, same float arithmetic).
    """
    # Ascending by requirement; ties keep the descending-capacity scan
    # order of the original linear pass (stable sort + reversal).
    asc = sorted(estimates, key=lambda fp: estimates[fp], reverse=True)[::-1]
    required = {
        fp: min(params.allocation_factor * max(estimates[fp], 1.0),
                team_capacity)
        for fp in estimates
    }
    keys = [required[fp] for fp in asc]
    slots: list[list[str]] = []
    while asc:
        residual = team_capacity
        slot: list[str] = []
        while True:
            index = bisect.bisect_right(keys, residual + 1e-6) - 1
            if index < 0:
                break
            fp = asc.pop(index)
            keys.pop(index)
            slot.append(fp)
            residual -= required[fp]
        if not slot:
            raise ScheduleError(
                "a relay requires more than the whole team capacity"
            )
        slots.append(slot)
    return slots
