"""Measurers and measuring processes (paper §4, §4.1).

A measurer is a host whose resources are dedicated to measurement. For
each measurement a measurer participates in, "a modified Tor process is
started on each CPU core without an existing measurement process (and
always at least one)"; the per-process traffic rate is limited to
``a_i / k_i`` by setting BandwidthRate, and the measurer's socket share
``s/m`` is split evenly across its processes.

The measurer's network capacity -- used by the allocation logic -- comes
from the BWAuth's iPerf-style measurement of the team (§4.2), not from
self-reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.netsim.hosts import Host
from repro.tornet.tokenbucket import TokenBucket

#: Measurer-side socket-management overhead: beyond this per-measurer
#: socket count, capacity fades (the post-peak decline of paper Fig 14).
MEASURER_OVERHEAD_FREE_SOCKETS = 60
MEASURER_OVERHEAD_PER_SOCKET = 0.0008


def measurer_socket_efficiency(n_sockets: int) -> float:
    """Fraction of a measurer's capacity left after socket bookkeeping."""
    excess = max(0, n_sockets - MEASURER_OVERHEAD_FREE_SOCKETS)
    return 1.0 / (1.0 + MEASURER_OVERHEAD_PER_SOCKET * excess)


@dataclass
class MeasuringProcess:
    """One modified-Tor process on a measurer core."""

    index: int
    rate_limit: float
    n_sockets: int
    _bucket: TokenBucket = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate_limit < 0:
            raise ConfigurationError("process rate limit cannot be negative")
        if self.n_sockets < 0:
            raise ConfigurationError("socket count cannot be negative")
        self._bucket = TokenBucket(rate=self.rate_limit / 8.0)

    def sendable_bits(self) -> float:
        """Bits this process may send this second under its BandwidthRate."""
        self._bucket.refill(1.0)
        return self._bucket.available() * 8.0

    def consume(self, bits: float) -> None:
        self._bucket.consume(bits / 8.0)


@dataclass
class Measurer:
    """A measurement host in a BWAuth's team."""

    name: str
    host: Host
    #: Network forwarding capacity (bit/s) as measured by the BWAuth via
    #: iPerf (paper §4.2); ``None`` until measured.
    measured_capacity: float | None = None
    #: Capacity already committed to in-flight measurements (bit/s).
    committed: float = 0.0
    #: Identity public key, registered with target relays by the BWAuth.
    public_key: int | None = None

    @property
    def capacity(self) -> float:
        """Usable capacity: the iPerf estimate, else the link rate."""
        if self.measured_capacity is not None:
            return self.measured_capacity
        return self.host.link_capacity

    @property
    def residual_capacity(self) -> float:
        """Capacity not yet committed to other concurrent measurements."""
        return max(0.0, self.capacity - self.committed)

    def commit(self, amount: float) -> None:
        if amount > self.residual_capacity + 1e-6:
            raise ConfigurationError(
                f"measurer {self.name} cannot commit {amount:.0f} bit/s "
                f"(residual {self.residual_capacity:.0f})"
            )
        self.committed += amount

    def release(self, amount: float) -> None:
        self.committed = max(0.0, self.committed - amount)

    def spawn_processes(
        self, allocated: float, socket_share: int
    ) -> list[MeasuringProcess]:
        """Start measuring processes for one measurement (paper §4.1).

        One process per free core (always at least one), each rate-limited
        to ``allocated / k`` and owning an even share of the sockets.
        """
        if allocated < 0:
            raise ConfigurationError("allocation cannot be negative")
        k = max(1, self.host.cpu_cores)
        per_process_sockets = max(1, socket_share // k) if socket_share else 0
        processes = []
        for index in range(k):
            processes.append(
                MeasuringProcess(
                    index=index,
                    rate_limit=allocated / k,
                    n_sockets=per_process_sockets,
                )
            )
        return processes


def team_capacity(team: list[Measurer]) -> float:
    """Total capacity of a measurement team (bit/s)."""
    return sum(m.capacity for m in team)


def sufficient_team(team: list[Measurer], max_relay_capacity: float,
                    allocation_factor: float) -> bool:
    """Check the paper's team-sufficiency condition (§4).

    A team is sufficient if its summed capacity is at least ``f`` times
    the highest relay capacity it must measure.
    """
    return team_capacity(team) >= allocation_factor * max_relay_capacity


def socket_shares(n_sockets: int, n_measurers: int) -> list[int]:
    """Split ``n_sockets`` evenly across measurers (remainder to the first)."""
    if n_measurers <= 0:
        raise ConfigurationError("need at least one measurer")
    base = n_sockets // n_measurers
    remainder = n_sockets - base * n_measurers
    return [base + (1 if i < remainder else 0) for i in range(n_measurers)]
