"""Greedy measurer-capacity allocation (paper §4.2).

"The BWAuth can allocate to this measurement any amount a_i of the
capacity of M_i subject to 0 <= a_i <= c_i and sum(a_i) = f * z0. We
greedily allocate capacity by repeatedly assigning the measurer with the
most residual capacity to use all its remaining capacity or as much as is
needed to reach f * z0."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.measurer import Measurer
from repro.errors import AllocationError


@dataclass
class MeasurerAssignment:
    """One measurer's share of a measurement."""

    measurer: Measurer
    allocated: float

    @property
    def participates(self) -> bool:
        """a_i = 0 is allowed and means the measurer sits this one out."""
        return self.allocated > 0


def allocate_capacity(
    team: list[Measurer], required: float, use_residual: bool = True
) -> list[MeasurerAssignment]:
    """Greedily allocate ``required`` bit/s across the team.

    Returns one assignment per measurer (zero-allocated measurers
    included, preserving team order). Raises :class:`AllocationError` if
    the team cannot supply ``required``.

    ``use_residual`` accounts for capacity committed to concurrent
    measurements; the full-network scheduler relies on this.
    """
    if required < 0:
        raise AllocationError("cannot allocate negative capacity")
    capacities = {
        m.name: (m.residual_capacity if use_residual else m.capacity)
        for m in team
    }
    total = sum(capacities.values())
    if total + 1e-6 < required:
        raise AllocationError(
            f"team supplies {total:.0f} bit/s but {required:.0f} needed"
        )

    allocations = {m.name: 0.0 for m in team}
    remaining = required
    # Tolerance scales with the request: at multi-Gbit/s magnitudes the
    # floating-point ulp alone exceeds an absolute epsilon.
    tolerance = max(1e-6, required * 1e-9)
    # Repeatedly give the most-residual measurer as much as possible.
    while remaining > tolerance:
        name = max(capacities, key=lambda n: capacities[n])
        if capacities[name] <= 0:
            raise AllocationError("ran out of capacity mid-allocation")
        grant = min(capacities[name], remaining)
        allocations[name] += grant
        capacities[name] -= grant
        remaining -= grant

    return [
        MeasurerAssignment(measurer=m, allocated=allocations[m.name])
        for m in team
    ]


def total_allocated(assignments: list[MeasurerAssignment]) -> float:
    return sum(a.allocated for a in assignments)


def allocate_evenly(
    team: list[Measurer], required: float
) -> list[MeasurerAssignment]:
    """Split ``required`` evenly across all measurers (paper Appendix E.2).

    The Fig 6/15 Internet experiments "divide that capacity assignment
    evenly across the measurers in the subset" rather than greedily.
    Raises :class:`AllocationError` if any even share exceeds a
    measurer's capacity.
    """
    if not team:
        raise AllocationError("need at least one measurer")
    if required < 0:
        raise AllocationError("cannot allocate negative capacity")
    share = required / len(team)
    for measurer in team:
        if share > measurer.capacity + 1e-6:
            raise AllocationError(
                f"even share {share:.0f} bit/s exceeds {measurer.name}'s "
                f"capacity {measurer.capacity:.0f}"
            )
    return [MeasurerAssignment(measurer=m, allocated=share) for m in team]
