"""Deterministic randomness plumbing.

Every stochastic component in the reproduction draws from a
:class:`random.Random` (or numpy generator) derived from an explicit seed,
so experiments are exactly repeatable. ``fork`` derives independent child
streams from a parent seed and a label, which keeps component randomness
decoupled (adding draws in one component does not perturb another).
"""

from __future__ import annotations

import hashlib
import random

import numpy as np


def seed_from(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a string ``label``.

    Uses SHA-256 so the derivation is stable across platforms and Python
    versions (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def fork(parent_seed: int, label: str) -> random.Random:
    """Return a fresh ``random.Random`` seeded from ``(parent_seed, label)``."""
    return random.Random(seed_from(parent_seed, label))


def fork_numpy(parent_seed: int, label: str) -> np.random.Generator:
    """Return a fresh numpy generator seeded from ``(parent_seed, label)``."""
    return np.random.default_rng(seed_from(parent_seed, label))
