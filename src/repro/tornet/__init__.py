"""Tor network substrate.

Stands in for the authors' patched Tor v0.3.5.7 and for the live network:
fixed-size cells, relay-side cell crypto, token-bucket rate limiting, the
observed-bandwidth self-estimation heuristic, single-threaded CPU cell
processing, the KIST-style normal scheduler and FlashFlow's separate
measurement scheduler, circuits with window flow control, server
descriptors and consensuses, directory authorities (including the
shared-randomness protocol FlashFlow's schedule seeds from), weighted path
selection, and a synthetic whole-network generator calibrated to the
July-2019 Tor consensus shape used in paper §7.
"""

from repro.tornet.authority import DirectoryAuthority, SharedRandomness
from repro.tornet.cell import Cell, CellType
from repro.tornet.circuit import Circuit, circuit_rate_cap
from repro.tornet.consensus import Consensus, RouterStatus
from repro.tornet.cpu import CpuModel
from repro.tornet.descriptor import ServerDescriptor
from repro.tornet.kist import KIST_PER_SOCKET_CAP, kist_rate_cap
from repro.tornet.meassched import measurement_rate_cap
from repro.tornet.network import TorNetwork, synthesize_network
from repro.tornet.observedbw import ObservedBandwidth
from repro.tornet.pathsel import PathSelector
from repro.tornet.relay import Relay, RelayBehavior, SecondReport
from repro.tornet.relaycrypto import CircuitKey, derive_shared_key
from repro.tornet.tokenbucket import TokenBucket

__all__ = [
    "Cell",
    "CellType",
    "Circuit",
    "CircuitKey",
    "Consensus",
    "CpuModel",
    "DirectoryAuthority",
    "KIST_PER_SOCKET_CAP",
    "ObservedBandwidth",
    "PathSelector",
    "Relay",
    "RelayBehavior",
    "RouterStatus",
    "SecondReport",
    "ServerDescriptor",
    "SharedRandomness",
    "TokenBucket",
    "TorNetwork",
    "circuit_rate_cap",
    "derive_shared_key",
    "kist_rate_cap",
    "measurement_rate_cap",
    "synthesize_network",
]
