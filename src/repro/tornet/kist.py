"""KIST-style normal scheduler model (paper §4.1, Appendix C, ticket 29427).

Tor's KIST scheduler is designed for priority scheduling across *many*
sockets and performs poorly with few: per-socket write quanta cap the
throughput a single socket can carry. The paper's Figure 11 shows lab
throughput rising roughly linearly with socket count until the CPU
saturates near 13-20 sockets at ~1,248 Mbit/s -- about 96 Mbit/s per
socket. This is exactly why FlashFlow adds a *separate* measurement
scheduler (see :mod:`repro.tornet.meassched`): measurement traffic must hit
full relay capacity with far fewer sockets than normal client traffic uses.
"""

from __future__ import annotations

from repro.units import mbit

#: Throughput one socket can carry under the normal (KIST) scheduler.
KIST_PER_SOCKET_CAP = mbit(96)


def kist_rate_cap(n_sockets: int, per_socket_cap: float = KIST_PER_SOCKET_CAP) -> float:
    """Aggregate throughput cap (bit/s) of the normal scheduler.

    This caps only the *scheduler*; CPU and link limits apply on top (see
    :meth:`repro.tornet.relay.Relay.forwarding_capacity`).
    """
    if n_sockets < 0:
        raise ValueError("socket count cannot be negative")
    return n_sockets * per_socket_cap
