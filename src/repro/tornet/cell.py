"""Tor cells: fixed 514-byte units (paper §2).

Communication through Tor happens in fixed-length cells: a 4-byte circuit
id, a 1-byte command, and a 509-byte payload. FlashFlow adds a measurement
circuit-creation command and measurement cells whose payloads are random
bytes (paper §4.1); the §3.4 live experiment used an analogous SPEEDTEST
cell. This module implements the wire encoding so the verification path
(random echo-cell checking) operates on real bytes.
"""

from __future__ import annotations

import enum
import random
import struct
from dataclasses import dataclass

from repro.rng import seed_from
from repro.units import CELL_LEN

#: Payload length: cell minus the circuit-id (4) and command (1) header.
PAYLOAD_LEN = CELL_LEN - 5

#: Default payload stream for :meth:`Cell.measurement`. Seeded (not
#: ``os.urandom``) so cell construction is reproducible: measurement
#: cells sit on nominally deterministic paths, and ambient entropy here
#: would make transcripts differ across same-seed runs. Callers that
#: need their own stream pass ``rng=`` explicitly.
_DEFAULT_PAYLOAD_RNG = random.Random(seed_from(0, "cell-payload"))

_HEADER = struct.Struct(">IB")


class CellType(enum.IntEnum):
    """Cell commands relevant to the reproduction."""

    PADDING = 0
    CREATE = 1
    CREATED = 2
    RELAY = 3
    DESTROY = 4
    #: FlashFlow measurement circuit creation (new circuit-creation cell).
    CREATE_MEASURE = 40
    CREATED_MEASURE = 41
    #: FlashFlow measurement cell filled with random bytes.
    MEASURE = 42
    #: The §3.4 experiment's client-echo cell.
    SPEEDTEST = 43


@dataclass(frozen=True)
class Cell:
    """One 514-byte Tor cell."""

    circ_id: int
    command: CellType
    payload: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.circ_id < 2 ** 32:
            raise ValueError("circuit id out of range")
        if len(self.payload) != PAYLOAD_LEN:
            raise ValueError(
                f"payload must be exactly {PAYLOAD_LEN} bytes, "
                f"got {len(self.payload)}"
            )

    def encode(self) -> bytes:
        """Serialise to the 514-byte wire format."""
        return _HEADER.pack(self.circ_id, int(self.command)) + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "Cell":
        """Parse a 514-byte wire cell."""
        if len(data) != CELL_LEN:
            raise ValueError(f"cell must be {CELL_LEN} bytes, got {len(data)}")
        circ_id, command = _HEADER.unpack(data[:5])
        return cls(circ_id=circ_id, command=CellType(command), payload=data[5:])

    @classmethod
    def measurement(
        cls,
        circ_id: int,
        payload: bytes | None = None,
        rng: random.Random | None = None,
    ) -> "Cell":
        """Build a MEASURE cell; payload defaults to fresh random bytes.

        The random bytes come from ``rng`` when given (the caller's
        seeded stream), else from the module's seeded payload generator
        -- never from ambient entropy, so same-seed runs build the same
        cells.
        """
        if payload is None:
            payload = (rng or _DEFAULT_PAYLOAD_RNG).randbytes(PAYLOAD_LEN)
        return cls(circ_id=circ_id, command=CellType.MEASURE, payload=payload)

    def with_payload(self, payload: bytes) -> "Cell":
        """Return a copy of this cell carrying ``payload``."""
        return Cell(circ_id=self.circ_id, command=self.command, payload=payload)
