"""Circuit key exchange and relay cell crypto (paper §4.1).

When a measurer opens a measurement circuit, "a key exchange is performed,
but the circuit will not be extended further". Cells the target receives
are decrypted with the circuit key and returned; it is this decryption work
(which the target alone performs, while both sides do TLS) that makes the
measurement replicate the cryptographic cost of normal forwarding.

The key exchange here is finite-field Diffie-Hellman over the RFC 3526
2048-bit MODP group, and the cell cipher is a SHA-256-based keystream in
counter mode. These are functionally equivalent stand-ins for Tor's ntor
handshake and AES-CTR: deterministic, dependency-free, and sufficient for
the property FlashFlow relies on -- a relay that skips decryption produces
payloads that fail the random content check with overwhelming probability.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field

# RFC 3526 group 14 (2048-bit MODP) prime and generator.
MODP_2048_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF",
    16,
)
MODP_GENERATOR = 2

_KEYSTREAM_BLOCK = 32  # SHA-256 digest size.

#: Upper bound on cached keystream spans per key (at cell-payload size a
#: full cache is ~4 MiB). Echo-cell verification restarts cell indices at
#: zero for every measurement, so with a shared circuit key the same
#: spans recur across a whole campaign and the cache hit rate approaches
#: 100% after the first slot.
_KEYSTREAM_CACHE_MAX = 8192


@dataclass
class DhParty:
    """One side of a Diffie-Hellman exchange."""

    private: int = field(default_factory=lambda: secrets.randbits(256))

    @property
    def public(self) -> int:
        return pow(MODP_GENERATOR, self.private, MODP_2048_PRIME)

    def shared_secret(self, peer_public: int) -> bytes:
        if not 1 < peer_public < MODP_2048_PRIME - 1:
            raise ValueError("peer public value out of range")
        secret = pow(peer_public, self.private, MODP_2048_PRIME)
        return secret.to_bytes((MODP_2048_PRIME.bit_length() + 7) // 8, "big")


def derive_shared_key(party: DhParty, peer_public: int) -> bytes:
    """Derive a 32-byte circuit key from a completed DH exchange."""
    return hashlib.sha256(b"flashflow-circuit" + party.shared_secret(peer_public)).digest()


class CircuitKey:
    """Symmetric keystream cipher for one circuit.

    Encryption and decryption are the same XOR operation; the keystream is
    SHA-256(key || block counter) in counter mode, with the counter
    tracked separately per direction so both endpoints stay in sync.
    """

    def __init__(self, key: bytes):
        if len(key) != 32:
            raise ValueError("circuit key must be 32 bytes")
        self._key = key
        # Keystream bytes depend only on (key, counter, length), so
        # verifying the same cell twice (measurer side + relay side) or
        # re-checking the same cell indices across measurements never
        # recomputes the SHA-256 blocks. Bounded; eviction is a full
        # reset (indices are small and dense in practice, so the bound is
        # rarely hit).
        self._span_cache: dict[tuple[int, int], bytes] = {}

    @property
    def key_bytes(self) -> bytes:
        """The 32-byte symmetric key (for rebuilding the key elsewhere)."""
        return self._key

    def _generate_keystream(self, counter: int, length: int) -> bytes:
        blocks = []
        needed = length
        block_index = counter
        while needed > 0:
            blocks.append(
                hashlib.sha256(
                    self._key + block_index.to_bytes(8, "big")
                ).digest()
            )
            needed -= _KEYSTREAM_BLOCK
            block_index += 1
        return b"".join(blocks)[:length]

    def keystream(self, counter: int, length: int) -> bytes:
        """Generate ``length`` keystream bytes starting at block ``counter``."""
        span = (counter, length)
        stream = self._span_cache.get(span)
        if stream is None:
            stream = self._generate_keystream(counter, length)
            if len(self._span_cache) >= _KEYSTREAM_CACHE_MAX:
                self._span_cache.clear()
            self._span_cache[span] = stream
        return stream

    def process(self, data: bytes, cell_index: int) -> bytes:
        """Encrypt/decrypt ``data`` as the ``cell_index``-th cell."""
        # Reserve a disjoint counter range per cell so cells are independent
        # and can be verified out of order.
        blocks_per_cell = (len(data) + _KEYSTREAM_BLOCK - 1) // _KEYSTREAM_BLOCK
        stream = self.keystream(cell_index * blocks_per_cell, len(data))
        # Bytewise XOR via one big-int XOR: identical output, ~10x faster
        # than a per-byte generator on 509-byte cell payloads.
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(len(data), "big")


def establish_circuit_key() -> tuple[CircuitKey, CircuitKey]:
    """Run a full DH exchange; return (client key, relay key).

    Both keys are identical (shared secret); two objects are returned so
    each endpoint owns its instance, as the real protocol would.
    """
    client, relay = DhParty(), DhParty()
    client_key = derive_shared_key(client, relay.public)
    relay_key = derive_shared_key(relay, client.public)
    assert client_key == relay_key
    return CircuitKey(client_key), CircuitKey(relay_key)
