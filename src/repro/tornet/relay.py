"""The Tor relay model (paper §2, §4.1, §6).

A relay's forwarding capacity each second is the minimum of:

- its single-threaded CPU cell-processing capacity (socket-count aware),
- its access-link capacity,
- any operator-configured rate limit (token bucket, 1-second burst),
- the active schedulers' caps (KIST-style for normal traffic; FlashFlow's
  separate measurement scheduler for measurement circuits).

During a FlashFlow measurement the relay enforces the normal-traffic ratio
``r``: cells sent by the normal scheduler may be at most a fraction ``r``
of all cells sent, and the relay sends as much normal traffic as that
allows (paper §4.1). Relay misbehaviour (lying about background traffic,
forging echo cells, showing capacity only when measured) plugs in through
:class:`RelayBehavior`; the honest behaviour is the default.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.hosts import Host
from repro.tornet.cell import Cell
from repro.tornet.cpu import CpuModel
from repro.tornet.kist import kist_rate_cap
from repro.tornet.meassched import measurement_rate_cap
from repro.tornet.observedbw import ObservedBandwidth
from repro.tornet.relaycrypto import CircuitKey
from repro.tornet.tokenbucket import TokenBucket
from repro.rng import fork


@dataclass(frozen=True)
class BehaviorProgram:
    """A behaviour's per-measurement walk, reduced to closed form.

    The vectorized kernel (``repro.kernel``) cannot call back into a
    behaviour object per second, so behaviours that are *stateless within
    one measurement slot* describe themselves as a small set of scalars
    the array walk applies lane-wise. The defaults encode the honest
    behaviour; each scalar maps to one hook:

    - ``enforces_ratio`` -- :meth:`RelayBehavior.enforces_ratio`;
    - ``background_report_scale`` -- an honest-shaped
      :meth:`RelayBehavior.report_background` returning
      ``actual_bytes * scale``;
    - ``measurement_claim_factor`` -- a report derived from measurement
      traffic instead: ``measurement_bytes * factor`` (overrides the
      scale when set; the ratio-cheater's claimed allowance);
    - ``forge_fraction`` -- :meth:`RelayBehavior.echo_payload` forging
      with this probability per checked cell, drawn from the behaviour's
      seeded RNG (replayed by the kernel's verification pass).

    Capacity shaping (:meth:`RelayBehavior.capacity_factor`) needs no
    field: it is slot-constant, so it folds into the compiled base
    capacity. Per-slot decisions (the selective-capacity roll) happen in
    :meth:`RelayBehavior.begin_measurement` before compilation snapshots
    the relay.
    """

    enforces_ratio: bool = True
    background_report_scale: float = 1.0
    measurement_claim_factor: float | None = None
    forge_fraction: float | None = None


#: The honest program -- shared so compiled measurements of honest relays
#: don't allocate a fresh (identical) instance each.
HONEST_PROGRAM = BehaviorProgram()


class RelayBehavior:
    """Hooks a relay's implementation can override; defaults are honest."""

    #: Human-readable label used in experiment output.
    name = "honest"

    def report_background(self, actual_bytes: float, relay: "Relay") -> float:
        """Background bytes the relay *claims* to have forwarded."""
        return actual_bytes

    def echo_payload(self, correct_payload: bytes, relay: "Relay") -> bytes:
        """Payload returned for a measurement cell (honest: the decryption)."""
        return correct_payload

    def capacity_factor(self, being_measured: bool, relay: "Relay") -> float:
        """Multiplier on true capacity (used for selective-capacity attacks)."""
        return 1.0

    def enforces_ratio(self) -> bool:
        """Whether the relay honours the normal-traffic ratio ``r``."""
        return True

    # ------------------------------------------------------------------
    # Kernel-compilation protocol (repro.kernel)
    # ------------------------------------------------------------------

    def kernel_program(self) -> Optional[BehaviorProgram]:
        """This behaviour's closed-form walk, or ``None`` if stateful.

        The base class answers for the *exact* honest type only: an
        unknown subclass inheriting this implementation must never
        silently compile as honest, so anything other than a plain
        ``RelayBehavior`` returns ``None`` (stateful fallback) unless it
        overrides this hook itself.
        """
        return HONEST_PROGRAM if type(self) is RelayBehavior else None

    def begin_measurement(self, relay: "Relay") -> None:
        """Per-slot setup, called once when a measurement is admitted.

        Runs before the kernel snapshots relay state, so slot-constant
        decisions (e.g. the selective-capacity coin flip) land in the
        compiled base capacity. Both the stateful and compiled paths call
        this at the same point, keeping behaviour RNG streams aligned.
        """

    def note_measurement(self, measurement_bytes: float, relay: "Relay") -> None:
        """Observe this second's measurement traffic (before reporting).

        Called each measured second with the bytes of measurement traffic
        the relay just forwarded; behaviours whose background report is
        derived from measurement traffic (the ratio cheater, colluders)
        record it here.
        """

    def settle_verify_replay(
        self, rng_state: object, cells_forged: int
    ) -> None:
        """Apply the state effects of a kernel-side verification replay.

        The kernel replays echo-cell forgery decisions on a copy of the
        behaviour's RNG; this hook writes back the advanced RNG state and
        the forged-cell count so subsequent stateful use is bit-identical
        to having run the slot in-process.
        """


@dataclass
class SecondReport:
    """What happened at a relay during one second of a measurement slot."""

    #: Measurement bytes the relay echoed (ground truth, observed by
    #: measurers as received bytes).
    measurement_bytes: float
    #: Normal (client) bytes actually forwarded.
    background_actual_bytes: float
    #: Normal bytes the relay *reported* to the BWAuth (may be a lie).
    background_reported_bytes: float
    #: The relay's total forwarding capacity this second (diagnostics).
    capacity_bits: float


@dataclass
class Relay:
    """A Tor relay.

    Use :meth:`with_capacity` for the common case where a single intrinsic
    Tor-forwarding capacity is known (e.g. relays sampled from a consensus);
    construct directly to model CPU/link/rate-limit components separately
    (the §6 Internet-experiment targets).
    """

    fingerprint: str
    nickname: str = ""
    host: Host | None = None
    cpu: CpuModel = field(default_factory=CpuModel)
    #: Operator rate limit in bit/s (RelayBandwidthRate); None = unlimited.
    rate_limit: float | None = None
    flags: frozenset[str] = frozenset({"Running", "Valid"})
    behavior: RelayBehavior = field(default_factory=RelayBehavior)
    #: Fractional per-second capacity jitter.
    jitter: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        self.observed_bw = ObservedBandwidth()
        self._bucket: TokenBucket | None = None
        if self.rate_limit is not None:
            self._bucket = TokenBucket(rate=self.rate_limit / 8.0)
        # Forked lazily on first draw: campaign-scale networks create tens
        # of thousands of relays, most never measured in a given bench.
        self._lazy_rng: random.Random | None = None
        #: Noise draws consumed column-wise (repro.tornet.columnar) but
        #: not yet replayed on the CPython stream; resolved on first
        #: stateful access so both paths stay on identical positions.
        self._noise_skip = 0
        #: (bwauth_id, period_index) pairs already measured; the relay only
        #: accepts one measurement per BWAuth per period (paper §4.1).
        self._measured_in: set[tuple[str, int]] = set()

    @property
    def _rng(self) -> random.Random:
        if self._lazy_rng is None:
            self._lazy_rng = fork(self.seed, f"relay-{self.fingerprint}")
        if self._noise_skip:
            skip, self._noise_skip = self._noise_skip, 0
            gauss, jitter = self._lazy_rng.gauss, self.jitter
            for _ in range(skip):
                gauss(1.0, jitter)
        return self._lazy_rng

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def with_capacity(
        cls,
        fingerprint: str,
        capacity_bits: float,
        nickname: str = "",
        flags: frozenset[str] | None = None,
        behavior: RelayBehavior | None = None,
        seed: int = 0,
        jitter: float = 0.02,
    ) -> "Relay":
        """A relay whose intrinsic Tor capacity is ``capacity_bits``.

        The CPU model is made the binding constraint; link capacity is set
        comfortably above it.
        """
        host = Host(
            name=f"host-{fingerprint}",
            link_capacity=capacity_bits * 2.0,
            cpu_cores=4,
        )
        relay = cls(
            fingerprint=fingerprint,
            nickname=nickname or fingerprint[:8],
            host=host,
            cpu=CpuModel(max_forward_bits=capacity_bits),
            flags=flags or frozenset({"Running", "Valid", "Fast"}),
            behavior=behavior or RelayBehavior(),
            seed=seed,
            jitter=jitter,
        )
        return relay

    def set_rate_limit(self, rate_bits: float | None) -> None:
        """Set or clear RelayBandwidthRate (burst = one second of rate).

        The Appendix E.2 experiments approximate relays of varied
        capacities exactly this way.
        """
        self.rate_limit = rate_bits
        self._bucket = (
            TokenBucket(rate=rate_bits / 8.0) if rate_bits is not None else None
        )

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def true_capacity(self) -> float:
        """Ground-truth Tor capacity (bit/s) at the reference socket count.

        Defined as the forwarding rate achievable at the CPU's
        overhead-free socket count, bounded by link and rate limit -- the
        quantity the paper calls *Tor ground truth* (§2).
        """
        # Chained comparisons instead of min([...]): this property is on
        # the analytic campaign path's per-job hot loop, and the list
        # build + min() call dominated its cost. Same minimum, same bits.
        cap = self.cpu.max_forward_bits
        host = self.host
        if host is not None and host.link_capacity < cap:
            cap = host.link_capacity
        rate = self.rate_limit
        if rate is not None and rate < cap:
            cap = rate
        return cap

    def forwarding_capacity(
        self,
        n_measurement_sockets: int = 0,
        n_background_sockets: int = 0,
        being_measured: bool = False,
    ) -> float:
        """Instantaneous forwarding capacity (bit/s) before the rate limit.

        The scheduler caps apply per traffic class: KIST for background
        sockets, the measurement scheduler for measurement sockets; CPU and
        link bound their sum.
        """
        scheduler_cap = 0.0
        if n_background_sockets:
            scheduler_cap += kist_rate_cap(n_background_sockets)
        if n_measurement_sockets:
            scheduler_cap += measurement_rate_cap(n_measurement_sockets)
        caps = [
            self.cpu.effective_capacity(
                n_normal_sockets=n_background_sockets,
                n_measurement_sockets=n_measurement_sockets,
            ),
            scheduler_cap,
        ]
        if self.host is not None:
            caps.append(self.host.link_capacity)
        capacity = min(caps)
        capacity *= self.behavior.capacity_factor(being_measured, self)
        return max(0.0, capacity)

    def _noise(self) -> float:
        return max(0.5, self._rng.gauss(1.0, self.jitter))

    # ------------------------------------------------------------------
    # Kernel compilation hooks (repro.kernel)
    # ------------------------------------------------------------------

    @property
    def bucket(self) -> TokenBucket | None:
        """The operator rate-limit bucket, if configured."""
        return self._bucket

    @property
    def is_behaviorally_honest(self) -> bool:
        """True when the behaviour is exactly the honest default.

        The vectorized kernel compiles any behaviour exposing a
        :class:`BehaviorProgram` (honest and the four common attacks);
        genuinely stateful custom behaviours -- those whose
        :meth:`RelayBehavior.kernel_program` returns ``None`` -- fall
        back to the stateful :meth:`measured_second` path.
        """
        return type(self.behavior) is RelayBehavior

    def draw_noise_series(self, n: int) -> list[float]:
        """Pre-draw ``n`` per-second jitter factors.

        Consumes the relay's RNG stream exactly as ``n`` successive
        :meth:`_noise` calls would, so an externalised walk over the
        returned series is bit-identical to ``n`` stateful
        :meth:`measured_second` calls.
        """
        gauss = self._rng.gauss
        jitter = self.jitter
        return [max(0.5, gauss(1.0, jitter)) for _ in range(n)]

    def settle_measured_walk(
        self,
        total_bytes_per_second: list[float],
        final_bucket_tokens: float | None = None,
    ) -> None:
        """Apply the state effects of an externally executed walk.

        The kernel runs the per-second measurement walk outside the relay
        (possibly in another process); this settles the side effects the
        stateful walk would have had: observed-bandwidth history and the
        token bucket's final fill level.
        """
        if self._bucket is not None and final_bucket_tokens is not None:
            self._bucket.tokens = final_bucket_tokens
        for forwarded in total_bytes_per_second:
            self.observed_bw.record_second(forwarded)

    # ------------------------------------------------------------------
    # Measurement admission (paper §4.1)
    # ------------------------------------------------------------------

    def accept_measurement(self, bwauth_id: str, period_index: int) -> bool:
        """Accept a measurement from a BWAuth, once per period."""
        key = (bwauth_id, period_index)
        if key in self._measured_in:
            return False
        self._measured_in.add(key)
        return True

    # ------------------------------------------------------------------
    # Per-second forwarding
    # ------------------------------------------------------------------

    def idle_second(
        self,
        background_demand_bits: float,
        n_background_sockets: int = 20,
        t: int | None = None,
    ) -> float:
        """Forward normal traffic for one second; returns bits forwarded."""
        capacity = self.forwarding_capacity(
            n_background_sockets=n_background_sockets
        )
        if self._bucket is not None:
            capacity = min(capacity, self._bucket.available_second() * 8.0)
        capacity *= self._noise()
        forwarded_bits = min(background_demand_bits, capacity)
        if self._bucket is not None:
            self._bucket.consume_second(forwarded_bits / 8.0)
        self.observed_bw.record_second(forwarded_bits / 8.0, t)
        return forwarded_bits

    def measured_second(
        self,
        measurement_supply_bits: float,
        background_demand_bits: float,
        ratio_r: float,
        n_measurement_sockets: int,
        n_background_sockets: int = 20,
        t: int | None = None,
        external_factor: float = 1.0,
        noise: float | None = None,
    ) -> SecondReport:
        """One second of a measurement slot at this relay.

        ``measurement_supply_bits`` is what the measurers can push this
        second (after their own TCP/link constraints); the relay echoes as
        much as its capacity allows while reserving at most ``r`` of total
        for normal traffic. ``external_factor`` scales capacity for
        environment effects outside the relay's control (cross traffic,
        time-of-day congestion) sampled per measurement by the caller.
        ``noise`` substitutes a pre-drawn jitter factor (from
        :meth:`draw_noise_series`) for the stateful draw, letting callers
        fix the whole slot's RNG consumption up front.
        """
        if not 0 <= ratio_r < 1:
            raise ValueError("ratio r must be in [0, 1)")
        capacity = self.forwarding_capacity(
            n_measurement_sockets=n_measurement_sockets,
            n_background_sockets=n_background_sockets,
            being_measured=True,
        )
        if self._bucket is not None:
            # Peek: the bucket bounds this second's forwarding; tokens are
            # settled below against bytes actually forwarded, so an
            # under-supplied second leaves the burst allowance intact.
            capacity = min(capacity, self._bucket.available_second() * 8.0)
        capacity *= (self._noise() if noise is None else noise) * external_factor

        # Allocate capacity between measurement and normal traffic.
        if self.behavior.enforces_ratio():
            background = min(background_demand_bits, ratio_r * capacity)
            measurement = min(measurement_supply_bits, capacity - background)
            if ratio_r < 1:
                background = min(
                    background, measurement * ratio_r / (1.0 - ratio_r)
                )
            measurement = min(measurement_supply_bits, capacity - background)
        else:
            # A relay ignoring the ratio gives everything to measurement
            # traffic (maximising its estimate) -- see attacks.relays.
            measurement = min(measurement_supply_bits, capacity)
            background = min(
                background_demand_bits, max(0.0, capacity - measurement)
            )

        self.behavior.note_measurement(measurement / 8.0, self)
        reported = self.behavior.report_background(background / 8.0, self) * 8.0
        total_bits = measurement + background
        if self._bucket is not None:
            self._bucket.consume_second(total_bits / 8.0)
        self.observed_bw.record_second(total_bits / 8.0, t)
        return SecondReport(
            measurement_bytes=measurement / 8.0,
            background_actual_bytes=background / 8.0,
            background_reported_bytes=reported / 8.0,
            capacity_bits=capacity,
        )

    # ------------------------------------------------------------------
    # Echo-cell processing (verification path, paper §4.1/§5)
    # ------------------------------------------------------------------

    def process_measurement_cell(
        self, cell: Cell, key: CircuitKey, cell_index: int
    ) -> Cell:
        """Decrypt a measurement cell and return the echo.

        An honest relay returns the proper decryption; a forging behaviour
        substitutes whatever it likes and is caught by the measurer's
        random content checks with overwhelming probability.
        """
        correct = key.process(cell.payload, cell_index)
        return cell.with_payload(self.behavior.echo_payload(correct, self))
