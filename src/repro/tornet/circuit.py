"""Circuits and window-based flow control (paper §2, Appendix C).

A circuit is a client's path through (up to) three relays. Tor enforces a
circuit-level window of 1000 in-flight cells (SENDME at every 100), which
caps a single circuit's throughput at ``window / RTT``. The paper's lab
experiments proxy three curl streams per circuit because "by running at
least two application streams, one will max out the circuit's flow control
limit" -- a single stream is additionally capped by its 500-cell stream
window.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.units import CELL_LEN

#: Tor circuit-level window, cells.
CIRCUIT_WINDOW_CELLS = 1000
#: Tor stream-level window, cells.
STREAM_WINDOW_CELLS = 500

_circ_ids = itertools.count(1)


def circuit_rate_cap(rtt_seconds: float, n_streams: int = 1) -> float:
    """Flow-control throughput cap (bit/s) of one circuit.

    With a single stream the stream window binds; with two or more the
    circuit window does.
    """
    if rtt_seconds <= 0:
        return float("inf")
    if n_streams <= 0:
        return 0.0
    window_cells = min(CIRCUIT_WINDOW_CELLS,
                       STREAM_WINDOW_CELLS * n_streams)
    return window_cells * CELL_LEN * 8.0 / rtt_seconds


@dataclass
class Circuit:
    """A built circuit: ordered relay fingerprints plus stream bookkeeping."""

    path: tuple[str, ...]
    n_streams: int = 1
    circ_id: int = field(default_factory=lambda: next(_circ_ids))
    #: Marked true for FlashFlow measurement circuits (one-hop, unextendable).
    is_measurement: bool = False

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("circuit needs at least one relay")
        if self.is_measurement and len(self.path) != 1:
            raise ValueError("measurement circuits are one-hop and cannot "
                             "be extended (paper §4.1)")
        if len(set(self.path)) != len(self.path):
            raise ValueError("a relay may appear only once in a circuit")

    @property
    def entry(self) -> str:
        return self.path[0]

    @property
    def exit(self) -> str:
        return self.path[-1]

    def rate_cap(self, rtt_seconds: float) -> float:
        """This circuit's flow-control cap at the given end-to-end RTT."""
        return circuit_rate_cap(rtt_seconds, self.n_streams)
