"""Observed-bandwidth self-estimation (paper §2, tor-spec §2.1.1).

A relay's *observed bandwidth* is "the highest Tor throughput that the
relay was able to sustain for any 10-second period during the last 5
days". The relay publishes it in its server descriptor every 18 hours, and
the *advertised bandwidth* is the minimum of the observed bandwidth and any
configured rate limit.

This heuristic is the root cause of the under-estimation the paper's §3
quantifies: an under-utilised relay never sustains its capacity for 10
seconds, so it never learns it. The implementation keeps a 10-second
sliding window of per-second byte counts plus per-day maxima of the window
mean, so memory stays O(window + days) regardless of run length.
"""

from __future__ import annotations

from collections import deque

from repro.units import DAY

#: Length of the sustained-throughput window, seconds.
WINDOW_SECONDS = 10
#: History horizon, days.
HISTORY_DAYS = 5


class ObservedBandwidth:
    """Tracks a relay's observed bandwidth (bytes/second).

    Two recording granularities are supported:

    - :meth:`record_second` -- per-second byte counts, exact semantics;
    - :meth:`record_span` -- a constant rate sustained over a span of
      seconds (used by coarse-grained simulations); any span of at least
      ``WINDOW_SECONDS`` contributes its rate directly.
    """

    def __init__(self, now: int = 0):
        self._window: deque[float] = deque(maxlen=WINDOW_SECONDS)
        self._window_sum = 0.0
        # Day bucket -> best 10 s mean seen during that day (bytes/sec).
        self._day_max: dict[int, float] = {}
        self._now = int(now)

    @property
    def now(self) -> int:
        return self._now

    def _day(self, t: int) -> int:
        return t // DAY

    def _note_window_mean(self, t: int, mean_rate: float) -> None:
        day = self._day(t)
        if mean_rate > self._day_max.get(day, 0.0):
            self._day_max[day] = mean_rate
        self._expire(t)

    def _expire(self, t: int) -> None:
        cutoff = self._day(t) - HISTORY_DAYS
        stale = [d for d in self._day_max if d < cutoff]
        for d in stale:
            del self._day_max[d]

    def record_second(self, bytes_forwarded: float, t: int | None = None) -> None:
        """Record one second of forwarding ending at time ``t``."""
        t = self._now + 1 if t is None else int(t)
        if t < self._now:
            raise ValueError("time moved backwards")
        if t > self._now + 1:
            # Idle gap: the sliding window drains.
            self._window.clear()
            self._window_sum = 0.0
        self._now = t
        if len(self._window) == WINDOW_SECONDS:
            self._window_sum -= self._window[0]
        self._window.append(bytes_forwarded)
        self._window_sum += bytes_forwarded
        if len(self._window) == WINDOW_SECONDS:
            self._note_window_mean(t, self._window_sum / WINDOW_SECONDS)

    def record_span(self, rate_bytes_per_sec: float, start: int,
                    duration: int) -> None:
        """Record a constant ``rate`` sustained from ``start`` for ``duration`` s."""
        if duration <= 0:
            return
        end = start + duration
        if duration >= WINDOW_SECONDS:
            # A full window at this rate exists within the span; attribute it
            # to each day the span touches.
            day = self._day(start)
            while day <= self._day(end - 1):
                if rate_bytes_per_sec > self._day_max.get(day, 0.0):
                    self._day_max[day] = rate_bytes_per_sec
                day += 1
            self._now = max(self._now, end)
            self._window.clear()
            self._window_sum = 0.0
            self._expire(end)
        else:
            for t in range(start, end):
                self.record_second(rate_bytes_per_sec, t + 1)

    def observed(self, t: int | None = None) -> float:
        """Current observed bandwidth (bytes/sec): best window in 5 days."""
        t = self._now if t is None else int(t)
        self._expire(t)
        if not self._day_max:
            return 0.0
        return max(self._day_max.values())
