"""Directory authorities and the shared-randomness protocol (paper §2, §4.3).

The DirAuths act as trust anchors: they collect relay descriptors, take the
**median** of the per-BWAuth weight measurements for each relay, and sign
hourly consensuses. FlashFlow's randomized measurement schedule is seeded
from Tor's shared-randomness protocol, reproduced here as the standard
commit-reveal construction over SHA-256: each authority commits to a random
value, then reveals; the seed is the hash of all reveals, so no minority of
authorities can bias it.
"""

from __future__ import annotations

import hashlib
import statistics
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.rng import fork
from repro.tornet.consensus import Consensus, RouterStatus


@dataclass
class DirectoryAuthority:
    """One directory authority; trusts exactly one BWAuth (paper §4)."""

    name: str
    trusted_bwauth: str | None = None


def median_vote(values: list[float]) -> float:
    """The DirAuths' median aggregation of BWAuth measurements."""
    if not values:
        raise ProtocolError("cannot take the median of zero votes")
    return float(statistics.median(values))


def build_consensus(
    valid_after: int,
    bwauth_weights: dict[str, dict[str, float]],
    flags: dict[str, frozenset[str]] | None = None,
    min_votes: int = 1,
) -> Consensus:
    """Combine per-BWAuth weight votes into a consensus.

    ``bwauth_weights`` maps bwauth name -> {fingerprint -> weight}. A relay
    enters the consensus once at least ``min_votes`` BWAuths measured it;
    its weight is the median of the available votes (paper §4: "the
    DirAuths place the median of their measurements in the consensus").
    """
    flags = flags or {}
    votes: dict[str, list[float]] = {}
    for weights in bwauth_weights.values():
        for fingerprint, weight in weights.items():
            votes.setdefault(fingerprint, []).append(weight)
    consensus = Consensus(valid_after=valid_after)
    for fingerprint, relay_votes in votes.items():
        if len(relay_votes) < min_votes:
            continue
        consensus.add(
            RouterStatus(
                fingerprint=fingerprint,
                weight=median_vote(relay_votes),
                flags=flags.get(
                    fingerprint, frozenset({"Running", "Valid"})
                ),
            )
        )
    return consensus


class SharedRandomness:
    """Commit-reveal shared randomness among authorities (srv-spec).

    Rounds proceed: every authority commits ``H(reveal)``; once all commits
    are in, authorities reveal; each reveal is checked against its commit;
    the round seed is ``SHA-256(sorted reveals)``. The FlashFlow
    measurement schedule derives its per-period randomness from this seed,
    so relays cannot predict when they will be measured (paper §4.3).
    """

    def __init__(self, authority_names: list[str], seed: int = 0):
        if not authority_names:
            raise ProtocolError("need at least one authority")
        self._names = sorted(authority_names)
        self._rng = fork(seed, "shared-randomness")
        self._commits: dict[str, bytes] = {}
        self._reveals: dict[str, bytes] = {}
        self._phase = "commit"

    @property
    def phase(self) -> str:
        return self._phase

    def make_reveal(self) -> bytes:
        """Generate a fresh 32-byte reveal value (for an honest authority)."""
        return self._rng.getrandbits(256).to_bytes(32, "big")

    @staticmethod
    def commitment(reveal: bytes) -> bytes:
        return hashlib.sha256(b"commit" + reveal).digest()

    def submit_commit(self, name: str, commit: bytes) -> None:
        if self._phase != "commit":
            raise ProtocolError("commit phase is over")
        if name not in self._names:
            raise ProtocolError(f"unknown authority {name!r}")
        self._commits[name] = commit
        if len(self._commits) == len(self._names):
            self._phase = "reveal"

    def submit_reveal(self, name: str, reveal: bytes) -> None:
        if self._phase != "reveal":
            raise ProtocolError("not in reveal phase")
        if self.commitment(reveal) != self._commits.get(name):
            raise ProtocolError(f"authority {name!r} reveal does not match commit")
        self._reveals[name] = reveal
        if len(self._reveals) == len(self._names):
            self._phase = "done"

    def seed(self) -> bytes:
        """The agreed 32-byte seed; valid once every authority revealed."""
        if self._phase != "done":
            raise ProtocolError("protocol not complete")
        material = b"".join(self._reveals[n] for n in self._names)
        return hashlib.sha256(b"shared-random" + material).digest()

    @classmethod
    def run_round(cls, authority_names: list[str], seed: int = 0) -> bytes:
        """Run a full honest round and return the shared seed."""
        protocol = cls(authority_names, seed=seed)
        reveals = {name: protocol.make_reveal() for name in protocol._names}
        for name, reveal in reveals.items():
            protocol.submit_commit(name, cls.commitment(reveal))
        for name, reveal in reveals.items():
            protocol.submit_reveal(name, reveal)
        return protocol.seed()
