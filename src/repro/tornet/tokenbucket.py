"""Token-bucket rate limiting (Tor's BandwidthRate / BandwidthBurst).

Tor relays and FlashFlow measurer processes limit throughput with a token
bucket: tokens refill at ``rate`` bytes/second up to ``burst`` bytes. Tor's
default sets burst to one second of rate, which is why the paper's Figure 7
shows a one-second spike at measurement start -- the bucket is full when
the flood begins, so the first second forwards roughly twice the configured
rate.
"""

from __future__ import annotations


class TokenBucket:
    """Byte-based token bucket.

    ``rate`` is the refill rate in bytes/second; ``burst`` the bucket size
    in bytes (defaults to one second of rate, Tor's convention).
    """

    def __init__(self, rate: float, burst: float | None = None,
                 start_full: bool = True):
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self.rate = float(rate)
        self.burst = float(rate if burst is None else burst)
        if self.burst < 0:
            raise ValueError("burst must be non-negative")
        self.tokens = self.burst if start_full else 0.0

    def refill(self, seconds: float = 1.0) -> None:
        """Add ``seconds`` worth of tokens, clamped to the burst size."""
        if seconds < 0:
            raise ValueError("cannot refill negative time")
        self.tokens = min(self.burst, self.tokens + self.rate * seconds)

    def available(self) -> float:
        """Bytes that could be consumed right now."""
        return self.tokens

    def consume(self, n_bytes: float) -> float:
        """Consume up to ``n_bytes``; returns the amount actually granted."""
        if n_bytes < 0:
            raise ValueError("cannot consume negative bytes")
        granted = min(n_bytes, self.tokens)
        self.tokens -= granted
        return granted

    def available_second(self) -> float:
        """Bytes obtainable over the next second without consuming them.

        Stored tokens plus the second's refill (refill interleaves with
        consumption on Tor's sub-second bucket ticks).
        """
        return self.tokens + self.rate

    def consume_second(self, n_bytes: float) -> float:
        """Consume ``n_bytes`` over one second of wall time.

        Like :meth:`take_second` but intended for the peek-then-settle
        pattern: call :meth:`available_second` to bound a decision, then
        settle with the bytes actually forwarded.
        """
        return self.take_second(n_bytes)

    def take_second(self, requested_bytes: float) -> float:
        """Consume up to ``requested_bytes`` over one second of wall time.

        Refill and consumption interleave within the second (Tor refills
        its buckets on sub-second ticks), so a saturated consumer drains
        both the stored tokens *and* the second's refill: a full bucket
        yields ``burst + rate`` in the first second -- the one-second
        spike visible at the start of the paper's Figure 7 -- and exactly
        ``rate`` per second thereafter.
        """
        if requested_bytes < 0:
            raise ValueError("cannot consume negative bytes")
        available = self.tokens + self.rate
        granted = min(requested_bytes, available)
        self.tokens = min(self.burst, available - granted)
        return granted

    def state(self) -> tuple[float, float, float]:
        """(tokens, rate, burst) snapshot for externalised bucket walks.

        The vectorized measurement kernel snapshots bucket state at
        compile time, advances it with :func:`take_second_array`, and
        settles the final token count back via
        :meth:`repro.tornet.relay.Relay.settle_measured_walk`.
        """
        return (self.tokens, self.rate, self.burst)


def available_second_array(tokens, rate):
    """Vectorized twin of :meth:`TokenBucket.available_second`.

    Operates elementwise on numpy arrays (or plain floats) of bucket
    state, performing exactly the scalar method's operations so results
    are bit-identical per element.
    """
    return tokens + rate


def take_second_array(tokens, rate, burst, requested_bytes):
    """Vectorized twin of :meth:`TokenBucket.take_second`.

    Returns ``(granted, new_tokens)`` elementwise; bit-identical to the
    scalar method per element. ``numpy`` is imported lazily so the module
    stays dependency-free for scalar users.
    """
    import numpy as np

    available = tokens + rate
    granted = np.minimum(requested_bytes, available)
    new_tokens = np.minimum(burst, available - granted)
    return granted, new_tokens
