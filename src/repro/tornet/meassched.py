"""FlashFlow's measurement-cell scheduler (paper §4.1).

"The target relay schedules cells on measurement circuits using a separate
cell scheduler to ensure high throughput even with fewer sockets than
typical for a Tor relay." The measurement scheduler round-robins across
measurement circuits with large write quanta, so a single measurement
socket can carry the relay's full forwarding capacity -- the property
behind the paper's Figure 12 single-socket results (1,269 Mbit/s peak).
"""

from __future__ import annotations

from repro.units import gbit

#: Per-socket throughput the measurement scheduler sustains. High enough
#: that CPU/link/TCP limits always bind first.
MEASUREMENT_PER_SOCKET_CAP = gbit(1.6)


def measurement_rate_cap(
    n_sockets: int, per_socket_cap: float = MEASUREMENT_PER_SOCKET_CAP
) -> float:
    """Aggregate scheduler cap (bit/s) for measurement traffic."""
    if n_sockets < 0:
        raise ValueError("socket count cannot be negative")
    return n_sockets * per_socket_cap
