"""Columnar (structure-of-arrays) network state for Tor-scale campaigns.

A :class:`NetworkColumns` holds the whole network's relay state as
fingerprint-indexed numpy arrays -- capacities, rate limits, token-bucket
state, Guard/Exit flags, jitter -- and :class:`ColumnarTorNetwork`
preserves the existing :class:`~repro.tornet.network.TorNetwork` /
:class:`~repro.tornet.relay.Relay` API as thin views over those arrays.
Views are real :class:`Relay` instances (created lazily and cached, so
object identity behaves like the plain dict-of-relays network); their
token buckets read and write the column arrays, which stay the source of
truth for bucket state.

Two things make Tor-scale (10^5--10^6 relays) networks practical:

- :func:`synthesize_columns` draws the whole capacity/flag sample
  column-wise.  The uniform stream comes from a numpy ``RandomState``
  transplanted to the exact MT19937 position of the CPython
  ``random.Random`` the scalar loop uses (both wrap the same MT19937
  core and the same 53-bit output formula), and the lognormal chain is
  evaluated with *scalar* ``math`` transcendentals -- ``np.log``/
  ``np.exp`` are not bit-identical to ``math.log``/``math.exp`` on every
  libm, and bit-identity with the object path is the contract here.
- Aggregates (:meth:`ColumnarTorNetwork.capacities`,
  ``total_capacity``/``max_capacity``/``percentile_capacity``) run as
  array reductions that replicate the scalar arithmetic exactly
  (left-to-right ``sum`` over the materialized list; the same
  interpolation expression), falling back to the object path whenever
  relays were added or replaced.

:func:`bulk_noise_rows` is the kernel's column-wise jitter predraw
(tentpole part 2): it reproduces ``Relay.draw_noise_series`` for many
relays without touching their CPython RNGs, recording the consumed draws
as a pending skip that the relay's lazy ``_rng`` property replays if the
stateful stream is ever needed again.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, MutableMapping

import numpy as np

from repro.rng import fork, seed_from
from repro.tornet.network import (
    _MIN_CAPACITY,
    JULY_2019_MAX_CAPACITY,
    JULY_2019_RELAY_COUNT,
    _LOGNORMAL_MEDIAN,
    _LOGNORMAL_SIGMA,
    TorNetwork,
)
from repro.tornet.relay import Relay
from repro.tornet.tokenbucket import TokenBucket
from repro.units import mbit

_TWOPI = 2.0 * math.pi

#: Interned flag sets for the four synthesized flag combinations; the
#: object path builds an equal-by-value frozenset per relay.
_FLAGS = {
    (False, False): frozenset({"Running", "Valid", "Fast"}),
    (True, False): frozenset({"Running", "Valid", "Fast", "Guard"}),
    (False, True): frozenset({"Running", "Valid", "Fast", "Exit"}),
    (True, True): frozenset({"Running", "Valid", "Fast", "Guard", "Exit"}),
}


# ----------------------------------------------------------------------
# MT19937 stream bridging (CPython random.Random <-> numpy RandomState)
# ----------------------------------------------------------------------


def transplant_state(rand_state) -> np.random.RandomState:
    """A ``RandomState`` at exactly a ``random.Random``'s MT19937 position.

    ``rand_state`` is ``random.Random.getstate()``.  Both generators wrap
    the same MT19937 core and produce doubles with the same
    ``genrand_res53`` formula, so after the transplant their uniform
    streams are bit-identical.
    """
    rs = np.random.RandomState()
    rs.set_state(
        ("MT19937", np.array(rand_state[1][:-1], dtype=np.uint32),
         rand_state[1][-1])
    )
    return rs


def _randomstate_for_seed(seed: int) -> np.random.RandomState:
    """A ``RandomState`` matching ``random.Random(seed)``'s stream.

    CPython seeds MT19937 via ``init_by_array`` over the seed's 32-bit
    little-endian words; numpy does the same for an array key, and the
    resulting states are identical for multi-word keys.  Single-word
    keys (seed < 2**32 -- essentially never produced by ``seed_from``'s
    64-bit hashes) differ, so those transplant the state instead.
    """
    if 2**32 <= seed < 2**64:
        key = np.array([seed & 0xFFFFFFFF, seed >> 32], dtype=np.uint32)
        return np.random.RandomState(key)
    return transplant_state(random.Random(seed).getstate())


# ----------------------------------------------------------------------
# The column store
# ----------------------------------------------------------------------


@dataclass
class NetworkColumns:
    """Fingerprint-indexed arrays holding the network's relay state.

    The arrays are the source of truth: relay views read capacities and
    flags from here at construction and proxy token-bucket state through
    :class:`ColumnTokenBucket`, so settling a measured walk on a view
    updates ``bucket_tokens`` in place.
    """

    prefix: str
    #: Relay ``seed`` is ``seed_base + index`` (the synthesizer's layout).
    seed_base: int
    fingerprints: list[str]
    #: Intrinsic (CPU-bound) Tor capacity, bit/s.
    capacity: np.ndarray
    #: Host access-link capacity, bit/s.
    link_capacity: np.ndarray
    #: Operator rate limit, bit/s; NaN encodes "unlimited".
    rate_limit: np.ndarray
    #: Token-bucket state in bytes (zeros where ``has_bucket`` is False).
    bucket_tokens: np.ndarray
    bucket_rate: np.ndarray
    bucket_burst: np.ndarray
    has_bucket: np.ndarray
    is_guard: np.ndarray
    is_exit: np.ndarray
    #: Fractional per-second capacity jitter per relay.
    jitter: np.ndarray
    _index: dict[str, int] | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def _indices(self) -> dict[str, int]:
        if self._index is None:
            self._index = {
                fp: i for i, fp in enumerate(self.fingerprints)
            }
        return self._index

    def index_of(self, fingerprint: str) -> int:
        return self._indices()[fingerprint]

    def has(self, fingerprint: str) -> bool:
        return fingerprint in self._indices()

    def true_capacity_array(self) -> np.ndarray:
        """Per-relay ground-truth capacity, bit-identical to the views.

        Replicates :attr:`Relay.true_capacity`'s chained comparisons
        (CPU bound, then link if strictly smaller, then rate limit if
        set and strictly smaller) elementwise.
        """
        cap = np.where(
            self.link_capacity < self.capacity, self.link_capacity,
            self.capacity,
        )
        limit = self.rate_limit
        limited = ~np.isnan(limit) & (limit < cap)
        return np.where(limited, limit, cap)

    def set_rate_limit(self, index: int, rate_bits: float | None) -> None:
        """Column-side twin of :meth:`Relay.set_rate_limit`."""
        if rate_bits is None:
            self.rate_limit[index] = np.nan
            self.has_bucket[index] = False
            self.bucket_rate[index] = 0.0
            self.bucket_burst[index] = 0.0
            self.bucket_tokens[index] = 0.0
            return
        # Validates rate/burst and computes the start-full fill exactly
        # like the object path's fresh bucket.
        bucket = TokenBucket(rate=rate_bits / 8.0)
        self.rate_limit[index] = rate_bits
        self.bucket_rate[index] = bucket.rate
        self.bucket_burst[index] = bucket.burst
        self.bucket_tokens[index] = bucket.tokens
        self.has_bucket[index] = True

    def bucket_state(self, index: int) -> tuple[float, float, float]:
        """(tokens, rate, burst) snapshot straight from the columns."""
        return (
            float(self.bucket_tokens[index]),
            float(self.bucket_rate[index]),
            float(self.bucket_burst[index]),
        )


class ColumnTokenBucket(TokenBucket):
    """A :class:`TokenBucket` whose fill level lives in the columns.

    ``tokens`` is a property proxying ``columns.bucket_tokens[index]``,
    so every inherited method (``take_second``, ``consume``, ``state``)
    reads and writes the array; the columns stay authoritative for
    bucket state while views share the scalar walk logic bit for bit.
    """

    def __init__(self, columns: NetworkColumns, index: int) -> None:
        self._columns = columns
        self._col_index = index
        self.rate = float(columns.bucket_rate[index])
        self.burst = float(columns.bucket_burst[index])

    @property
    def tokens(self) -> float:
        return float(self._columns.bucket_tokens[self._col_index])

    @tokens.setter
    def tokens(self, value: float) -> None:
        self._columns.bucket_tokens[self._col_index] = value


class ColumnRelay(Relay):
    """A relay view over one column index.

    Identical to a plain :class:`Relay` except that rate-limit changes
    write through to the columns (keeping the vectorized aggregates
    exact) and the token bucket proxies the column arrays.
    """

    def set_rate_limit(self, rate_bits: float | None) -> None:
        columns: NetworkColumns = self._columns
        index: int = self._col_index
        columns.set_rate_limit(index, rate_bits)
        self.rate_limit = rate_bits
        self._bucket = (
            ColumnTokenBucket(columns, index) if rate_bits is not None else None
        )


def _make_view(columns: NetworkColumns, index: int) -> ColumnRelay:
    """Materialize the ``index``-th relay exactly as the object path does."""
    from repro.netsim.hosts import Host
    from repro.tornet.cpu import CpuModel

    fingerprint = columns.fingerprints[index]
    capacity = float(columns.capacity[index])
    limit = float(columns.rate_limit[index])
    relay = ColumnRelay(
        fingerprint=fingerprint,
        nickname=f"{columns.prefix}{index}",
        host=Host(
            name=f"host-{fingerprint}",
            link_capacity=float(columns.link_capacity[index]),
            cpu_cores=4,
        ),
        cpu=CpuModel(max_forward_bits=capacity),
        rate_limit=None if math.isnan(limit) else limit,
        flags=_FLAGS[
            (bool(columns.is_guard[index]), bool(columns.is_exit[index]))
        ],
        jitter=float(columns.jitter[index]),
        seed=columns.seed_base + index,
    )
    relay._columns = columns
    relay._col_index = index
    if columns.has_bucket[index]:
        relay._bucket = ColumnTokenBucket(columns, index)
    return relay


class RelayViews(MutableMapping):
    """``dict[str, Relay]``-compatible lazy view over the columns.

    Views are cached on first access so repeated lookups return the
    same object (matching dict semantics -- behaviour mutations and
    admission state stick).  ``add``/``__setitem__`` store overrides in
    a side dict; replaced fingerprints keep their column position in
    iteration order, new ones append, exactly like a dict.
    """

    def __init__(self, columns: NetworkColumns) -> None:
        self._columns = columns
        self._cache: dict[int, ColumnRelay] = {}
        self._overrides: dict[str, Relay] = {}
        self._deleted: set[str] = set()

    @property
    def is_pure(self) -> bool:
        """True while no relay was added, replaced, or removed."""
        return not self._overrides and not self._deleted

    def view(self, index: int) -> ColumnRelay:
        relay = self._cache.get(index)
        if relay is None:
            relay = _make_view(self._columns, index)
            self._cache[index] = relay
        return relay

    def __getitem__(self, fingerprint: str) -> Relay:
        override = self._overrides.get(fingerprint)
        if override is not None:
            return override
        if fingerprint in self._deleted:
            raise KeyError(fingerprint)
        return self.view(self._columns.index_of(fingerprint))

    def __setitem__(self, fingerprint: str, relay: Relay) -> None:
        # A deleted column fingerprint stays marked deleted: like a dict,
        # deleting and re-adding a key moves it to the end of iteration
        # (the override tail), while replacing a live key keeps its slot.
        self._overrides[fingerprint] = relay

    def __delitem__(self, fingerprint: str) -> None:
        in_columns = self._columns.has(fingerprint)
        if fingerprint in self._overrides:
            del self._overrides[fingerprint]
            if in_columns:
                self._deleted.add(fingerprint)
        elif in_columns and fingerprint not in self._deleted:
            self._deleted.add(fingerprint)
        else:
            raise KeyError(fingerprint)

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._overrides:
            return True
        if fingerprint in self._deleted:
            return False
        return self._columns.has(fingerprint)

    def __iter__(self) -> Iterator[str]:
        columns, overrides = self._columns, self._overrides
        deleted = self._deleted
        for fp in columns.fingerprints:
            if fp not in deleted:
                yield fp
        for fp in overrides:
            if not columns.has(fp) or fp in deleted:
                yield fp

    def __len__(self) -> int:
        n = len(self._columns) - len(self._deleted)
        for fp in self._overrides:
            if not self._columns.has(fp) or fp in self._deleted:
                n += 1
        return n


class ColumnarTorNetwork(TorNetwork):
    """A :class:`TorNetwork` whose relay state lives in column arrays.

    Drop-in compatible: ``network.relays`` quacks like the plain dict,
    ``network[fp]`` returns a real (cached) :class:`Relay`, and the
    aggregate methods produce bit-identical values to the object path --
    via vectorized fast paths while the network is untouched, via the
    inherited object walks once relays were added or replaced.
    """

    def __init__(self, columns: NetworkColumns) -> None:
        self.columns = columns
        self.relays = RelayViews(columns)

    def _pure_capacities(self) -> np.ndarray | None:
        if not self.relays.is_pure:
            return None
        return self.columns.true_capacity_array()

    def capacities(self) -> dict[str, float]:
        caps = self._pure_capacities()
        if caps is None:
            return super().capacities()
        return dict(zip(self.columns.fingerprints, caps.tolist()))

    def total_capacity(self) -> float:
        caps = self._pure_capacities()
        if caps is None or len(caps) == 0:
            return super().total_capacity()
        # sum() over the list, not np.sum: numpy's pairwise summation is
        # not bit-identical to the object path's left-to-right fold.
        return sum(caps.tolist())

    def max_capacity(self) -> float:
        caps = self._pure_capacities()
        if caps is None or len(caps) == 0:
            return super().max_capacity()
        return float(caps.max())

    def percentile_capacity(self, pct: float) -> float:
        caps = self._pure_capacities()
        if caps is None or len(caps) == 0:
            return super().percentile_capacity(pct)
        values = np.sort(caps)
        if len(values) == 1:
            return float(values[0])
        rank = (pct / 100.0) * (len(values) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(values) - 1)
        frac = rank - low
        return float(values[low] * (1 - frac) + values[high] * frac)


# ----------------------------------------------------------------------
# Vectorized synthesis (tentpole part 1)
# ----------------------------------------------------------------------


def synthesize_columns(
    n_relays: int = JULY_2019_RELAY_COUNT,
    seed: int = 0,
    median: float = _LOGNORMAL_MEDIAN,
    sigma: float = _LOGNORMAL_SIGMA,
    max_capacity: float = JULY_2019_MAX_CAPACITY,
    prefix: str = "relay",
) -> NetworkColumns:
    """Column-wise twin of the scalar ``synthesize_network`` loop.

    Consumes the same forked RNG stream in the same order, so
    capacities and flags are bit-identical to the object path.  The
    scalar loop interleaves one ``gauss`` (two uniforms on even relays,
    the cached pair value on odd ones) with two flag uniforms per
    relay; the uniform indices below encode exactly that interleaving.
    """
    rng = fork(seed, f"network-{prefix}-{n_relays}")
    rs = transplant_state(rng.getstate())
    n = n_relays
    total = 3 * n + (n & 1)
    uniforms = rs.random_sample(total) if total else np.empty(0)
    u = uniforms.tolist()

    mu = math.log(median)
    exp_, log_, sqrt_ = math.exp, math.log, math.sqrt
    cos_, sin_ = math.cos, math.sin
    raw = [0.0] * n
    # Each pair of relays shares one Box-Muller uniform pair: the even
    # relay takes the cosine branch, the odd one the cached sine branch
    # (CPython's gauss_next).  Scalar math keeps libm bit-parity.
    for i in range(0, n, 2):
        base = 3 * i
        x2pi = u[base] * _TWOPI
        g2rad = sqrt_(-2.0 * log_(1.0 - u[base + 1]))
        raw[i] = exp_(mu + (cos_(x2pi) * g2rad) * sigma)
        j = i + 1
        if j < n:
            raw[j] = exp_(mu + (sin_(x2pi) * g2rad) * sigma)
    capacity = np.maximum(
        _MIN_CAPACITY, np.minimum(max_capacity, np.array(raw, dtype=np.float64))
    )

    # Flag uniforms: relay i reads indices 3i+2,3i+3 (even) or
    # 3i+1,3i+2 (odd) of the shared stream.
    idx = np.arange(n)
    guard_at = np.where(idx % 2 == 0, 3 * idx + 2, 3 * idx + 1)
    size_factor = np.minimum(1.0, capacity / mbit(100))
    is_guard = uniforms[guard_at] < 0.05 + 0.35 * size_factor
    is_exit = uniforms[guard_at + 1] < 0.05 + 0.25 * size_factor

    zeros = np.zeros(n, dtype=np.float64)
    return NetworkColumns(
        prefix=prefix,
        seed_base=seed,
        fingerprints=[f"{prefix}{i:05d}" for i in range(n)],
        capacity=capacity,
        link_capacity=capacity * 2.0,
        rate_limit=np.full(n, np.nan),
        bucket_tokens=zeros.copy(),
        bucket_rate=zeros.copy(),
        bucket_burst=zeros.copy(),
        has_bucket=np.zeros(n, dtype=bool),
        is_guard=is_guard,
        is_exit=is_exit,
        jitter=np.full(n, 0.02),
    )


# ----------------------------------------------------------------------
# Column-wise jitter predraw (tentpole part 2)
# ----------------------------------------------------------------------


def _gauss_stream(relay: Relay) -> tuple[np.random.RandomState, float | None]:
    """(uniform stream, pending gauss value) at the relay's position.

    Reconstructs where ``relay._rng.gauss`` would draw next -- including
    draws recorded as a pending ``_noise_skip`` by earlier bulk rounds
    -- without instantiating or advancing the CPython RNG.
    """
    if relay._lazy_rng is not None:
        state = relay._lazy_rng.getstate()
        rs = transplant_state(state)
        pending = state[2]
    else:
        rs = _randomstate_for_seed(
            seed_from(relay.seed, f"relay-{relay.fingerprint}")
        )
        pending = None
    skip = relay._noise_skip
    if skip:
        if pending is not None:
            skip -= 1
            pending = None
        if skip:
            n_pairs = (skip + 1) // 2
            u = rs.random_sample(2 * n_pairs)
            if skip % 2:
                x2pi = float(u[-2]) * _TWOPI
                g2rad = math.sqrt(-2.0 * math.log(1.0 - float(u[-1])))
                pending = math.sin(x2pi) * g2rad
    return rs, pending


#: Row length above which the numpy pair loop beats a CPython mirror
#: (transplanting a RandomState costs ~100 gauss draws' worth of setup).
_MIRROR_THRESHOLD = 192


def _mirror_row(relay: Relay, n: int) -> np.ndarray:
    """Slot-scale ``noise_row``: draw from a throwaway CPython mirror.

    A copy of the relay's ``random.Random`` (state transplant preserves
    the cached ``gauss_next``) replays any pending skip and then runs
    draw_noise_series' own loop -- bit-identical by construction, and
    for slot-length rows much cheaper than numpy RandomState setup.
    """
    if relay._lazy_rng is not None:
        rng = random.Random()
        rng.setstate(relay._lazy_rng.getstate())
    else:
        rng = fork(relay.seed, f"relay-{relay.fingerprint}")
    gauss, jitter = rng.gauss, relay.jitter
    for _ in range(relay._noise_skip):
        gauss(1.0, jitter)
    return np.fromiter(
        (max(0.5, gauss(1.0, jitter)) for _ in range(n)),
        dtype=np.float64,
        count=n,
    )


def noise_row(relay: Relay, n: int) -> np.ndarray:
    """``Relay.draw_noise_series(n)`` without touching the relay's RNG.

    Bit-identical values; the caller is responsible for recording the
    consumed draws via ``relay._noise_skip += n`` once the row is
    actually used in place of the stateful draw.
    """
    if n + relay._noise_skip < _MIRROR_THRESHOLD:
        return _mirror_row(relay, n)
    rs, pending = _gauss_stream(relay)
    jitter = relay.jitter
    out = [0.0] * n
    k = 0
    if pending is not None and n > 0:
        out[0] = max(0.5, 1.0 + pending * jitter)
        k = 1
    remaining = n - k
    if remaining > 0:
        u = rs.random_sample(2 * ((remaining + 1) // 2)).tolist()
        sqrt_, log_, cos_, sin_ = math.sqrt, math.log, math.cos, math.sin
        j = 0
        while k < n:
            x2pi = u[j] * _TWOPI
            g2rad = sqrt_(-2.0 * log_(1.0 - u[j + 1]))
            j += 2
            out[k] = max(0.5, 1.0 + (cos_(x2pi) * g2rad) * jitter)
            k += 1
            if k < n:
                out[k] = max(0.5, 1.0 + (sin_(x2pi) * g2rad) * jitter)
                k += 1
    return np.array(out, dtype=np.float64)


def bulk_noise_rows(requests: list[tuple[Relay, int]]) -> list[np.ndarray]:
    """Pre-draw jitter rows for many (relay, n) pairs column-wise."""
    return [noise_row(relay, n) for relay, n in requests]
