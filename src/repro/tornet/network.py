"""Whole-network container and the synthetic July-2019 Tor network.

Paper §7 drives its efficiency simulation from archived July 2019
consensuses: a median of 6,419 relays with ~608 Gbit/s total capacity, a
maximum relay capacity of 998 Mbit/s, a 75th-percentile advertised
bandwidth of 51 Mbit/s, and a median of 3 (max 98) new relays per hourly
consensus. :func:`synthesize_network` generates networks matching that
shape from a clipped lognormal capacity distribution; the calibration test
suite pins the aggregate statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.rng import fork
from repro.tornet.relay import Relay
from repro.units import mbit

#: July 2019 calibration targets (paper §7).
JULY_2019_RELAY_COUNT = 6419
JULY_2019_TOTAL_CAPACITY = 608e9
JULY_2019_MAX_CAPACITY = mbit(998)
JULY_2019_NEW_RELAY_SEED = mbit(51)

#: Clipped-lognormal parameters reproducing the July 2019 aggregates.
_LOGNORMAL_MEDIAN = mbit(30)
_LOGNORMAL_SIGMA = 1.6
_MIN_CAPACITY = mbit(0.1)


@dataclass
class TorNetwork:
    """A set of relays with ground-truth capacities."""

    relays: dict[str, Relay] = field(default_factory=dict)

    def add(self, relay: Relay) -> None:
        self.relays[relay.fingerprint] = relay

    def __len__(self) -> int:
        return len(self.relays)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.relays

    def __getitem__(self, fingerprint: str) -> Relay:
        return self.relays[fingerprint]

    def capacities(self) -> dict[str, float]:
        """Ground-truth capacity (bit/s) per relay."""
        return {fp: r.true_capacity for fp, r in self.relays.items()}

    def total_capacity(self) -> float:
        if not self.relays:
            raise ConfigurationError(
                "total_capacity is undefined on an empty network"
            )
        return sum(r.true_capacity for r in self.relays.values())

    def max_capacity(self) -> float:
        if not self.relays:
            raise ConfigurationError(
                "max_capacity is undefined on an empty network"
            )
        return max(r.true_capacity for r in self.relays.values())

    def percentile_capacity(self, pct: float) -> float:
        """The ``pct``-th percentile of relay capacities (0-100).

        ``pct=0`` is the minimum capacity, ``pct=100`` the maximum;
        intermediate ranks interpolate linearly between order statistics.
        """
        if not self.relays:
            raise ConfigurationError(
                "percentile_capacity is undefined on an empty network"
            )
        values = sorted(r.true_capacity for r in self.relays.values())
        if len(values) == 1:
            return values[0]
        rank = (pct / 100.0) * (len(values) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(values) - 1)
        frac = rank - low
        return values[low] * (1 - frac) + values[high] * frac

    def subset(self, fingerprints: list[str]) -> "TorNetwork":
        return TorNetwork({fp: self.relays[fp] for fp in fingerprints})


def sample_capacity(rng, median: float = _LOGNORMAL_MEDIAN,
                    sigma: float = _LOGNORMAL_SIGMA,
                    max_capacity: float = JULY_2019_MAX_CAPACITY) -> float:
    """Draw one relay capacity from the clipped lognormal."""
    value = math.exp(rng.gauss(math.log(median), sigma))
    return max(_MIN_CAPACITY, min(max_capacity, value))


def _assign_flags(capacity: float, rng) -> frozenset[str]:
    """Assign Guard/Exit flags, skewed toward higher-capacity relays.

    Roughly matches the live network: ~15% of relays are exits and ~35%
    guards, with big relays far more likely to hold the flags.
    """
    flags = {"Running", "Valid", "Fast"}
    size_factor = min(1.0, capacity / mbit(100))
    if rng.random() < 0.05 + 0.35 * size_factor:
        flags.add("Guard")
    if rng.random() < 0.05 + 0.25 * size_factor:
        flags.add("Exit")
    return frozenset(flags)


def synthesize_network(
    n_relays: int = JULY_2019_RELAY_COUNT,
    seed: int = 0,
    median: float = _LOGNORMAL_MEDIAN,
    sigma: float = _LOGNORMAL_SIGMA,
    max_capacity: float = JULY_2019_MAX_CAPACITY,
    prefix: str = "relay",
    columnar: bool = True,
) -> TorNetwork:
    """Generate a synthetic Tor network with July-2019-like capacities.

    ``columnar=True`` (the default) materializes the network as a
    :class:`repro.tornet.columnar.ColumnarTorNetwork`: relay state is
    sampled column-wise into numpy arrays (Tor-scale networks in well
    under a second) and relays are lazy views over the columns.  The
    result is bit-identical to ``columnar=False`` -- same fingerprints,
    capacities, flags, seeds, and downstream RNG streams -- which keeps
    the plain object path available as the oracle.
    """
    if columnar:
        from repro.tornet.columnar import ColumnarTorNetwork, synthesize_columns

        return ColumnarTorNetwork(
            synthesize_columns(
                n_relays, seed, median, sigma, max_capacity, prefix
            )
        )
    rng = fork(seed, f"network-{prefix}-{n_relays}")
    network = TorNetwork()
    for index in range(n_relays):
        capacity = sample_capacity(rng, median, sigma, max_capacity)
        fingerprint = f"{prefix}{index:05d}"
        relay = Relay.with_capacity(
            fingerprint=fingerprint,
            capacity_bits=capacity,
            nickname=f"{prefix}{index}",
            flags=_assign_flags(capacity, rng),
            seed=seed + index,
        )
        network.add(relay)
    return network


def sample_scaled_network(
    full: TorNetwork, fraction: float = 0.05, seed: int = 0
) -> TorNetwork:
    """Sample a scaled-down network (the paper's 5% Shadow network, §7).

    Sampling is stratified by capacity decile so the scaled network keeps
    the full network's capacity distribution shape, following the Shadow
    modelling best practices the paper cites [20].
    """
    rng = fork(seed, "scaled-network")
    from repro.tornet.columnar import ColumnarTorNetwork

    if isinstance(full, ColumnarTorNetwork) and full.relays.is_pure:
        # Column fast path: the stable argsort over the capacity column
        # is the same permutation as sorted() over the views (iteration
        # order is column order), and the randrange stream is untouched,
        # so the picked relays -- shared view objects, like the object
        # path's shared Relay objects -- are identical.
        import numpy as np

        order = np.argsort(
            full.columns.true_capacity_array(), kind="stable"
        ).tolist()
        take = max(1, round(len(order) * fraction))
        stride = len(order) / take
        picked = []
        for i in range(take):
            window_start = int(i * stride)
            window_end = max(window_start + 1, int((i + 1) * stride))
            picked.append(
                full.relays.view(order[rng.randrange(window_start, window_end)])
            )
        return TorNetwork({r.fingerprint: r for r in picked})
    ordered = sorted(
        full.relays.values(), key=lambda r: r.true_capacity
    )
    take = max(1, round(len(ordered) * fraction))
    picked = []
    stride = len(ordered) / take
    for i in range(take):
        window_start = int(i * stride)
        window_end = max(window_start + 1, int((i + 1) * stride))
        picked.append(ordered[rng.randrange(window_start, window_end)])
    return TorNetwork({r.fingerprint: r for r in picked})


def new_relay_arrivals(
    n_consensuses: int, seed: int = 0, mean_rate: float = 3.0,
    burst_probability: float = 0.01, burst_max: int = 98,
) -> list[int]:
    """Replay-style counts of new relays per hourly consensus (paper §7).

    Poisson arrivals (median 3) with rare large bursts (the paper saw a
    max of 98 -- e.g. after outages or Sybil events).
    """
    rng = fork(seed, "new-relay-arrivals")
    counts = []
    for _ in range(n_consensuses):
        if rng.random() < burst_probability:
            counts.append(rng.randint(20, burst_max))
        else:
            # Poisson sampling via Knuth's method (rates are tiny).
            limit = math.exp(-mean_rate)
            k, product = 0, rng.random()
            while product > limit:
                k += 1
                product *= rng.random()
            counts.append(k)
    return counts
