"""Relay CPU cell-processing model (paper §6.1, Appendices C/D).

Tor runs all cell scheduling in a single thread, so a relay's forwarding
capacity is bounded by one CPU core regardless of core count. The paper's
lab machine processed 1.25 Gbit/s at peak; its US-SW Internet host managed
890 Mbit/s.

Managing sockets costs CPU, and the cost differs by scheduler:

- *normal* (KIST) sockets are expensive past the ~20-socket peak -- the
  lab's Figure 11 shows capacity declining as sockets are added beyond it;
- *measurement* sockets are handled by FlashFlow's separate scheduler,
  designed to be cheap per socket, so a full ``s = 160``-socket
  measurement costs only a few percent of capacity (otherwise FlashFlow
  could not measure within the paper's Figure 6 error bounds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import mbit

#: Socket count at which normal-scheduler overhead starts to bite
#: (the lab peak in Figure 11).
OVERHEAD_FREE_SOCKETS = 20
#: Fractional capacity cost per normal socket beyond the free count,
#: calibrated to Figure 11's ~12% decline between 20 and 100 sockets.
NORMAL_OVERHEAD_PER_SOCKET = 0.0017
#: Fractional capacity cost per measurement socket (separate scheduler;
#: ~4.6% at the full s = 160, within the paper's error budget).
MEASUREMENT_OVERHEAD_PER_SOCKET = 0.0003


@dataclass
class CpuModel:
    """Single-threaded cell-processing capacity of a relay.

    ``max_forward_bits`` is the peak Tor forwarding rate one core sustains
    on this hardware (crypto + scheduling for 514-byte cells).
    """

    max_forward_bits: float = mbit(1248)
    overhead_free_sockets: int = OVERHEAD_FREE_SOCKETS
    normal_overhead_per_socket: float = NORMAL_OVERHEAD_PER_SOCKET
    measurement_overhead_per_socket: float = MEASUREMENT_OVERHEAD_PER_SOCKET

    def effective_capacity(
        self, n_normal_sockets: int = 0, n_measurement_sockets: int = 0
    ) -> float:
        """Forwarding capacity (bit/s) with the given socket mix."""
        if n_normal_sockets < 0 or n_measurement_sockets < 0:
            raise ValueError("socket counts cannot be negative")
        overhead = (
            self.normal_overhead_per_socket
            * max(0, n_normal_sockets - self.overhead_free_sockets)
            + self.measurement_overhead_per_socket * n_measurement_sockets
        )
        return self.max_forward_bits / (1.0 + overhead)

    def utilization(self, forward_bits: float, n_normal_sockets: int = 0,
                    n_measurement_sockets: int = 0) -> float:
        """Fraction of one core consumed to forward at ``forward_bits``."""
        capacity = self.effective_capacity(
            n_normal_sockets, n_measurement_sockets
        )
        if capacity <= 0:
            return 1.0
        return min(1.0, forward_bits / capacity)
