"""Weighted relay/path selection (paper §2).

Clients choose circuit relays with probability proportional to consensus
weight, subject to position constraints: the exit must carry the Exit flag,
the guard the Guard flag, and a relay appears at most once per circuit.
The quality of load balancing is exactly the quality of these weights,
which is what Figures 8 and 9 evaluate.
"""

from __future__ import annotations

import bisect
import itertools
import random

from repro.errors import ConfigurationError
from repro.tornet.consensus import Consensus


class WeightedSampler:
    """O(log n) weighted sampling without replacement support."""

    def __init__(self, items: list[str], weights: list[float]):
        if len(items) != len(weights):
            raise ConfigurationError("items and weights must align")
        pairs = [(i, w) for i, w in zip(items, weights) if w > 0]
        self._items = [i for i, _ in pairs]
        self._cumulative = list(itertools.accumulate(w for _, w in pairs))

    def __len__(self) -> int:
        return len(self._items)

    @property
    def total(self) -> float:
        return self._cumulative[-1] if self._cumulative else 0.0

    def sample(self, rng: random.Random, exclude: set[str] | None = None,
               max_tries: int = 64) -> str:
        """Draw one item, rejection-sampling around ``exclude``."""
        if not self._items:
            raise ConfigurationError("cannot sample from an empty set")
        exclude = exclude or set()
        for _ in range(max_tries):
            point = rng.random() * self.total
            index = bisect.bisect_right(self._cumulative, point)
            index = min(index, len(self._items) - 1)
            choice = self._items[index]
            if choice not in exclude:
                return choice
        # Dense exclusion: fall back to explicit renormalisation.
        remaining = [
            (i, w)
            for i, w in zip(
                self._items,
                [self._cumulative[0]]
                + [
                    b - a
                    for a, b in zip(self._cumulative, self._cumulative[1:])
                ],
            )
            if i not in exclude
        ]
        if not remaining:
            raise ConfigurationError("every candidate is excluded")
        total = sum(w for _, w in remaining)
        point = rng.random() * total
        acc = 0.0
        for item, weight in remaining:
            acc += weight
            if point <= acc:
                return item
        return remaining[-1][0]


class PathSelector:
    """Builds three-hop paths weighted by consensus weight."""

    def __init__(self, consensus: Consensus, seed: int = 0):
        self._consensus = consensus
        self._rng = random.Random(seed)
        routers = list(consensus.routers.values())
        self._all = WeightedSampler(
            [r.fingerprint for r in routers], [r.weight for r in routers]
        )
        guards = [r for r in routers if r.has_flag("Guard")]
        exits = [r for r in routers if r.has_flag("Exit")]
        # Small test networks may lack flagged relays; degrade gracefully to
        # the full set rather than failing to build circuits.
        self._guards = WeightedSampler(
            [r.fingerprint for r in (guards or routers)],
            [r.weight for r in (guards or routers)],
        )
        self._exits = WeightedSampler(
            [r.fingerprint for r in (exits or routers)],
            [r.weight for r in (exits or routers)],
        )

    def select_path(self, rng: random.Random | None = None) -> tuple[str, str, str]:
        """Select a (guard, middle, exit) path."""
        rng = rng or self._rng
        exit_fp = self._exits.sample(rng)
        guard_fp = self._guards.sample(rng, exclude={exit_fp})
        middle_fp = self._all.sample(rng, exclude={exit_fp, guard_fp})
        return (guard_fp, middle_fp, exit_fp)

    def selection_probability(self, fingerprint: str) -> float:
        """Approximate per-circuit selection probability (any position)."""
        return self._consensus.normalized_weight(fingerprint)
