"""Network consensus documents (paper §2).

The directory authorities vote hourly and publish a consensus listing every
usable relay with its flags and load-balancing weight. Clients select
relays with probability proportional to (normalized) consensus weight,
which is what makes weight accuracy matter (paper §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import HOUR

#: Consensus voting cadence, seconds.
CONSENSUS_INTERVAL = HOUR


@dataclass(frozen=True)
class RouterStatus:
    """One relay's entry in a consensus."""

    fingerprint: str
    weight: float
    flags: frozenset[str] = frozenset({"Running", "Valid"})
    nickname: str = ""

    def has_flag(self, flag: str) -> bool:
        return flag in self.flags


@dataclass
class Consensus:
    """A signed network consensus: valid-after time plus router entries."""

    valid_after: int
    routers: dict[str, RouterStatus] = field(default_factory=dict)

    def add(self, status: RouterStatus) -> None:
        self.routers[status.fingerprint] = status

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.routers

    def __len__(self) -> int:
        return len(self.routers)

    def total_weight(self) -> float:
        return sum(r.weight for r in self.routers.values())

    def normalized_weight(self, fingerprint: str) -> float:
        """W(r, t): this relay's fraction of total consensus weight."""
        total = self.total_weight()
        if total <= 0:
            return 0.0
        return self.routers[fingerprint].weight / total

    def normalized_weights(self) -> dict[str, float]:
        """All relays' normalized weights (sums to 1 when any weight > 0)."""
        total = self.total_weight()
        if total <= 0:
            return {fp: 0.0 for fp in self.routers}
        return {fp: r.weight / total for fp, r in self.routers.items()}

    def with_flag(self, flag: str) -> list[RouterStatus]:
        return [r for r in self.routers.values() if r.has_flag(flag)]
