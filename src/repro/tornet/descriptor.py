"""Server descriptors (paper §2, tor-spec dir-spec §2.1.1).

Every relay publishes a server descriptor roughly every 18 hours carrying
its self-measured *observed bandwidth* and any configured rate limits. The
*advertised bandwidth* -- the quantity TorFlow (and the paper's §3
analysis) consumes -- is the minimum of the observed bandwidth and the
rate limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import HOUR

#: Descriptor publication interval, seconds.
PUBLISH_INTERVAL = 18 * HOUR


@dataclass(frozen=True)
class ServerDescriptor:
    """One published server descriptor.

    Bandwidth fields are in bytes/second, matching the real descriptor
    format; use :attr:`advertised_bw` for the min(observed, limits) value.
    """

    fingerprint: str
    published_at: int
    observed_bw: float
    bandwidth_rate: float | None = None
    bandwidth_burst: float | None = None
    nickname: str = ""

    @property
    def advertised_bw(self) -> float:
        """min(observed bandwidth, configured rate limits), bytes/sec."""
        values = [self.observed_bw]
        if self.bandwidth_rate is not None:
            values.append(self.bandwidth_rate)
        if self.bandwidth_burst is not None:
            values.append(self.bandwidth_burst)
        return min(values)


def due_for_publish(last_published: int | None, now: int,
                    interval: int = PUBLISH_INTERVAL) -> bool:
    """Whether a relay should publish a fresh descriptor at time ``now``."""
    return last_published is None or now - last_published >= interval
