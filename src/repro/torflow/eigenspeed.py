"""EigenSpeed baseline (paper §8; Snader & Borisov).

EigenSpeed has every relay record the average per-stream throughput it
observes with every other relay and report the vector to the DirAuths,
who assemble the matrix T and iteratively compute its principal
eigenvector as the relay weights. The computation is initialised from a
set of trusted relays, and relays whose values change atypically can be
marked malicious and removed.

The paper's Table 2 cites three attacks from PeerFlow's analysis [25]:
Sybil amplification of unevaluated relays, an increase-framing attack, and
a targeted liar attack inflating colluders' weight by up to ~21.5x. The
liar attack is implemented in :func:`eigenspeed_liar_attack`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import fork_numpy


@dataclass
class EigenSpeed:
    """The DirAuth-side EigenSpeed computation."""

    #: Convergence tolerance for power iteration.
    tolerance: float = 1e-10
    max_iterations: int = 1000
    #: Relative per-round weight change beyond which a relay is flagged
    #: (the liar-detection heuristic).
    change_flag_threshold: float = 100.0

    def observation_matrix(
        self,
        capacities: dict[str, float],
        seed: int = 0,
        noise_std: float = 0.10,
    ) -> tuple[list[str], np.ndarray]:
        """Honest pairwise observations: per-stream throughput.

        A stream between relays i and j is bottlenecked by the slower
        side's per-stream share; we model share as proportional to
        capacity (both relays serve many streams), symmetric by
        construction, with lognormal-ish observation noise.
        """
        relays = sorted(capacities)
        n = len(relays)
        rng = fork_numpy(seed, "eigenspeed-observations")
        caps = np.array([capacities[fp] for fp in relays])
        pairwise_min = np.minimum.outer(caps, caps)
        noise = rng.lognormal(mean=0.0, sigma=noise_std, size=(n, n))
        noise = (noise + noise.T) / 2.0  # keep observations symmetric
        matrix = pairwise_min * noise
        np.fill_diagonal(matrix, 0.0)
        return relays, matrix

    def compute_weights(
        self,
        relays: list[str],
        matrix: np.ndarray,
        trusted: list[str] | None = None,
    ) -> dict[str, float]:
        """Principal eigenvector via power iteration (trusted init)."""
        n = len(relays)
        if matrix.shape != (n, n):
            raise ConfigurationError("matrix does not match relay list")
        if n == 0:
            return {}
        index = {fp: i for i, fp in enumerate(relays)}
        vector = np.zeros(n)
        if trusted:
            for fp in trusted:
                vector[index[fp]] = 1.0
        else:
            vector[:] = 1.0
        vector /= vector.sum()

        # Row-normalise so the iteration is a weighted trust propagation.
        row_sums = matrix.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        transition = matrix / row_sums

        for _ in range(self.max_iterations):
            nxt = vector @ transition
            total = nxt.sum()
            if total <= 0:
                break
            nxt /= total
            if np.abs(nxt - vector).max() < self.tolerance:
                vector = nxt
                break
            vector = nxt

        # Scale the normalized eigenvector back to throughput units using
        # trusted relays (whose observations are assumed accurate).
        scale = 1.0
        anchor = trusted or relays
        anchor_idx = [index[fp] for fp in anchor if vector[index[fp]] > 0]
        if anchor_idx:
            observed = np.array(
                [matrix[i].max() for i in anchor_idx]
            )
            weights_at_anchor = vector[anchor_idx]
            positive = weights_at_anchor > 0
            if positive.any():
                scale = float(
                    np.median(observed[positive] / weights_at_anchor[positive])
                )
        return {fp: float(vector[index[fp]] * scale) for fp in relays}


def eigenspeed_liar_attack(
    capacities: dict[str, float],
    malicious: list[str],
    inflation: float = 1000.0,
    trusted: list[str] | None = None,
    seed: int = 0,
) -> dict[str, float]:
    """Targeted liar attack: colluders inflate observations of each other.

    Returns summary statistics including the weight-inflation factor the
    colluders achieve (their weight share divided by their capacity
    share). PeerFlow's analysis [25] reports 7.4-28.1x depending on the
    trusted set; Table 2 quotes 21.5x.
    """
    system = EigenSpeed()
    relays, honest_matrix = system.observation_matrix(capacities, seed=seed)
    index = {fp: i for i, fp in enumerate(relays)}

    attacked = honest_matrix.copy()
    max_plausible = max(capacities.values()) * inflation
    for a in malicious:
        for b in malicious:
            if a != b:
                attacked[index[a], index[b]] = max_plausible

    honest_weights = system.compute_weights(relays, honest_matrix, trusted)
    attacked_weights = system.compute_weights(relays, attacked, trusted)

    def share(weights: dict[str, float], group: list[str]) -> float:
        total = sum(weights.values())
        if total <= 0:
            return 0.0
        return sum(weights[fp] for fp in group) / total

    capacity_share = sum(capacities[fp] for fp in malicious) / sum(
        capacities.values()
    )
    honest_share = share(honest_weights, malicious)
    attacked_share = share(attacked_weights, malicious)
    return {
        "capacity_share": capacity_share,
        "honest_share": honest_share,
        "attacked_share": attacked_share,
        "inflation_factor": (
            attacked_share / capacity_share if capacity_share > 0 else 0.0
        ),
    }
