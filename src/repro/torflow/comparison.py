"""The Table 2 comparison harness (paper §8).

Compares the four load-balancing systems on the paper's four axes:

============  =========  ================  ================  =========
System        Server BW  Attack advantage  Capacity values?  Speed
============  =========  ================  ================  =========
TorFlow       1 Gbit/s   177x              inferable         2 days
EigenSpeed    0          21.5x             unavailable       1 day
PeerFlow      0          10x               inferable         14 days+
FlashFlow     3 Gbit/s   1.33x             provided          5 hours
============  =========  ================  ================  =========

Attack-advantage entries are *demonstrated* by the attack harnesses in
this package and in :mod:`repro.attacks`; speed entries come from the
measurement-time models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import FlashFlowParams
from repro.units import DAY, HOUR, gbit


@dataclass(frozen=True)
class SystemRow:
    """One row of Table 2."""

    system: str
    server_bandwidth_bits: float
    attack_advantage: float
    capacity_values: str  # "provided" | "inferable" | "unavailable"
    measurement_seconds: float

    @property
    def measurement_days(self) -> float:
        return self.measurement_seconds / DAY

    @property
    def measurement_hours(self) -> float:
        return self.measurement_seconds / HOUR


#: Paper-quoted reference values (what Table 2 prints).
PAPER_TABLE2 = {
    "TorFlow": SystemRow("TorFlow", gbit(1), 177.0, "inferable", 2 * DAY),
    "EigenSpeed": SystemRow("EigenSpeed", 0.0, 21.5, "unavailable", 1 * DAY),
    "PeerFlow": SystemRow("PeerFlow", 0.0, 10.0, "inferable", 14 * DAY),
    "FlashFlow": SystemRow("FlashFlow", gbit(3), 1.33, "provided", 5 * HOUR),
}


def comparison_table(
    torflow_advantage: float | None = None,
    eigenspeed_advantage: float | None = None,
    peerflow_advantage: float | None = None,
    flashflow_hours: float | None = None,
    torflow_seconds: float | None = None,
    params: FlashFlowParams | None = None,
) -> list[SystemRow]:
    """Assemble Table 2, substituting measured values where provided.

    FlashFlow's attack advantage is its structural bound ``1/(1-r)``
    (paper §5), not an empirical best-effort -- it holds at all times.
    """
    params = params or FlashFlowParams()
    rows = [
        SystemRow(
            "TorFlow",
            gbit(1),
            torflow_advantage or PAPER_TABLE2["TorFlow"].attack_advantage,
            "inferable",
            torflow_seconds or PAPER_TABLE2["TorFlow"].measurement_seconds,
        ),
        SystemRow(
            "EigenSpeed",
            0.0,
            eigenspeed_advantage
            or PAPER_TABLE2["EigenSpeed"].attack_advantage,
            "unavailable",
            PAPER_TABLE2["EigenSpeed"].measurement_seconds,
        ),
        SystemRow(
            "PeerFlow",
            0.0,
            peerflow_advantage or PAPER_TABLE2["PeerFlow"].attack_advantage,
            "inferable",
            PAPER_TABLE2["PeerFlow"].measurement_seconds,
        ),
        SystemRow(
            "FlashFlow",
            gbit(3),
            params.inflation_bound,
            "provided",
            (flashflow_hours or 5.0) * HOUR,
        ),
    ]
    return rows


def format_table(rows: list[SystemRow]) -> str:
    """Render rows as the paper's Table 2 layout."""
    header = (
        f"{'System':<12} {'Server BW':>12} {'Attack Adv.':>12} "
        f"{'Capacity?':>12} {'Speed':>12}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        bw = (
            f"{row.server_bandwidth_bits / 1e9:.0f} Gbit/s"
            if row.server_bandwidth_bits
            else "0"
        )
        speed = (
            f"{row.measurement_hours:.1f} h"
            if row.measurement_seconds < DAY
            else f"{row.measurement_days:.1f} d"
        )
        lines.append(
            f"{row.system:<12} {bw:>12} {row.attack_advantage:>11.2f}x "
            f"{row.capacity_values:>12} {speed:>12}"
        )
    return "\n".join(lines)
