"""PeerFlow baseline (paper §8; Johnson et al., PoPETs 2017).

PeerFlow has relays periodically report the total bytes they exchanged
with each other relay; the DirAuths securely aggregate the reports into
relay weights. Security comes from taking, for each relay, a *trusted
quantile* of the byte reports about it: reports are ordered and weighted
by the reporters' own weights, and the statistic is chosen so that an
adversary controlling reporter weight fraction phi cannot raise it beyond
what relays carrying real traffic corroborate.

Key properties reproduced here (Table 2 row):

- with trusted weight fraction tau, a malicious relay inflates its weight
  by at most ~2/tau (10x at the paper's tau = 0.2);
- weight growth per period is additionally capped, so inflation is slow;
- weights are *lower bounds* on capacity (capacity values "inferable");
- a measurement round needs relays to exchange enough traffic, putting
  the full-network measurement time at 14+ days.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import fork_numpy


@dataclass
class PeerFlow:
    """DirAuth-side PeerFlow aggregation."""

    #: Fraction of total weight belonging to trusted relays.
    trusted_fraction: float = 0.2
    #: Quantile of (weight-ordered) peer reports used as the statistic.
    quantile: float = 0.25
    #: Max multiplicative weight growth per measurement period.
    max_growth: float = 1.25

    def __post_init__(self) -> None:
        if not 0 < self.trusted_fraction <= 1:
            raise ConfigurationError("trusted fraction must be in (0, 1]")

    def traffic_reports(
        self,
        capacities: dict[str, float],
        utilization: float = 0.6,
        seed: int = 0,
        noise_std: float = 0.10,
    ) -> tuple[list[str], np.ndarray]:
        """Honest pairwise byte reports for one period.

        Traffic between two relays is proportional to the product of
        their capacities (weight-proportional path selection), scaled so
        each relay carries ``utilization`` of its capacity.
        """
        relays = sorted(capacities)
        caps = np.array([capacities[fp] for fp in relays])
        total = caps.sum()
        if total <= 0:
            raise ConfigurationError("need positive capacities")
        rng = fork_numpy(seed, "peerflow-traffic")
        outer = np.outer(caps, caps) / total
        matrix = outer * utilization
        noise = rng.lognormal(0.0, noise_std, size=matrix.shape)
        matrix = matrix * (noise + noise.T) / 2.0
        np.fill_diagonal(matrix, 0.0)
        return relays, matrix

    def relay_statistic(
        self,
        reports_about: np.ndarray,
        reporter_weights: np.ndarray,
    ) -> float:
        """Weighted-quantile statistic over peer reports about one relay.

        Reports are sorted descending; the statistic is the report at the
        ``quantile`` point of cumulative reporter weight. An adversary
        whose reporters hold weight fraction < quantile cannot raise it.
        """
        order = np.argsort(-reports_about)
        sorted_reports = reports_about[order]
        sorted_weights = reporter_weights[order]
        total = sorted_weights.sum()
        if total <= 0:
            return 0.0
        threshold = self.quantile * total
        cumulative = np.cumsum(sorted_weights)
        idx = int(np.searchsorted(cumulative, threshold))
        idx = min(idx, len(sorted_reports) - 1)
        return float(sorted_reports[idx])

    def compute_weights(
        self,
        relays: list[str],
        reports: np.ndarray,
        previous_weights: dict[str, float] | None = None,
    ) -> dict[str, float]:
        """One period's weights: statistic scaled by total peer traffic."""
        n = len(relays)
        if reports.shape != (n, n):
            raise ConfigurationError("report matrix does not match relays")
        if previous_weights:
            reporter_w = np.array(
                [previous_weights.get(fp, 1.0) for fp in relays]
            )
        else:
            reporter_w = np.ones(n)
        weights = {}
        for i, fp in enumerate(relays):
            # Column i: what each peer says about relay i. The statistic
            # bounds a single relay's self-serving influence; scale by the
            # number of peers carrying the relay's traffic.
            stat = self.relay_statistic(reports[:, i], reporter_w)
            value = stat * n * self.quantile
            if previous_weights and fp in previous_weights:
                value = min(value, previous_weights[fp] * self.max_growth)
            weights[fp] = value
        return weights

    @property
    def inflation_bound(self) -> float:
        """The paper's quoted bound: ~2/tau weight inflation (Table 2)."""
        return 2.0 / self.trusted_fraction


def peerflow_inflation_attack(
    capacities: dict[str, float],
    malicious: list[str],
    inflation: float = 1000.0,
    seed: int = 0,
    trusted_fraction: float = 0.2,
) -> dict[str, float]:
    """Colluding relays inflate byte reports about each other.

    Returns the achieved weight-inflation factor (weight share over
    capacity share). Bounded by the quantile statistic: reports from
    honest relays (who carry the colluders' real traffic) anchor the
    quantile, so inflation stays near ``2/tau`` rather than ``inflation``.
    """
    system = PeerFlow(trusted_fraction=trusted_fraction)
    relays, honest = system.traffic_reports(capacities, seed=seed)
    index = {fp: i for i, fp in enumerate(relays)}

    attacked = honest.copy()
    biggest = honest.max() * inflation
    for a in malicious:
        for b in malicious:
            if a != b:
                attacked[index[a], index[b]] = biggest

    honest_weights = system.compute_weights(relays, honest)
    attacked_weights = system.compute_weights(relays, attacked)

    def share(weights: dict[str, float], group: list[str]) -> float:
        total = sum(weights.values())
        return sum(weights[fp] for fp in group) / total if total > 0 else 0.0

    capacity_share = sum(capacities[fp] for fp in malicious) / sum(
        capacities.values()
    )
    return {
        "capacity_share": capacity_share,
        "honest_share": share(honest_weights, malicious),
        "attacked_share": share(attacked_weights, malicious),
        "inflation_factor": (
            share(attacked_weights, malicious) / capacity_share
            if capacity_share > 0
            else 0.0
        ),
        "theory_bound": system.inflation_bound,
    }
