"""Load-balancing baselines: TorFlow, EigenSpeed, PeerFlow (paper §2, §8).

These are the systems FlashFlow is compared against in Table 2 and in the
Shadow experiments (Figures 8/9):

- :mod:`repro.torflow.scanner` -- TorFlow: 2-hop measurement circuits
  downloading fixed-size files, combined with relay self-reports;
- :mod:`repro.torflow.eigenspeed` -- EigenSpeed: principal-eigenvector
  aggregation of peer throughput observations;
- :mod:`repro.torflow.peerflow` -- PeerFlow: secure aggregation of peer
  byte counts with a trusted-weight anchor;
- :mod:`repro.torflow.comparison` -- the Table 2 harness.
"""

from repro.torflow.eigenspeed import EigenSpeed, eigenspeed_liar_attack
from repro.torflow.peerflow import PeerFlow, peerflow_inflation_attack
from repro.torflow.scanner import (
    TORFLOW_FILE_SIZES,
    TorFlowScanner,
    torflow_weights,
)
from repro.torflow.comparison import SystemRow, comparison_table

__all__ = [
    "EigenSpeed",
    "PeerFlow",
    "SystemRow",
    "TORFLOW_FILE_SIZES",
    "TorFlowScanner",
    "comparison_table",
    "eigenspeed_liar_attack",
    "peerflow_inflation_attack",
    "torflow_weights",
]
