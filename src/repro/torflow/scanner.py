"""TorFlow: Tor's deployed load-balancing scanner (paper §2, §3).

TorFlow measures each relay by building 2-hop circuits through it (the
second hop is another relay chosen for the same measurement) and
downloading one of 13 fixed-size files (2^i KiB, i in 4..16). Every hour
it computes, per relay, the ratio of the relay's measured speed to the
network-mean measured speed, and multiplies the ratio by the relay's
*self-reported* advertised bandwidth to produce its weight.

The two structural weaknesses FlashFlow fixes are visible directly in the
model:

- the advertised bandwidth is a self-report (a malicious relay can claim
  anything -- the Table 2 inflation attack);
- measured speed depends on current congestion and on the random partner
  relay, so an under-utilised relay never demonstrates its capacity and
  weights inherit measurement randomness (paper §3's error analysis).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.rng import fork
from repro.tornet.circuit import circuit_rate_cap

#: The 13 fixed download sizes: 2^i KiB for i in 4..16 (paper §2).
TORFLOW_FILE_SIZES = [2 ** i * 1024 for i in range(4, 17)]


@dataclass
class ScanResult:
    """Per-relay outcome of one TorFlow scanning pass."""

    speeds: dict[str, float] = field(default_factory=dict)
    ratios: dict[str, float] = field(default_factory=dict)

    def mean_speed(self) -> float:
        if not self.speeds:
            return 0.0
        return statistics.fmean(self.speeds.values())


class TorFlowScanner:
    """Models one BWAuth's TorFlow scanning process.

    ``probes_per_relay`` 2-hop circuits are built per relay; each probe's
    download speed is limited by the slack capacity at the target and at
    its random partner (each divided among the concurrent connections the
    relay is serving), the circuit's flow-control cap, and measurement
    noise. The per-relay speed is the mean probe speed, matching
    TorFlow's averaging of recent measurements.
    """

    def __init__(
        self,
        probes_per_relay: int = 4,
        seed: int = 0,
        probe_rtt: float = 0.18,
        noise_std: float = 0.25,
        min_share: float = 0.05,
    ):
        self.probes_per_relay = probes_per_relay
        self.seed = seed
        self.probe_rtt = probe_rtt
        self.noise_std = noise_std
        self.min_share = min_share

    def _probe_speed(
        self,
        capacity: float,
        utilization: float,
        partner_capacity: float,
        partner_utilization: float,
        rng,
    ) -> float:
        """Speed of one measurement download (bit/s)."""
        free_target = max(
            capacity * self.min_share, capacity * (1.0 - utilization)
        )
        free_partner = max(
            partner_capacity * self.min_share,
            partner_capacity * (1.0 - partner_utilization),
        )
        cap = min(
            free_target,
            free_partner,
            circuit_rate_cap(self.probe_rtt, n_streams=1),
        )
        noise = max(0.05, rng.gauss(1.0, self.noise_std))
        return cap * noise

    def scan(
        self,
        capacities: dict[str, float],
        utilizations: dict[str, float],
        weights: dict[str, float] | None = None,
    ) -> ScanResult:
        """One full scanning pass over the network.

        ``utilizations`` is each relay's current load fraction (0..1);
        ``weights`` steers partner selection (defaults to capacities).
        """
        rng = fork(self.seed, "torflow-scan")
        relays = sorted(capacities)
        partner_weights = weights or capacities
        ordered = sorted(relays, key=lambda fp: partner_weights.get(fp, 0.0))
        total_w = sum(partner_weights.get(fp, 0.0) for fp in relays) or 1.0

        def pick_partner(exclude: str) -> str:
            point = rng.random() * total_w
            acc = 0.0
            for fp in ordered:
                acc += partner_weights.get(fp, 0.0)
                if point <= acc and fp != exclude:
                    return fp
            return ordered[-1] if ordered[-1] != exclude else ordered[0]

        result = ScanResult()
        for fp in relays:
            probes = []
            for _ in range(self.probes_per_relay):
                partner = pick_partner(fp)
                probes.append(
                    self._probe_speed(
                        capacities[fp],
                        utilizations.get(fp, 0.0),
                        capacities[partner],
                        utilizations.get(partner, 0.0),
                        rng,
                    )
                )
            result.speeds[fp] = statistics.fmean(probes)

        mean_speed = result.mean_speed()
        if mean_speed > 0:
            result.ratios = {
                fp: speed / mean_speed for fp, speed in result.speeds.items()
            }
        else:
            result.ratios = {fp: 1.0 for fp in relays}
        return result


def torflow_weights(
    advertised_bw: dict[str, float],
    scan: ScanResult,
) -> dict[str, float]:
    """TorFlow's weight: advertised bandwidth x measured speed ratio (§2)."""
    return {
        fp: advertised_bw.get(fp, 0.0) * scan.ratios.get(fp, 1.0)
        for fp in advertised_bw
    }


def scanner_time_estimate(
    n_relays: int,
    scanner_capacity: float,
    mean_download_bytes: float = 16 * 1024 * 1024,
    concurrent_circuits: int = 9,
    overhead_factor: float = 4.0,
) -> float:
    """Rough wall-clock (seconds) for one TorFlow pass over the network.

    Calibrated so a single 1 Gbit/s scanner takes ~2 days for ~6,500
    relays, matching the paper's Table 2 row (BWAuth data [1, 32]). The
    dominant costs are repeated downloads per relay, slow measured
    relays pacing their own measurements, and circuit construction
    overhead -- folded into ``overhead_factor``.
    """
    per_relay_bytes = mean_download_bytes * overhead_factor
    per_relay_seconds = per_relay_bytes * 8.0 / (
        scanner_capacity / concurrent_circuits
    )
    # Slow relays dominate: most of the network is far below the mean
    # capacity, so measured speeds pace far below scanner capacity.
    slow_relay_seconds = 20.0
    return n_relays * (per_relay_seconds + slow_relay_seconds)
