"""Colluding-relay bandwidth inflation (TorMult-style, arXiv:2307.08550).

A set of colluding relays can do something no single relay can: claim
*each other's* measurement traffic as their own background traffic.
While relay A is being measured, its colluders B and C tell the BWAuth
"we are currently forwarding A's measurement cells as normal client
traffic" -- traffic that demonstrably exists on the wire, so a
consistency check against observed totals cannot refute the claim the
way it refutes a lone liar inventing bytes from nothing.

FlashFlow's defence is the same ``y <= x * r/(1-r)`` clamp that bounds
every traffic lie: a colluder's claimed background is capped relative
to the measurement traffic *it* carried, so pooling claims across the
group still cannot push any member past the ``1/(1-r)`` inflation
bound (paper §5). The ``collusion-attack`` registry scenario asserts
exactly that, and contrasts it with TorFlow's self-report scaling,
where the same collusion yields unbounded inflation.

The behaviour is *genuinely stateful across relays* -- each report
depends on what the other group members forwarded during their own
measurements -- so :meth:`CollusionBehavior.kernel_program` inherits
the base ``None`` answer and these specs always take the engine's
stateful fallback path. That is by design: the compiled kernel only
ever lowers per-relay programs (see :mod:`repro.kernel`).
"""

from __future__ import annotations

from repro.tornet.relay import Relay, RelayBehavior


class CollusionGroup:
    """Shared ledger for one colluding clique.

    Each member records the measurement bytes it forwarded in its most
    recent measured second; peers claim those bytes as background.
    """

    def __init__(self) -> None:
        self.members: list["CollusionBehavior"] = []

    def add(self, behavior: "CollusionBehavior") -> None:
        if behavior not in self.members:
            self.members.append(behavior)
        behavior._group = self

    def pooled_bytes(self, excluding: "CollusionBehavior") -> float:
        """Peers' last per-second measurement bytes (never the caller's)."""
        return sum(
            member._last_measurement_bytes
            for member in self.members
            if member is not excluding
        )


class CollusionBehavior(RelayBehavior):
    """Claim colluding peers' measurement traffic as background.

    The relay forwards its real traffic honestly (the capacity split is
    untouched) but its background report is inflated by whatever its
    group peers carried during their own most recent measured seconds.
    The report is always a finite byte count -- collusion games the
    clamp, it does not try to crash it.
    """

    name = "collusion"

    def __init__(self, group: CollusionGroup | None = None):
        self._group: CollusionGroup | None = None
        self._last_measurement_bytes = 0.0
        (group if group is not None else CollusionGroup()).add(self)

    def note_measurement(self, measurement_bytes: float, relay: Relay) -> None:
        self._last_measurement_bytes = measurement_bytes

    def report_background(self, actual_bytes: float, relay: Relay) -> float:
        assert self._group is not None
        return actual_bytes + self._group.pooled_bytes(excluding=self)

    # kernel_program is intentionally NOT overridden: reports depend on
    # cross-relay state, so the spec must stay on the stateful path.


class CollusionFactory:
    """``seed -> CollusionBehavior`` factory that forms cliques.

    Registered in the adversary-mix registry under ``"collusion"`` as
    the class itself; :meth:`repro.api.scenario.AdversarySpec.factory`
    instantiates it afresh per scenario resolution, so resolving a
    scenario twice never shares ledgers between runs. Every
    ``group_size`` behaviours created join one new
    :class:`CollusionGroup`; :meth:`finalize` (called by
    ``AdversaryMix.apply`` after assignment) folds a trailing singleton
    into the previous clique so no colluder is left without peers.
    """

    name = "collusion"

    def __init__(self, group_size: int = 2):
        if group_size < 2:
            raise ValueError("a colluding clique needs at least two members")
        self.group_size = group_size
        self.groups: list[CollusionGroup] = []

    def __call__(self, seed: int) -> CollusionBehavior:
        del seed  # The ledger is deterministic; no randomness needed.
        if not self.groups or len(self.groups[-1].members) >= self.group_size:
            self.groups.append(CollusionGroup())
        return CollusionBehavior(self.groups[-1])

    def finalize(self) -> None:
        if len(self.groups) >= 2 and len(self.groups[-1].members) == 1:
            lone = self.groups.pop().members[0]
            self.groups[-1].add(lone)
