"""Adversary-fraction sweeps against the ``1/(1-r)`` bound (paper §5).

:func:`inflation_sweep` runs the ``inflation-sweep`` registry scenario
across a grid of behaviours x adversary fractions and reduces each run
to one :class:`SweepPoint`: the worst and mean per-adversary inflation
(``estimate/truth`` from ``report.adversary_inflation()``), the
theoretical ``1/(1-r)`` bound, and TorFlow's inflation under the same
lie for contrast (self-reported bandwidth scales TorFlow's weight
directly -- :func:`repro.attacks.analysis.torflow_self_report_attack`
-- so the identical attack that FlashFlow caps at ~1.33x inflates
TorFlow by the full claimed factor).

The sweep is what the ``attacks-smoke`` CI job and
``scripts/bench.py --attacks`` drive; tests assert ``within_bound``
holds at every grid point.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.attacks.analysis import inflation_bound, torflow_self_report_attack
from repro.core.params import FlashFlowParams

#: Small multiplicative slack on the bound: measurement noise (env and
#: socket jitter) moves honest estimates a few percent around truth, so
#: an adversary at exactly the bound can land slightly above it.
DEFAULT_SLACK = 1.08

#: The claimed-capacity factor used for the TorFlow contrast column: a
#: relay (or clique) self-reporting 100x its true bandwidth.
TORFLOW_CLAIM_FACTOR = 100.0


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of the inflation sweep."""

    behavior: str
    adversary_fraction: float
    n_adversaries: int
    #: Worst-case estimate/truth across the run's adversarial relays.
    max_inflation: float
    mean_inflation: float
    #: The §5 bound 1/(1-r) for the run's ratio.
    bound: float
    #: ``max_inflation <= bound * slack``.
    within_bound: bool
    #: What the same lie achieves against TorFlow's self-report scaling.
    torflow_inflation: float


def inflation_sweep(
    behaviors: tuple[str, ...] = ("traffic-liar", "ratio-cheater", "collusion"),
    fractions: tuple[float, ...] = (0.25, 0.5),
    n_relays: int = 16,
    seed: int = 13,
    slack: float = DEFAULT_SLACK,
    execution=None,
    **overrides,
) -> list[SweepPoint]:
    """Sweep adversary behaviours x fractions; one point per run.

    Extra keyword arguments are forwarded to the ``inflation-sweep``
    scenario factory (e.g. ``periods=2``).
    """
    from repro.api.scenarios import run_scenario

    params = overrides.get("params") or FlashFlowParams()
    bound = inflation_bound(params.ratio)
    points: list[SweepPoint] = []
    for behavior in behaviors:
        for fraction in fractions:
            report = run_scenario(
                "inflation-sweep",
                execution=execution,
                n_relays=n_relays,
                seed=seed,
                behavior=behavior,
                adversary_fraction=fraction,
                **overrides,
            )
            inflations = report.adversary_inflation()
            if not inflations:
                raise ValueError(
                    f"sweep point {behavior!r} @ {fraction} assigned no "
                    "adversaries; raise n_relays or the fraction"
                )
            worst = max(inflations.values())
            points.append(
                SweepPoint(
                    behavior=behavior,
                    adversary_fraction=fraction,
                    n_adversaries=len(inflations),
                    max_inflation=worst,
                    mean_inflation=statistics.fmean(inflations.values()),
                    bound=bound,
                    within_bound=worst <= bound * slack,
                    torflow_inflation=torflow_self_report_attack(
                        1.0, TORFLOW_CLAIM_FACTOR
                    ),
                )
            )
    return points
