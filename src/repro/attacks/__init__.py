"""Adversarial relay behaviours and the security analysis (paper §5).

- :mod:`repro.attacks.relays` -- malicious relay behaviours that plug into
  :class:`repro.tornet.relay.Relay`: lying about background traffic,
  forging echo cells, showing capacity only when measured, Sybil floods;
- :mod:`repro.attacks.collusion` -- multi-relay bandwidth inflation:
  colluding cliques claim each other's measurement traffic as
  background (TorMult-style, arXiv:2307.08550);
- :mod:`repro.attacks.sweep` -- adversary-fraction sweeps checking every
  behaviour against the ``1/(1-r)`` bound, with a TorFlow contrast;
- :mod:`repro.attacks.analysis` -- the closed-form security results:
  the 1/(1-r) inflation bound, forge-detection probabilities, and the
  binomial analysis of selective-capacity strategies against the
  median-of-BWAuths aggregation.
"""

from repro.attacks.analysis import (
    forge_evasion_probability,
    inflation_bound,
    selective_capacity_failure_probability,
    torflow_self_report_attack,
)
from repro.attacks.collusion import (
    CollusionBehavior,
    CollusionFactory,
    CollusionGroup,
)
from repro.attacks.relays import (
    ForgingRelayBehavior,
    RatioCheatingRelayBehavior,
    SelectiveCapacityRelayBehavior,
    TrafficLiarRelayBehavior,
    make_sybil_flood,
)
from repro.attacks.sweep import SweepPoint, inflation_sweep

__all__ = [
    "CollusionBehavior",
    "CollusionFactory",
    "CollusionGroup",
    "ForgingRelayBehavior",
    "RatioCheatingRelayBehavior",
    "SelectiveCapacityRelayBehavior",
    "SweepPoint",
    "TrafficLiarRelayBehavior",
    "forge_evasion_probability",
    "inflation_bound",
    "inflation_sweep",
    "make_sybil_flood",
    "selective_capacity_failure_probability",
    "torflow_self_report_attack",
]
