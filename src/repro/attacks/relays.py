"""Malicious relay behaviours (paper §5).

Each behaviour plugs into :class:`repro.tornet.relay.Relay` and implements
one of the §5 attack strategies. The FlashFlow protocol bounds what every
one of them can achieve:

- :class:`TrafficLiarRelayBehavior` -- report background traffic that was
  never forwarded; the BWAuth's clamp limits the gain to ``1/(1-r)``;
- :class:`RatioCheatingRelayBehavior` -- send no background traffic at all
  while claiming the full allowance (the strongest traffic lie);
- :class:`ForgingRelayBehavior` -- echo cells without decrypting them;
  random content checks catch ``k`` forgeries with probability
  ``1 - (1-p)^k``;
- :class:`SelectiveCapacityRelayBehavior` -- provide full capacity only
  while being measured (or only in a fraction ``q`` of slots); the
  secret schedule plus median-of-BWAuths aggregation defeats it.
"""

from __future__ import annotations

import math
import random

from repro.tornet.cell import PAYLOAD_LEN
from repro.tornet.network import TorNetwork
from repro.tornet.relay import BehaviorProgram, Relay, RelayBehavior


class TrafficLiarRelayBehavior(RelayBehavior):
    """Over-report forwarded background traffic by ``lie_factor``.

    The relay still forwards real background traffic, but claims
    ``lie_factor`` times as much. The BWAuth's clamp
    ``y <= x * r/(1-r)`` bounds the damage regardless of the factor.
    """

    name = "traffic-liar"

    def __init__(self, lie_factor: float = 1000.0):
        if not math.isfinite(lie_factor) or lie_factor < 1:
            raise ValueError(
                "a liar reports at least the true amount (finite lie factor)"
            )
        self.lie_factor = lie_factor

    def report_background(self, actual_bytes: float, relay: Relay) -> float:
        return actual_bytes * self.lie_factor

    def kernel_program(self) -> BehaviorProgram:
        return BehaviorProgram(background_report_scale=self.lie_factor)


class RatioCheatingRelayBehavior(RelayBehavior):
    """Send *no* normal traffic, give everything to measurement, and
    report the maximum normal traffic the ratio would have allowed.

    This is the paper's worst case: "A malicious relay could send no
    normal traffic but report the full amount, and it could thereby
    inflate its capacity estimate by a factor 1/(1-r) above the truth."
    """

    name = "ratio-cheater"

    def __init__(self, claimed_ratio: float = 0.25):
        if not 0 <= claimed_ratio < 1:
            raise ValueError("claimed ratio must be in [0, 1)")
        self.claimed_ratio = claimed_ratio
        # Precomputed once so the stateful report and the kernel's array
        # walk apply the identical single multiplication (bit parity).
        self._claim_factor = claimed_ratio / (1.0 - claimed_ratio)
        self._last_measurement_bytes = 0.0

    def enforces_ratio(self) -> bool:
        return False

    def note_measurement(self, measurement_bytes: float, relay: Relay) -> None:
        self._last_measurement_bytes = measurement_bytes

    def report_background(self, actual_bytes: float, relay: Relay) -> float:
        # Claim the full allowance relative to observed measurement
        # traffic; the relay knows x (it forwarded it), so it reports the
        # largest y the BWAuth will believe: y = x * r/(1-r). Claiming
        # more changes nothing -- the clamp wins either way -- and a
        # non-finite claim is rejected outright at the choke point.
        del actual_bytes
        return self._last_measurement_bytes * self._claim_factor

    def kernel_program(self) -> BehaviorProgram:
        return BehaviorProgram(
            enforces_ratio=False,
            measurement_claim_factor=self._claim_factor,
        )


class ForgingRelayBehavior(RelayBehavior):
    """Echo measurement cells without decrypting (saving CPU).

    ``forge_fraction`` is the fraction of cells forged; forging all cells
    maximises the CPU saved but also the detection probability.
    """

    name = "forger"

    def __init__(self, forge_fraction: float = 1.0, seed: int = 0):
        if not 0 < forge_fraction <= 1:
            raise ValueError("forge fraction must be in (0, 1]")
        self.forge_fraction = forge_fraction
        self._rng = random.Random(seed)
        self.cells_forged = 0

    def echo_payload(self, correct_payload: bytes, relay: Relay) -> bytes:
        if self._rng.random() < self.forge_fraction:
            self.cells_forged += 1
            # Forged content comes from the behaviour's seeded stream (not
            # os.urandom) so same-seed runs produce identical transcripts.
            return self._rng.randbytes(PAYLOAD_LEN)
        return correct_payload

    def capacity_factor(self, being_measured: bool, relay: Relay) -> float:
        # Skipping decryption frees CPU: a forger can push ~35% more cells
        # (cell crypto is roughly a third of Tor's forwarding cost).
        return 1.35 if being_measured else 1.0

    def kernel_program(self) -> BehaviorProgram:
        return BehaviorProgram(forge_fraction=self.forge_fraction)

    def settle_verify_replay(
        self, rng_state: object, cells_forged: int
    ) -> None:
        self._rng.setstate(rng_state)
        self.cells_forged += cells_forged


class SelectiveCapacityRelayBehavior(RelayBehavior):
    """Provide full capacity only during chosen slots (paper §5).

    ``active_fraction`` is the fraction q of measurement slots during
    which the relay runs at full capacity; the rest of the time it only
    provides ``idle_fraction`` of it. Because the schedule is secret, the
    relay cannot target actual measurement slots and must gamble; the
    median over BWAuths then fails it with probability >= 0.5 whenever
    q < 1/2. The slot decision rolls automatically when a measurement is
    admitted (:meth:`begin_measurement`); :meth:`roll_slot` remains for
    driving the behaviour by hand.
    """

    name = "selective-capacity"

    def __init__(self, active_fraction: float = 0.25,
                 idle_fraction: float = 0.1, seed: int = 0):
        if not 0 <= active_fraction <= 1:
            raise ValueError("active fraction must be in [0, 1]")
        if not 0 <= idle_fraction <= 1:
            raise ValueError("idle fraction must be in [0, 1]")
        self.active_fraction = active_fraction
        self.idle_fraction = idle_fraction
        self._rng = random.Random(seed)
        self._currently_active = False

    def roll_slot(self) -> bool:
        """Decide (blindly) whether to be at full capacity this slot."""
        self._currently_active = self._rng.random() < self.active_fraction
        return self._currently_active

    def begin_measurement(self, relay: Relay) -> None:
        self.roll_slot()

    def capacity_factor(self, being_measured: bool, relay: Relay) -> float:
        del being_measured  # The relay cannot see the secret schedule.
        return 1.0 if self._currently_active else self.idle_fraction

    def kernel_program(self) -> BehaviorProgram:
        # The rolled capacity factor is slot-constant, so once
        # begin_measurement has fired the walk itself is honest.
        return BehaviorProgram()


def make_sybil_flood(
    n_sybils: int,
    capacity_bits: float,
    prefix: str = "sybil",
    seed: int = 0,
) -> TorNetwork:
    """A flood of new relays (paper §5's Sybil discussion).

    All Sybils share one machine's capacity; each claims it fully. Used
    to test that old relays keep their guaranteed schedule slots and new
    relays are measured FCFS without starving the period.
    """
    network = TorNetwork()
    for index in range(n_sybils):
        network.add(
            Relay.with_capacity(
                fingerprint=f"{prefix}{index:05d}",
                capacity_bits=capacity_bits,
                seed=seed + index,
            )
        )
    return network
