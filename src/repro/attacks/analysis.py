"""Closed-form security analysis (paper §5).

Implements the quantitative claims of the paper's security section so the
benches can check the implemented attacks against theory:

- the traffic-lying inflation bound ``1/(1-r)``;
- forge-evasion probability ``(1-p)^k``;
- the binomial failure probability of a selective-capacity strategy
  against the median of ``n`` independently, secretly scheduled BWAuth
  measurements;
- the TorFlow self-report attack model (Table 2's 89x-177x advantage).
"""

from __future__ import annotations

import math


def inflation_bound(ratio: float) -> float:
    """Max capacity-estimate inflation from lying about traffic: 1/(1-r)."""
    if not 0 <= ratio < 1:
        raise ValueError("ratio must be in [0, 1)")
    return 1.0 / (1.0 - ratio)


def forge_evasion_probability(p_check: float, forged_cells: int) -> float:
    """Probability a relay forging ``k`` responses evades all checks.

    Paper §5: "a malicious relay that forges k responses has approximately
    a (1-p)^k chance of evading detection" (the paper's exponent is
    written with a sign typo; the meaning is the decaying form).
    """
    if not 0 <= p_check <= 1:
        raise ValueError("p_check must be a probability")
    if forged_cells < 0:
        raise ValueError("cell count cannot be negative")
    return (1.0 - p_check) ** forged_cells


def selective_capacity_failure_probability(
    n_bwauths: int, active_fraction: float
) -> float:
    """Probability a selective-capacity relay fails to move its median.

    The relay provides high capacity during a fraction ``q`` of slots; it
    is measured once per period by each of ``n`` BWAuths at independent
    secret times. Its median measurement stays *low* if at least half of
    the measurements land in low-capacity slots:

        P[fail] = sum_{k = ceil(n/2)}^{n} C(n, k) (1-q)^k q^(n-k)

    For q < 1/2 this is at least 0.5 (paper §5).
    """
    if n_bwauths <= 0:
        raise ValueError("need at least one BWAuth")
    if not 0 <= active_fraction <= 1:
        raise ValueError("active fraction must be a probability")
    q = active_fraction
    threshold = math.ceil(n_bwauths / 2)
    return sum(
        math.comb(n_bwauths, k) * (1 - q) ** k * q ** (n_bwauths - k)
        for k in range(threshold, n_bwauths + 1)
    )


def expected_selective_gain(
    n_bwauths: int, active_fraction: float, idle_fraction: float
) -> float:
    """Expected relative capacity estimate of a selective relay.

    The median lands high only when more than half the measurements hit
    active slots; returns E[median]/true_capacity.
    """
    p_fail = selective_capacity_failure_probability(n_bwauths, active_fraction)
    return p_fail * idle_fraction + (1.0 - p_fail) * 1.0


def torflow_self_report_attack(
    true_capacity: float,
    reported_capacity: float,
    measured_ratio: float = 1.0,
) -> float:
    """Weight-inflation factor of TorFlow's self-report attack.

    TorFlow multiplies the self-reported advertised bandwidth by the
    measured speed ratio; nothing validates the self-report, so the
    advantage is simply ``reported/true`` scaled by whatever ratio the
    relay still earns. Thill [36] demonstrated 89x and PeerFlow's authors
    177x on the live network.
    """
    if true_capacity <= 0:
        raise ValueError("true capacity must be positive")
    return (reported_capacity / true_capacity) * measured_ratio


def dos_exposure_fraction(slot_seconds: int, period_seconds: int,
                          n_bwauths: int) -> float:
    """Fraction of a period an attacker must DoS a relay to hit its median.

    Without schedule knowledge, a denial-of-service attack must cover at
    least half of each period's slots to expect to affect the median of
    the BWAuths' measurements (paper §5) -- i.e. a full-period attack, at
    which point it is an ordinary (and highly visible) DoS.
    """
    del slot_seconds, period_seconds, n_bwauths
    return 0.5
