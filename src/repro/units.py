"""Unit helpers used throughout the reproduction.

The paper mixes several unit families: network capacities in Mbit/s and
Gbit/s, transfer sizes in KiB and MiB, and Tor cells of a fixed 514 bytes.
Internally every rate in this code base is stored in *bits per second*
(float) and every size in *bytes* (int or float), and these helpers are the
only place conversions happen.
"""

from __future__ import annotations

#: Size of a Tor cell in bytes (fixed-length cells, payload + header).
CELL_LEN = 514

#: Bytes per KiB / MiB / GiB.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Bits per Kbit / Mbit / Gbit (SI, as used for network rates).
KBIT = 1_000
MBIT = 1_000_000
GBIT = 1_000_000_000

#: Seconds per larger time units.
MINUTE = 60
HOUR = 3600
DAY = 24 * HOUR
WEEK = 7 * DAY
#: The paper's "month" periods are treated as 30 days and "year" as 365.
MONTH = 30 * DAY
YEAR = 365 * DAY


def mbit(n: float) -> float:
    """Return ``n`` Mbit/s expressed in bit/s."""
    return n * MBIT


def gbit(n: float) -> float:
    """Return ``n`` Gbit/s expressed in bit/s."""
    return n * GBIT


def to_mbit(bits_per_sec: float) -> float:
    """Return a bit/s rate expressed in Mbit/s."""
    return bits_per_sec / MBIT


def to_gbit(bits_per_sec: float) -> float:
    """Return a bit/s rate expressed in Gbit/s."""
    return bits_per_sec / GBIT


def bytes_to_bits(n_bytes: float) -> float:
    """Convert a byte count to bits."""
    return n_bytes * 8


def bits_to_bytes(n_bits: float) -> float:
    """Convert a bit count to bytes."""
    return n_bits / 8


def rate_bytes_per_sec(bits_per_sec: float) -> float:
    """Convert a bit/s rate to bytes/s."""
    return bits_per_sec / 8


def cells_for_bytes(n_bytes: float) -> int:
    """Number of whole cells needed to carry ``n_bytes`` of payload."""
    if n_bytes <= 0:
        return 0
    return int((n_bytes + CELL_LEN - 1) // CELL_LEN)


def bdp_bytes(rate_bits_per_sec: float, rtt_seconds: float) -> float:
    """Bandwidth-delay product of a link, in bytes.

    A link's BDP is its capacity multiplied by its round-trip time; a TCP
    connection must be able to buffer this much in-flight data to keep the
    link full (paper Appendix D).
    """
    return rate_bits_per_sec * rtt_seconds / 8
