"""The vectorized shadow flow kernel and its backend registry.

:class:`repro.shadow.simulator.NetworkSimulator` historically walked
every simulated second in Python: gather each background circuit's
demand, look up its congested RTT, cap it by the flow-control window,
then advance benchmark transfers one attribute write at a time. This
module lowers a whole simulation horizon onto flat numpy arrays, the
same way :mod:`repro.kernel` lowered measurement rounds:

- **flow table** (:func:`build_flow_table`): circuit state compiled to
  arrays -- ``[C, 3]`` relay ids, base RTTs, and a precomputed
  ``[span, C]`` offered-demand matrix -- rebuilt only at circuit-churn
  events (every ``circuit_lifetime_seconds``), not every second. The
  AR(1) innovations for the whole span are pre-drawn from each
  generator's own RNG in exactly the per-second order the stateful walk
  consumes them, so values are bit-identical.
- **vectorized congested RTT**: per-relay load ratios from the previous
  second turn into effective RTTs and window caps for every flow in a
  handful of elementwise array ops.
- **batched transfer advancement** (:func:`run_flow_kernel`):
  TTFB/TTLB/timeout bookkeeping for all active benchmark transfers as
  array ops; only start/finish *events* touch Python objects.

**Bit-identity.** The kernel reproduces the stateful walk's results
exactly under fixed seeds (the oracle suite in
``tests/shadow/test_flow_oracle.py`` asserts ``==`` on every metric).
Two transcendental functions need care: numpy's SIMD ``np.exp`` /
``np.power`` are *not* bit-identical to CPython's ``math.exp`` /
``**`` on this toolchain, so the demand matrix applies ``math.exp``
element-by-element at churn time (amortized over the span) and the
per-transfer scheduling-luck factor ``luck ** severity`` is computed
with scalar CPython pow at event granularity. Everything else --
add/mul/div, gathers, 3-wide means, ``np.minimum``, ``np.bincount`` --
is the same IEEE-754 operation either way.

Backends mirror :mod:`repro.kernel.backends`: ``stateful`` keeps the
historical per-second Python walk alive, ``vector`` (the ``auto``
default) runs this kernel. Selection order: explicit ``backend=``
argument, then the ``FLASHFLOW_SHADOW_BACKEND`` environment variable,
then ``auto``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.tornet.circuit import CIRCUIT_WINDOW_CELLS, STREAM_WINDOW_CELLS
from repro.units import CELL_LEN

_EPS = 1e-6

#: Offered-demand/capacity ratio at which a relay's circuit scheduler
#: starts being unfair (queues grow, EWMA starves bursty circuits), and
#: the ratio at which the unfairness is fully developed.
OVERLOAD_ONSET = 1.10
OVERLOAD_FULL = 1.60

#: Environment variable consulted when the caller leaves the shadow
#: backend unset (mirrors ``FLASHFLOW_KERNEL_BACKEND``).
SHADOW_BACKEND_ENV_VAR = "FLASHFLOW_SHADOW_BACKEND"

#: Window-cap numerators, grouped exactly as ``circuit_rate_cap``
#: computes them (``(window_cells * CELL_LEN) * 8.0``), so dividing by
#: an RTT array reproduces the scalar helper bit for bit.
_BG_WINDOW_BITS = min(CIRCUIT_WINDOW_CELLS, STREAM_WINDOW_CELLS * 2) * CELL_LEN * 8.0
_BENCH_WINDOW_BITS = min(CIRCUIT_WINDOW_CELLS, STREAM_WINDOW_CELLS * 1) * CELL_LEN * 8.0


def waterfill(
    path_idx: np.ndarray, caps: np.ndarray, capacity: np.ndarray
) -> np.ndarray:
    """Exact max-min fair rates for flows over 3-relay paths.

    ``path_idx`` is [F, 3] relay indices, ``caps`` [F] per-flow caps,
    ``capacity`` [R] per-relay forwarding capacity. Returns rates [F].

    The waterfilling is the batch-freezing variant: each round either
    freezes every flow whose cap-residual is below the tightest resource
    level (in one vector operation) or saturates at least one relay, so
    rounds stay far below the flow count.
    """
    n_flows = path_idx.shape[0]
    n_relays = capacity.shape[0]
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates
    active = caps > 0
    remaining = capacity.astype(float).copy()

    for _ in range(2 * (n_flows + n_relays) + 8):
        if not active.any():
            break
        act_paths = path_idx[active]
        counts = np.bincount(act_paths.ravel(), minlength=n_relays)
        used = counts > 0
        with np.errstate(divide="ignore"):
            levels = np.where(used, remaining / np.maximum(counts, 1), np.inf)
        level = levels.min()

        residual = caps[active] - rates[active]
        if np.isinf(level) or (residual > level + _EPS).sum() == 0:
            # Every remaining flow fits under the tightest resource level:
            # give each its full residual and finish.
            np.subtract.at(
                remaining,
                act_paths.ravel(),
                np.repeat(residual, 3),
            )
            rates[active] = caps[active]
            active[:] = False
            break

        batch = residual <= level + _EPS
        if batch.any():
            # Freeze all cap-limited flows below the level in one shot.
            batch_paths = act_paths[batch]
            np.subtract.at(
                remaining,
                batch_paths.ravel(),
                np.repeat(residual[batch], 3),
            )
            idx = np.flatnonzero(active)[batch]
            rates[idx] = caps[idx]
            active[idx] = False
            continue

        # Advance everyone by the level; at least one relay saturates.
        rates[active] += level
        remaining -= level * counts
        saturated = remaining <= _EPS
        if saturated.any():
            crossing = saturated[path_idx].any(axis=1) & active
            active &= ~crossing

    return rates


# ---------------------------------------------------------------------------
# The background flow table
# ---------------------------------------------------------------------------

@dataclass
class FlowTable:
    """Background circuits lowered to arrays for one churn-to-churn span."""

    #: First simulated second this table is valid for.
    start: int
    #: Seconds until the next circuit-churn event (>= 1).
    span: int
    #: [C, 3] relay indices per background circuit.
    path_idx: np.ndarray
    #: [C] base (uncongested) circuit RTTs, seconds.
    base_rtt: np.ndarray
    #: [span, C] offered demand, bit/s, precomputed for the whole span.
    demand: np.ndarray
    #: [C] AR(1) log-state after the final row, written back onto the
    #: circuit objects at the next rebuild so survivors stay in sync.
    final_log_state: np.ndarray
    #: The live circuit objects, in table order.
    circuits: list

    @property
    def n_flows(self) -> int:
        return self.path_idx.shape[0]

    def writeback_states(self) -> None:
        """Sync the evolved AR(1) states onto the circuit objects."""
        for circuit, value in zip(self.circuits, self.final_log_state):
            circuit.log_state = float(value)


def build_flow_table(
    background: list,
    index: dict[str, int],
    now: int,
    horizon: int,
    prev: FlowTable | None = None,
) -> FlowTable:
    """Compile the background circuits into a :class:`FlowTable`.

    Refreshes every generator's circuits (the churn event), pre-draws
    each generator's AR(1) innovations for the span until the next
    churn, and precomputes the whole span's demand matrix. All RNG
    draws happen through the generators' own ``random.Random`` streams
    in the exact order the stateful per-second walk consumes them.
    """
    if prev is not None:
        prev.writeback_states()
    for generator in background:
        generator.refresh_circuits(now)

    circuits = [c for gen in background for c in gen.circuits]
    expiries = [
        circuit.built_at + generator.circuit_lifetime
        for generator in background
        for circuit in generator.circuits
    ]
    next_churn = min(expiries) if expiries else horizon
    span = max(1, min(next_churn, horizon) - now)

    n_circuits = len(circuits)
    if n_circuits == 0:
        return FlowTable(
            start=now,
            span=span,
            path_idx=np.zeros((0, 3), dtype=np.int64),
            base_rtt=np.zeros(0),
            demand=np.zeros((span, 0)),
            final_log_state=np.zeros(0),
            circuits=[],
        )

    path_idx = np.array(
        [[index[fp] for fp in c.path] for c in circuits], dtype=np.int64
    )
    base_rtt = np.array([c.rtt for c in circuits])
    states = np.array([c.log_state for c in circuits])
    per_circuit = np.empty(n_circuits)
    correction = np.empty(n_circuits)
    rho = np.empty(n_circuits)
    blocks = []
    offset = 0
    for generator in background:
        count = len(generator.circuits)
        pc, corr = generator.demand_constants()
        per_circuit[offset : offset + count] = pc
        correction[offset : offset + count] = corr
        rho[offset : offset + count] = generator.rho
        blocks.append(generator.draw_noise_block(span))
        offset += count
    noise = np.concatenate(blocks, axis=1)

    # Evolve the AR(1) recurrence one second at a time (cheap: one [C]
    # multiply-add per second of span) -- reassociating it into a scan
    # would not be bit-identical.
    logs = np.empty((span, n_circuits))
    for second in range(span):
        states = rho * states + noise[second]
        logs[second] = states
    # math.exp element-by-element: numpy's SIMD exp differs from libm in
    # the last ulp for ~5% of inputs, which would break bit-identity
    # with the stateful walk's per-second math.exp.
    exps = np.fromiter(
        map(math.exp, logs.ravel().tolist()),
        dtype=np.float64,
        count=span * n_circuits,
    ).reshape(span, n_circuits)
    demand = (per_circuit * exps) * correction

    return FlowTable(
        start=now,
        span=span,
        path_idx=path_idx,
        base_rtt=base_rtt,
        demand=demand,
        final_log_state=states,
        circuits=circuits,
    )


def finalize_relay_stats(
    metrics,
    fingerprints: list[str],
    util_acc: np.ndarray,
    peak: np.ndarray,
    load_history: list[np.ndarray],
    measured_seconds: int,
) -> None:
    """Fold the per-relay accumulators into the metrics dicts."""
    if not measured_seconds:
        return
    p95 = np.percentile(np.stack(load_history), 95, axis=0)
    for i, fp in enumerate(fingerprints):
        metrics.relay_utilization[fp] = float(util_acc[i] / measured_seconds)
        metrics.relay_peak_throughput[fp] = float(peak[i])
        metrics.relay_p95_throughput[fp] = float(p95[i])


# ---------------------------------------------------------------------------
# The vectorized horizon walk
# ---------------------------------------------------------------------------

def run_flow_kernel(simulator, prepared):
    """Walk a prepared simulation horizon on the vectorized flow kernel.

    ``simulator`` is a :class:`repro.shadow.simulator.NetworkSimulator`;
    ``prepared`` is its :meth:`_prepare` output (generators, benchmark
    clients, metrics, pre-drawn relay noise). Returns the populated
    :class:`repro.shadow.simulator.SimulationMetrics`, bit-identical to
    the stateful walk's.

    Instrumentation sits at event granularity: one ``shadow.horizon``
    span for the whole walk plus a ``shadow.churn`` child per circuit-
    churn flow-table rebuild -- never inside the per-second array ops.
    """
    tracer = get_tracer()
    with tracer.span(
        "shadow.horizon",
        horizon=prepared.horizon,
        n_relays=simulator._capacity.shape[0],
        n_benchmarks=len(prepared.benchmarks),
    ) as span:
        metrics, churns = _walk_horizon(simulator, prepared, tracer)
    span.set(churns=churns)
    get_registry().counter("shadow.churns").inc(churns)
    return metrics


def _walk_horizon(simulator, prepared, tracer):
    config = simulator.config
    capacity = simulator._capacity
    index = simulator._index
    n_relays = capacity.shape[0]
    background = prepared.background
    benchmarks = prepared.benchmarks
    metrics = prepared.metrics
    relay_noise = prepared.relay_noise
    horizon = prepared.horizon
    warmup = config.warmup_seconds
    access_bits = config.client_access_bits
    cap_floor = np.maximum(capacity, 1.0)

    util_acc = np.zeros(n_relays)
    peak = np.zeros(n_relays)
    load_history: list[np.ndarray] = []
    prev_util = np.zeros(n_relays)
    measured_seconds = 0

    # Benchmark transfers as per-client array slots; the flow rows for a
    # second are the active slots in client order (matching the stateful
    # walk's iteration order exactly).
    n_bench = len(benchmarks)
    b_active = np.zeros(n_bench, dtype=bool)
    b_path = np.zeros((n_bench, 3), dtype=np.int64)
    b_rtt = np.zeros(n_bench)
    b_luck = np.zeros(n_bench)
    b_remaining = np.zeros(n_bench)
    b_timeout = np.zeros(n_bench)
    b_started = np.zeros(n_bench, dtype=np.int64)
    b_first = np.zeros(n_bench, dtype=bool)
    b_ttfb = np.zeros(n_bench)

    table: FlowTable | None = None
    next_rebuild = 0
    churns = 0

    for now in range(horizon):
        # --- Event: circuit churn (rebuild the flow table) ------------
        if now == next_rebuild:
            with tracer.span("shadow.churn", now=now):
                table = build_flow_table(
                    background, index, now, horizon, prev=table
                )
            next_rebuild = now + table.span
            churns += 1
        n_bg = table.n_flows
        bg_demand = table.demand[now - table.start]

        # --- Event: benchmark transfer starts -------------------------
        for j, client in enumerate(benchmarks):
            if b_active[j]:
                continue
            transfer = client.maybe_start(now)
            if transfer is None:
                continue
            b_active[j] = True
            b_path[j] = [index[fp] for fp in transfer.path]
            b_rtt[j] = transfer.rtt
            b_luck[j] = transfer.luck
            b_remaining[j] = transfer.remaining_bytes
            b_timeout[j] = transfer.timeout
            b_started[j] = transfer.record.started_at
            b_first[j] = False
            b_ttfb[j] = 0.0
        active = np.flatnonzero(b_active)

        # --- Vectorized congested RTTs and per-flow caps --------------
        bg_queue = prev_util[table.path_idx].mean(axis=1)
        bg_caps = np.minimum(
            bg_demand,
            _BG_WINDOW_BITS
            / (table.base_rtt * (1.0 + 2.5 * (bg_queue * bg_queue))),
        )
        if active.size:
            a_path = b_path[active]
            a_queue = prev_util[a_path].mean(axis=1)
            cur_rtt = b_rtt[active] * (1.0 + 2.5 * (a_queue * a_queue))
            bench_caps = np.minimum(
                _BENCH_WINDOW_BITS / cur_rtt, access_bits
            )
            path_all = np.concatenate([table.path_idx, a_path])
            cap_all = np.concatenate([bg_caps, bench_caps])
        else:
            path_all, cap_all = table.path_idx, bg_caps

        rates = waterfill(path_all, cap_all, capacity * relay_noise[now])

        # Oversubscription per relay: offered demand vs capacity.
        offered_load = np.bincount(
            path_all.ravel(),
            weights=np.repeat(cap_all, 3),
            minlength=n_relays,
        )
        oversub = offered_load / cap_floor

        # --- Batched benchmark-transfer advancement -------------------
        if active.size:
            bench_rates = rates[n_bg:].copy()
            worst = oversub[a_path].max(axis=1)
            overloaded = worst > OVERLOAD_ONSET
            if overloaded.any():
                severity = np.minimum(
                    1.0,
                    (worst - OVERLOAD_ONSET)
                    / (OVERLOAD_FULL - OVERLOAD_ONSET),
                )
                for k in np.flatnonzero(overloaded):
                    # Scalar CPython pow: np.power is not bit-identical
                    # to ``luck ** severity`` on SIMD numpy builds.
                    bench_rates[k] *= (
                        float(b_luck[active[k]]) ** float(severity[k])
                    )

            elapsed = now + 1 - b_started[active]
            fresh = (~b_first[active]) & (bench_rates > 0)
            if fresh.any():
                serialization = np.minimum(
                    b_timeout[active],
                    (1024.0 * 8.0) / np.maximum(bench_rates, 1.0),
                )
                ttfb = (elapsed - 1) + 1.5 * cur_rtt + serialization
                started_idx = active[fresh]
                b_ttfb[started_idx] = ttfb[fresh]
                b_first[started_idx] = True

            rate_bytes = bench_rates / 8.0
            b_remaining[active] -= rate_bytes
            remaining = b_remaining[active]
            done = remaining <= 0
            timed_out = (~done) & (elapsed >= b_timeout[active])
            finished = done | timed_out
            if finished.any():
                with np.errstate(divide="ignore", invalid="ignore"):
                    overshoot = np.where(
                        bench_rates > 0, -remaining / rate_bytes, 0.0
                    )
                ttlb = elapsed - overshoot + 1.5 * cur_rtt
                for k in np.flatnonzero(finished):
                    j = int(active[k])
                    client = benchmarks[j]
                    record = client.active.record
                    if b_first[j]:
                        record.ttfb = float(b_ttfb[j])
                    if done[k]:
                        record.ttlb = float(ttlb[k])
                        if record.ttfb is None:
                            record.ttfb = record.ttlb
                    else:
                        record.timed_out = True
                    client.finish_active(now)
                    b_active[j] = False

        # --- Record ---------------------------------------------------
        relay_load = np.bincount(
            path_all.ravel(),
            weights=np.repeat(rates, 3),
            minlength=n_relays,
        )
        prev_util = np.minimum(1.0, relay_load / cap_floor)
        if now >= warmup:
            metrics.throughput_series.append(float(relay_load.sum()))
            util_acc += prev_util
            peak = np.maximum(peak, relay_load)
            load_history.append(relay_load)
            measured_seconds += 1

    finalize_relay_stats(
        metrics,
        simulator._fingerprints,
        util_acc,
        peak,
        load_history,
        measured_seconds,
    )
    return metrics, churns


# ---------------------------------------------------------------------------
# Backend registry (mirrors repro.kernel.backends)
# ---------------------------------------------------------------------------

class ShadowFlowBackend:
    """Base class: runs one prepared simulation, returns its metrics."""

    name = "base"

    def run(self, simulator, weights: dict[str, float]):
        raise NotImplementedError


class StatefulFlowBackend(ShadowFlowBackend):
    """The historical per-second Python walk (debugging granularity).

    ``memoize=False`` disables the congested-window memo so tests can
    prove the memo never changes results.
    """

    name = "stateful"

    def __init__(self, memoize: bool = True):
        self.memoize = memoize

    def run(self, simulator, weights):
        return simulator._run_stateful(weights, memoize=self.memoize)


class VectorFlowBackend(ShadowFlowBackend):
    """The vectorized flow kernel (the ``auto`` default)."""

    name = "vector"

    def run(self, simulator, weights):
        return run_flow_kernel(simulator, simulator._prepare(weights))


_BACKENDS: dict[str, ShadowFlowBackend] = {}


def register_shadow_backend(backend: ShadowFlowBackend) -> ShadowFlowBackend:
    """Add a backend instance to the registry (name taken from the class)."""
    _BACKENDS[backend.name] = backend
    return backend


register_shadow_backend(StatefulFlowBackend())
register_shadow_backend(VectorFlowBackend())


def shadow_backend_names() -> list[str]:
    """Registered shadow backend names (for docs/CLIs/validation)."""
    return sorted(_BACKENDS)


def resolve_shadow_backend_name(explicit: str | None = None) -> str:
    """Apply the selection order; ``auto`` resolves to ``vector``.

    The resolved name is validated against the registry *here*, before
    any simulation work starts: a typo'd ``FLASHFLOW_SHADOW_BACKEND``
    (or explicit name) fails fast with a :class:`ConfigurationError`
    naming the registered backends instead of surfacing as a raw
    ``KeyError`` mid-simulation -- the same contract as
    :func:`repro.kernel.backends.resolve_backend_name`.
    """
    env = os.environ.get(SHADOW_BACKEND_ENV_VAR)
    if explicit:
        name, source = explicit, "backend argument"
    elif env:
        name, source = env, f"the {SHADOW_BACKEND_ENV_VAR} environment variable"
    else:
        name, source = "auto", "default"
    if name == "auto":
        return VectorFlowBackend.name
    if name not in _BACKENDS:
        raise ConfigurationError(
            f"unknown shadow backend {name!r} (from {source}); "
            f"known backends: auto, {', '.join(shadow_backend_names())}"
        )
    return name


def get_shadow_backend(name: str) -> ShadowFlowBackend:
    """Look up a backend by name; raises with the known names listed."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown shadow backend {name!r}; "
            f"known backends: {', '.join(shadow_backend_names())}"
        ) from None
