"""The §7 Shadow experiment pipeline (Figures 8 and 9).

Two weight-generation pipelines run against the same scaled network:

- **TorFlow**: relays start under-utilised (like the live network); a
  short simulation under the current weights yields each relay's observed
  bandwidth (its peak forwarded throughput); the TorFlow scanner probes
  each relay through 2-hop circuits; weights are advertised bandwidth
  times the speed ratio. Iterating closes the under-utilisation feedback
  loop -- relays the weights starve never demonstrate their capacity.
- **FlashFlow**: a 3 x 1 Gbit/s team measures every relay with the real
  measurement loop (background client traffic present, plus congestion
  noise from the shared simulated topology).

Figure 8's error metrics compare both weight sets to ground truth;
Figure 9 runs performance simulations under each weight set at 100%,
115%, and 130% client load.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field

import numpy as np

from repro import quick_team
from repro.core.measurement import MeasurementNoise
from repro.core.params import FlashFlowParams
from repro.rng import fork
from repro.shadow.config import ShadowConfig, ShadowNetwork, build_network
from repro.shadow.simulator import NetworkSimulator, SimulationMetrics
from repro.torflow.scanner import TorFlowScanner, torflow_weights
from repro.units import gbit

#: Congestion/interference noise for measurements inside the shared
#: simulated topology; calibrated to Figure 8a's ~16% median relay
#: capacity error (larger than the dedicated-Internet Figure 6 error).
SHADOW_MEASUREMENT_NOISE = MeasurementNoise(
    target_env_mean=0.88,
    target_env_std=0.07,
    target_env_min=0.60,
    target_env_max=1.02,
)


# ---------------------------------------------------------------------------
# Error metrics (dict-level analogues of Equations 2/3/5/6)
# ---------------------------------------------------------------------------

def relay_capacity_errors(
    estimates: dict[str, float], capacities: dict[str, float]
) -> dict[str, float]:
    """Eq 2 per relay: 1 - estimate/capacity (positive = underestimate)."""
    return {
        fp: 1.0 - estimates.get(fp, 0.0) / capacities[fp]
        for fp in capacities
        if capacities[fp] > 0
    }


def network_capacity_error(
    estimates: dict[str, float], capacities: dict[str, float]
) -> float:
    """Eq 3: 1 - sum(estimates)/sum(capacities)."""
    total_cap = sum(capacities.values())
    if total_cap <= 0:
        return 0.0
    total_est = sum(estimates.get(fp, 0.0) for fp in capacities)
    return 1.0 - total_est / total_cap


def relay_weight_errors(
    weights: dict[str, float], capacities: dict[str, float]
) -> dict[str, float]:
    """Eq 5 per relay: normalized weight / normalized capacity."""
    total_w = sum(max(w, 0.0) for w in weights.values())
    total_c = sum(capacities.values())
    out = {}
    for fp, cap in capacities.items():
        if cap <= 0 or total_w <= 0 or total_c <= 0:
            continue
        w_norm = max(weights.get(fp, 0.0), 0.0) / total_w
        c_norm = cap / total_c
        out[fp] = w_norm / c_norm if c_norm > 0 else float("inf")
    return out


def network_weight_error(
    weights: dict[str, float], capacities: dict[str, float]
) -> float:
    """Eq 6: total variation distance between weight and capacity shares."""
    total_w = sum(max(w, 0.0) for w in weights.values())
    total_c = sum(capacities.values())
    if total_w <= 0 or total_c <= 0:
        return 1.0
    return 0.5 * sum(
        abs(max(weights.get(fp, 0.0), 0.0) / total_w - cap / total_c)
        for fp, cap in capacities.items()
    )


# ---------------------------------------------------------------------------
# Weight pipelines
# ---------------------------------------------------------------------------

def torflow_weights_for(
    network: ShadowNetwork,
    seed: int = 0,
    feedback_rounds: int = 2,
    warmup_sim_seconds: int = 300,
    shadow_backend: str | None = None,
) -> dict[str, float]:
    """Run the TorFlow pipeline against the scaled network.

    ``shadow_backend`` selects the flow-simulator backend
    (:mod:`repro.shadow.flows`) for the warmup simulations; weights are
    bit-identical for every choice.
    """
    config = network.config
    capacities = network.relays.capacities()
    rng = fork(seed, "torflow-bootstrap")
    # Live-network-like start: advertised bandwidths under-estimate
    # capacity (§3's finding), with the decade-spanning spread the
    # paper's Figure 3 documents (lognormal in the error ratio).
    advertised = {
        fp: cap
        * min(1.0, max(0.005, math.exp(rng.gauss(math.log(0.45), 1.1))))
        for fp, cap in capacities.items()
    }
    weights = dict(advertised)

    warm_config = ShadowConfig(
        **{
            **config.__dict__,
            "sim_seconds": warmup_sim_seconds,
            "warmup_seconds": min(config.warmup_seconds, 120),
        }
    )
    warm_network = ShadowNetwork(
        config=warm_config, relays=network.relays,
        hop_rtt_range=network.hop_rtt_range,
    )

    for round_index in range(feedback_rounds):
        sim = NetworkSimulator(warm_network, seed=seed + round_index)
        metrics = sim.run(weights, backend=shadow_backend)
        # Observed bandwidth: the relay's sustained peak (p95 of per-second
        # throughput -- the short warmup stands in for the live network's
        # 5-day window, whose max-sustained-10s statistic tracks sustained
        # load, not one-second extremes). Advertised ratchets toward it.
        for fp in capacities:
            sustained = metrics.relay_p95_throughput.get(fp, 0.0)
            advertised[fp] = min(
                capacities[fp], max(advertised[fp] * 0.6, sustained)
            )
        scanner = TorFlowScanner(
            seed=seed * 31 + round_index, noise_std=0.5
        )
        scan = scanner.scan(
            capacities, metrics.relay_utilization, weights
        )
        weights = torflow_weights(advertised, scan)
    return weights


def flashflow_weights_for(
    network: ShadowNetwork,
    seed: int = 0,
    params: FlashFlowParams | None = None,
    background_utilization: float = 0.35,
    backend: str | None = None,
    max_workers: int | None = None,
    shadow_backend: str | None = None,
) -> dict[str, float]:
    """Run the FlashFlow pipeline: 3 x 1 Gbit/s team measures everything.

    The measurement phase is one scenario-API campaign
    (:class:`repro.api.Campaign`): the whole-network measurement runs
    through the authority's shared :class:`MeasurementEngine` and the
    vectorized kernel -- each campaign round is one batched array walk
    (or a ``thread``/``process`` pool via ``backend``) rather than a
    hand-rolled per-relay loop. Estimates are bit-identical for every
    backend/worker choice.
    """
    from repro.api import Campaign, ExecutionConfig, Scenario

    authority = quick_team(
        n_measurers=3, capacity_each=gbit(1.0), params=params, seed=seed
    )
    rng = fork(seed, "flashflow-shadow-bg")
    # Client traffic present at each relay while it is measured; the
    # honest relay keeps forwarding up to the ratio r of it, reports it,
    # and the BWAuth folds the clamped amount into z_j.
    background = {
        fp: relay.true_capacity
        * background_utilization
        * max(0.0, rng.gauss(1.0, 0.4))
        for fp, relay in network.relays.relays.items()
    }
    report = Campaign(
        Scenario(
            name="shadow-flashflow-weights",
            network=network.relays,
            team=authority,
            priors=None,
            background=background,
            noise=SHADOW_MEASUREMENT_NOISE,
        ),
        ExecutionConfig(
            backend=backend,
            max_workers=max_workers,
            # Carried through Scenario -> Campaign for uniformity; the
            # measurement phase itself never runs the flow simulator.
            shadow_backend=shadow_backend,
        ),
    ).run()
    return dict(report.estimates)


# ---------------------------------------------------------------------------
# Comparison pipeline
# ---------------------------------------------------------------------------

@dataclass
class SystemRun:
    """One (system, load) performance simulation's Figure 9 statistics."""

    system: str
    load: float
    metrics: SimulationMetrics

    def ttlb_stats(self, size: int) -> dict[str, float]:
        values = self.metrics.ttlb(size)
        if not values:
            return {"median": float("nan"), "std": float("nan"), "n": 0}
        return {
            "median": float(statistics.median(values)),
            "mean": float(statistics.fmean(values)),
            "std": float(statistics.pstdev(values)) if len(values) > 1 else 0.0,
            "p95": float(np.percentile(values, 95)),
            "n": len(values),
        }

    def ttfb_stats(self) -> dict[str, float]:
        values = self.metrics.ttfb()
        if not values:
            return {"median": float("nan"), "std": float("nan"), "n": 0}
        return {
            "median": float(statistics.median(values)),
            "std": float(statistics.pstdev(values)) if len(values) > 1 else 0.0,
            "n": len(values),
        }

    def median_error_rate(self) -> float:
        rates = self.metrics.error_rates()
        return float(statistics.median(rates)) if rates else 0.0


@dataclass
class ExperimentResult:
    """Everything the Figure 8/9 benches need."""

    network: ShadowNetwork
    torflow_weights: dict[str, float]
    flashflow_estimates: dict[str, float]
    runs: list[SystemRun] = field(default_factory=list)

    @property
    def capacities(self) -> dict[str, float]:
        return self.network.relays.capacities()

    def flashflow_capacity_errors(self) -> dict[str, float]:
        return relay_capacity_errors(self.flashflow_estimates, self.capacities)

    def flashflow_network_capacity_error(self) -> float:
        return network_capacity_error(self.flashflow_estimates, self.capacities)

    def weight_errors(self, system: str) -> dict[str, float]:
        weights = (
            self.flashflow_estimates
            if system == "flashflow"
            else self.torflow_weights
        )
        return relay_weight_errors(weights, self.capacities)

    def network_weight_error(self, system: str) -> float:
        weights = (
            self.flashflow_estimates
            if system == "flashflow"
            else self.torflow_weights
        )
        return network_weight_error(weights, self.capacities)

    def run_for(self, system: str, load: float) -> SystemRun:
        for run in self.runs:
            if run.system == system and abs(run.load - load) < 1e-9:
                return run
        raise KeyError(f"no run for {system} at load {load}")


def compare_systems(
    config: ShadowConfig | None = None,
    loads: tuple[float, ...] = (1.0, 1.15, 1.30),
    seed: int = 0,
    run_performance: bool = True,
    measurement_backend: str | None = None,
    measurement_workers: int | None = None,
    shadow_backend: str | None = None,
) -> ExperimentResult:
    """Full §7 pipeline: weights, error metrics, performance runs.

    ``measurement_backend``/``measurement_workers`` select the kernel
    backend for the FlashFlow measurement phase, and ``shadow_backend``
    the flow-simulator backend (:mod:`repro.shadow.flows`) for the
    TorFlow warmups and the Figure 9 performance runs; figures are
    identical for every choice.
    """
    config = config or ShadowConfig()
    network = build_network(config)
    tf_weights = torflow_weights_for(
        network, seed=seed, shadow_backend=shadow_backend
    )
    ff_estimates = flashflow_weights_for(
        network,
        seed=seed,
        backend=measurement_backend,
        max_workers=measurement_workers,
        shadow_backend=shadow_backend,
    )
    result = ExperimentResult(
        network=network,
        torflow_weights=tf_weights,
        flashflow_estimates=ff_estimates,
    )
    if not run_performance:
        return result

    for system, weights in (
        ("torflow", tf_weights),
        ("flashflow", ff_estimates),
    ):
        for load in loads:
            run_config = ShadowConfig(
                **{**config.__dict__, "load_multiplier": load}
            )
            run_network = ShadowNetwork(
                config=run_config,
                relays=network.relays,
                hop_rtt_range=network.hop_rtt_range,
            )
            sim = NetworkSimulator(run_network, seed=seed + int(load * 100))
            metrics = sim.run(weights, backend=shadow_backend)
            result.runs.append(
                SystemRun(system=system, load=load, metrics=metrics)
            )
    return result
