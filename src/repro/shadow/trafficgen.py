"""Markov-model background traffic (paper §7).

The paper's 397 TGen clients replay Markov models learned from live Tor
traffic [23], representing ~40k users in the 5%-scale network. At flow
granularity we model each TGen client as a *load generator*: it keeps a
few circuits open (rebuilt every few minutes through weighted path
selection) and offers a time-varying traffic demand on each, following a
lognormal AR(1) process -- heavy-tailed instantaneous demand with
session-scale autocorrelation, the two properties of the Markov-model
traffic that matter for load on relays.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from repro.tornet.pathsel import PathSelector


@dataclass
class BackgroundCircuit:
    """One background circuit and its demand process state."""

    path: tuple[str, str, str]
    rtt: float
    built_at: int
    #: Current AR(1) state (log-domain).
    log_state: float = 0.0


class MarkovLoadGenerator:
    """One TGen-like background client.

    ``base_demand`` is the client's mean offered end-to-end rate (bit/s),
    split across its circuits. Demand at each step multiplies the mean by
    ``exp(x_t)`` with ``x_t = rho * x_{t-1} + noise`` -- an AR(1) in log
    space whose stationary distribution is lognormal.
    """

    def __init__(
        self,
        name: str,
        base_demand: float,
        selector: PathSelector,
        rtt_sampler,
        circuit_lifetime: int = 300,
        n_circuits: int = 3,
        rho: float = 0.90,
        sigma: float = 0.24,
        seed: int = 0,
    ):
        self.name = name
        self.base_demand = base_demand
        self.circuit_lifetime = circuit_lifetime
        self.n_circuits = n_circuits
        self.rho = rho
        self.sigma = sigma
        self._selector = selector
        self._rtt_sampler = rtt_sampler
        self._rng = random.Random(seed)
        self.circuits: list[BackgroundCircuit] = []

    def _stationary_sigma(self) -> float:
        return self.sigma / math.sqrt(1.0 - self.rho ** 2)

    def _build_circuit(self, now: int) -> BackgroundCircuit:
        path = self._selector.select_path(self._rng)
        return BackgroundCircuit(
            path=path,
            rtt=self._rtt_sampler(self._rng),
            built_at=now,
            log_state=self._rng.gauss(0.0, self._stationary_sigma()),
        )

    def refresh_circuits(self, now: int) -> None:
        """Rotate expired circuits and top up to ``n_circuits``."""
        self.circuits = [
            c
            for c in self.circuits
            if now - c.built_at < self.circuit_lifetime
        ]
        while len(self.circuits) < self.n_circuits:
            self.circuits.append(self._build_circuit(now))

    def demand_constants(self) -> tuple[float, float]:
        """(per-circuit mean demand, lognormal mean correction).

        The correction keeps the *average* offered load at
        ``base_demand`` regardless of sigma. Constant while the circuit
        set is unchanged, which is what lets the flow kernel hoist both
        out of the per-second loop.
        """
        correction = math.exp(-(self._stationary_sigma() ** 2) / 2.0)
        per_circuit = self.base_demand / max(1, len(self.circuits))
        return per_circuit, correction

    def draw_noise_block(self, span: int) -> np.ndarray:
        """Pre-draw ``span`` seconds of AR(1) innovations, [span, C].

        Values and order are exactly what ``span`` consecutive
        :meth:`demands` calls would draw -- one ``gauss(0, sigma)`` per
        circuit per second, circuits in list order -- so the flow
        kernel's batched walk stays bit-identical to the stateful one.
        Only valid between churn events (no circuit may expire inside
        the span).
        """
        gauss = self._rng.gauss
        sigma = self.sigma
        count = span * len(self.circuits)
        block = np.fromiter(
            (gauss(0.0, sigma) for _ in range(count)),
            dtype=np.float64,
            count=count,
        )
        return block.reshape(span, len(self.circuits))

    def demands(self, now: int) -> list[tuple[BackgroundCircuit, float]]:
        """Advance the demand processes; return (circuit, bits/s) pairs."""
        self.refresh_circuits(now)
        per_circuit, correction = self.demand_constants()
        out = []
        for circuit in self.circuits:
            circuit.log_state = (
                self.rho * circuit.log_state
                + self._rng.gauss(0.0, self.sigma)
            )
            demand = per_circuit * math.exp(circuit.log_state) * correction
            out.append((circuit, demand))
        return out
