"""Benchmark clients (paper §7).

"40 TGen clients mirror Tor's performance benchmarking process by
repeatedly downloading 50 KiB, 1 MiB, and 5 MiB files (timeouts are set
to 15, 60, and 120 seconds, respectively)." Each transfer runs on a fresh
circuit; the client records time-to-first-byte, time-to-last-byte, and
whether the transfer timed out -- the raw data behind Figures 9a/9b.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.tornet.pathsel import PathSelector


@dataclass
class TransferRecord:
    """One completed or failed benchmark transfer."""

    size: int
    started_at: int
    ttfb: float | None = None
    ttlb: float | None = None
    timed_out: bool = False

    @property
    def finished(self) -> bool:
        return self.timed_out or self.ttlb is not None


@dataclass
class ActiveTransfer:
    """A benchmark transfer in flight."""

    record: TransferRecord
    path: tuple[str, str, str]
    rtt: float
    remaining_bytes: float
    timeout: int
    first_byte_seen: bool = False
    #: Effective RTT including relay queueing, updated by the simulator.
    current_rtt: float = 0.0
    #: Persistent scheduling-luck factor applied on overloaded paths
    #: (Tor's per-circuit EWMA scheduler is unfair under overload; a
    #: circuit that lands in a starved position stays starved).
    luck: float = 1.0

    def __post_init__(self) -> None:
        self.current_rtt = self.rtt


class BenchmarkClient:
    """One performance-benchmarking client."""

    def __init__(
        self,
        name: str,
        selector: PathSelector,
        rtt_sampler,
        sizes: tuple[int, ...],
        timeouts: tuple[int, ...],
        pause_seconds: int = 15,
        seed: int = 0,
    ):
        self.name = name
        self.sizes = sizes
        self.timeouts = timeouts
        self.pause_seconds = pause_seconds
        self._selector = selector
        self._rtt_sampler = rtt_sampler
        self._rng = random.Random(seed)
        self._size_index = self._rng.randrange(len(sizes))
        self._next_start = self._rng.randrange(max(1, pause_seconds))
        self.active: ActiveTransfer | None = None
        self.records: list[TransferRecord] = []

    def maybe_start(self, now: int) -> ActiveTransfer | None:
        """Begin the next transfer if the pause has elapsed."""
        if self.active is not None or now < self._next_start:
            return None
        size = self.sizes[self._size_index]
        timeout = self.timeouts[self._size_index]
        self._size_index = (self._size_index + 1) % len(self.sizes)
        record = TransferRecord(size=size, started_at=now)
        luck = min(
            1.0,
            max(0.005, math.exp(self._rng.gauss(math.log(0.4), 1.4))),
        )
        self.active = ActiveTransfer(
            record=record,
            path=self._selector.select_path(self._rng),
            rtt=self._rtt_sampler(self._rng),
            remaining_bytes=float(size),
            timeout=timeout,
            luck=luck,
        )
        return self.active

    def advance(self, now: int, rate_bits: float) -> None:
        """Apply one second of progress at ``rate_bits`` to the transfer."""
        transfer = self.active
        if transfer is None:
            return
        record = transfer.record
        elapsed = now + 1 - record.started_at

        if not transfer.first_byte_seen and rate_bits > 0:
            # First byte: client->exit request propagation (through the
            # congested path) plus the wait for the first cell at the
            # allocated rate.
            serialization = min(
                transfer.timeout, (1024.0 * 8.0) / max(rate_bits, 1.0)
            )
            record.ttfb = (
                (elapsed - 1) + 1.5 * transfer.current_rtt + serialization
            )
            transfer.first_byte_seen = True

        transfer.remaining_bytes -= rate_bits / 8.0
        if transfer.remaining_bytes <= 0:
            overshoot = (
                -transfer.remaining_bytes / (rate_bits / 8.0)
                if rate_bits > 0
                else 0.0
            )
            record.ttlb = elapsed - overshoot + 1.5 * transfer.current_rtt
            if record.ttfb is None:
                record.ttfb = record.ttlb
            self._finish(now)
        elif elapsed >= transfer.timeout:
            record.timed_out = True
            self._finish(now)

    def _finish(self, now: int) -> None:
        assert self.active is not None
        self.records.append(self.active.record)
        self.active = None
        self._next_start = now + 1 + self.pause_seconds

    def finish_active(self, now: int) -> None:
        """Retire the active transfer (record already filled in).

        The vectorized flow kernel does the TTFB/TTLB/timeout math as
        array ops and writes the results onto the record itself; this
        hook applies only the state transition :meth:`advance` would
        have: archive the record, clear the transfer, schedule the next
        start after the pause.
        """
        self._finish(now)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def error_rate(self) -> float:
        """Fraction of this client's transfers that timed out."""
        if not self.records:
            return 0.0
        failed = sum(1 for r in self.records if r.timed_out)
        return failed / len(self.records)

    def ttlb_values(self, size: int | None = None) -> list[float]:
        return [
            r.ttlb
            for r in self.records
            if r.ttlb is not None and (size is None or r.size == size)
        ]

    def ttfb_values(self) -> list[float]:
        return [r.ttfb for r in self.records if r.ttfb is not None]
