"""Scaled private-network configuration (paper §7).

"We configure a private Tor test network in Shadow that is 5% of the size
of the public network and contains: 3 DirAuths; 328 relays; 397 TGen
clients that use Tor Markov models to generate the traffic flows of 40k
Tor users; and 40 TGen clients that mirror Tor's performance benchmarking
process. [...] Each relay is configured with a capacity equal to the
maximum observed bandwidth of the corresponding relay in the public Tor
network."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.rng import fork
from repro.tornet.network import (
    TorNetwork,
    sample_scaled_network,
    synthesize_network,
)


@dataclass(frozen=True)
class ShadowConfig:
    """Configuration of one scaled-network experiment."""

    n_relays: int = 328
    n_dirauths: int = 3
    n_markov_clients: int = 397
    n_benchmark_clients: int = 40
    seed: int = 0
    #: Simulated seconds per performance run (after warmup).
    sim_seconds: int = 1200
    warmup_seconds: int = 240
    #: Client-traffic load relative to baseline (1.0 / 1.15 / 1.30).
    load_multiplier: float = 1.0
    #: Baseline end-to-end offered load as a fraction of total relay
    #: capacity / 3 (each byte crosses three relays). Chosen so summed
    #: relay throughput sits near the paper's Figure 9c range relative to
    #: network capacity.
    utilization_target: float = 0.38
    #: Benchmark transfer sizes (bytes) and timeouts (seconds).
    benchmark_sizes: tuple[int, ...] = (50 * 1024, 1024 * 1024, 5 * 1024 * 1024)
    benchmark_timeouts: tuple[int, ...] = (15, 60, 120)
    #: Pause between a benchmark client's transfers.
    benchmark_pause_seconds: int = 15
    #: Client access-link rate, bit/s.
    client_access_bits: float = 100e6
    #: Circuit lifetime for the background (Markov) clients.
    circuit_lifetime_seconds: int = 300

    def __post_init__(self) -> None:
        if len(self.benchmark_sizes) != len(self.benchmark_timeouts):
            raise ConfigurationError("sizes/timeouts must align")
        if self.load_multiplier <= 0:
            raise ConfigurationError("load multiplier must be positive")


@dataclass
class ShadowNetwork:
    """The scaled network: relays plus per-entity latency samples."""

    config: ShadowConfig
    relays: TorNetwork
    #: Circuit RTTs are sampled per circuit from this (lo, hi) range, s.
    hop_rtt_range: tuple[float, float] = (0.04, 0.20)

    def total_capacity(self) -> float:
        return self.relays.total_capacity()

    def sample_circuit_rtt(self, rng) -> float:
        """End-to-end RTT of a fresh circuit (client..server, 4 hops)."""
        lo, hi = self.hop_rtt_range
        return sum(rng.uniform(lo, hi) for _ in range(4))


def build_network(config: ShadowConfig | None = None) -> ShadowNetwork:
    """Sample the 5%-scale network from a synthetic full consensus."""
    config = config or ShadowConfig()
    full = synthesize_network(seed=config.seed, prefix="pub")
    fraction = config.n_relays / max(1, len(full))
    scaled = sample_scaled_network(full, fraction=fraction, seed=config.seed)
    # Stratified sampling can land one relay off target; trim or pad
    # deterministically to hit the configured count exactly.
    fingerprints = sorted(
        scaled.relays,
        key=lambda fp: scaled[fp].true_capacity,
        reverse=True,
    )[: config.n_relays]
    rng = fork(config.seed, "shadow-pad")
    while len(fingerprints) < config.n_relays:
        candidates = [fp for fp in full.relays if fp not in set(fingerprints)]
        fingerprints.append(rng.choice(candidates))
    relays = TorNetwork(
        {fp: (scaled[fp] if fp in scaled else full[fp]) for fp in fingerprints}
    )
    return ShadowNetwork(config=config, relays=relays)
