"""Flow-level whole-network Tor simulation (paper §7's Shadow experiments).

The paper evaluates load balancing in Shadow, a packet-level discrete
event simulator, on a private Tor network scaled to 5% of the public
network: 328 relays, 3 DirAuths, 397 TGen clients modelling 40k users via
Markov traffic models, and 40 benchmark clients downloading 50 KiB / 1 MiB
/ 5 MiB files with 15/60/120-second timeouts.

This package rebuilds that experiment at flow granularity: circuits are
built with weighted path selection, per-second transfer rates come from a
vectorised max-min fair allocation over relay capacities, and benchmark
clients record time-to-first-byte, time-to-last-byte, and timeouts. The
experiment pipeline (:mod:`repro.shadow.experiment`) reproduces Figure 8
(measurement error CDFs) and Figure 9 (performance under TorFlow vs
FlashFlow weights at 100/115/130% load).
"""

from repro.shadow.benchclient import BenchmarkClient, TransferRecord
from repro.shadow.config import ShadowConfig, build_network
from repro.shadow.experiment import (
    ExperimentResult,
    compare_systems,
    flashflow_weights_for,
    torflow_weights_for,
)
from repro.shadow.flows import (
    SHADOW_BACKEND_ENV_VAR,
    ShadowFlowBackend,
    get_shadow_backend,
    register_shadow_backend,
    resolve_shadow_backend_name,
    shadow_backend_names,
    waterfill,
)
from repro.shadow.simulator import NetworkSimulator, SimulationMetrics
from repro.shadow.trafficgen import MarkovLoadGenerator

__all__ = [
    "BenchmarkClient",
    "ExperimentResult",
    "MarkovLoadGenerator",
    "NetworkSimulator",
    "SHADOW_BACKEND_ENV_VAR",
    "ShadowConfig",
    "ShadowFlowBackend",
    "SimulationMetrics",
    "TransferRecord",
    "build_network",
    "compare_systems",
    "flashflow_weights_for",
    "get_shadow_backend",
    "register_shadow_backend",
    "resolve_shadow_backend_name",
    "shadow_backend_names",
    "torflow_weights_for",
    "waterfill",
]
