"""Flow-level network simulator (the Shadow stand-in, paper §7).

Each simulated second:

1. background (Markov) clients refresh circuits and offer demand;
2. benchmark clients start transfers on fresh weighted circuits;
3. every circuit becomes a flow over its three relays, and a vectorised
   exact max-min waterfilling allocates rates subject to per-relay
   forwarding capacity and per-flow caps (demand, circuit windows,
   client access links);
4. benchmark transfers advance, recording TTFB/TTLB/timeouts;
5. per-relay throughput and utilisation are accumulated.

Execution is pluggable (:mod:`repro.shadow.flows`, mirroring the
measurement kernel's :mod:`repro.kernel.backends`): the default
``vector`` backend compiles each horizon onto the flow kernel's arrays
(flow table rebuilt only at circuit churn, congested RTTs and transfer
bookkeeping as batched array ops), while ``backend="stateful"`` keeps
the historical per-second Python walk. Both are bit-identical under
fixed seeds; selection order is explicit ``backend=`` argument, then
the ``FLASHFLOW_SHADOW_BACKEND`` environment variable, then ``auto``
(= ``vector``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rng import fork_numpy
from repro.shadow.benchclient import BenchmarkClient
from repro.shadow.config import ShadowConfig, ShadowNetwork
from repro.shadow.flows import (
    OVERLOAD_FULL,
    OVERLOAD_ONSET,
    finalize_relay_stats,
    get_shadow_backend,
    resolve_shadow_backend_name,
    waterfill,
)
from repro.shadow.trafficgen import MarkovLoadGenerator
from repro.tornet.circuit import circuit_rate_cap
from repro.tornet.consensus import Consensus, RouterStatus
from repro.tornet.pathsel import PathSelector

__all__ = [
    "NetworkSimulator",
    "PreparedSimulation",
    "SimulationMetrics",
    "waterfill",
    "OVERLOAD_ONSET",
    "OVERLOAD_FULL",
]

#: Entries kept in the stateful walk's congested-window memo before it
#: stops growing (the memo is exact, so capping it only costs hits;
#: entries are one per distinct background circuit, so the cap is a
#: safety valve, not a working-set bound).
_WINDOW_MEMO_MAX = 1 << 18


@dataclass
class SimulationMetrics:
    """Everything a performance run records (after warmup)."""

    #: Summed per-relay forwarded traffic each second (bit/s) -- every
    #: flow byte crosses three relays (Figure 9c's metric).
    throughput_series: list[float] = field(default_factory=list)
    #: Mean utilisation per relay over the run.
    relay_utilization: dict[str, float] = field(default_factory=dict)
    #: Max per-second forwarded traffic per relay (the observed-bandwidth
    #: signal TorFlow's self-reports are built from), bit/s.
    relay_peak_throughput: dict[str, float] = field(default_factory=dict)
    #: 95th-percentile per-second forwarded traffic per relay, bit/s --
    #: the *sustained* peak a short warmup run can stand in for the live
    #: network's 5-day observed-bandwidth window with.
    relay_p95_throughput: dict[str, float] = field(default_factory=dict)
    #: Benchmark clients with their transfer records.
    clients: list[BenchmarkClient] = field(default_factory=list)

    def ttlb(self, size: int) -> list[float]:
        values: list[float] = []
        for client in self.clients:
            values.extend(client.ttlb_values(size))
        return values

    def ttfb(self) -> list[float]:
        values: list[float] = []
        for client in self.clients:
            values.extend(client.ttfb_values())
        return values

    def error_rates(self) -> list[float]:
        return [c.error_rate() for c in self.clients]

    def transfers_completed(self) -> int:
        return sum(
            sum(1 for r in c.records if not r.timed_out)
            for c in self.clients
        )

    def transfers_failed(self) -> int:
        return sum(
            sum(1 for r in c.records if r.timed_out) for c in self.clients
        )

    def median_throughput(self) -> float:
        if not self.throughput_series:
            return 0.0
        return float(np.median(self.throughput_series))


@dataclass
class PreparedSimulation:
    """One run's resolved inputs, shared by every execution backend."""

    background: list[MarkovLoadGenerator]
    benchmarks: list[BenchmarkClient]
    metrics: SimulationMetrics
    #: [horizon, R] pre-drawn per-second relay capacity jitter.
    relay_noise: np.ndarray
    horizon: int


class NetworkSimulator:
    """Runs one performance simulation under a given weight assignment."""

    def __init__(self, network: ShadowNetwork, seed: int = 0):
        self.network = network
        self.config = network.config
        self.seed = seed
        self._fingerprints = sorted(network.relays.relays)
        self._index = {fp: i for i, fp in enumerate(self._fingerprints)}
        self._capacity = np.array(
            [network.relays[fp].true_capacity for fp in self._fingerprints]
        )

    def _consensus(self, weights: dict[str, float]) -> Consensus:
        consensus = Consensus(valid_after=0)
        for fp in self._fingerprints:
            relay = self.network.relays[fp]
            consensus.add(
                RouterStatus(
                    fingerprint=fp,
                    weight=max(weights.get(fp, 0.0), 0.0),
                    flags=relay.flags,
                )
            )
        return consensus

    def run(
        self, weights: dict[str, float], backend: str | None = None
    ) -> SimulationMetrics:
        """Simulate ``sim_seconds`` + warmup under ``weights``.

        ``backend`` selects the flow-execution backend
        (:mod:`repro.shadow.flows`); results are bit-identical for every
        choice, so the knob only trades speed for granularity.
        """
        name = resolve_shadow_backend_name(backend)
        return get_shadow_backend(name).run(self, weights)

    def _prepare(self, weights: dict[str, float]) -> PreparedSimulation:
        """Resolve one run's clients and noise (RNG order is canonical).

        Every backend starts from this exact draw sequence: path
        selector, the numpy noise fork, background generators, then
        benchmark clients -- so backend choice can never shift a seed.
        """
        config = self.config
        selector = PathSelector(self._consensus(weights), seed=self.seed)
        rtt_sampler = self.network.sample_circuit_rtt
        rng_np = fork_numpy(self.seed, "shadow-sim")

        total_capacity = float(self._capacity.sum())
        offered = (
            total_capacity
            * config.utilization_target
            / 3.0
            * config.load_multiplier
        )
        per_client = offered / max(1, config.n_markov_clients)
        # Enough circuits per client that typical per-circuit demand stays
        # well under the circuit flow-control window (real Tor clients
        # multiplex across many circuits; small test configs would
        # otherwise window-cap their offered load).
        n_circuits = max(3, int(per_client / 3e6) + 1)
        background = [
            MarkovLoadGenerator(
                name=f"markov{i}",
                base_demand=per_client,
                selector=selector,
                rtt_sampler=rtt_sampler,
                circuit_lifetime=config.circuit_lifetime_seconds,
                n_circuits=n_circuits,
                seed=self.seed * 100003 + i,
            )
            for i in range(config.n_markov_clients)
        ]
        benchmarks = [
            BenchmarkClient(
                name=f"bench{i}",
                selector=selector,
                rtt_sampler=rtt_sampler,
                sizes=config.benchmark_sizes,
                timeouts=config.benchmark_timeouts,
                pause_seconds=config.benchmark_pause_seconds,
                seed=self.seed * 200003 + i,
            )
            for i in range(config.n_benchmark_clients)
        ]

        horizon = config.warmup_seconds + config.sim_seconds
        # One batched draw for the whole horizon (engine-kernel style
        # noise batching): row ``now`` holds exactly the values a
        # per-second ``rng_np.normal(1.0, 0.02, n_relays)`` call would
        # have drawn, so results are bit-identical.
        relay_noise = np.clip(
            rng_np.normal(1.0, 0.02, (horizon, len(self._fingerprints))),
            0.85,
            1.15,
        )
        return PreparedSimulation(
            background=background,
            benchmarks=benchmarks,
            metrics=SimulationMetrics(clients=benchmarks),
            relay_noise=relay_noise,
            horizon=horizon,
        )

    def _run_stateful(
        self, weights: dict[str, float], memoize: bool = True
    ) -> SimulationMetrics:
        """The historical per-second Python walk (``backend="stateful"``).

        ``memoize`` enables the congested-window memo for background
        circuits: the window cap is a pure function of (path ids, base
        RTT, previous-second queue factor), so a second in which a
        circuit's RTT and load ratio are unchanged reuses the cached
        cap instead of recomputing it. The memo holds one entry per
        circuit -- keyed (ids, rtt), storing the last (queue factor,
        window) pair -- and the comparison is exact, no bucketing
        approximation, so results are identical either way
        (``tests/shadow/test_flow_oracle.py`` asserts it).
        """
        config = self.config
        prepared = self._prepare(weights)
        background = prepared.background
        benchmarks = prepared.benchmarks
        metrics = prepared.metrics
        relay_noise = prepared.relay_noise
        horizon = prepared.horizon

        n_relays = len(self._fingerprints)
        util_acc = np.zeros(n_relays)
        peak = np.zeros(n_relays)
        load_history: list[np.ndarray] = []
        #: Previous second's per-relay utilisation: congested relays queue
        #: cells, inflating effective circuit RTT and shrinking the
        #: window-limited throughput (Tor's fixed windows over growing
        #: queues -- the mechanism behind slow transfers in loaded Tor).
        prev_util = np.zeros(n_relays)
        measured_seconds = 0
        #: id(circuit) -> (rtt, queue_factor, window): each circuit's
        #: last computed window, valid while its RTT and load ratio are
        #: unchanged. The window is a pure function of the (rtt, queue
        #: factor) pair verified on every hit, so even an id collision
        #: (address reuse after churn) cannot return a wrong value.
        window_memo: dict[int, tuple[float, float, float]] | None = (
            {} if memoize else None
        )

        def congested_rtt(base_rtt: float, relay_ids: tuple[int, ...]) -> float:
            queue_factor = float(prev_util[list(relay_ids)].mean())
            return base_rtt * (1.0 + 2.5 * (queue_factor * queue_factor))

        for now in range(horizon):
            # --- Collect this second's flows ---------------------------
            paths: list[tuple[int, int, int]] = []
            caps: list[float] = []
            owners: list[BenchmarkClient | None] = []

            for generator in background:
                for circuit, demand in generator.demands(now):
                    ids = tuple(self._index[fp] for fp in circuit.path)
                    if window_memo is None:
                        window = circuit_rate_cap(
                            congested_rtt(circuit.rtt, ids), n_streams=2
                        )
                    else:
                        queue_factor = float(prev_util[list(ids)].mean())
                        key = id(circuit)
                        cached = window_memo.get(key)
                        if (
                            cached is not None
                            and cached[0] == circuit.rtt
                            and cached[1] == queue_factor
                        ):
                            window = cached[2]
                        else:
                            window = circuit_rate_cap(
                                circuit.rtt
                                * (1.0 + 2.5 * (queue_factor * queue_factor)),
                                n_streams=2,
                            )
                            if (
                                cached is not None
                                or len(window_memo) < _WINDOW_MEMO_MAX
                            ):
                                window_memo[key] = (
                                    circuit.rtt,
                                    queue_factor,
                                    window,
                                )
                    paths.append(ids)
                    caps.append(min(demand, window))
                    owners.append(None)

            for client in benchmarks:
                client.maybe_start(now)
                transfer = client.active
                if transfer is None:
                    continue
                ids = tuple(self._index[fp] for fp in transfer.path)
                # Benchmark downloads are single-stream (torperf-style),
                # so the 500-cell stream window binds.
                transfer.current_rtt = congested_rtt(transfer.rtt, ids)
                window = circuit_rate_cap(transfer.current_rtt, n_streams=1)
                paths.append(ids)
                caps.append(min(window, config.client_access_bits))
                owners.append(client)

            path_idx = np.array(paths, dtype=np.int64).reshape(-1, 3)
            cap_arr = np.array(caps)
            rates = waterfill(
                path_idx, cap_arr, self._capacity * relay_noise[now]
            )

            # Oversubscription per relay: offered demand vs capacity.
            offered_load = np.bincount(
                path_idx.ravel(),
                weights=np.repeat(cap_arr, 3),
                minlength=n_relays,
            )
            oversub = offered_load / np.maximum(self._capacity, 1.0)

            # --- Advance benchmark transfers ----------------------------
            for flow_i, owner in enumerate(owners):
                if owner is None:
                    continue
                rate = float(rates[flow_i])
                transfer = owner.active
                if transfer is not None:
                    # Tor's per-circuit EWMA scheduling is unfair under
                    # overload: circuits through a heavily oversubscribed
                    # relay do not get their max-min share -- unlucky ones
                    # starve almost completely (the source of transfer
                    # timeouts in loaded Tor networks, paper Fig 9b).
                    worst = float(
                        oversub[[self._index[fp] for fp in transfer.path]].max()
                    )
                    if worst > OVERLOAD_ONSET:
                        severity = min(
                            1.0,
                            (worst - OVERLOAD_ONSET)
                            / (OVERLOAD_FULL - OVERLOAD_ONSET),
                        )
                        rate *= transfer.luck ** severity
                owner.advance(now, rate)

            # --- Record -------------------------------------------------
            relay_load = np.bincount(
                path_idx.ravel(),
                weights=np.repeat(rates, 3),
                minlength=n_relays,
            )
            prev_util = np.minimum(
                1.0, relay_load / np.maximum(self._capacity, 1.0)
            )
            if now >= config.warmup_seconds:
                metrics.throughput_series.append(float(relay_load.sum()))
                util_acc += prev_util
                peak = np.maximum(peak, relay_load)
                load_history.append(relay_load)
                measured_seconds += 1

        finalize_relay_stats(
            metrics,
            self._fingerprints,
            util_acc,
            peak,
            load_history,
            measured_seconds,
        )
        return metrics
