"""Flow-level network simulator (the Shadow stand-in, paper §7).

Each simulated second:

1. background (Markov) clients refresh circuits and offer demand;
2. benchmark clients start transfers on fresh weighted circuits;
3. every circuit becomes a flow over its three relays, and a vectorised
   exact max-min waterfilling allocates rates subject to per-relay
   forwarding capacity and per-flow caps (demand, circuit windows,
   client access links);
4. benchmark transfers advance, recording TTFB/TTLB/timeouts;
5. per-relay throughput and utilisation are accumulated.

The waterfilling is the batch-freezing variant: each round either freezes
every flow whose cap-residual is below the tightest resource level (in one
vector operation) or saturates at least one relay, so rounds stay far
below the flow count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rng import fork_numpy
from repro.shadow.benchclient import BenchmarkClient
from repro.shadow.config import ShadowConfig, ShadowNetwork
from repro.shadow.trafficgen import MarkovLoadGenerator
from repro.tornet.circuit import circuit_rate_cap
from repro.tornet.consensus import Consensus, RouterStatus
from repro.tornet.pathsel import PathSelector

_EPS = 1e-6

#: Offered-demand/capacity ratio at which a relay's circuit scheduler
#: starts being unfair (queues grow, EWMA starves bursty circuits), and
#: the ratio at which the unfairness is fully developed.
OVERLOAD_ONSET = 1.10
OVERLOAD_FULL = 1.60


def waterfill(
    path_idx: np.ndarray, caps: np.ndarray, capacity: np.ndarray
) -> np.ndarray:
    """Exact max-min fair rates for flows over 3-relay paths.

    ``path_idx`` is [F, 3] relay indices, ``caps`` [F] per-flow caps,
    ``capacity`` [R] per-relay forwarding capacity. Returns rates [F].
    """
    n_flows = path_idx.shape[0]
    n_relays = capacity.shape[0]
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates
    active = caps > 0
    remaining = capacity.astype(float).copy()

    for _ in range(2 * (n_flows + n_relays) + 8):
        if not active.any():
            break
        act_paths = path_idx[active]
        counts = np.bincount(act_paths.ravel(), minlength=n_relays)
        used = counts > 0
        with np.errstate(divide="ignore"):
            levels = np.where(used, remaining / np.maximum(counts, 1), np.inf)
        level = levels.min()

        residual = caps[active] - rates[active]
        if np.isinf(level) or (residual > level + _EPS).sum() == 0:
            # Every remaining flow fits under the tightest resource level:
            # give each its full residual and finish.
            np.subtract.at(
                remaining,
                act_paths.ravel(),
                np.repeat(residual, 3),
            )
            rates[active] = caps[active]
            active[:] = False
            break

        batch = residual <= level + _EPS
        if batch.any():
            # Freeze all cap-limited flows below the level in one shot.
            batch_paths = act_paths[batch]
            np.subtract.at(
                remaining,
                batch_paths.ravel(),
                np.repeat(residual[batch], 3),
            )
            idx = np.flatnonzero(active)[batch]
            rates[idx] = caps[idx]
            active[idx] = False
            continue

        # Advance everyone by the level; at least one relay saturates.
        rates[active] += level
        remaining -= level * counts
        saturated = remaining <= _EPS
        if saturated.any():
            crossing = saturated[path_idx].any(axis=1) & active
            active &= ~crossing

    return rates


@dataclass
class SimulationMetrics:
    """Everything a performance run records (after warmup)."""

    #: Summed per-relay forwarded traffic each second (bit/s) -- every
    #: flow byte crosses three relays (Figure 9c's metric).
    throughput_series: list[float] = field(default_factory=list)
    #: Mean utilisation per relay over the run.
    relay_utilization: dict[str, float] = field(default_factory=dict)
    #: Max per-second forwarded traffic per relay (the observed-bandwidth
    #: signal TorFlow's self-reports are built from), bit/s.
    relay_peak_throughput: dict[str, float] = field(default_factory=dict)
    #: 95th-percentile per-second forwarded traffic per relay, bit/s --
    #: the *sustained* peak a short warmup run can stand in for the live
    #: network's 5-day observed-bandwidth window with.
    relay_p95_throughput: dict[str, float] = field(default_factory=dict)
    #: Benchmark clients with their transfer records.
    clients: list[BenchmarkClient] = field(default_factory=list)

    def ttlb(self, size: int) -> list[float]:
        values: list[float] = []
        for client in self.clients:
            values.extend(client.ttlb_values(size))
        return values

    def ttfb(self) -> list[float]:
        values: list[float] = []
        for client in self.clients:
            values.extend(client.ttfb_values())
        return values

    def error_rates(self) -> list[float]:
        return [c.error_rate() for c in self.clients]

    def transfers_completed(self) -> int:
        return sum(
            sum(1 for r in c.records if not r.timed_out)
            for c in self.clients
        )

    def transfers_failed(self) -> int:
        return sum(
            sum(1 for r in c.records if r.timed_out) for c in self.clients
        )

    def median_throughput(self) -> float:
        if not self.throughput_series:
            return 0.0
        return float(np.median(self.throughput_series))


class NetworkSimulator:
    """Runs one performance simulation under a given weight assignment."""

    def __init__(self, network: ShadowNetwork, seed: int = 0):
        self.network = network
        self.config = network.config
        self.seed = seed
        self._fingerprints = sorted(network.relays.relays)
        self._index = {fp: i for i, fp in enumerate(self._fingerprints)}
        self._capacity = np.array(
            [network.relays[fp].true_capacity for fp in self._fingerprints]
        )

    def _consensus(self, weights: dict[str, float]) -> Consensus:
        consensus = Consensus(valid_after=0)
        for fp in self._fingerprints:
            relay = self.network.relays[fp]
            consensus.add(
                RouterStatus(
                    fingerprint=fp,
                    weight=max(weights.get(fp, 0.0), 0.0),
                    flags=relay.flags,
                )
            )
        return consensus

    def run(self, weights: dict[str, float]) -> SimulationMetrics:
        """Simulate ``sim_seconds`` + warmup under ``weights``."""
        config = self.config
        selector = PathSelector(self._consensus(weights), seed=self.seed)
        rtt_sampler = self.network.sample_circuit_rtt
        rng_np = fork_numpy(self.seed, "shadow-sim")

        total_capacity = float(self._capacity.sum())
        offered = (
            total_capacity
            * config.utilization_target
            / 3.0
            * config.load_multiplier
        )
        per_client = offered / max(1, config.n_markov_clients)
        # Enough circuits per client that typical per-circuit demand stays
        # well under the circuit flow-control window (real Tor clients
        # multiplex across many circuits; small test configs would
        # otherwise window-cap their offered load).
        n_circuits = max(3, int(per_client / 3e6) + 1)
        background = [
            MarkovLoadGenerator(
                name=f"markov{i}",
                base_demand=per_client,
                selector=selector,
                rtt_sampler=rtt_sampler,
                circuit_lifetime=config.circuit_lifetime_seconds,
                n_circuits=n_circuits,
                seed=self.seed * 100003 + i,
            )
            for i in range(config.n_markov_clients)
        ]
        benchmarks = [
            BenchmarkClient(
                name=f"bench{i}",
                selector=selector,
                rtt_sampler=rtt_sampler,
                sizes=config.benchmark_sizes,
                timeouts=config.benchmark_timeouts,
                pause_seconds=config.benchmark_pause_seconds,
                seed=self.seed * 200003 + i,
            )
            for i in range(config.n_benchmark_clients)
        ]

        metrics = SimulationMetrics(clients=benchmarks)
        n_relays = len(self._fingerprints)
        util_acc = np.zeros(n_relays)
        peak = np.zeros(n_relays)
        load_history: list[np.ndarray] = []
        #: Previous second's per-relay utilisation: congested relays queue
        #: cells, inflating effective circuit RTT and shrinking the
        #: window-limited throughput (Tor's fixed windows over growing
        #: queues -- the mechanism behind slow transfers in loaded Tor).
        prev_util = np.zeros(n_relays)
        measured_seconds = 0
        horizon = config.warmup_seconds + config.sim_seconds
        # One batched draw for the whole horizon (engine-kernel style
        # noise batching): row ``now`` holds exactly the values the
        # historical per-second ``rng_np.normal(1.0, 0.02, n_relays)``
        # call would have drawn, so results are bit-identical.
        relay_noise = np.clip(
            rng_np.normal(1.0, 0.02, (horizon, n_relays)), 0.85, 1.15
        )

        def congested_rtt(base_rtt: float, relay_ids: tuple[int, ...]) -> float:
            queue_factor = float(prev_util[list(relay_ids)].mean())
            return base_rtt * (1.0 + 2.5 * queue_factor ** 2)

        for now in range(horizon):
            # --- Collect this second's flows ---------------------------
            paths: list[tuple[int, int, int]] = []
            caps: list[float] = []
            owners: list[BenchmarkClient | None] = []

            for generator in background:
                for circuit, demand in generator.demands(now):
                    ids = tuple(self._index[fp] for fp in circuit.path)
                    window = circuit_rate_cap(
                        congested_rtt(circuit.rtt, ids), n_streams=2
                    )
                    paths.append(ids)
                    caps.append(min(demand, window))
                    owners.append(None)

            for client in benchmarks:
                client.maybe_start(now)
                transfer = client.active
                if transfer is None:
                    continue
                ids = tuple(self._index[fp] for fp in transfer.path)
                # Benchmark downloads are single-stream (torperf-style),
                # so the 500-cell stream window binds.
                transfer.current_rtt = congested_rtt(transfer.rtt, ids)
                window = circuit_rate_cap(transfer.current_rtt, n_streams=1)
                paths.append(ids)
                caps.append(min(window, config.client_access_bits))
                owners.append(client)

            path_idx = np.array(paths, dtype=np.int64).reshape(-1, 3)
            cap_arr = np.array(caps)
            rates = waterfill(
                path_idx, cap_arr, self._capacity * relay_noise[now]
            )

            # Oversubscription per relay: offered demand vs capacity.
            offered_load = np.bincount(
                path_idx.ravel(),
                weights=np.repeat(cap_arr, 3),
                minlength=n_relays,
            )
            oversub = offered_load / np.maximum(self._capacity, 1.0)

            # --- Advance benchmark transfers ----------------------------
            for flow_i, owner in enumerate(owners):
                if owner is None:
                    continue
                rate = float(rates[flow_i])
                transfer = owner.active
                if transfer is not None:
                    # Tor's per-circuit EWMA scheduling is unfair under
                    # overload: circuits through a heavily oversubscribed
                    # relay do not get their max-min share -- unlucky ones
                    # starve almost completely (the source of transfer
                    # timeouts in loaded Tor networks, paper Fig 9b).
                    worst = float(
                        oversub[[self._index[fp] for fp in transfer.path]].max()
                    )
                    if worst > OVERLOAD_ONSET:
                        severity = min(
                            1.0,
                            (worst - OVERLOAD_ONSET)
                            / (OVERLOAD_FULL - OVERLOAD_ONSET),
                        )
                        rate *= transfer.luck ** severity
                owner.advance(now, rate)

            # --- Record -------------------------------------------------
            relay_load = np.bincount(
                path_idx.ravel(),
                weights=np.repeat(rates, 3),
                minlength=n_relays,
            )
            prev_util = np.minimum(
                1.0, relay_load / np.maximum(self._capacity, 1.0)
            )
            if now >= config.warmup_seconds:
                metrics.throughput_series.append(float(relay_load.sum()))
                util_acc += prev_util
                peak = np.maximum(peak, relay_load)
                load_history.append(relay_load)
                measured_seconds += 1

        if measured_seconds:
            p95 = np.percentile(np.stack(load_history), 95, axis=0)
            for i, fp in enumerate(self._fingerprints):
                metrics.relay_utilization[fp] = float(
                    util_acc[i] / measured_seconds
                )
                metrics.relay_peak_throughput[fp] = float(peak[i])
                metrics.relay_p95_throughput[fp] = float(p95[i])
        return metrics
