"""Path model: RTT and loss between hosts (paper Table 1 + Appendix B).

A :class:`Path` carries the round-trip time and a steady-state packet-loss
probability for a host pair. Loss on Internet paths grows with RTT (longer
paths traverse more congested hops), which is what makes the high-RTT IN
host the slowest per-socket measurer in the paper's Figure 14. Lab paths
are effectively lossless.

The :class:`NetworkModel` holds the full matrix for a set of hosts plus a
per-measurement "path quality" sampler used to model slowly-varying path
conditions (routing changes, cross traffic) that persist for the duration
of one 30-60 second measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.netsim.hosts import Host
from repro.rng import fork

#: RTTs between paper hosts, in milliseconds (Table 1 gives RTT to US-SW;
#: the remaining pairs are estimated from geography).
PAPER_RTTS_MS: dict[tuple[str, str], float] = {
    ("US-SW", "US-NW"): 40.0,
    ("US-SW", "US-E"): 62.0,
    ("US-SW", "IN"): 210.0,
    ("US-SW", "NL"): 137.0,
    ("US-NW", "US-E"): 70.0,
    ("US-NW", "IN"): 230.0,
    ("US-NW", "NL"): 150.0,
    ("US-E", "IN"): 200.0,
    ("US-E", "NL"): 90.0,
    ("IN", "NL"): 130.0,
}

#: Base loss probability for Internet paths, plus an RTT-proportional term.
#: Calibrated so the per-socket TCP throughput toward US-SW makes IN the
#: slowest host to peak, doing so near 160 sockets (paper Fig 14).
INTERNET_BASE_LOSS = 1.0e-5
INTERNET_LOSS_PER_RTT_SECOND = 4.4e-4
#: Lab (direct fiber) paths are effectively lossless.
LAB_LOSS = 1.0e-8


@dataclass(frozen=True)
class Path:
    """One direction-symmetric network path between two hosts."""

    src: str
    dst: str
    rtt_seconds: float
    loss: float

    def __post_init__(self) -> None:
        if self.rtt_seconds < 0:
            raise ConfigurationError("negative RTT")
        if not 0 <= self.loss < 1:
            raise ConfigurationError("loss must be a probability")


def internet_loss_for_rtt(rtt_seconds: float) -> float:
    """Default loss model for Internet paths: grows linearly with RTT."""
    return INTERNET_BASE_LOSS + INTERNET_LOSS_PER_RTT_SECOND * rtt_seconds


class NetworkModel:
    """RTT/loss matrix over a set of named hosts.

    ``quality_mean``/``quality_std`` parameterise the per-measurement path
    quality factor: a truncated normal multiplier on the achievable rate,
    sampled once per (path, measurement) and held for the measurement's
    duration. The factor captures path conditions the measurer cannot
    control; it is why over-allocating measurer capacity (the paper's
    multiplier ``m``) is necessary for reliable saturation.
    """

    def __init__(
        self,
        hosts: dict[str, Host],
        rtts_ms: dict[tuple[str, str], float] | None = None,
        loss_override: dict[tuple[str, str], float] | None = None,
        seed: int = 0,
        quality_mean: float = 0.92,
        quality_std: float = 0.10,
        quality_min: float = 0.45,
    ):
        self.hosts = dict(hosts)
        self._rtts: dict[frozenset[str], float] = {}
        self._loss: dict[frozenset[str], float] = {}
        self._rng = fork(seed, "network-model")
        self.quality_mean = quality_mean
        self.quality_std = quality_std
        self.quality_min = quality_min

        rtts_ms = dict(PAPER_RTTS_MS if rtts_ms is None else rtts_ms)
        for (a, b), ms in rtts_ms.items():
            key = frozenset((a, b))
            self._rtts[key] = ms / 1000.0
            self._loss[key] = internet_loss_for_rtt(ms / 1000.0)
        if loss_override:
            for (a, b), loss in loss_override.items():
                self._loss[frozenset((a, b))] = loss

    @classmethod
    def paper_internet(cls, seed: int = 0) -> "NetworkModel":
        """The five-host Internet topology of paper Table 1."""
        from repro.netsim.hosts import make_paper_hosts

        return cls(make_paper_hosts(), seed=seed)

    @classmethod
    def lab_pair(
        cls,
        capacity_bits: float = 10e9,
        rtt_ms: float = 0.13,
        seed: int = 0,
    ) -> "NetworkModel":
        """The two-machine lab of paper Appendix C (10 Gbit/s fiber)."""
        target = Host("lab-target", link_capacity=capacity_bits,
                      cpu_cores=56, ram_gib=256, jitter=0.004)
        client = Host("lab-client", link_capacity=capacity_bits,
                      cpu_cores=56, ram_gib=256, jitter=0.004)
        model = cls(
            {h.name: h for h in (target, client)},
            rtts_ms={("lab-target", "lab-client"): rtt_ms},
            loss_override={("lab-target", "lab-client"): LAB_LOSS},
            seed=seed,
            quality_mean=0.99,
            quality_std=0.01,
            quality_min=0.95,
        )
        return model

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def set_rtt(self, a: str, b: str, rtt_seconds: float,
                loss: float | None = None) -> None:
        """Override one pair's RTT (and optionally loss) -- netem style."""
        key = frozenset((a, b))
        self._rtts[key] = rtt_seconds
        self._loss[key] = internet_loss_for_rtt(rtt_seconds) if loss is None else loss

    def path(self, a: str, b: str) -> Path:
        """Return the path between hosts ``a`` and ``b``."""
        if a == b:
            return Path(a, b, rtt_seconds=0.0002, loss=0.0)
        key = frozenset((a, b))
        if key not in self._rtts:
            raise ConfigurationError(f"no path configured between {a} and {b}")
        return Path(a, b, rtt_seconds=self._rtts[key], loss=self._loss[key])

    def sample_path_quality(self, rng: random.Random | None = None) -> float:
        """Sample a per-measurement path quality factor in (0, 1]."""
        rng = rng or self._rng
        q = rng.gauss(self.quality_mean, self.quality_std)
        return max(self.quality_min, min(1.0, q))
