"""Hosts: access links, CPU cores, and the paper's Table 1 inventory.

A :class:`Host` models a machine with a full-duplex access link (separate
send and receive capacity), a number of CPU cores, and a kernel socket
buffer configuration. Virtualised hosts carry a small capacity penalty and
extra per-second variance, matching the paper's observation that its virtual
hosts (US-NW, IN, NL) measured less consistently than the one physical host
(US-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.socketbuf import KernelConfig
from repro.units import gbit


@dataclass
class Host:
    """A machine participating in measurements.

    ``link_capacity`` is the access-link rate in bit/s for each direction
    (full duplex). ``virtual`` hosts suffer hypervisor scheduling jitter,
    modelled downstream as wider per-second noise.
    """

    name: str
    link_capacity: float
    cpu_cores: int = 8
    ram_gib: int = 32
    virtual: bool = False
    network_type: str = "datacenter"
    kernel: KernelConfig = field(default_factory=KernelConfig.default)

    #: Fractional per-second throughput jitter (std dev of a multiplicative
    #: noise factor); virtual hosts get a wider value at construction.
    jitter: float = 0.015

    def __post_init__(self) -> None:
        if self.link_capacity <= 0:
            raise ValueError(f"host {self.name} needs positive link capacity")
        if self.virtual and self.jitter < 0.03:
            self.jitter = 0.03

    def with_kernel(self, kernel: KernelConfig) -> "Host":
        """Return a copy of this host with a different kernel configuration."""
        return Host(
            name=self.name,
            link_capacity=self.link_capacity,
            cpu_cores=self.cpu_cores,
            ram_gib=self.ram_gib,
            virtual=self.virtual,
            network_type=self.network_type,
            kernel=kernel,
            jitter=self.jitter,
        )

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Host) and other.name == self.name


def make_paper_hosts() -> dict[str, Host]:
    """Build the five Internet vantage points of paper Table 1.

    Link capacities follow the paper's *measured* bandwidths (the claimed
    1 Gbit/s values were optimistic for some hosts, and IN/NL measured above
    1 Gbit/s when saturated by all peers).
    """
    hosts = [
        Host("US-SW", link_capacity=gbit(0.954), cpu_cores=8, ram_gib=32,
             virtual=False, network_type="datacenter"),
        Host("US-NW", link_capacity=gbit(0.946), cpu_cores=8, ram_gib=4,
             virtual=True, network_type="datacenter"),
        Host("US-E", link_capacity=gbit(0.941), cpu_cores=12, ram_gib=32,
             virtual=False, network_type="residential"),
        Host("IN", link_capacity=gbit(1.076), cpu_cores=2, ram_gib=4,
             virtual=True, network_type="datacenter"),
        Host("NL", link_capacity=gbit(1.611), cpu_cores=2, ram_gib=4,
             virtual=True, network_type="datacenter"),
    ]
    return {h.name: h for h in hosts}
