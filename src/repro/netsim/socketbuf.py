"""Kernel socket-buffer configurations (paper Appendix D).

Linux sizes TCP socket buffers automatically up to per-boot maxima chosen
from available memory; on every host the authors used, those maxima were
4 MiB (read) and 6 MiB (write). Their "tuned" configuration raises both to
64 MiB. The effective window a single connection can sustain is bounded by
``min(sender write buffer, receiver read buffer)``, and throughput by
``window / RTT`` -- the bandwidth-delay-product limit the paper's Figure 12
explores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MIB


@dataclass(frozen=True)
class KernelConfig:
    """TCP-relevant kernel parameters of a host.

    ``read_buf_max`` / ``write_buf_max`` are the maximum socket buffer sizes
    in bytes. The paper's two configurations are exposed as the
    :meth:`default` and :meth:`tuned` constructors.
    """

    read_buf_max: int
    write_buf_max: int
    name: str = "custom"

    @classmethod
    def default(cls) -> "KernelConfig":
        """The stock configuration on all paper hosts: 4 MiB / 6 MiB."""
        return cls(read_buf_max=4 * MIB, write_buf_max=6 * MIB, name="default")

    @classmethod
    def tuned(cls) -> "KernelConfig":
        """The tuned configuration: 64 MiB for both directions."""
        return cls(read_buf_max=64 * MIB, write_buf_max=64 * MIB, name="tuned")

    def window_limit_bytes(self, peer: "KernelConfig") -> int:
        """Max in-flight bytes from ``self`` (sender) to ``peer`` (receiver)."""
        return min(self.write_buf_max, peer.read_buf_max)

    def window_rate_cap(self, peer: "KernelConfig", rtt_seconds: float) -> float:
        """BDP-limited throughput (bit/s) from ``self`` to ``peer``.

        A connection cannot move more than one window per round trip, so
        throughput is capped at ``window * 8 / RTT``.
        """
        if rtt_seconds <= 0:
            return float("inf")
        return self.window_limit_bytes(peer) * 8.0 / rtt_seconds
