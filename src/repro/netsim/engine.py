"""Simulation clock and lightweight event scheduling.

FlashFlow operates at per-second granularity (per-second throughput reports,
30-second slots, 24-hour periods), so the engine is a discrete-time clock
with an ordered event queue rather than a full continuous-time DES. Events
are callbacks scheduled at integer-second timestamps; ties break in
insertion order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterator


class SimClock:
    """Discrete one-second simulation clock with an event queue.

    The clock starts at ``start`` (seconds). ``schedule`` registers a
    callback at an absolute time; ``schedule_in`` at a relative offset.
    ``run_until`` executes all events with timestamps <= the target time in
    order, advancing the clock as it goes.
    """

    def __init__(self, start: int = 0):
        self._now = int(start)
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> int:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, when: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the clock reaches absolute time ``when``."""
        when = int(when)
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def schedule_in(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds."""
        self.schedule(self._now + int(delay), callback)

    def run_until(self, when: int) -> None:
        """Execute all events up to and including time ``when``."""
        when = int(when)
        while self._queue and self._queue[0][0] <= when:
            event_time, _, callback = heapq.heappop(self._queue)
            self._now = event_time
            callback()
        self._now = max(self._now, when)

    def run_all(self) -> None:
        """Execute every remaining event (including ones newly scheduled)."""
        while self._queue:
            event_time, _, callback = heapq.heappop(self._queue)
            self._now = event_time
            callback()

    def advance(self, seconds: int) -> None:
        """Advance the clock ``seconds`` into the future, running events."""
        self.run_until(self._now + int(seconds))

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def ticks(self, duration: int) -> Iterator[int]:
        """Iterate second-by-second for ``duration`` seconds.

        Yields the current time at each tick and advances the clock by one
        second after the loop body runs, executing any queued events.
        """
        for _ in range(int(duration)):
            yield self._now
            self.advance(1)
