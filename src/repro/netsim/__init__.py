"""Network simulation substrate.

This package stands in for the authors' Internet vantage points and lab
machines (paper Table 1, Appendices B-E). It provides a discrete-time
(1-second tick) fluid-flow network model:

- :mod:`repro.netsim.engine` -- simulation clock and event scheduling,
- :mod:`repro.netsim.hosts` -- hosts with access-link capacity and CPU cores,
- :mod:`repro.netsim.latency` -- RTT/loss path model, including the paper's
  five Internet vantage points,
- :mod:`repro.netsim.socketbuf` -- kernel socket-buffer configurations
  (default vs tuned, Appendix D),
- :mod:`repro.netsim.tcp` -- per-connection fluid TCP throughput model,
- :mod:`repro.netsim.udp` -- UDP flows,
- :mod:`repro.netsim.fairshare` -- max-min fair bandwidth allocation,
- :mod:`repro.netsim.iperf` -- an iPerf-like capacity estimation tool.

Rates are bits/second, sizes are bytes, time advances in 1-second steps
(the granularity at which FlashFlow reports measurements).
"""

from repro.netsim.engine import SimClock
from repro.netsim.fairshare import Flow, Resource, max_min_fair
from repro.netsim.hosts import Host, make_paper_hosts
from repro.netsim.iperf import IperfResult, iperf_many_to_one, iperf_pair
from repro.netsim.latency import NetworkModel, Path
from repro.netsim.socketbuf import KernelConfig
from repro.netsim.tcp import TcpConnection, tcp_rate_cap
from repro.netsim.udp import udp_rate_cap

__all__ = [
    "Flow",
    "Host",
    "IperfResult",
    "KernelConfig",
    "NetworkModel",
    "Path",
    "Resource",
    "SimClock",
    "TcpConnection",
    "iperf_many_to_one",
    "iperf_pair",
    "make_paper_hosts",
    "max_min_fair",
    "tcp_rate_cap",
    "udp_rate_cap",
]
