"""Max-min fair bandwidth allocation (progressive filling).

Every throughput computation in the reproduction funnels through this
allocator: competing flows over shared resources (access links, relay
forwarding capacity, CPU budgets) receive max-min fair rates subject to
per-flow caps (TCP limits, application rate limits, circuit windows).

A flow lists the resources it consumes, with multiplicity: a flow that
traverses the same resource twice (e.g. echo traffic crossing a duplex NIC
in both directions counts once per direction-resource, but a forwarding
budget is consumed once per forwarded byte) consumes ``multiplicity x rate``
of that resource.

The allocation satisfies the two defining max-min properties, which the
test suite checks property-style:

- *feasibility*: no resource is over-subscribed and no flow exceeds its cap;
- *unimprovability*: every flow is either at its cap or crosses at least
  one saturated resource.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable

#: Numerical slack for saturation tests.
_EPS = 1e-9


@dataclass
class Resource:
    """A shared capacity: an access link direction, CPU budget, rate limit."""

    rid: Hashable
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"resource {self.rid!r} has negative capacity")

    def __hash__(self) -> int:
        return hash(self.rid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Resource) and other.rid == self.rid


@dataclass
class Flow:
    """A unidirectional traffic flow requesting bandwidth.

    ``resources`` may repeat a resource to consume it with multiplicity.
    ``cap`` is the flow's own maximum rate (TCP/app limit); use
    ``math.inf`` for an uncapped flow.
    """

    fid: Hashable
    resources: list[Resource]
    cap: float = math.inf
    _multiplicity: Counter = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.cap < 0:
            raise ValueError(f"flow {self.fid!r} has negative cap")
        self._multiplicity = Counter(r.rid for r in self.resources)

    def multiplicity(self, rid: Hashable) -> int:
        return self._multiplicity.get(rid, 0)


def max_min_fair(flows: list[Flow]) -> dict[Hashable, float]:
    """Allocate max-min fair rates to ``flows``; returns ``{fid: rate}``.

    Runs in O((F + R) * F) in the worst case; each round freezes at least
    one flow or saturates at least one resource.
    """
    rates: dict[Hashable, float] = {f.fid: 0.0 for f in flows}
    if not flows:
        return rates

    resources: dict[Hashable, Resource] = {}
    for f in flows:
        for r in f.resources:
            existing = resources.get(r.rid)
            if existing is not None and existing.capacity != r.capacity:
                raise ValueError(
                    f"resource {r.rid!r} appears with two capacities "
                    f"({existing.capacity} vs {r.capacity})"
                )
            resources[r.rid] = r

    remaining = {rid: r.capacity for rid, r in resources.items()}
    active = {f.fid: f for f in flows if f.cap > 0 and _feasible(f, remaining)}
    # Flows with zero cap or crossing a zero-capacity resource stay at 0.

    while active:
        load: Counter = Counter()
        for f in active.values():
            for rid, mult in f._multiplicity.items():
                load[rid] += mult

        # Largest uniform increment every active flow can take.
        increment = math.inf
        for rid, total_mult in load.items():
            if not math.isinf(remaining[rid]):
                increment = min(increment, remaining[rid] / total_mult)
        for f in active.values():
            increment = min(increment, f.cap - rates[f.fid])

        if math.isinf(increment):
            # Only uncapped flows over infinite resources remain; they are
            # genuinely unbounded -- report infinity.
            for fid in active:
                rates[fid] = math.inf
            break

        if increment > 0:
            for f in active.values():
                rates[f.fid] += increment
                for rid, mult in f._multiplicity.items():
                    if not math.isinf(remaining[rid]):
                        remaining[rid] -= increment * mult

        # Freeze flows at their cap or crossing a saturated resource.
        saturated = {rid for rid, rem in remaining.items() if rem <= _EPS}
        frozen = [
            fid
            for fid, f in active.items()
            if rates[fid] >= f.cap - _EPS
            or any(rid in saturated for rid in f._multiplicity)
        ]
        if not frozen:
            # Numerical corner: force the minimum-slack flow out to ensure
            # progress.
            frozen = [min(active, key=lambda fid: active[fid].cap - rates[fid])]
        for fid in frozen:
            del active[fid]

    return rates


def _feasible(flow: Flow, remaining: dict[Hashable, float]) -> bool:
    """A flow can receive rate only if every resource it crosses has some."""
    return all(remaining[rid] > _EPS for rid in flow._multiplicity)


def total_on_resource(
    flows: list[Flow], rates: dict[Hashable, float], rid: Hashable
) -> float:
    """Total allocated load on resource ``rid`` (for tests/diagnostics)."""
    return sum(
        rates[f.fid] * f.multiplicity(rid)
        for f in flows
        if f.multiplicity(rid) and not math.isinf(rates[f.fid])
    )
