"""UDP flow model.

UDP has no congestion or flow control: a sender can push at line rate and
throughput is limited only by the link and by loss. The paper uses UDP
iPerf for measuring measurers (§4.2) precisely because it avoids the TCP
dynamics that cap single connections -- and its §6.1 results show UDP iPerf
exceeding TCP iPerf on every pair for this reason.
"""

from __future__ import annotations

from repro.netsim.latency import Path

#: UDP/IP header overhead fraction relative to TCP (fewer headers, so a
#: slightly larger fraction of the link carries payload).
UDP_GOODPUT_FACTOR = 0.985


def udp_rate_cap(path: Path, offered_rate: float = float("inf")) -> float:
    """Achievable UDP goodput (bit/s) on ``path`` before link sharing.

    Loss removes the lost fraction of packets but, unlike TCP, does not
    cause the sender to back off.
    """
    return offered_rate * (1.0 - path.loss) * UDP_GOODPUT_FACTOR \
        if offered_rate != float("inf") else float("inf")
