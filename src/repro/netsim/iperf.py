"""iPerf-like capacity estimation (paper §4.2, §6.1, Appendix B).

Two modes reproduce the paper's methodology:

- :func:`iperf_pair` -- a bidirectional two-host measurement. Each second,
  the minimum of sent and received volume is recorded; the result is the
  median over the run (Table 3, first two columns).
- :func:`iperf_many_to_one` -- every other host saturates one target with
  UDP simultaneously; per-second receive volumes are summed and the median
  of the sums is the capacity estimate (Table 1 "BW (measured)" row and
  Table 3 last column). This is also how a FlashFlow BWAuth measures its
  measurers.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field

from repro.netsim.fairshare import Flow, Resource, max_min_fair
from repro.netsim.latency import NetworkModel
from repro.netsim.tcp import tcp_rate_cap
from repro.netsim.udp import UDP_GOODPUT_FACTOR
from repro.rng import fork


@dataclass
class IperfResult:
    """Outcome of an iPerf run."""

    median_bits_per_sec: float
    per_second: list[float] = field(default_factory=list)
    mode: str = "udp"

    @property
    def mbit(self) -> float:
        return self.median_bits_per_sec / 1e6


def _link_resources(model: NetworkModel) -> dict[tuple[str, str], Resource]:
    """Create up/down access-link resources for every host."""
    resources = {}
    for name, host in model.hosts.items():
        resources[(name, "up")] = Resource((name, "up"), host.link_capacity)
        resources[(name, "down")] = Resource((name, "down"), host.link_capacity)
    return resources


def _jitter(model: NetworkModel, names: list[str], rng) -> float:
    """Multiplicative per-second noise over the hosts on a path."""
    sigma = math.sqrt(sum(model.hosts[n].jitter ** 2 for n in names))
    return max(0.5, rng.gauss(1.0, sigma))


def iperf_pair(
    model: NetworkModel,
    a: str,
    b: str,
    mode: str = "udp",
    duration: int = 60,
    seed: int = 0,
    parallel_streams: int = 1,
) -> IperfResult:
    """Bidirectional iPerf between hosts ``a`` and ``b``.

    Returns the median over per-second ``min(sent, received)`` volumes,
    matching the paper's Appendix B methodology.
    """
    if mode not in ("udp", "tcp"):
        raise ValueError(f"unknown iperf mode {mode!r}")
    rng = fork(seed, f"iperf-{a}-{b}-{mode}")
    path = model.path(a, b)
    links = _link_resources(model)
    per_second: list[float] = []

    for second in range(duration):
        flows = []
        for direction, (src, dst) in enumerate(((a, b), (b, a))):
            if mode == "tcp":
                quality = model.sample_path_quality(rng)
                cap = tcp_rate_cap(
                    path,
                    model.hosts[src].kernel,
                    model.hosts[dst].kernel,
                    age_seconds=float(second),
                ) * quality * parallel_streams
            else:
                cap = math.inf
            flows.append(
                Flow(
                    fid=(src, dst),
                    resources=[links[(src, "up")], links[(dst, "down")]],
                    cap=cap,
                )
            )
        rates = max_min_fair(flows)
        forward = rates[(a, b)] * _jitter(model, [a, b], rng)
        reverse = rates[(b, a)] * _jitter(model, [a, b], rng)
        if mode == "udp":
            forward *= UDP_GOODPUT_FACTOR * (1.0 - path.loss)
            reverse *= UDP_GOODPUT_FACTOR * (1.0 - path.loss)
        else:
            # TCP goodput loses a little more to headers and retransmits.
            forward *= 0.96
            reverse *= 0.96
        per_second.append(min(forward, reverse))

    return IperfResult(
        median_bits_per_sec=statistics.median(per_second),
        per_second=per_second,
        mode=mode,
    )


def iperf_many_to_one(
    model: NetworkModel,
    target: str,
    sources: list[str] | None = None,
    duration: int = 60,
    seed: int = 0,
) -> IperfResult:
    """Saturate ``target`` with simultaneous UDP from every source.

    Per-second receive volumes from each source are summed; the median of
    the sums estimates the target's receive capacity. Used both for the
    Table 1/3 host characterisation and for FlashFlow's measurement of its
    own measurers (§4.2).
    """
    if sources is None:
        sources = [name for name in model.hosts if name != target]
    if target in sources:
        raise ValueError("target cannot also be a source")
    rng = fork(seed, f"iperf-many-{target}")
    links = _link_resources(model)
    per_second: list[float] = []

    for _ in range(duration):
        flows = [
            Flow(
                fid=src,
                resources=[links[(src, "up")], links[(target, "down")]],
                cap=math.inf,
            )
            for src in sources
        ]
        rates = max_min_fair(flows)
        total = 0.0
        for src in sources:
            loss = model.path(src, target).loss
            total += (
                rates[src]
                * UDP_GOODPUT_FACTOR
                * (1.0 - loss)
                * _jitter(model, [src], rng)
            )
        total *= _jitter(model, [target], rng)
        per_second.append(total)

    return IperfResult(
        median_bits_per_sec=statistics.median(per_second),
        per_second=per_second,
        mode="udp",
    )
