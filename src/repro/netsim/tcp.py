"""Fluid TCP throughput model.

A single TCP connection's per-second achievable rate is the minimum of:

- the BDP/window cap (``min(send buffer, receive buffer) / RTT``) -- the
  dominant limit for default kernels on high-RTT paths (paper Appendix D),
- the Mathis loss cap (``C * MSS / (RTT * sqrt(loss))``) -- the dominant
  limit for tuned kernels on lossy Internet paths (paper Appendix E.1),
- a slow-start ramp during the first seconds of the connection's life,
- the application's own rate limit, if any.

Actual link sharing between competing connections is handled by
:mod:`repro.netsim.fairshare`; this module produces per-connection *caps*
that feed into that allocation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from repro.netsim.latency import Path
from repro.netsim.socketbuf import KernelConfig

#: TCP maximum segment size in bytes (Ethernet MTU minus headers).
MSS = 1460
#: Mathis constant for TCP Reno-style AIMD with delayed ACKs.
MATHIS_C = 1.22
#: Initial congestion window, segments (RFC 6928).
INITIAL_CWND_SEGMENTS = 10
#: Loss-recovery advantage of large socket buffers: with default-sized
#: buffers, fast recovery regularly stalls on window exhaustion (RTOs);
#: tuned kernels ride losses out with SACK headroom. This is the residual
#: benefit of kernel tuning on lossy paths (paper Fig 13).
LOSS_RECOVERY_BOOST = 1.5
#: Write-buffer size above which a kernel gets the recovery boost.
_LARGE_BUFFER_BYTES = 16 * 1024 * 1024


def mathis_rate_cap(path: Path, recovery_boost: float = 1.0) -> float:
    """Loss-bounded steady-state TCP throughput on ``path`` (bit/s)."""
    if path.loss <= 0:
        return float("inf")
    if path.rtt_seconds <= 0:
        return float("inf")
    return (
        MATHIS_C * MSS * 8.0 * recovery_boost
        / (path.rtt_seconds * math.sqrt(path.loss))
    )


def slow_start_rate_cap(path: Path, age_seconds: float) -> float:
    """Throughput cap (bit/s) imposed by slow start at connection age.

    The congestion window doubles every RTT from ``INITIAL_CWND_SEGMENTS``
    segments. With sub-second RTTs the cap disappears within the first
    second or two, matching the paper's observation that multi-socket
    measurements reach full speed essentially immediately (Fig 7).
    """
    if path.rtt_seconds <= 0:
        return float("inf")
    doublings = max(0.0, age_seconds) / path.rtt_seconds
    # Cap the exponent to avoid overflow; 60 doublings is already infinite
    # for any practical purpose.
    doublings = min(doublings, 60.0)
    window_bytes = INITIAL_CWND_SEGMENTS * MSS * (2.0 ** doublings)
    return window_bytes * 8.0 / path.rtt_seconds


def steady_rate_cap(
    path: Path,
    sender_kernel: KernelConfig,
    receiver_kernel: KernelConfig,
    app_limit: float = float("inf"),
) -> float:
    """The age-independent rate cap: window, Mathis, and app limits.

    This is a connection invariant -- everything in
    :func:`tcp_rate_cap` except the slow-start ramp -- so batched
    engines can compute it once per connection.
    """
    window_cap = sender_kernel.window_rate_cap(receiver_kernel, path.rtt_seconds)
    boost = (
        LOSS_RECOVERY_BOOST
        if sender_kernel.write_buf_max >= _LARGE_BUFFER_BYTES
        else 1.0
    )
    return min(
        window_cap,
        mathis_rate_cap(path, recovery_boost=boost),
        app_limit,
    )


def tcp_rate_cap(
    path: Path,
    sender_kernel: KernelConfig,
    receiver_kernel: KernelConfig,
    age_seconds: float = 60.0,
    app_limit: float = float("inf"),
) -> float:
    """Per-connection achievable rate (bit/s), before link sharing."""
    return min(
        steady_rate_cap(path, sender_kernel, receiver_kernel, app_limit),
        slow_start_rate_cap(path, age_seconds),
    )


@lru_cache(maxsize=4096)
def _ramp_profile_cached(
    path: Path,
    sender_kernel: KernelConfig,
    receiver_kernel: KernelConfig,
    seconds: int,
    app_limit: float,
) -> tuple[float, ...]:
    """The memoized ramp: pure in hashable frozen-dataclass arguments.

    Campaign workloads evaluate the same few (path, kernel) pairs for
    thousands of measurements, so the hit rate is near 100%.
    """
    steady = steady_rate_cap(path, sender_kernel, receiver_kernel, app_limit)
    caps = []
    for second in range(seconds):
        ramp = slow_start_rate_cap(path, float(second))
        caps.append(min(steady, ramp))
        if ramp >= steady:
            # Slow start is monotone in age: it never binds again.
            caps.extend([steady] * (seconds - second - 1))
            break
    return tuple(caps)


def tcp_ramp_profile(
    path: Path,
    sender_kernel: KernelConfig,
    receiver_kernel: KernelConfig,
    seconds: int,
    app_limit: float = float("inf"),
) -> list[float]:
    """Per-second rate caps for a connection's first ``seconds`` of life.

    Equivalent to ``[tcp_rate_cap(path, snd, rcv, age_seconds=float(s))
    for s in range(seconds)]`` but computed incrementally: the window and
    Mathis caps are connection invariants, so only the slow-start ramp is
    evaluated per second -- and only until it stops being the binding
    limit, after which the cap is constant. This is the precomputation
    step batched measurement engines rely on. Profiles are memoized per
    (path, kernels, duration, app limit); a fresh list is returned so
    callers may mutate it.
    """
    if seconds <= 0:
        return []
    return list(
        _ramp_profile_cached(
            path, sender_kernel, receiver_kernel, seconds, app_limit
        )
    )


@dataclass
class TcpConnection:
    """A long-lived TCP connection whose rate cap evolves with age.

    ``quality`` is the per-measurement path-quality multiplier sampled from
    :meth:`repro.netsim.latency.NetworkModel.sample_path_quality`; it scales
    the achievable rate for this connection's whole lifetime.
    """

    path: Path
    sender_kernel: KernelConfig
    receiver_kernel: KernelConfig
    quality: float = 1.0
    app_limit: float = float("inf")
    age_seconds: float = field(default=0.0)

    def rate_cap(self) -> float:
        """Current per-second achievable rate in bit/s."""
        cap = tcp_rate_cap(
            self.path,
            self.sender_kernel,
            self.receiver_kernel,
            age_seconds=self.age_seconds,
            app_limit=self.app_limit,
        )
        if math.isinf(cap):
            return cap
        return cap * self.quality

    def tick(self, seconds: float = 1.0) -> None:
        """Advance the connection's age."""
        self.age_seconds += seconds
