"""Worker-count policy shared by the kernel backends and the engine.

Every parallel execution path (thread pool, process pool, the engine's
``run_many``) previously hard-coded the same heuristic --
``min(32, (os.cpu_count() or 1) + 4)``, mirroring the stdlib's
``ThreadPoolExecutor`` default.  It now lives here once, together with
the ``FLASHFLOW_WORKERS`` environment override so operators can pin the
pool size without touching call sites.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError

#: Environment variable overriding the default worker count everywhere.
WORKERS_ENV = "FLASHFLOW_WORKERS"

#: Upper bound on the heuristic default (stdlib executor convention).
MAX_DEFAULT_WORKERS = 32


def workers_from_env() -> int | None:
    """The validated ``FLASHFLOW_WORKERS`` override, or None when unset.

    Fails fast with :class:`ConfigurationError` on non-integer or
    non-positive values so a typo'd deployment knob cannot silently fall
    back to the heuristic.
    """
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or raw.strip() == "":
        return None
    try:
        value = int(raw.strip())
    except ValueError:
        raise ConfigurationError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"{WORKERS_ENV} must be positive, got {value}"
        )
    return value


def default_worker_count() -> int:
    """The worker count used when a caller does not pass ``max_workers``.

    ``FLASHFLOW_WORKERS`` wins when set (validated); otherwise the stdlib
    thread-pool heuristic ``min(32, cpu_count + 4)``.
    """
    override = workers_from_env()
    if override is not None:
        return override
    return min(MAX_DEFAULT_WORKERS, (os.cpu_count() or 1) + 4)


def resolve_worker_count(max_workers: int | None) -> int:
    """``max_workers`` when given, else :func:`default_worker_count`."""
    if max_workers is not None:
        return max_workers
    return default_worker_count()
