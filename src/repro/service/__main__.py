"""CLI for the continuous bwauth daemon.

Usage::

    PYTHONPATH=src python -m repro.service run --periods 4 \\
        --journal /tmp/service.jsonl --out-dir /tmp/v3bw --stop-after 2
    PYTHONPATH=src python -m repro.service resume --journal /tmp/service.jsonl
    PYTHONPATH=src python -m repro.service status --journal /tmp/service.jsonl

``run`` starts a fresh deployment of a registered scenario (default
``continuous-deployment``); ``--stop-after N`` exits cleanly at the
period-``N`` boundary (the CI smoke job's simulated kill). ``resume``
rebuilds the daemon from the journal's last snapshot and runs the
remaining periods -- bit-identical to never having been killed.
``status`` summarizes a journal as JSON. Validate journals with
``python -m repro.service.validate``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys

from repro.api.execution import ExecutionConfig
from repro.errors import ReproError
from repro.service.churn import ChurnConfig
from repro.service.daemon import BwauthDaemon, run_daemon, status
from repro.service.state import ServiceConfig


def _parse_override(text: str) -> tuple[str, object]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"override {text!r} must look like key=value"
        )
    key, raw = text.split("=", 1)
    try:
        value: object = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="continuous-deployment",
                        help="registered scenario to deploy continuously")
    parser.add_argument("--periods", type=int, default=5,
                        help="total measurement periods")
    parser.add_argument("--period-seconds", type=float, default=None,
                        help="wall pacing between period starts "
                             "(default: 24h; irrelevant on the "
                             "simulated clock)")
    parser.add_argument("--publish-every", type=int, default=1,
                        help="publish a bandwidth file every N periods")
    parser.add_argument("--out-dir", default=None,
                        help="directory v3bw files are written to")
    parser.add_argument("--clock", choices=("simulated", "wall"),
                        default="simulated")
    parser.add_argument("--seed", type=int, default=None,
                        help="service seed (default: the scenario's)")
    parser.add_argument("--analytic", action="store_true",
                        help="run periods through the analytic kernel "
                             "(fast; used by CI smoke)")
    parser.add_argument("--no-churn", action="store_true",
                        help="freeze the network for the whole deployment")
    parser.add_argument("--churn-seed", type=int, default=0)
    parser.add_argument("--join-rate", type=float, default=2.0,
                        help="expected relays joining per period (Poisson)")
    parser.add_argument("--leave-fraction", type=float, default=0.05,
                        help="fraction of relays leaving per period")
    parser.add_argument("--capacity-change-fraction", type=float,
                        default=0.0,
                        help="fraction of relays whose capacity drifts "
                             "per period")
    parser.add_argument("-o", "--override", action="append", default=[],
                        type=_parse_override, metavar="KEY=VALUE",
                        help="scenario factory override (repeatable)")


def _config_from_args(args: argparse.Namespace) -> ServiceConfig:
    churn = None
    if not args.no_churn:
        churn = ChurnConfig(
            seed=args.churn_seed,
            join_rate=args.join_rate,
            leave_fraction=args.leave_fraction,
            capacity_change_fraction=args.capacity_change_fraction,
        )
    kwargs: dict = {
        "scenario": args.scenario,
        "overrides": dict(args.override),
        "periods": args.periods,
        "publish_every": args.publish_every,
        "out_dir": args.out_dir,
        "churn": churn,
        "clock": args.clock,
        "seed": args.seed,
    }
    if args.period_seconds is not None:
        kwargs["period_seconds"] = args.period_seconds
    if args.analytic:
        kwargs["execution"] = ExecutionConfig(full_simulation=False)
    return ServiceConfig(**kwargs)


def _summarize(daemon: BwauthDaemon) -> dict:
    return {
        "next_period": daemon.next_period,
        "complete": daemon.next_period >= daemon.config.periods,
        "relays": len(daemon.table),
        "published": daemon.published_count,
        "periods_run": [stats["period"] for stats in daemon.period_stats],
        "median_error_vs_truth": [
            stats["median_error_vs_truth"] for stats in daemon.period_stats
        ],
        "metrics": daemon.registry.snapshot()["counters"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="start a fresh deployment")
    _add_run_arguments(run_parser)
    run_parser.add_argument("--journal", default=None,
                            help="append-only JSONL journal path "
                                 "(required for later resume)")
    run_parser.add_argument("--stop-after", type=int, default=None,
                            metavar="N",
                            help="exit cleanly at the period-N boundary")

    resume_parser = sub.add_parser(
        "resume", help="resume a killed deployment from its journal"
    )
    resume_parser.add_argument("--journal", required=True)
    resume_parser.add_argument("--stop-after", type=int, default=None,
                               metavar="N")

    status_parser = sub.add_parser(
        "status", help="summarize a journal as JSON"
    )
    status_parser.add_argument("--journal", required=True)

    args = parser.parse_args(argv)

    try:
        if args.command == "run":
            daemon = run_daemon(
                _config_from_args(args),
                journal_path=args.journal,
                until_period=args.stop_after,
            )
            print(json.dumps(_summarize(daemon), indent=2))
        elif args.command == "resume":
            daemon = BwauthDaemon.resume(args.journal)
            try:
                daemon.run(until_period=args.stop_after)
            finally:
                daemon.close()
            print(json.dumps(_summarize(daemon), indent=2))
        else:
            print(json.dumps(status(args.journal), indent=2))
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
