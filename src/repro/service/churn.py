"""Deterministic network-churn feeds for continuous deployments.

The real Tor network is a moving target: the paper's §7 consensus data
shows a median of 3 (max 98) relays *arriving* per hourly consensus,
with relays also leaving and changing operator rate limits. A
:class:`ChurnConfig` describes that motion as rates; ``
churn_events_for_period`` expands it into a concrete, deterministic
:class:`ChurnEvent` list for one period -- a pure function of
``(churn seed, period index, current membership)``, so checkpoint/
resume needs no RNG stream positions: the stream re-derives from the
period index alone.

Events are applied in two places:

- the daemon's :class:`repro.service.state.NetworkTable` (the durable
  membership table the next period's network materializes from), and
- the period's secret :class:`repro.core.schedule.PeriodSchedule` via
  :func:`apply_to_schedule`: joins are slotted FCFS
  (``add_new_relay``), leaves release their reserved slot capacity
  (``remove_relay``) -- the churn-aware schedule path.

Draw order within a period is fixed (leaves, then joins, then capacity
changes) and all draws come from one forked stream, so adding relays in
one period never perturbs another period's events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.schedule import PeriodSchedule
from repro.errors import ConfigurationError, ScheduleError
from repro.rng import fork, seed_from
from repro.tornet.network import (
    _LOGNORMAL_MEDIAN,
    _LOGNORMAL_SIGMA,
    _MIN_CAPACITY,
    JULY_2019_MAX_CAPACITY,
    sample_capacity,
)

__all__ = [
    "ChurnConfig",
    "ChurnEvent",
    "apply_to_schedule",
    "churn_events_for_period",
]


@dataclass(frozen=True)
class ChurnEvent:
    """One relay joining, leaving, or changing capacity between periods."""

    #: ``join`` | ``leave`` | ``capacity``.
    kind: str
    fingerprint: str
    #: Joins: the new relay's ground-truth capacity (bit/s). Capacity
    #: changes: the multiplicative drift factor applied to the relay's
    #: current capacity. Leaves: None.
    capacity: float | None = None
    #: New relays: the relay's RNG seed (drives jitter streams).
    seed: int | None = None

    def to_dict(self) -> dict:
        record: dict = {"kind": self.kind, "fingerprint": self.fingerprint}
        if self.capacity is not None:
            record["capacity"] = self.capacity
        if self.seed is not None:
            record["seed"] = self.seed
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "ChurnEvent":
        return cls(
            kind=record["kind"],
            fingerprint=record["fingerprint"],
            capacity=record.get("capacity"),
            seed=record.get("seed"),
        )


@dataclass(frozen=True)
class ChurnConfig:
    """Rates describing how fast the measured network moves.

    Defaults give a visibly moving network at test scale; a
    July-2019-calibrated feed would use ``join_rate~=72`` (3/hour) on
    24-hour periods with a small ``leave_fraction``.
    """

    seed: int = 0
    #: Expected relays joining per period (Poisson).
    join_rate: float = 2.0
    #: Fraction of current relays leaving per period.
    leave_fraction: float = 0.05
    #: Fraction of surviving relays whose capacity drifts per period.
    capacity_change_fraction: float = 0.0
    #: Std-dev of the multiplicative capacity-drift factor.
    capacity_change_std: float = 0.2
    #: Fingerprint prefix for joining relays.
    join_prefix: str = "joined"
    #: Capacity distribution for joining relays (network defaults).
    join_median: float = _LOGNORMAL_MEDIAN
    join_sigma: float = _LOGNORMAL_SIGMA
    join_max_capacity: float = JULY_2019_MAX_CAPACITY

    def __post_init__(self) -> None:
        if self.join_rate < 0:
            raise ConfigurationError("join_rate must be >= 0")
        if not 0 <= self.leave_fraction < 1:
            raise ConfigurationError("leave_fraction must be in [0, 1)")
        if not 0 <= self.capacity_change_fraction <= 1:
            raise ConfigurationError(
                "capacity_change_fraction must be in [0, 1]"
            )
        if self.capacity_change_std < 0:
            raise ConfigurationError("capacity_change_std must be >= 0")
        if not self.join_prefix:
            raise ConfigurationError("join_prefix must be non-empty")

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "join_rate": self.join_rate,
            "leave_fraction": self.leave_fraction,
            "capacity_change_fraction": self.capacity_change_fraction,
            "capacity_change_std": self.capacity_change_std,
            "join_prefix": self.join_prefix,
            "join_median": self.join_median,
            "join_sigma": self.join_sigma,
            "join_max_capacity": self.join_max_capacity,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ChurnConfig":
        return cls(**record)


def _poisson(rng, rate: float) -> int:
    """Knuth's method (the ``new_relay_arrivals`` idiom; rates are small)."""
    if rate <= 0:
        return 0
    limit = math.exp(-rate)
    k, product = 0, rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def churn_events_for_period(
    config: ChurnConfig, period_index: int, membership: list[str]
) -> list[ChurnEvent]:
    """The deterministic churn-event list preceding ``period_index``.

    ``membership`` is the network's current fingerprint set (any order;
    it is sorted internally so dict ordering can never leak into the
    event stream). Events come back leaves-first, then joins, then
    capacity changes -- the order they must be applied in.
    """
    rng = fork(config.seed, f"churn-period-{period_index}")
    current = sorted(membership)
    events: list[ChurnEvent] = []

    n_leaving = min(
        len(current), round(config.leave_fraction * len(current))
    )
    leaving = rng.sample(current, n_leaving) if n_leaving else []
    events.extend(ChurnEvent(kind="leave", fingerprint=fp) for fp in leaving)

    for i in range(_poisson(rng, config.join_rate)):
        fingerprint = f"{config.join_prefix}{period_index:04d}x{i:03d}"
        events.append(
            ChurnEvent(
                kind="join",
                fingerprint=fingerprint,
                capacity=sample_capacity(
                    rng,
                    median=config.join_median,
                    sigma=config.join_sigma,
                    max_capacity=config.join_max_capacity,
                ),
                seed=seed_from(config.seed, f"join-{fingerprint}"),
            )
        )

    if config.capacity_change_fraction > 0:
        survivors = [fp for fp in current if fp not in set(leaving)]
        n_changing = min(
            len(survivors),
            round(config.capacity_change_fraction * len(survivors)),
        )
        for fp in rng.sample(survivors, n_changing) if n_changing else []:
            factor = max(0.1, rng.gauss(1.0, config.capacity_change_std))
            events.append(
                ChurnEvent(kind="capacity", fingerprint=fp, capacity=factor)
            )
    return events


def apply_to_schedule(
    schedule: PeriodSchedule, events: list[ChurnEvent], new_relay_seed: float
) -> dict[str, int]:
    """Fold churn events into an already-computed period schedule.

    Joins are slotted first-come-first-served
    (:meth:`PeriodSchedule.add_new_relay` with the protocol's
    new-relay seed estimate); leaves release their reservation
    (:meth:`PeriodSchedule.remove_relay`) so later joins can re-use the
    freed capacity. Capacity-change events leave the schedule alone --
    the drift shows up in the *next* period's requirements. Returns
    counts (including joins that found no feasible slot, which wait for
    the next period rather than aborting the service).
    """
    counts = {"joins": 0, "leaves": 0, "capacity_changes": 0, "unslotted": 0}
    for event in events:
        if event.kind == "leave":
            if event.fingerprint in schedule.assignments:
                schedule.remove_relay(event.fingerprint)
                counts["leaves"] += 1
        elif event.kind == "join":
            try:
                schedule.add_new_relay(event.fingerprint, new_relay_seed)
                counts["joins"] += 1
            except ScheduleError:
                counts["unslotted"] += 1
        elif event.kind == "capacity":
            counts["capacity_changes"] += 1
        else:
            raise ConfigurationError(f"unknown churn event kind {event.kind!r}")
    return counts
