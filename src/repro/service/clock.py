"""Clocks the daemon schedules periods against.

Two implementations of one tiny protocol (``now()`` + ``await
sleep(dt)``): :class:`WallClock` paces periods in real time (the
production shape -- one period every ``period_seconds``), while
:class:`SimulatedClock` advances its own time instantly, so tests, CI
smoke jobs, and benches run a multi-day deployment in milliseconds.

Clocks pace the loop; they never feed results. Timestamps in published
bandwidth files derive from the period index (the determinism
discipline: the service layer reads clocks, never RNGs), so a
simulated-clock run is bit-identical to a wall-clock run of the same
configuration.
"""

from __future__ import annotations

import asyncio
import time


class SimulatedClock:
    """A clock that jumps instantly to whatever it is asked to wait for."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    async def sleep(self, seconds: float) -> None:
        self._now += max(0.0, seconds)
        # Yield once so the daemon loop stays cooperatively scheduled
        # (cancellation, signal handlers) even at simulated speed.
        await asyncio.sleep(0)


class WallClock:
    """Real time: ``now`` is the monotonic clock, ``sleep`` really sleeps."""

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(max(0.0, seconds))


def make_clock(kind: str) -> SimulatedClock | WallClock:
    """Build a clock from its config name (``simulated`` or ``wall``)."""
    if kind == "simulated":
        return SimulatedClock()
    if kind == "wall":
        return WallClock()
    raise ValueError(f"unknown clock kind {kind!r} (simulated|wall)")
